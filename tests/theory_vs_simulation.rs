//! Cross-crate integration tests: the paper's scientific claims checked
//! end to end — trace generation → cycle-accurate simulation → power
//! accounting → parameter extraction → analytic theory.

use pipedepth::experiments::sweep::{sweep_workload, RunConfig};
use pipedepth::experiments::theory_model;
use pipedepth::math::fit::cubic_peak_fit;
use pipedepth::model::{numeric_optimum, MetricExponent};
use pipedepth::workloads::{representatives, suite_class, WorkloadClass};

fn quick_config() -> RunConfig {
    RunConfig {
        warmup: 8_000,
        instructions: 16_000,
        depths: (2..=24).step_by(2).collect(),
        ..RunConfig::default()
    }
}

#[test]
fn power_always_shortens_the_optimum() {
    // The paper's central claim: for every workload, the BIPS³/W optimum is
    // shallower than the performance-only optimum.
    let cfg = quick_config();
    for w in representatives() {
        let curve = sweep_workload(&w, &cfg);
        let xs = curve.depths();
        let perf = cubic_peak_fit(&xs, &curve.throughput_series())
            .unwrap()
            .peak_x;
        let m3 = cubic_peak_fit(&xs, &curve.gated_series(3)).unwrap().peak_x;
        assert!(
            m3 < perf,
            "{}: BIPS³/W {m3} should be shallower than BIPS {perf}",
            w.name
        );
    }
}

#[test]
fn clock_gating_deepens_the_optimum() {
    let cfg = quick_config();
    for w in representatives() {
        let curve = sweep_workload(&w, &cfg);
        let xs = curve.depths();
        let gated = cubic_peak_fit(&xs, &curve.gated_series(3)).unwrap().peak_x;
        let ungated = cubic_peak_fit(&xs, &curve.ungated_series(3))
            .unwrap()
            .peak_x;
        assert!(
            gated >= ungated - 0.5,
            "{}: gated {gated} vs ungated {ungated}",
            w.name
        );
    }
}

#[test]
fn metric_exponent_orders_the_optima() {
    // m = 1 shallowest, then m = 2, then m = 3, then BIPS.
    let cfg = quick_config();
    let w = &representatives()[2]; // a modern workload
    let curve = sweep_workload(w, &cfg);
    let best = |ys: &[f64]| {
        curve.points[ys
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0]
            .depth
    };
    let p1 = best(&curve.gated_series(1));
    let p2 = best(&curve.gated_series(2));
    let p3 = best(&curve.gated_series(3));
    let pb = best(&curve.throughput_series());
    assert!(p1 <= p2 && p2 <= p3 && p3 <= pb, "{p1} {p2} {p3} {pb}");
}

#[test]
fn extracted_parameters_predict_the_optimum_ballpark() {
    // Theory parameterised from one depth should land its optimum within a
    // factor of two of the simulated cubic-fit optimum.
    let cfg = quick_config();
    for w in representatives() {
        let curve = sweep_workload(&w, &cfg);
        let xs = curve.depths();
        let sim_opt = cubic_peak_fit(&xs, &curve.gated_series(3)).unwrap().peak_x;
        let model = theory_model(&curve.extracted, true, cfg.leakage_fraction, 10.0, 1.3);
        let theory_opt = numeric_optimum(&model, MetricExponent::BIPS3_PER_WATT)
            .depth()
            .unwrap_or(1.0);
        let ratio = theory_opt / sim_opt;
        assert!(
            ratio > 0.3 && ratio < 2.5,
            "{}: theory {theory_opt} vs sim {sim_opt}",
            w.name
        );
    }
}

#[test]
fn fp_workloads_optimise_deepest() {
    // The paper's Fig. 7: floating point spans the deepest optima, because
    // serialised multi-cycle FP execution lowers α.
    let cfg = quick_config();
    let opt_of = |class: WorkloadClass| {
        let w = suite_class(class).into_iter().next().unwrap();
        let curve = sweep_workload(&w, &cfg);
        cubic_peak_fit(&curve.depths(), &curve.gated_series(3))
            .unwrap()
            .peak_x
    };
    let fp = opt_of(WorkloadClass::FloatingPoint);
    let spec = opt_of(WorkloadClass::SpecInt);
    let modern = opt_of(WorkloadClass::Modern);
    assert!(fp > spec, "fp {fp} vs specint {spec}");
    assert!(fp > modern, "fp {fp} vs modern {modern}");
}

#[test]
fn alpha_reflects_class_ilp() {
    // Legacy (serialised assembler) extracts a much smaller superscalar
    // degree than SPECint.
    let cfg = quick_config();
    let alpha_of = |class: WorkloadClass| {
        let w = suite_class(class).into_iter().next().unwrap();
        sweep_workload(&w, &cfg).extracted.alpha
    };
    let legacy = alpha_of(WorkloadClass::Legacy);
    let spec = alpha_of(WorkloadClass::SpecInt);
    assert!(
        legacy + 0.5 < spec,
        "legacy α {legacy} should trail SPECint α {spec}"
    );
}

#[test]
fn same_trace_same_results_across_crates() {
    // End-to-end determinism: the whole pipeline of crates is reproducible.
    let cfg = quick_config();
    let w = &representatives()[0];
    let a = sweep_workload(w, &cfg);
    let b = sweep_workload(w, &cfg);
    assert_eq!(a, b);
}
