//! Cross-crate integration tests for the beyond-the-paper extensions:
//! power-budget designs, crossover exponents and the gating-degree sweep,
//! all driven from simulator-extracted parameters.

use pipedepth::experiments::sweep::{sweep_workload, RunConfig};
use pipedepth::experiments::theory_model;
use pipedepth::model::{crossover_exponent, power_capped_design, BudgetedDesign, MetricExponent};
use pipedepth::workloads::{suite_class, WorkloadClass};

fn quick() -> RunConfig {
    RunConfig {
        warmup: 8_000,
        instructions: 16_000,
        depths: (2..=24).step_by(2).collect(),
        ..RunConfig::default()
    }
}

fn extracted_model(gated: bool) -> pipedepth::model::PipelineModel {
    let w = suite_class(WorkloadClass::SpecInt)
        .into_iter()
        .next()
        .unwrap();
    let curve = sweep_workload(&w, &quick());
    theory_model(&curve.extracted, gated, 0.15, 10.0, 1.3)
}

#[test]
fn budget_strategy_walks_the_extracted_frontier() {
    let model = extracted_model(true);
    let perf_opt = model.perf().optimum_depth().clamp(1.0, 60.0);
    let full = model.power().total_power(perf_opt);
    let mut last_depth = f64::INFINITY;
    let mut last_bips = f64::INFINITY;
    for frac in [0.8, 0.5, 0.3, 0.15] {
        match power_capped_design(&model, full * frac) {
            BudgetedDesign::Feasible(p) => {
                assert!(p.depth < last_depth, "tighter budget, shallower design");
                assert!(p.throughput < last_bips + 1e-12);
                assert!(p.power <= full * frac * (1.0 + 1e-6));
                last_depth = p.depth;
                last_bips = p.throughput;
            }
            other => panic!("expected feasible design at {frac}: {other:?}"),
        }
    }
}

#[test]
fn metric_optimum_lies_on_the_budget_frontier() {
    // The BIPS³/W optimum must equal the budget-capped design whose budget
    // is exactly the optimum's own power draw.
    let model = extracted_model(true);
    let m3 = pipedepth::model::numeric_optimum(&model, MetricExponent::BIPS3_PER_WATT)
        .depth()
        .expect("optimum exists");
    let budget = model.power().total_power(m3);
    match power_capped_design(&model, budget) {
        BudgetedDesign::Feasible(p) => {
            assert!(
                (p.depth - m3).abs() < 1e-6,
                "frontier {} vs optimum {m3}",
                p.depth
            )
        }
        other => panic!("expected feasible: {other:?}"),
    }
}

#[test]
fn crossover_brackets_the_usual_metrics() {
    // For the extracted SPECint parameters: BIPS/W must not pipeline,
    // BIPS³/W must — so the crossover lies strictly between 1 and 3.
    let model = extracted_model(true);
    let cross = crossover_exponent(&model, 2.0).expect("crossover exists");
    assert!(
        cross.exponent > 1.0 && cross.exponent < 3.0,
        "crossover at {}",
        cross.exponent
    );
}

#[test]
fn gating_degree_interpolates_between_endpoints() {
    use pipedepth::experiments::figures::ext_gating;
    let fig = ext_gating::run(&quick());
    // Ungated endpoint (f_cg = 1) is the shallowest; complete gating at
    // least as deep as any partial point.
    let ungated = fig.sim_optima[0];
    for &opt in &fig.sim_optima {
        assert!(opt >= ungated);
        assert!(fig.sim_complete_gating >= ungated);
    }
}
