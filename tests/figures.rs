//! Integration tests of the figure drivers: every figure of the paper is
//! regenerated (at reduced simulation sizes) and checked against the
//! paper's qualitative findings.

use pipedepth::experiments::figures::{fig1, fig3, fig4, fig5, fig6, fig7, fig8, fig9, headline};
use pipedepth::experiments::sweep::{sweep_all, RunConfig};
use pipedepth::workloads::{suite_class, WorkloadClass};

fn quick_config() -> RunConfig {
    RunConfig {
        warmup: 8_000,
        instructions: 16_000,
        depths: (2..=24).step_by(2).collect(),
        ..RunConfig::default()
    }
}

/// Three workloads per class: enough for distribution shape at test cost.
fn small_suite_curves() -> Vec<pipedepth::experiments::WorkloadCurve> {
    let cfg = quick_config();
    let ws: Vec<_> = WorkloadClass::ALL
        .iter()
        .flat_map(|&c| suite_class(c).into_iter().take(3))
        .collect();
    sweep_all(&ws, &cfg)
}

#[test]
fn fig1_reproduces_root_structure() {
    let f = fig1::run();
    assert_eq!(f.roots.len(), 4, "four real zero crossings");
    assert_eq!(f.roots.iter().filter(|&&r| r > 0.0).count(), 1);
    assert!((f.root_6a + 56.0).abs() < 1e-9);
    assert!(f.root_6b > -2.0 && f.root_6b < 0.0);
}

#[test]
fn fig3_reproduces_latch_exponent() {
    let f = fig3::run();
    assert!(
        (f.fit.exponent - 1.1).abs() < 0.08,
        "exponent {}",
        f.fit.exponent
    );
    assert_eq!(f.unit_growth, 1.3);
}

#[test]
fn fig4_gated_above_ungated_and_theory_fits() {
    let f = fig4::run(&quick_config());
    assert_eq!(f.panels.len(), 3);
    for p in &f.panels {
        for (g, u) in p.sim_gated.iter().zip(&p.sim_ungated) {
            assert!(g > u, "{}", p.workload.name);
        }
    }
    // Integer-class panels fit well; FP is the hardest in the paper too.
    assert!(f.panels[0].r2_gated > 0.5);
    assert!(f.panels[1].r2_gated > 0.5);
}

#[test]
fn fig5_metric_ordering() {
    let f = fig5::run(&quick_config());
    let p = |label: &str| f.series_named(label).unwrap().peak_depth;
    assert!(p("BIPS/W") <= p("BIPS^2/W"));
    assert!(p("BIPS^2/W") <= p("BIPS^3/W"));
    assert!(p("BIPS^3/W") < p("BIPS"));
    assert!(f.series_named("BIPS^3/W").unwrap().interior);
}

#[test]
fn fig6_distribution_centred_in_paper_band() {
    let curves = small_suite_curves();
    let f = fig6::from_curves(&curves);
    // The paper's distribution is centred around 8 stages; at reduced sizes
    // allow 5–12.
    assert!(
        f.summary.mean > 5.0 && f.summary.mean < 12.0,
        "mean optimum {}",
        f.summary.mean
    );
    assert_eq!(f.histogram.total() as usize, curves.len());
}

#[test]
fn fig7_class_contrasts() {
    let curves = small_suite_curves();
    let f = fig7::from_curves(&curves);
    let fp = f.class(WorkloadClass::FloatingPoint).summary.mean;
    let spec = f.class(WorkloadClass::SpecInt).summary.mean;
    let modern = f.class(WorkloadClass::Modern).summary.mean;
    assert!(fp > spec, "fp {fp} vs specint {spec}");
    assert!(fp > modern, "fp {fp} vs modern {modern}");
}

#[test]
fn fig8_and_fig9_trends() {
    let cfg = quick_config();
    let w = suite_class(WorkloadClass::SpecInt)
        .into_iter()
        .next()
        .unwrap();
    let curve = pipedepth::experiments::sweep_workload(&w, &cfg);

    let f8 = fig8::run_with_params(&curve.extracted, &cfg);
    let depths8: Vec<f64> = f8.optima.iter().map(|o| o.unwrap_or(1.0)).collect();
    for w in depths8.windows(2) {
        assert!(
            w[1] >= w[0],
            "leakage must not shrink the optimum: {depths8:?}"
        );
    }

    let f9 = fig9::run_with_params(&curve.extracted, &cfg);
    let depths9: Vec<f64> = f9.optima.iter().map(|o| o.unwrap_or(1.0)).collect();
    for w in depths9.windows(2) {
        assert!(w[1] <= w[0], "β must not deepen the optimum: {depths9:?}");
    }
}

#[test]
fn headline_shape_holds() {
    let cfg = quick_config();
    let curves = small_suite_curves();
    let h = headline::from_curves(&curves, &cfg);
    // Power shortens the pipeline by a factor in the paper's ballpark
    // (22/8 ≈ 2.75; accept 1.5–5 at reduced sizes).
    let factor = h.shortening_factor();
    assert!(factor > 1.5 && factor < 5.0, "shortening factor {factor}");
    assert_eq!(h.m1_unpipelined, h.workloads, "BIPS/W never pipelines");
    // The FO4 design point is in the paper's regime.
    let fo4 = headline::Headline::fo4(h.m3_cubic_mean);
    assert!(fo4 > 12.0 && fo4 < 35.0, "FO4/stage {fo4}");
}
