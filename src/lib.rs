//! `pipedepth` — a reproduction of A. Hartstein and T. R. Puzak, *Optimum
//! Power/Performance Pipeline Depth*, MICRO-36, 2003.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`model`] ([`pipedepth_core`]) — the analytic power/performance
//!   pipeline-depth theory (the paper's contribution);
//! * [`math`] ([`pipedepth_math`]) — polynomials, root finding, fitting;
//! * [`trace`] ([`pipedepth_trace`]) — the synthetic instruction-trace
//!   substrate;
//! * [`sim`] ([`pipedepth_sim`]) — the cycle-accurate configurable-depth
//!   pipeline simulator;
//! * [`power`] ([`pipedepth_power`]) — the latch-based power model;
//! * [`workloads`] ([`pipedepth_workloads`]) — the 55-workload suite;
//! * [`experiments`] ([`pipedepth_experiments`]) — per-figure drivers;
//! * [`telemetry`] ([`pipedepth_telemetry`]) — metrics for the sim/runner
//!   stack (compiled out without the `telemetry` feature).
//!
//! The blessed types of each layer are additionally re-exported at the
//! crate root — `pipedepth::{Engine, SimConfig, TraceGenerator, Runner,
//! …}` — so examples, doctests and the README share one import path; the
//! module re-exports remain for everything deeper.
//!
//! # Quickstart
//!
//! Find the optimum pipeline depth for the paper's BIPS³/W metric:
//!
//! ```
//! use pipedepth::model::report;
//! use pipedepth::{
//!     ClockGating, MetricExponent, PipelineModel, PowerParams, TechParams,
//!     WorkloadParams,
//! };
//!
//! let model = PipelineModel::new(
//!     TechParams::paper(),
//!     WorkloadParams::typical(),
//!     PowerParams::paper().with_gating(ClockGating::complete()),
//! );
//! let r = report(&model, MetricExponent::BIPS3_PER_WATT);
//! let depth = r.numeric.depth().expect("pipelined optimum exists");
//! assert!(depth > 1.0 && depth < r.perf_only);
//! ```
//!
//! Or run the simulator directly (see `examples/` for richer scenarios),
//! configuring the machine through the fallible builder:
//!
//! ```
//! use pipedepth::{ConfigError, Engine, TraceGenerator, SimConfig, WorkloadModel};
//!
//! let config = SimConfig::builder().depth(8).build()?;
//! let mut engine = Engine::try_new(config)?;
//! let mut gen = TraceGenerator::new(WorkloadModel::spec_int_like(), 1);
//! let report = engine.run(&mut gen, 5_000);
//! assert!(report.cpi() > 0.25);
//! # Ok::<(), ConfigError>(())
//! ```

/// The analytic pipeline-depth theory ([`pipedepth_core`]).
pub use pipedepth_core as model;
/// Per-figure experiment drivers and the cell runner
/// ([`pipedepth_experiments`]).
pub use pipedepth_experiments as experiments;
/// Polynomials, root finding, fitting and statistics ([`pipedepth_math`]).
pub use pipedepth_math as math;
/// The latch-based power model ([`pipedepth_power`]).
pub use pipedepth_power as power;
/// The cycle-accurate configurable-depth simulator ([`pipedepth_sim`]).
pub use pipedepth_sim as sim;
/// Metrics for the simulation stack ([`pipedepth_telemetry`]).
pub use pipedepth_telemetry as telemetry;
/// The synthetic instruction-trace substrate ([`pipedepth_trace`]).
pub use pipedepth_trace as trace;
/// The 55-workload suite ([`pipedepth_workloads`]).
pub use pipedepth_workloads as workloads;

/// The theory's inputs and model: technology, workload and power
/// parameters, clock gating, and the metric family `BIPS^m/W`.
pub use pipedepth_core::{
    ClockGating, MetricExponent, PipelineModel, PowerParams, TechParams, WorkloadParams,
};
/// The experiment registry and harness: declarative figure specs, the
/// run-wide configuration, the cell runner, and the output manifest.
pub use pipedepth_experiments::{registry, Experiment, Manifest, RunConfig, Runner};
/// The simulator surface: fallible machine configuration and the engine
/// that turns traces into timing reports.
pub use pipedepth_sim::{ConfigError, Engine, SimConfig, SimConfigBuilder, SimReport};
/// The metrics handle and its point-in-time snapshot.
pub use pipedepth_telemetry::{Snapshot, Telemetry};
/// Deterministic trace generation from statistical workload models.
pub use pipedepth_trace::{TraceGenerator, WorkloadModel};
/// The paper's workload suite and its class representatives.
pub use pipedepth_workloads::{representatives, suite, Workload};
