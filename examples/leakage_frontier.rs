//! Leakage frontier: where should a design land as technology leakage
//! grows? Combines simulation (one workload, all depths) with the analytic
//! theory (leakage sweep per depth), reproducing the paper's Fig. 8 logic
//! end to end and printing the optimum-depth frontier.
//!
//! ```text
//! cargo run --release --example leakage_frontier
//! ```

use pipedepth::experiments::figures::fig8;
use pipedepth::experiments::sweep::sweep_workload;
use pipedepth::workloads::{suite_class, WorkloadClass};
use pipedepth::RunConfig;

fn main() {
    let config = RunConfig {
        warmup: 20_000,
        instructions: 40_000,
        depths: (2..=25).collect(),
        ..RunConfig::default()
    };
    let workload = suite_class(WorkloadClass::SpecInt)
        .into_iter()
        .next()
        .expect("SPECint class populated");
    println!("extracting theory parameters from {} …", workload.name);
    let curve = sweep_workload(&workload, &config);
    let x = &curve.extracted;
    println!(
        "  α = {:.2}, γ = {:.2}, N_H/N_I = {:.3}, κ = {:.3}\n",
        x.alpha, x.gamma, x.hazard_rate, x.kappa
    );

    let fig = fig8::run_with_params(x, &config);
    println!("optimum pipeline depth vs leakage fraction (BIPS³/W, gated):\n");
    println!("{:>8} | {:>8} | {:>10}", "leakage", "stages", "FO4/stage");
    println!("{}", "-".repeat(34));
    for (frac, opt) in fig.fractions.iter().zip(&fig.optima) {
        match opt {
            Some(d) => println!(
                "{:>7.0}% | {d:>8.2} | {:>10.1}",
                frac * 100.0,
                2.5 + 140.0 / d
            ),
            None => println!("{:>7.0}% | {:>8} | {:>10}", frac * 100.0, "none", "-"),
        }
    }
    println!("\nThe paper's Fig. 8 finding, reproduced: leakage favours deeper");
    println!("pipelines, because dynamic power (which grows with both clock and");
    println!("latch count) is what punishes depth.");
}
