//! Power-budget design: the paper's *other* strategy.
//!
//! The paper's introduction contrasts optimising a BIPS^m/W metric (its
//! subject) with "design for the best possible performance, subject to the
//! constraint that the power be just below some maximum value". This
//! example walks the second strategy across a range of budgets and shows
//! where the two strategies coincide.
//!
//! ```text
//! cargo run --release --example power_budget
//! ```

use pipedepth::model::{numeric_optimum, power_capped_design, BudgetedDesign};
use pipedepth::{
    ClockGating, MetricExponent, PipelineModel, PowerParams, TechParams, WorkloadParams,
};

fn main() {
    let model = PipelineModel::new(
        TechParams::paper(),
        WorkloadParams::typical(),
        PowerParams::paper().with_gating(ClockGating::complete()),
    );
    let perf_opt = model.perf().optimum_depth();
    let unconstrained_power = model.power().total_power(perf_opt);
    println!(
        "performance-only optimum: {perf_opt:.1} stages, drawing {unconstrained_power:.2} power units\n"
    );

    println!(
        "{:>10} | {:>9} | {:>10} | {:>10}",
        "budget", "depth", "BIPS", "power used"
    );
    println!("{}", "-".repeat(50));
    for frac in [1.2, 1.0, 0.8, 0.6, 0.4, 0.2, 0.1] {
        let budget = unconstrained_power * frac;
        match power_capped_design(&model, budget) {
            BudgetedDesign::Unconstrained(p) => println!(
                "{:>9.0}% | {:>9.2} | {:>10.5} | {:>10.2}  (unconstrained)",
                frac * 100.0,
                p.depth,
                p.throughput,
                p.power
            ),
            BudgetedDesign::Feasible(p) => println!(
                "{:>9.0}% | {:>9.2} | {:>10.5} | {:>10.2}",
                frac * 100.0,
                p.depth,
                p.throughput,
                p.power
            ),
            BudgetedDesign::Infeasible { minimum_power } => println!(
                "{:>9.0}% | {:>9} | {:>10} | min power {minimum_power:.2}",
                frac * 100.0,
                "-",
                "infeasible"
            ),
        }
    }

    // Where does the BIPS³/W optimum sit on this frontier?
    let m3 = numeric_optimum(&model, MetricExponent::BIPS3_PER_WATT)
        .depth()
        .expect("BIPS³/W optimum exists");
    let m3_power = model.power().total_power(m3);
    println!(
        "\nthe BIPS³/W optimum ({m3:.1} stages) corresponds to a budget of {:.0}% —",
        m3_power / unconstrained_power * 100.0
    );
    println!("the metric picks a point on the same frontier the budget strategy walks.");
}
