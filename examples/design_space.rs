//! Design-space exploration with the analytic theory alone — the use case
//! the paper advocates: "predict the correct design point when new
//! technologies, new workloads, or just changed microarchitectures are
//! involved … without the need for detailed simulations".
//!
//! Sweeps the metric exponent m, the leakage fraction, the latch-growth
//! exponent β, and the technology's logic depth, printing the optimum for
//! each point.
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use pipedepth::model::{
    exponent_beta_grid, latch_growth_sweep, leakage_sweep, metric_exponent_sweep, SweepConfig,
};
use pipedepth::{
    ClockGating, MetricExponent, PipelineModel, PowerParams, TechParams, WorkloadParams,
};

fn show(points: &[pipedepth::model::SweepPoint], label: &str, unit: &str) {
    println!("{label}");
    for p in points {
        match p.optimum.depth() {
            Some(d) => println!(
                "  {}{unit:<4} → {d:>5.2} stages ({:>5.1} FO4)",
                p.parameter,
                2.5 + 140.0 / d
            ),
            None => println!("  {}{unit:<4} → unpipelined", p.parameter),
        }
    }
    println!();
}

fn main() {
    let gated = SweepConfig {
        power: PowerParams::paper().with_gating(ClockGating::complete()),
        ..SweepConfig::default()
    };

    show(
        &metric_exponent_sweep(&gated, &[1.5, 2.0, 2.5, 3.0, 4.0, 6.0, 10.0]),
        "Optimum vs metric exponent m (BIPS^m/W, gated):",
        "",
    );
    show(
        &leakage_sweep(&gated, &[0.0, 0.15, 0.3, 0.5, 0.7, 0.9]),
        "Optimum vs leakage fraction (Fig. 8):",
        "",
    );
    show(
        &latch_growth_sweep(&gated, &[1.0, 1.1, 1.3, 1.5, 1.8, 2.2]),
        "Optimum vs latch-growth exponent β (Fig. 9):",
        "",
    );

    // The joint (m, β) landscape: the two exponents the paper's Summary
    // calls the most impactful.
    let ms = [2.5, 3.0, 4.0, 6.0];
    let betas = [1.0, 1.1, 1.3, 1.5, 1.8];
    let grid = exponent_beta_grid(&gated, &ms, &betas);
    println!("Optimum depth over the (m, β) plane (gated):");
    print!("  {:>6}", "m\\β");
    for b in &betas {
        print!(" {b:>6}");
    }
    println!();
    for (i, m) in ms.iter().enumerate() {
        print!("  {m:>6}");
        for j in 0..betas.len() {
            match grid.at(i, j) {
                Some(d) => print!(" {d:>6.1}"),
                None => print!(" {:>6}", "-"),
            }
        }
        println!();
    }
    println!();

    // A future-technology scenario: leaner latch overhead.
    println!("Optimum vs latch overhead t_o (m = 3, gated):");
    for t_o in [1.0, 1.5, 2.5, 4.0, 6.0] {
        let tech = TechParams::new(140.0, t_o);
        let model = PipelineModel::new(
            tech,
            WorkloadParams::typical(),
            PowerParams::paper().with_gating(ClockGating::complete()),
        );
        let opt = pipedepth::model::numeric_optimum(&model, MetricExponent::BIPS3_PER_WATT);
        match opt.depth() {
            Some(d) => println!("  t_o = {t_o:>3} FO4 → {d:>5.2} stages"),
            None => println!("  t_o = {t_o:>3} FO4 → unpipelined"),
        }
    }
}
