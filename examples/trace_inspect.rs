//! Trace tooling: generate a synthetic trace, inspect its statistics,
//! round-trip it through the binary codec, and replay it against two
//! pipeline depths.
//!
//! ```text
//! cargo run --release --example trace_inspect
//! ```

use pipedepth::trace::codec::{decode, encode};
use pipedepth::trace::isa::OpClass;
use pipedepth::trace::TraceStats;
use pipedepth::{Engine, SimConfig, TraceGenerator, WorkloadModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = WorkloadModel::modern_like();
    let mut gen = TraceGenerator::new(model, 2026);
    let trace = gen.take_vec(50_000);

    // ---- Statistics ------------------------------------------------------
    let stats = TraceStats::of(&trace);
    println!(
        "generated {} instructions (modern C++/Java model)",
        stats.instructions
    );
    println!("instruction mix:");
    for class in OpClass::ALL {
        let frac = stats.class_fraction(class);
        if frac > 0.0 {
            println!("  {class:<8} {:>5.1}%", frac * 100.0);
        }
    }
    println!(
        "branch taken rate     : {:>5.1}%",
        stats.taken_rate() * 100.0
    );
    println!(
        "mean dep distance     : {:>5.2} instructions",
        stats.mean_dep_distance()
    );
    println!("distinct cache lines  : {}", stats.distinct_lines);

    // ---- Codec round trip --------------------------------------------------
    let mut buf = Vec::new();
    encode(&trace, &mut buf)?;
    println!(
        "\nencoded to {} bytes ({:.1} bytes/instruction)",
        buf.len(),
        buf.len() as f64 / trace.len() as f64
    );
    let back = decode(&buf[..])?;
    assert_eq!(back, trace, "codec round trip is lossless");
    println!("decode round trip OK");

    // ---- Replay against two machines ---------------------------------------
    println!("\nreplaying the same trace at two depths:");
    for depth in [6u32, 18] {
        let mut engine = Engine::new(SimConfig::paper(depth));
        let mut stream = back.iter().copied();
        let report = engine.run(&mut stream, back.len() as u64);
        println!(
            "  depth {depth:>2}: CPI {:.2}, {:>6.1} FO4/instr, mispredict {:>4.1}%, L1 miss {:>4.1}%",
            report.cpi(),
            report.time_per_instruction_fo4(),
            report.mispredict_rate() * 100.0,
            report.l1_miss_rate * 100.0,
        );
    }
    Ok(())
}
