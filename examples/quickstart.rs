//! Quickstart: the paper's central question answered in a few lines.
//!
//! How deep should the pipeline be when the design is optimised for
//! BIPS³/W instead of raw performance?
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pipedepth::model::report;
use pipedepth::{
    ClockGating, MetricExponent, PipelineModel, PowerParams, TechParams, WorkloadParams,
};

fn main() {
    let tech = TechParams::paper(); // t_p = 140 FO4, t_o = 2.5 FO4
    let workload = WorkloadParams::typical();
    println!(
        "technology: t_p = {}, t_o = {}",
        tech.logic_depth, tech.latch_overhead
    );
    println!(
        "workload:   α = {}, γ = {}, N_H/N_I = {}\n",
        workload.alpha, workload.gamma, workload.hazard_rate
    );

    println!(
        "{:<22} {:>10} {:>12} {:>12}",
        "configuration", "metric", "opt depth", "FO4/stage"
    );
    for (name, gating) in [
        ("no clock gating", ClockGating::None),
        ("complete clock gating", ClockGating::complete()),
    ] {
        for m in [
            MetricExponent::BIPS_PER_WATT,
            MetricExponent::BIPS2_PER_WATT,
            MetricExponent::BIPS3_PER_WATT,
        ] {
            let model =
                PipelineModel::new(tech, workload, PowerParams::paper().with_gating(gating));
            let r = report(&model, m);
            match r.numeric.depth() {
                Some(d) => println!("{name:<22} {m:>10} {d:>12.2} {:>12.1}", tech.cycle_time(d)),
                None => println!("{name:<22} {m:>10} {:>12} {:>12}", "unpipelined", "-"),
            }
        }
    }

    let model = PipelineModel::new(tech, workload, PowerParams::paper());
    let r = report(&model, MetricExponent::BIPS3_PER_WATT);
    println!(
        "\nperformance-only optimum (Eq. 2): {:.1} stages ({:.1} FO4/stage)",
        r.perf_only,
        tech.cycle_time(r.perf_only)
    );
    println!(
        "closed-form Eq. 7 approximation : {:?} stages",
        r.closed_form
    );
    println!("\nThe paper's finding: accounting for power cuts the optimum");
    println!("pipeline depth by roughly a factor of three.");
}
