//! Workload study: sweep one workload of each class through the simulator
//! and compare the optimum depths by metric — a miniature of the paper's
//! Figs. 5–7.
//!
//! ```text
//! cargo run --release --example workload_study
//! ```

use pipedepth::experiments::sweep::sweep_all;
use pipedepth::math::fit::cubic_peak_fit;
use pipedepth::{representatives, RunConfig};

fn main() {
    let config = RunConfig {
        warmup: 20_000,
        instructions: 40_000,
        depths: (2..=25).collect(),
        ..RunConfig::default()
    };
    let reps = representatives();
    println!(
        "sweeping {} representative workloads over depths 2–25 …\n",
        reps.len()
    );
    let curves = sweep_all(&reps, &config);

    println!(
        "{:<12} {:<20} {:>10} {:>10} {:>12} {:>12}",
        "workload", "class", "BIPS opt", "m=3 grid", "m=3 cubic", "FO4/stage"
    );
    for curve in &curves {
        let xs = curve.depths();
        let bips_fit = cubic_peak_fit(&xs, &curve.throughput_series()).expect("cubic fit");
        let m3_fit = cubic_peak_fit(&xs, &curve.gated_series(3)).expect("cubic fit");
        println!(
            "{:<12} {:<20} {:>10.1} {:>10} {:>12.1} {:>12.1}",
            curve.workload.name,
            curve.workload.class.to_string(),
            bips_fit.peak_x,
            curve.best_gated_m3_depth(),
            m3_fit.peak_x,
            2.5 + 140.0 / m3_fit.peak_x
        );
    }

    println!(
        "\nextracted theory parameters (single run at depth {}):",
        config.ref_depth
    );
    println!(
        "{:<12} {:>6} {:>6} {:>8} {:>8} {:>10}",
        "workload", "α", "γ", "N_H/N_I", "κ", "t_mem FO4"
    );
    for curve in &curves {
        let x = &curve.extracted;
        println!(
            "{:<12} {:>6.2} {:>6.2} {:>8.3} {:>8.3} {:>10.1}",
            curve.workload.name, x.alpha, x.gamma, x.hazard_rate, x.kappa, x.memory_time_fo4
        );
    }
}
