//! Offline stand-in for the `criterion` crate.
//!
//! The build environment cannot reach crates.io, so this crate supplies
//! the subset of criterion's API the bench harness uses — `Criterion`,
//! `BenchmarkGroup`, `Bencher::iter`, `BenchmarkId`, `Throughput`, and
//! the `criterion_group!` / `criterion_main!` macros — backed by a plain
//! wall-clock timing loop instead of criterion's statistical machinery.
//! Reported numbers are mean wall time per iteration; there is no
//! outlier analysis, no HTML report, and no saved baselines.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Upper bound on wall time spent measuring one benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(200);
/// Upper bound on timed iterations per benchmark.
const MAX_ITERS: u64 = 200;

/// Top-level benchmark driver (stand-in for criterion's `Criterion`).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Accepted for API compatibility; the stand-in's timing loop is
    /// budget-bound rather than sample-count-bound.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Times `f` and prints the mean wall time per iteration.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, None, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A named set of benchmarks sharing throughput/config settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility (see [`Criterion::sample_size`]).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Per-iteration work, used to report a rate alongside the time.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Times `f` under `<group>/<id>`.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.throughput, &mut f);
        self
    }

    /// Times `f` with `input` under `<group>/<id>`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.throughput, &mut |b| f(b, input));
        self
    }

    /// Ends the group (the stand-in reports per-bench, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// Identifies one parameterised benchmark within a group.
pub struct BenchmarkId {
    function: Option<String>,
    parameter: String,
}

impl BenchmarkId {
    /// `<function>/<parameter>`.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: Some(function.to_string()),
            parameter: parameter.to_string(),
        }
    }

    /// Parameter-only id, for groups benchmarking one function.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: None,
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.function {
            Some(name) => write!(f, "{}/{}", name, self.parameter),
            None => write!(f, "{}", self.parameter),
        }
    }
}

/// Work performed per iteration, for rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Logical items processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to benchmark closures; [`iter`](Bencher::iter) runs the timed loop.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Calls `f` repeatedly (one untimed warm-up, then a budget-bound
    /// timed loop) and records the total.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        black_box(f());
        let start = Instant::now();
        let mut n = 0u64;
        loop {
            black_box(f());
            n += 1;
            if n >= MAX_ITERS || start.elapsed() >= MEASURE_BUDGET {
                break;
            }
        }
        self.elapsed = start.elapsed();
        self.iterations = n;
    }
}

fn run_one(label: &str, throughput: Option<Throughput>, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iterations: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    if b.iterations == 0 {
        println!("{label:<40} (no iterations recorded)");
        return;
    }
    let per_iter = b.elapsed / u32::try_from(b.iterations).unwrap_or(u32::MAX);
    let rate = throughput.map(|t| {
        let per_sec = |units: u64| units as f64 * b.iterations as f64 / b.elapsed.as_secs_f64();
        match t {
            Throughput::Elements(n) => format!("{:.3e} elem/s", per_sec(n)),
            Throughput::Bytes(n) => format!("{:.3e} B/s", per_sec(n)),
        }
    });
    match rate {
        Some(rate) => println!(
            "{label:<40} {per_iter:>12?}/iter  {rate:>16}  ({} iters)",
            b.iterations
        ),
        None => println!("{label:<40} {per_iter:>12?}/iter  ({} iters)", b.iterations),
    }
}

/// Bundles benchmark functions into one named runner, in both the simple
/// and the `name/config/targets` forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
