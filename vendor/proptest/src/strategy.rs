//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// `generate` returns `None` when the drawn value was rejected (by a
/// filter); the test runner retries with fresh randomness. Generic
/// combinators carry `where Self: Sized` so the trait stays object-safe
/// and [`BoxedStrategy`] works.
pub trait Strategy {
    /// The type this strategy produces.
    type Value;

    /// Draws one value, or `None` if this draw was filtered out.
    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Rejects values for which `keep` is false. `reason` is carried for
    /// diagnostics only.
    fn prop_filter<F>(self, reason: &'static str, keep: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            keep,
            reason,
        }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        (**self).generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.generate(rng).map(&self.f)
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    keep: F,
    #[allow(dead_code)]
    reason: &'static str,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.inner.generate(rng).filter(|v| (self.keep)(v))
    }
}

/// Uniform choice between boxed alternatives (`prop_oneof!`).
pub struct OneOf<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// Builds a choice over the given alternatives.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! requires at least one arm");
        OneOf { arms }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        let i = rng.as_rng().gen_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

/// A strategy defined by a closure over the RNG (`prop_compose!`).
pub struct FnStrategy<F>(F);

impl<F> FnStrategy<F> {
    /// Wraps a draw function.
    pub fn new(f: F) -> Self {
        FnStrategy(f)
    }
}

impl<T, F> Strategy for FnStrategy<F>
where
    F: Fn(&mut TestRng) -> Option<T>,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        (self.0)(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                Some(rng.as_rng().gen_range(self.clone()))
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                Some(rng.as_rng().gen_range(self.clone()))
            }
        }
    )*};
}

range_strategy!(f64, u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($($s:ident $v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                let ($($v,)+) = self;
                Some(($($v.generate(rng)?,)+))
            }
        }
    };
}

tuple_strategy!(A a, B b);
tuple_strategy!(A a, B b, C c);
tuple_strategy!(A a, B b, C c, D d);
tuple_strategy!(A a, B b, C c, D d, E e);
tuple_strategy!(A a, B b, C c, D d, E e, F f);
tuple_strategy!(A a, B b, C c, D d, E e, F f, G g);
tuple_strategy!(A a, B b, C c, D d, E e, F f, G g, H h);
tuple_strategy!(A a, B b, C c, D d, E e, F f, G g, H h, I i);
tuple_strategy!(A a, B b, C c, D d, E e, F f, G g, H h, I i, J j);
