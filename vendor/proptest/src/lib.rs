//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this crate implements
//! the subset of proptest the workspace's property tests use: strategy
//! combinators (`prop_map`, `prop_filter`, tuples, ranges, `Just`, `any`,
//! `prop::collection::vec`, `prop::option::of`, `prop::sample::select`),
//! the `proptest!` / `prop_compose!` / `prop_oneof!` macros, and the
//! `prop_assert*` family.
//!
//! Differences from upstream are intentional simplifications: no input
//! shrinking (a failing case reports the assertion message only), and a
//! fixed deterministic RNG stream per test derived from the test's module
//! path, so failures reproduce exactly across runs.

pub mod strategy;
pub mod test_runner;

pub mod arbitrary {
    //! `any::<T>()` support for primitive types.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.as_rng().gen()
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Uniform over a wide symmetric range; upstream's exotic-float
            // generation is not needed by the workspace tests.
            rng.as_rng().gen_range(-1.0e9f64..1.0e9)
        }
    }

    macro_rules! arbitrary_by_cast {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                #[allow(clippy::unnecessary_cast)]
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_word() as $t
                }
            }
        )*};
    }

    arbitrary_by_cast!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> Option<T> {
            Some(T::arbitrary(rng))
        }
    }

    /// A strategy producing any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod prop {
    //! The `prop::` namespace (`collection`, `option`, `sample`).

    pub mod collection {
        //! Collection strategies (subset: [`vec()`]).

        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use rand::Rng;
        use std::ops::{Range, RangeInclusive};

        /// Inclusive size bounds for generated collections.
        pub struct SizeRange {
            min: usize,
            max: usize,
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    min: r.start,
                    max: r.end - 1,
                }
            }
        }

        impl From<RangeInclusive<usize>> for SizeRange {
            fn from(r: RangeInclusive<usize>) -> Self {
                SizeRange {
                    min: *r.start(),
                    max: *r.end(),
                }
            }
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { min: n, max: n }
            }
        }

        /// Strategy returned by [`vec()`].
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
                let len = rng.as_rng().gen_range(self.size.min..=self.size.max);
                let mut out = Vec::with_capacity(len);
                for _ in 0..len {
                    out.push(self.element.generate(rng)?);
                }
                Some(out)
            }
        }

        /// A `Vec` of values from `element`, with length drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }
    }

    pub mod option {
        //! Option strategies (subset: [`of`]).

        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use rand::Rng;

        /// Strategy returned by [`of`].
        pub struct OptionStrategy<S>(S);

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Option<Option<S::Value>> {
                if rng.as_rng().gen_bool(0.5) {
                    Some(Some(self.0.generate(rng)?))
                } else {
                    Some(None)
                }
            }
        }

        /// `Some` of the inner strategy half the time, `None` otherwise.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy(inner)
        }
    }

    pub mod sample {
        //! Sampling strategies (subset: [`select`]).

        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use rand::Rng;

        /// Strategy returned by [`select`].
        pub struct Select<T>(Vec<T>);

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;

            fn generate(&self, rng: &mut TestRng) -> Option<T> {
                let i = rng.as_rng().gen_range(0..self.0.len());
                Some(self.0[i].clone())
            }
        }

        /// Picks uniformly from the given values.
        pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
            assert!(!items.is_empty(), "select requires at least one item");
            Select(items)
        }
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_compose, prop_oneof, proptest};
}

/// Declares property tests. Two forms, matching upstream:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn holds(x in 0u32..10) { prop_assert!(x < 10); }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!(
            @cfg ($crate::test_runner::ProptestConfig::default())
            $($rest)*
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = config.cases.saturating_mul(20).max(200);
            while accepted < config.cases {
                attempts += 1;
                assert!(
                    attempts <= max_attempts,
                    "{}: too many rejected inputs ({} accepted of {} wanted)",
                    stringify!($name),
                    accepted,
                    config.cases,
                );
                $(
                    let $arg = match $crate::strategy::Strategy::generate(&($strat), &mut rng) {
                        ::core::option::Option::Some(v) => v,
                        ::core::option::Option::None => continue,
                    };
                )+
                let outcome = (|| -> ::core::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > {
                    $body
                    ::core::result::Result::Ok(())
                })();
                match outcome {
                    ::core::result::Result::Ok(()) => accepted += 1,
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(_),
                    ) => continue,
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(msg),
                    ) => panic!(
                        "property {} failed on case {} of {}: {}",
                        stringify!($name),
                        accepted + 1,
                        config.cases,
                        msg,
                    ),
                }
            }
        }
        $crate::__proptest_tests!(@cfg ($cfg) $($rest)*);
    };
}

/// Fails the current case with an optional formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($arg:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!(
                    "assertion failed: {}: {}",
                    stringify!($cond),
                    format!($($arg)+),
                ),
            ));
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                        format!(
                            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                            stringify!($left),
                            stringify!($right),
                            l,
                            r,
                        ),
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($arg:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                        format!(
                            "assertion failed: `{} == {}` ({:?} vs {:?}): {}",
                            stringify!($left),
                            stringify!($right),
                            l,
                            r,
                            format!($($arg)+),
                        ),
                    ));
                }
            }
        }
    };
}

/// Discards the current case (counts as a rejection, not a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Composes named sub-strategies into a derived strategy function.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident ( $($outer:tt)* ) (
            $($arg:ident in $strat:expr),+ $(,)?
        ) -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($outer)*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::FnStrategy::new(
                move |rng: &mut $crate::test_runner::TestRng| {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), rng)?;
                    )+
                    ::core::option::Option::Some($body)
                },
            )
        }
    };
}

/// Picks uniformly between heterogeneous strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}
