//! Test execution support: configuration, RNG, and case outcomes.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-`proptest!` block configuration.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Number of accepted cases each test must pass.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` accepted inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 64 }
    }
}

/// Upstream's prelude name for [`Config`].
pub type ProptestConfig = Config;

/// Outcome of one generated case.
#[derive(Debug)]
pub enum TestCaseError {
    /// The input was discarded (`prop_assume!` / filter); try another.
    Reject(String),
    /// An assertion failed; the test fails with this message.
    Fail(String),
}

/// The deterministic RNG driving strategy generation.
///
/// Seeded from a hash of the test's module path and name, so every run
/// of a given test sees the identical input sequence — failures are
/// reproducible without persisted seeds.
pub struct TestRng(StdRng);

impl TestRng {
    /// An RNG whose stream is a pure function of `name`.
    pub fn deterministic(name: &str) -> Self {
        let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(StdRng::seed_from_u64(hash))
    }

    /// The underlying generator, for `rand::Rng` sampling methods.
    pub fn as_rng(&mut self) -> &mut StdRng {
        &mut self.0
    }

    /// One raw 64-bit word.
    pub fn next_word(&mut self) -> u64 {
        use rand::RngCore;
        self.0.next_u64()
    }
}
