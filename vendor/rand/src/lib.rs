//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! provides the small, deterministic subset of the `rand 0.8` API the
//! workspace actually uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! and the [`Rng`] methods `gen`, `gen_bool` and `gen_range`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a different
//! stream than upstream `rand`'s ChaCha-based `StdRng`, but with the same
//! contract the workspace relies on: high statistical quality and full
//! determinism for a given seed. All checked-in experiment artifacts were
//! regenerated against this stream.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (subset: `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of a [`Standard`]-distributed type (`f64` in
    /// `[0, 1)`, uniform integers, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        unit_f64(self.next_u64()) < p
    }

    /// Samples uniformly from a range (`lo..hi` or `lo..=hi`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Maps a raw word to `f64` in `[0, 1)` with 53 bits of precision.
#[inline]
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform integer in `[0, n)` by 128-bit multiply-shift.
#[inline]
fn bounded(word: u64, n: u64) -> u64 {
    ((word as u128 * n as u128) >> 64) as u64
}

/// Types samplable by [`Rng::gen`] (the stand-in's `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range {:?}", self);
        let u = unit_f64(rng.next_u64());
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let u = rng.next_u64() as f64 / u64::MAX as f64;
        lo + u * (hi - lo)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[allow(clippy::unnecessary_cast)]
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range {:?}", self);
                let span = (self.end - self.start) as u64;
                self.start + bounded(rng.next_u64(), span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[allow(clippy::unnecessary_cast)]
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range {lo}..={hi}");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + bounded(rng.next_u64(), span + 1) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

pub mod rngs {
    //! Concrete generators (subset: [`StdRng`]).

    use super::{RngCore, SeedableRng};

    /// The stand-in's standard generator: xoshiro256++ seeded via
    /// SplitMix64. Deterministic, fast, and statistically strong enough
    /// for the workspace's synthetic-trace generation.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // A theoretically possible all-zero state would lock the
            // generator at zero; SplitMix64 cannot emit four zero words in
            // a row, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s2n = s2 ^ s0;
            let s3n = s3 ^ s1;
            let s1n = s1 ^ s2n;
            let s0n = s0 ^ s3n;
            s2n ^= t;
            self.s = [s0n, s1n, s2n, s3n.rotate_left(45)];
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>().to_bits(), b.gen::<f64>().to_bits());
        }
        let mut c = StdRng::seed_from_u64(43);
        let first: f64 = StdRng::seed_from_u64(42).gen();
        assert_ne!(first.to_bits(), c.gen::<f64>().to_bits());
    }

    #[test]
    fn unit_floats_in_range_and_spread() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn int_ranges_stay_in_bounds_and_cover() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.gen_range(0u64..10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values reachable: {seen:?}");
        for _ in 0..1_000 {
            let v = rng.gen_range(5u32..=7);
            assert!((5..=7).contains(&v));
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1_000 {
            let v = rng.gen_range(-0.25f64..0.25);
            assert!((-0.25..0.25).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn bad_probability_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.gen_bool(1.5);
    }
}
