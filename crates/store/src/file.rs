//! The on-disk namespace file: versioned header, checksummed records,
//! atomic publish, and a loader that degrades every failure to a cold
//! start.
//!
//! One namespace — one file (`<name>.pds` under the store directory) —
//! holds one snapshot of one record family (simulation reports,
//! annotations, evaluation outcomes). The layout, all little-endian:
//!
//! ```text
//! magic            4 bytes   "PDS\n"
//! format_version   u32       FORMAT_VERSION (this crate's framing)
//! namespace        str       must equal the requested namespace
//! schema_version   u32       consumer's record-codec version
//! code_version     str       consumer's code fingerprint
//! config_digest    u64       consumer's run-configuration digest
//! record_count     u64
//! records          count ×   [u32 payload len][payload][u64 FNV-1a(payload)]
//! file_checksum    u64       FNV-1a over every preceding byte
//! ```
//!
//! The header fields are the invalidation rules: a snapshot written by a
//! different codec, a different code version or a different run
//! configuration is *valid data for a different question*, so the loader
//! reports it as a cold start rather than risk a wrong answer. Publish is
//! atomic (temp file + rename in the same directory), so a crash
//! mid-flush leaves the previous complete snapshot in place.

use crate::codec::{ByteReader, ByteWriter};
use crate::fnv1a;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// File magic: `PDS` plus a newline byte so text-mode mangling is caught.
pub const MAGIC: [u8; 4] = *b"PDS\n";

/// Version of the framing implemented by this module. Bumped when the
/// header or record layout itself changes; consumer record codecs version
/// independently through [`NamespaceSpec::schema_version`].
pub const FORMAT_VERSION: u32 = 1;

/// Identity of one namespace: which file to read, and every header field
/// that must match for its records to be trusted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NamespaceSpec<'a> {
    /// Namespace (and file stem) — e.g. `sim_reports`.
    pub name: &'a str,
    /// The consumer's record-codec version; bump it whenever the record
    /// encoding changes meaning.
    pub schema_version: u32,
    /// The consumer's code fingerprint (typically its crate version):
    /// results computed by different code do not carry over.
    pub code_version: &'a str,
    /// Digest of the run configuration that produced the records.
    pub config_digest: u64,
}

impl NamespaceSpec<'_> {
    /// The namespace's file name under the store directory.
    pub fn file_name(&self) -> String {
        format!("{}.pds", self.name)
    }

    /// The namespace's path under `dir`.
    pub fn path(&self, dir: &Path) -> PathBuf {
        dir.join(self.file_name())
    }
}

/// Why a namespace load came back cold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvalidReason {
    /// No snapshot file exists (the ordinary first-run case).
    Missing,
    /// The file exists but could not be read.
    Io,
    /// The file ended before its framing did.
    Truncated,
    /// The magic bytes are wrong — not a store file.
    BadMagic,
    /// Written by a different framing version of this crate.
    FormatVersion,
    /// The header names a different namespace than requested.
    Namespace,
    /// Written under a different consumer record-codec version.
    SchemaVersion,
    /// Written by a different code version.
    CodeVersion,
    /// Written under a different run configuration.
    ConfigDigest,
    /// A record payload failed its checksum.
    RecordChecksum,
    /// The whole-file checksum failed (header or framing corruption).
    FileChecksum,
}

impl InvalidReason {
    /// A stable lower-snake label (manifest and log rendering).
    pub fn label(&self) -> &'static str {
        match self {
            InvalidReason::Missing => "missing",
            InvalidReason::Io => "io",
            InvalidReason::Truncated => "truncated",
            InvalidReason::BadMagic => "bad_magic",
            InvalidReason::FormatVersion => "format_version",
            InvalidReason::Namespace => "namespace",
            InvalidReason::SchemaVersion => "schema_version",
            InvalidReason::CodeVersion => "code_version",
            InvalidReason::ConfigDigest => "config_digest",
            InvalidReason::RecordChecksum => "record_checksum",
            InvalidReason::FileChecksum => "file_checksum",
        }
    }

    /// True for the ordinary cold start (no snapshot yet) as opposed to a
    /// rejected one; consumers count only rejections as `store.invalid`.
    pub fn is_missing(&self) -> bool {
        matches!(self, InvalidReason::Missing)
    }
}

impl fmt::Display for InvalidReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Result of loading a namespace: its record payloads, or a cold start.
#[derive(Debug)]
pub enum LoadOutcome {
    /// The snapshot matched every header rule and every checksum; these
    /// are its record payloads in publish order.
    Warm(Vec<Vec<u8>>),
    /// No usable snapshot; the reason says whether it was merely absent
    /// or actively rejected.
    Cold(InvalidReason),
}

impl LoadOutcome {
    /// The records of a warm load, or `None` for a cold start.
    pub fn records(self) -> Option<Vec<Vec<u8>>> {
        match self {
            LoadOutcome::Warm(records) => Some(records),
            LoadOutcome::Cold(_) => None,
        }
    }
}

/// Encodes one complete namespace file image for `records`.
fn encode_file(spec: &NamespaceSpec<'_>, records: &[Vec<u8>]) -> Vec<u8> {
    let payload: usize = records.iter().map(|r| r.len() + 12).sum();
    let mut w = ByteWriter::with_capacity(64 + spec.name.len() + payload);
    w.put_raw(&MAGIC)
        .put_u32(FORMAT_VERSION)
        .put_str(spec.name)
        .put_u32(spec.schema_version)
        .put_str(spec.code_version)
        .put_u64(spec.config_digest)
        .put_u64(records.len() as u64);
    for record in records {
        w.put_bytes(record).put_u64(fnv1a(record));
    }
    let checksum = fnv1a(w.as_bytes());
    w.put_u64(checksum);
    w.into_bytes()
}

/// Atomically publishes a namespace snapshot: the full image is written
/// to a temp file in the store directory, then renamed over the previous
/// snapshot. Readers never observe a partial file; a crash mid-write
/// leaves at worst an orphaned temp file and the previous snapshot
/// intact.
///
/// # Errors
///
/// Any filesystem error creating the directory, writing the temp file or
/// renaming it.
pub fn publish_records(
    dir: &Path,
    spec: &NamespaceSpec<'_>,
    records: &[Vec<u8>],
) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    let image = encode_file(spec, records);
    // The temp file lives in the destination directory so the rename
    // stays within one filesystem (atomic on POSIX).
    let tmp = dir.join(format!(".{}.tmp.{}", spec.name, std::process::id()));
    fs::write(&tmp, &image)?;
    match fs::rename(&tmp, spec.path(dir)) {
        Ok(()) => Ok(()),
        Err(e) => {
            // Best-effort cleanup; the publish itself already failed.
            let _ = fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// Parses a file image; any framing or header mismatch is an
/// [`InvalidReason`].
fn decode_file(spec: &NamespaceSpec<'_>, image: &[u8]) -> Result<Vec<Vec<u8>>, InvalidReason> {
    let mut r = ByteReader::new(image);
    if r.take_raw(MAGIC.len())
        .map_err(|_| InvalidReason::Truncated)?
        != MAGIC
    {
        return Err(InvalidReason::BadMagic);
    }
    if r.take_u32().map_err(|_| InvalidReason::Truncated)? != FORMAT_VERSION {
        return Err(InvalidReason::FormatVersion);
    }
    if r.take_str().map_err(|_| InvalidReason::Truncated)? != spec.name {
        return Err(InvalidReason::Namespace);
    }
    if r.take_u32().map_err(|_| InvalidReason::Truncated)? != spec.schema_version {
        return Err(InvalidReason::SchemaVersion);
    }
    if r.take_str().map_err(|_| InvalidReason::Truncated)? != spec.code_version {
        return Err(InvalidReason::CodeVersion);
    }
    if r.take_u64().map_err(|_| InvalidReason::Truncated)? != spec.config_digest {
        return Err(InvalidReason::ConfigDigest);
    }
    let count = r.take_u64().map_err(|_| InvalidReason::Truncated)?;
    // Each record needs at least its 12 framing bytes; a corrupt count
    // must not drive a huge preallocation.
    if count > (r.remaining() as u64) / 12 {
        return Err(InvalidReason::Truncated);
    }
    let mut records = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let payload = r.take_bytes().map_err(|_| InvalidReason::Truncated)?;
        let stored = r.take_u64().map_err(|_| InvalidReason::Truncated)?;
        if fnv1a(payload) != stored {
            return Err(InvalidReason::RecordChecksum);
        }
        records.push(payload.to_vec());
    }
    // The trailing whole-file checksum covers everything the record
    // checksums do not: the header fields and the framing itself.
    let body_len = image.len() - r.remaining();
    let stored = r.take_u64().map_err(|_| InvalidReason::Truncated)?;
    if fnv1a(&image[..body_len]) != stored {
        return Err(InvalidReason::FileChecksum);
    }
    if r.finish().is_err() {
        return Err(InvalidReason::FileChecksum);
    }
    Ok(records)
}

/// Loads a namespace snapshot, degrading every possible failure —
/// missing file, I/O error, truncation, corruption, any version or
/// configuration mismatch — to [`LoadOutcome::Cold`]. Never panics,
/// never returns records that fail a checksum or header rule.
pub fn load_records(dir: &Path, spec: &NamespaceSpec<'_>) -> LoadOutcome {
    let path = spec.path(dir);
    let image = match fs::read(&path) {
        Ok(image) => image,
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            return LoadOutcome::Cold(InvalidReason::Missing)
        }
        Err(_) => return LoadOutcome::Cold(InvalidReason::Io),
    };
    match decode_file(spec, &image) {
        Ok(records) => LoadOutcome::Warm(records),
        Err(reason) => LoadOutcome::Cold(reason),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("pipedepth-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn spec() -> NamespaceSpec<'static> {
        NamespaceSpec {
            name: "unit",
            schema_version: 3,
            code_version: "0.1.0-test",
            config_digest: 0xDEAD_BEEF_CAFE_F00D,
        }
    }

    fn sample_records() -> Vec<Vec<u8>> {
        vec![b"alpha".to_vec(), vec![], vec![0xFF; 300]]
    }

    fn reason(outcome: LoadOutcome) -> InvalidReason {
        match outcome {
            LoadOutcome::Cold(reason) => reason,
            LoadOutcome::Warm(_) => panic!("expected a cold start"),
        }
    }

    #[test]
    fn publish_then_load_round_trips() {
        let dir = temp_dir("roundtrip");
        publish_records(&dir, &spec(), &sample_records()).expect("publish");
        let records = load_records(&dir, &spec()).records().expect("warm");
        assert_eq!(records, sample_records());
        // Republish replaces the snapshot atomically.
        publish_records(&dir, &spec(), &[b"v2".to_vec()]).expect("publish");
        let records = load_records(&dir, &spec()).records().expect("warm");
        assert_eq!(records, vec![b"v2".to_vec()]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_is_an_ordinary_cold_start() {
        let dir = temp_dir("missing");
        let r = reason(load_records(&dir, &spec()));
        assert_eq!(r, InvalidReason::Missing);
        assert!(r.is_missing());
        assert_eq!(r.label(), "missing");
    }

    #[test]
    fn truncated_file_degrades_to_cold() {
        let dir = temp_dir("trunc");
        publish_records(&dir, &spec(), &sample_records()).expect("publish");
        let path = spec().path(&dir);
        let image = fs::read(&path).expect("read");
        for keep in [0, 3, 10, image.len() / 2, image.len() - 1] {
            fs::write(&path, &image[..keep]).expect("truncate");
            let r = reason(load_records(&dir, &spec()));
            assert!(
                !matches!(r, InvalidReason::Missing),
                "{keep} bytes must be rejected, not missing"
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flipped_record_fails_its_checksum() {
        let dir = temp_dir("bitflip");
        publish_records(&dir, &spec(), &sample_records()).expect("publish");
        let path = spec().path(&dir);
        let mut image = fs::read(&path).expect("read");
        // Flip one bit inside the first record's payload ("alpha"): the
        // payload starts right after the header and its length prefix.
        let header_len = image.len() - {
            let mut total = 8; // file checksum
            for r in sample_records() {
                total += 12 + r.len();
            }
            total
        };
        image[header_len + 4] ^= 0x01;
        fs::write(&path, &image).expect("corrupt");
        assert_eq!(
            reason(load_records(&dir, &spec())),
            InvalidReason::RecordChecksum
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn header_corruption_fails_the_file_checksum() {
        let dir = temp_dir("headerflip");
        publish_records(&dir, &spec(), &sample_records()).expect("publish");
        let path = spec().path(&dir);
        let mut image = fs::read(&path).expect("read");
        // Corrupt the record count (its low byte, right after the header
        // fields): the count is framing, not payload, so only the
        // whole-file checksum — or the framing walk — can catch it.
        let count_pos = 4 + 4 + (4 + spec().name.len()) + 4 + (4 + spec().code_version.len()) + 8;
        image[count_pos] = image[count_pos].wrapping_add(1);
        fs::write(&path, &image).expect("corrupt");
        let r = reason(load_records(&dir, &spec()));
        assert!(
            matches!(
                r,
                InvalidReason::Truncated
                    | InvalidReason::RecordChecksum
                    | InvalidReason::FileChecksum
            ),
            "corrupt framing must be caught, got {r}"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_and_digest_skew_invalidate() {
        let dir = temp_dir("skew");
        publish_records(&dir, &spec(), &sample_records()).expect("publish");
        let mut other = spec();
        other.schema_version += 1;
        assert_eq!(
            reason(load_records(&dir, &other)),
            InvalidReason::SchemaVersion
        );
        let mut other = spec();
        other.code_version = "0.2.0-test";
        assert_eq!(
            reason(load_records(&dir, &other)),
            InvalidReason::CodeVersion
        );
        let mut other = spec();
        other.config_digest ^= 1;
        assert_eq!(
            reason(load_records(&dir, &other)),
            InvalidReason::ConfigDigest
        );
        let mut other = spec();
        other.name = "different";
        assert_eq!(reason(load_records(&dir, &other)), InvalidReason::Missing);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_file_is_rejected_by_magic() {
        let dir = temp_dir("magic");
        fs::create_dir_all(&dir).expect("mkdir");
        fs::write(spec().path(&dir), b"{\"not\": \"a store\"} and some more").expect("write");
        assert_eq!(reason(load_records(&dir, &spec())), InvalidReason::BadMagic);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn future_format_version_is_rejected() {
        let dir = temp_dir("format");
        publish_records(&dir, &spec(), &[]).expect("publish");
        let path = spec().path(&dir);
        let mut image = fs::read(&path).expect("read");
        image[4] = image[4].wrapping_add(1); // format_version low byte
        fs::write(&path, &image).expect("corrupt");
        assert_eq!(
            reason(load_records(&dir, &spec())),
            InvalidReason::FormatVersion
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_snapshot_is_warm() {
        let dir = temp_dir("empty");
        publish_records(&dir, &spec(), &[]).expect("publish");
        let records = load_records(&dir, &spec()).records().expect("warm");
        assert!(records.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn publish_leaves_no_temp_files() {
        let dir = temp_dir("tmpfiles");
        publish_records(&dir, &spec(), &sample_records()).expect("publish");
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .expect("readdir")
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "temp files left: {leftovers:?}");
        let _ = fs::remove_dir_all(&dir);
    }
}
