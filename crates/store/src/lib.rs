//! Crash-safe, content-addressed on-disk result store.
//!
//! Every simulation outcome in this workspace is a pure function of its
//! spec, the machine configuration and the code version — so a finished
//! result can be paid for once and reused across processes: a re-run of
//! `repro`, a CI job, or a restarted `pipedepth-serve` should warm-start
//! from the previous run's results instead of re-simulating every cell.
//! This crate provides the durable tier below the in-memory
//! `EvalCache`/`ShardedCache` layer, with three guarantees:
//!
//! * **Never a wrong answer.** Records carry the full spec (not just its
//!   hash), every payload is covered by an FNV-1a checksum, the file
//!   carries a trailing whole-file checksum, and the header binds the
//!   store to a format version, a consumer schema version, a code
//!   version and a config digest. Any mismatch — corruption, truncation,
//!   version skew, a different run configuration — degrades to a cold
//!   start ([`LoadOutcome::Cold`] with an [`InvalidReason`]), never a
//!   panic and never a stale result.
//! * **Crash-safe publish.** A snapshot is written to a temp file in the
//!   store directory and atomically renamed over the previous one
//!   ([`publish_records`]); readers only ever observe a complete old or a
//!   complete new file.
//! * **Off the hot path.** Snapshots are handed to a [`Flusher`] — a
//!   single write-behind worker thread — so the simulation loop never
//!   blocks on I/O; [`Flusher::shutdown`] drains outstanding work at
//!   process exit.
//!
//! The codec layer ([`ByteWriter`] / [`ByteReader`] / [`Blob`]) is shared
//! with consumer crates, which implement [`Blob`] for their own spec and
//! value types next to those types' private fields.
//!
//! This crate is std-only and deliberately knows nothing about
//! simulation, telemetry or time: consumers time their own load/flush
//! paths and bump their own counters from the outcomes reported here.

pub mod codec;
pub mod file;
pub mod flush;

pub use codec::{Blob, ByteReader, ByteWriter, DecodeError};
pub use file::{
    load_records, publish_records, InvalidReason, LoadOutcome, NamespaceSpec, FORMAT_VERSION,
};
pub use flush::Flusher;

/// FNV-1a 64-bit hash of a byte slice — the integrity checksum used for
/// every record payload and for the whole file image.
///
/// The same hash family the workspace already uses for content keys
/// (`Fnv64` in `pipedepth-trace`); duplicated here over raw bytes so this
/// crate stays dependency-free.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Reference values for the 64-bit FNV-1a parameters.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn fnv1a_separates_nearby_inputs() {
        assert_ne!(fnv1a(&[0, 1]), fnv1a(&[1, 0]));
        assert_ne!(fnv1a(&[0]), fnv1a(&[0, 0]));
    }
}
