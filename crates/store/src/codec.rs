//! The binary codec: little-endian primitive framing plus the [`Blob`]
//! trait consumer crates implement for their spec and value types.
//!
//! The encoding is deliberately boring — fixed-width little-endian
//! integers, IEEE-754 bit patterns for floats, `u32` length prefixes for
//! byte strings — because the durability story lives one layer up
//! ([`crate::file`]): checksums and version headers decide whether bytes
//! are trusted at all, and the codec only has to be deterministic and
//! exact. Floats round-trip by bit pattern, so a decoded spec compares
//! equal to the one that was encoded (the property the content-addressed
//! lookup relies on for collision resolution).

use std::error::Error;
use std::fmt;

/// Why a decode was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended before the value did.
    Truncated,
    /// Bytes were left over after the outermost value was decoded.
    Trailing,
    /// A value was framed correctly but semantically impossible
    /// (e.g. a length that cannot fit in memory, an unknown enum tag).
    Invalid(&'static str),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "record truncated"),
            DecodeError::Trailing => write!(f, "trailing bytes after record"),
            DecodeError::Invalid(what) => write!(f, "invalid record field: {what}"),
        }
    }
}

impl Error for DecodeError {}

/// An append-only encode buffer with little-endian primitive writers.
///
/// # Examples
///
/// ```
/// use pipedepth_store::{ByteReader, ByteWriter};
///
/// let mut w = ByteWriter::new();
/// w.put_u32(7).put_f64(2.5).put_str("alpha");
/// let bytes = w.into_bytes();
/// let mut r = ByteReader::new(&bytes);
/// assert_eq!(r.take_u32().unwrap(), 7);
/// assert_eq!(r.take_f64().unwrap(), 2.5);
/// assert_eq!(r.take_str().unwrap(), "alpha");
/// assert!(r.finish().is_ok());
/// ```
#[derive(Debug, Default, Clone)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty buffer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// An empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        ByteWriter {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends an `f64` as its IEEE-754 bit pattern (exact round-trip).
    pub fn put_f64(&mut self, v: f64) -> &mut Self {
        self.put_u64(v.to_bits())
    }

    /// Appends a bool as one byte (`0` / `1`).
    pub fn put_bool(&mut self, v: bool) -> &mut Self {
        self.put_u8(u8::from(v))
    }

    /// Appends a `u32`-length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) -> &mut Self {
        debug_assert!(v.len() <= u32::MAX as usize, "blob field over 4 GiB");
        self.put_u32(v.len() as u32);
        self.buf.extend_from_slice(v);
        self
    }

    /// Appends a `u32`-length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) -> &mut Self {
        self.put_bytes(v.as_bytes())
    }

    /// Appends raw bytes with no length prefix (framing headers).
    pub fn put_raw(&mut self, v: &[u8]) -> &mut Self {
        self.buf.extend_from_slice(v);
        self
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True while nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// A view of the bytes written so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// A cursor over an encoded byte slice; every `take_*` either yields the
/// value or reports [`DecodeError::Truncated`] — no panics, no partial
/// reads.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self.pos.checked_add(n).ok_or(DecodeError::Truncated)?;
        if end > self.buf.len() {
            return Err(DecodeError::Truncated);
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn take_u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn take_u32(&mut self) -> Result<u32, DecodeError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn take_u64(&mut self) -> Result<u64, DecodeError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads an `f64` from its IEEE-754 bit pattern.
    pub fn take_f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Reads a bool; any byte other than `0`/`1` is invalid.
    pub fn take_bool(&mut self) -> Result<bool, DecodeError> {
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(DecodeError::Invalid("bool")),
        }
    }

    /// Reads a `u32`-length-prefixed byte string.
    pub fn take_bytes(&mut self) -> Result<&'a [u8], DecodeError> {
        let len = self.take_u32()? as usize;
        self.take(len)
    }

    /// Reads a `u32`-length-prefixed UTF-8 string.
    pub fn take_str(&mut self) -> Result<&'a str, DecodeError> {
        std::str::from_utf8(self.take_bytes()?).map_err(|_| DecodeError::Invalid("utf-8"))
    }

    /// Reads `n` raw bytes with no length prefix (framing headers).
    pub fn take_raw(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        self.take(n)
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Succeeds only when the buffer was consumed exactly.
    pub fn finish(&self) -> Result<(), DecodeError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(DecodeError::Trailing)
        }
    }
}

/// A type with an exact, deterministic binary encoding.
///
/// Consumer crates implement this for their spec and value types (next to
/// those types' private fields); the store itself only ever moves opaque
/// record payloads produced by [`Blob::to_record`].
pub trait Blob: Sized {
    /// Appends this value's encoding to `w`.
    fn encode(&self, w: &mut ByteWriter);

    /// Decodes one value from the reader, leaving it positioned after the
    /// value's last byte.
    ///
    /// # Errors
    ///
    /// Any framing or validity failure is a [`DecodeError`]; decoding
    /// must never panic on arbitrary bytes.
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError>;

    /// This value encoded as a standalone record payload.
    fn to_record(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        self.encode(&mut w);
        w.into_bytes()
    }

    /// Decodes a standalone record payload, rejecting trailing bytes.
    ///
    /// # Errors
    ///
    /// Propagates the [`DecodeError`] of [`Blob::decode`], plus
    /// [`DecodeError::Trailing`] when the payload is longer than the
    /// value.
    fn from_record(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut r = ByteReader::new(bytes);
        let value = Self::decode(&mut r)?;
        r.finish()?;
        Ok(value)
    }
}

impl Blob for u8 {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u8(*self);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        r.take_u8()
    }
}

impl Blob for u32 {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u32(*self);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        r.take_u32()
    }
}

impl Blob for u64 {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u64(*self);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        r.take_u64()
    }
}

impl Blob for f64 {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_f64(*self);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        r.take_f64()
    }
}

impl Blob for bool {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_bool(*self);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        r.take_bool()
    }
}

impl Blob for String {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_str(self);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(r.take_str()?.to_owned())
    }
}

impl<T: Blob> Blob for Option<T> {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            None => {
                w.put_u8(0);
            }
            Some(v) => {
                w.put_u8(1);
                v.encode(w);
            }
        }
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        match r.take_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            _ => Err(DecodeError::Invalid("option tag")),
        }
    }
}

impl<T: Blob> Blob for Vec<T> {
    fn encode(&self, w: &mut ByteWriter) {
        debug_assert!(self.len() <= u32::MAX as usize, "blob sequence over 2^32");
        w.put_u32(self.len() as u32);
        for item in self {
            item.encode(w);
        }
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        let n = r.take_u32()? as usize;
        // A corrupt length prefix must not trigger a huge allocation:
        // every element occupies at least one byte, so cap by what the
        // buffer could possibly hold.
        if n > r.remaining() {
            return Err(DecodeError::Truncated);
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<A: Blob, B: Blob> Blob for (A, B) {
    fn encode(&self, w: &mut ByteWriter) {
        self.0.encode(w);
        self.1.encode(w);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip_exactly() {
        let mut w = ByteWriter::with_capacity(64);
        w.put_u8(0xAB)
            .put_u32(u32::MAX)
            .put_u64(0x0123_4567_89AB_CDEF)
            .put_f64(-0.0)
            .put_f64(f64::NAN)
            .put_bool(true)
            .put_bytes(b"\x00\x01\x02")
            .put_str("π ≈ 3");
        assert!(!w.is_empty());
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.take_u8().unwrap(), 0xAB);
        assert_eq!(r.take_u32().unwrap(), u32::MAX);
        assert_eq!(r.take_u64().unwrap(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.take_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.take_f64().unwrap().is_nan(), "NaN bit pattern survives");
        assert!(r.take_bool().unwrap());
        assert_eq!(r.take_bytes().unwrap(), b"\x00\x01\x02");
        assert_eq!(r.take_str().unwrap(), "π ≈ 3");
        assert!(r.finish().is_ok());
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let bytes = ByteWriter::new().put_u64(7).as_bytes().to_vec();
        let mut r = ByteReader::new(&bytes[..5]);
        assert_eq!(r.take_u64(), Err(DecodeError::Truncated));
        let mut r = ByteReader::new(&[]);
        assert_eq!(r.take_u8(), Err(DecodeError::Truncated));
        assert_eq!(r.take_str(), Err(DecodeError::Truncated));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let bytes = ByteWriter::new().put_u32(1).put_u8(9).as_bytes().to_vec();
        assert_eq!(u32::from_record(&bytes), Err(DecodeError::Trailing));
        assert_eq!(u32::from_record(&bytes[..4]), Ok(1));
    }

    #[test]
    fn invalid_tags_are_rejected() {
        assert_eq!(bool::from_record(&[2]), Err(DecodeError::Invalid("bool")));
        assert_eq!(
            Option::<u8>::from_record(&[9]),
            Err(DecodeError::Invalid("option tag"))
        );
        assert!(String::from_record(&[2, 0, 0, 0, 0xFF, 0xFE]).is_err());
    }

    #[test]
    fn compound_blobs_round_trip() {
        let value: (Option<String>, Vec<u64>) = (Some("cell".into()), vec![1, 2, 3]);
        let bytes = value.to_record();
        assert_eq!(<(Option<String>, Vec<u64>)>::from_record(&bytes), Ok(value));
        let none: Option<String> = None;
        assert_eq!(Option::<String>::from_record(&none.to_record()), Ok(None));
    }

    #[test]
    fn corrupt_vec_length_cannot_allocate_unbounded() {
        // 4-byte length prefix claiming 2^32-1 elements, no payload.
        let bytes = ByteWriter::new().put_u32(u32::MAX).as_bytes().to_vec();
        assert_eq!(Vec::<u64>::from_record(&bytes), Err(DecodeError::Truncated));
    }

    #[test]
    fn error_display_is_stable() {
        assert_eq!(DecodeError::Truncated.to_string(), "record truncated");
        assert_eq!(
            DecodeError::Invalid("bool").to_string(),
            "invalid record field: bool"
        );
    }
}
