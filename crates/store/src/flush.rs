//! The write-behind flusher: one worker thread draining snapshot jobs so
//! publishing never blocks a simulation loop.
//!
//! Consumers build each job as a closure that already owns everything it
//! needs (the encoded records, the target directory, its own telemetry
//! handles) and hand it to [`Flusher::submit`]; the hot path's only cost
//! is the channel send. [`Flusher::shutdown`] — also run on drop —
//! closes the channel and joins the worker, so every accepted snapshot
//! reaches disk before the process exits.
//!
//! Locking discipline: the flusher owns no locks at all, and jobs run on
//! the worker thread with no caller state. Callers must snapshot their
//! data *before* submitting — never submit while holding a cache shard
//! guard — which keeps the workspace's lock-order rules trivially
//! satisfied on both sides of the channel.

use std::sync::mpsc;
use std::thread;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A single background worker executing flush jobs in submission order.
///
/// # Examples
///
/// ```
/// use std::sync::atomic::{AtomicU32, Ordering};
/// use std::sync::Arc;
/// use pipedepth_store::Flusher;
///
/// let ran = Arc::new(AtomicU32::new(0));
/// let mut flusher = Flusher::new();
/// let r = Arc::clone(&ran);
/// flusher.submit(move || {
///     r.fetch_add(1, Ordering::SeqCst);
/// });
/// flusher.shutdown(); // drains: the job has run once shutdown returns
/// assert_eq!(ran.load(Ordering::SeqCst), 1);
/// ```
pub struct Flusher {
    sender: Option<mpsc::Sender<Job>>,
    worker: Option<thread::JoinHandle<()>>,
}

impl Flusher {
    /// Starts the worker thread. If the thread cannot be spawned (fd or
    /// thread exhaustion), the flusher still works — jobs then run
    /// inline on the submitting thread, trading latency for durability.
    pub fn new() -> Self {
        let (sender, receiver) = mpsc::channel::<Job>();
        let worker = thread::Builder::new()
            .name("pipedepth-store-flush".into())
            .spawn(move || {
                // Runs until every sender is dropped *and* the queue is
                // empty: `recv` returns the backlog first, then errors.
                while let Ok(job) = receiver.recv() {
                    job();
                }
            });
        match worker {
            Ok(handle) => Flusher {
                sender: Some(sender),
                worker: Some(handle),
            },
            Err(_) => Flusher {
                sender: None,
                worker: None,
            },
        }
    }

    /// Queues a flush job. Jobs run in submission order on the worker;
    /// after [`shutdown`](Flusher::shutdown) (or if the worker could not
    /// start) the job runs inline instead of being dropped — a submitted
    /// snapshot is never silently lost.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        match &self.sender {
            Some(sender) => {
                if let Err(returned) = sender.send(Box::new(job)) {
                    // The worker is gone; run the returned job inline.
                    (returned.0)();
                }
            }
            None => job(),
        }
    }

    /// True while the background worker is accepting queued jobs; false
    /// after shutdown (or if it never started), when jobs run inline.
    pub fn is_running(&self) -> bool {
        self.worker.is_some()
    }

    /// Waits until every job submitted before this call has finished,
    /// without closing the queue. Jobs run in submission order, so a
    /// marker job observed complete means the whole backlog is on disk.
    /// Unlike [`shutdown`](Flusher::shutdown) this needs only `&self`,
    /// letting shared owners (an `Arc`'d service at drain time) force
    /// durability without exclusive access.
    pub fn sync(&self) {
        let (done_tx, done_rx) = mpsc::channel::<()>();
        self.submit(move || {
            let _ = done_tx.send(());
        });
        // If the worker is gone the marker already ran inline and the
        // sender is dropped either way, so this never hangs.
        let _ = done_rx.recv();
    }

    /// Closes the queue and waits for every queued job to finish.
    /// Idempotent; also performed on drop.
    pub fn shutdown(&mut self) {
        drop(self.sender.take());
        if let Some(worker) = self.worker.take() {
            // The worker only ends by draining the closed channel; a
            // panicking job is contained to the job, not the process.
            let _ = worker.join();
        }
    }
}

impl Default for Flusher {
    fn default() -> Self {
        Flusher::new()
    }
}

impl Drop for Flusher {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for Flusher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Flusher")
            .field("running", &self.is_running())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;

    #[test]
    fn jobs_run_in_order_and_drain_on_shutdown() {
        let log = Arc::new(std::sync::Mutex::new(Vec::new()));
        let mut flusher = Flusher::new();
        for i in 0..16u32 {
            let log = Arc::clone(&log);
            flusher.submit(move || {
                log.lock().unwrap().push(i);
            });
        }
        flusher.shutdown();
        assert_eq!(*log.lock().unwrap(), (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn shutdown_is_idempotent_and_late_jobs_run_inline() {
        let ran = Arc::new(AtomicU32::new(0));
        let mut flusher = Flusher::new();
        flusher.shutdown();
        flusher.shutdown();
        assert!(!flusher.is_running());
        let r = Arc::clone(&ran);
        flusher.submit(move || {
            r.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(ran.load(Ordering::SeqCst), 1, "late job ran inline");
    }

    #[test]
    fn sync_waits_for_the_backlog_without_closing_the_queue() {
        let ran = Arc::new(AtomicU32::new(0));
        let flusher = Flusher::new();
        for _ in 0..8 {
            let r = Arc::clone(&ran);
            flusher.submit(move || {
                r.fetch_add(1, Ordering::SeqCst);
            });
        }
        flusher.sync();
        assert_eq!(ran.load(Ordering::SeqCst), 8, "backlog drained");
        assert!(flusher.is_running(), "queue stays open after sync");
        let r = Arc::clone(&ran);
        flusher.submit(move || {
            r.fetch_add(1, Ordering::SeqCst);
        });
        flusher.sync();
        assert_eq!(ran.load(Ordering::SeqCst), 9, "later jobs still accepted");
    }

    #[test]
    fn drop_drains_outstanding_jobs() {
        let ran = Arc::new(AtomicU32::new(0));
        {
            let flusher = Flusher::new();
            for _ in 0..8 {
                let r = Arc::clone(&ran);
                flusher.submit(move || {
                    r.fetch_add(1, Ordering::SeqCst);
                });
            }
        }
        assert_eq!(ran.load(Ordering::SeqCst), 8);
    }
}
