//! A compact binary trace format.
//!
//! The paper works from trace tapes; this module gives our synthetic traces
//! the same workflow — generate once, encode, and replay byte-identical
//! streams against many pipeline configurations (or ship them between
//! machines). The format is a simple length-prefixed record stream:
//!
//! ```text
//! magic "PDT1" | u64 count | count × record
//! record: u8 class | u8 flags | u64 pc
//!         [u8 dst] [u8 src0] [u8 src1]
//!         [u64 addr, u8 size] [u8 taken, u64 target]
//! ```
//!
//! Register bytes encode the file in the high bit (0 = GPR, 1 = FPR).

use crate::isa::{BranchInfo, Instruction, MemRef, OpClass, Reg};
use std::error::Error;
use std::fmt;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"PDT1";

const FLAG_DST: u8 = 1 << 0;
const FLAG_SRC0: u8 = 1 << 1;
const FLAG_SRC1: u8 = 1 << 2;
const FLAG_MEM: u8 = 1 << 3;
const FLAG_BRANCH: u8 = 1 << 4;
const FLAG_SERIAL: u8 = 1 << 5;

/// Error decoding a trace stream.
#[derive(Debug)]
pub enum DecodeError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream does not start with the `PDT1` magic.
    BadMagic([u8; 4]),
    /// An unknown operation-class byte.
    BadClass(u8),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Io(e) => write!(f, "trace i/o error: {e}"),
            DecodeError::BadMagic(m) => write!(f, "bad trace magic {m:?}"),
            DecodeError::BadClass(c) => write!(f, "unknown op class byte {c}"),
        }
    }
}

impl Error for DecodeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DecodeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for DecodeError {
    fn from(e: io::Error) -> Self {
        DecodeError::Io(e)
    }
}

fn class_byte(c: OpClass) -> u8 {
    match c {
        OpClass::AluRr => 0,
        OpClass::AluRx => 1,
        OpClass::Load => 2,
        OpClass::Store => 3,
        OpClass::Branch => 4,
        OpClass::Fp => 5,
        OpClass::FpLong => 6,
    }
}

fn byte_class(b: u8) -> Result<OpClass, DecodeError> {
    Ok(match b {
        0 => OpClass::AluRr,
        1 => OpClass::AluRx,
        2 => OpClass::Load,
        3 => OpClass::Store,
        4 => OpClass::Branch,
        5 => OpClass::Fp,
        6 => OpClass::FpLong,
        other => return Err(DecodeError::BadClass(other)),
    })
}

fn reg_byte(r: Reg) -> u8 {
    match r {
        Reg::Gpr(i) => i,
        Reg::Fpr(i) => 0x80 | i,
    }
}

fn byte_reg(b: u8) -> Reg {
    if b & 0x80 != 0 {
        Reg::fpr(b & 0x7f)
    } else {
        Reg::gpr(b & 0x7f)
    }
}

/// Encodes a trace to a writer. A `&mut Vec<u8>` or any `Write` works;
/// remember that `&mut W` also implements `Write`.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
///
/// # Examples
///
/// ```
/// use pipedepth_trace::codec::{encode, decode};
/// use pipedepth_trace::isa::{Instruction, OpClass, Reg};
///
/// let trace = vec![Instruction::new(0x1000, OpClass::AluRr).with_dst(Reg::gpr(1))];
/// let mut buf = Vec::new();
/// encode(&trace, &mut buf)?;
/// assert_eq!(decode(&buf[..])?, trace);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn encode<W: Write>(trace: &[Instruction], mut w: W) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&(trace.len() as u64).to_le_bytes())?;
    for i in trace {
        let mut flags = 0u8;
        if i.dst.is_some() {
            flags |= FLAG_DST;
        }
        if i.src[0].is_some() {
            flags |= FLAG_SRC0;
        }
        if i.src[1].is_some() {
            flags |= FLAG_SRC1;
        }
        if i.mem.is_some() {
            flags |= FLAG_MEM;
        }
        if i.branch.is_some() {
            flags |= FLAG_BRANCH;
        }
        if i.serial {
            flags |= FLAG_SERIAL;
        }
        w.write_all(&[class_byte(i.class), flags])?;
        w.write_all(&i.pc.to_le_bytes())?;
        if let Some(d) = i.dst {
            w.write_all(&[reg_byte(d)])?;
        }
        if let Some(s) = i.src[0] {
            w.write_all(&[reg_byte(s)])?;
        }
        if let Some(s) = i.src[1] {
            w.write_all(&[reg_byte(s)])?;
        }
        if let Some(m) = i.mem {
            w.write_all(&m.addr.to_le_bytes())?;
            w.write_all(&[m.size])?;
        }
        if let Some(b) = i.branch {
            w.write_all(&[u8::from(b.taken)])?;
            w.write_all(&b.target.to_le_bytes())?;
        }
    }
    Ok(())
}

fn read_u8<R: Read>(r: &mut R) -> io::Result<u8> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Decodes a trace from a reader.
///
/// # Errors
///
/// Returns [`DecodeError`] on truncated input, a bad magic header, or an
/// unknown class byte.
pub fn decode<R: Read>(mut r: R) -> Result<Vec<Instruction>, DecodeError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(DecodeError::BadMagic(magic));
    }
    let count = read_u64(&mut r)?;
    let mut out = Vec::with_capacity(count.min(1 << 20) as usize);
    for _ in 0..count {
        let class = byte_class(read_u8(&mut r)?)?;
        let flags = read_u8(&mut r)?;
        let pc = read_u64(&mut r)?;
        let mut instr = Instruction::new(pc, class);
        if flags & FLAG_DST != 0 {
            instr.dst = Some(byte_reg(read_u8(&mut r)?));
        }
        if flags & FLAG_SRC0 != 0 {
            instr.src[0] = Some(byte_reg(read_u8(&mut r)?));
        }
        if flags & FLAG_SRC1 != 0 {
            instr.src[1] = Some(byte_reg(read_u8(&mut r)?));
        }
        if flags & FLAG_MEM != 0 {
            let addr = read_u64(&mut r)?;
            let size = read_u8(&mut r)?;
            instr.mem = Some(MemRef { addr, size });
        }
        if flags & FLAG_BRANCH != 0 {
            let taken = read_u8(&mut r)? != 0;
            let target = read_u64(&mut r)?;
            instr.branch = Some(BranchInfo { taken, target });
        }
        instr.serial = flags & FLAG_SERIAL != 0;
        out.push(instr);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::TraceGenerator;
    use crate::model::WorkloadModel;

    #[test]
    fn roundtrip_generated_trace() {
        for model in [
            WorkloadModel::spec_int_like(),
            WorkloadModel::legacy_like(),
            WorkloadModel::spec_fp_like(),
        ] {
            let trace = TraceGenerator::new(model, 99).take_vec(2000);
            let mut buf = Vec::new();
            encode(&trace, &mut buf).unwrap();
            let back = decode(&buf[..]).unwrap();
            assert_eq!(back, trace);
        }
    }

    #[test]
    fn empty_trace_roundtrips() {
        let mut buf = Vec::new();
        encode(&[], &mut buf).unwrap();
        assert_eq!(decode(&buf[..]).unwrap(), Vec::new());
    }

    #[test]
    fn bad_magic_detected() {
        let buf = b"NOPE\0\0\0\0\0\0\0\0".to_vec();
        assert!(matches!(decode(&buf[..]), Err(DecodeError::BadMagic(_))));
    }

    #[test]
    fn truncated_stream_is_io_error() {
        let trace = TraceGenerator::new(WorkloadModel::spec_int_like(), 1).take_vec(10);
        let mut buf = Vec::new();
        encode(&trace, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(matches!(decode(&buf[..]), Err(DecodeError::Io(_))));
    }

    #[test]
    fn bad_class_detected() {
        let mut buf = Vec::new();
        encode(&[], &mut buf).unwrap();
        // Patch count to 1 and append a bogus record.
        buf[4..12].copy_from_slice(&1u64.to_le_bytes());
        buf.push(42); // class byte
        buf.push(0); // flags
        buf.extend_from_slice(&0u64.to_le_bytes());
        assert!(matches!(decode(&buf[..]), Err(DecodeError::BadClass(42))));
    }

    #[test]
    fn reg_byte_roundtrip() {
        for i in 0..16 {
            assert_eq!(byte_reg(reg_byte(Reg::gpr(i))), Reg::gpr(i));
            assert_eq!(byte_reg(reg_byte(Reg::fpr(i))), Reg::fpr(i));
        }
    }

    #[test]
    fn encoding_is_compact() {
        // A pure-ALU record costs 2 + 8 + ≤3 bytes.
        let trace = vec![Instruction::new(0, OpClass::AluRr).with_dst(Reg::gpr(0))];
        let mut buf = Vec::new();
        encode(&trace, &mut buf).unwrap();
        assert_eq!(buf.len(), 4 + 8 + 2 + 8 + 1);
    }
}
