//! Synthetic instruction-trace substrate for the `pipedepth` workspace.
//!
//! The paper drives its proprietary cycle-accurate simulator with 55 IBM
//! zSeries trace tapes. Those tapes are unavailable, so this crate provides
//! the substitute: deterministic, statistically controlled synthetic traces
//! over a z-like instruction set.
//!
//! * [`isa`] — the instruction abstraction: RR vs RX operation classes,
//!   register operands, memory references, branch outcomes;
//! * [`model`] — statistical workload models (instruction mix, dependency
//!   distances, branch predictability, memory locality) with presets for
//!   the paper's four workload classes;
//! * [`generator`] — the seeded trace generator: same seed, same trace,
//!   replayable against every pipeline depth of a sweep;
//! * [`arena`] — the content-addressed trace arena: each distinct
//!   (model, seed, length) stream is materialized once into an
//!   `Arc<[Instruction]>` and shared by every simulation cell;
//! * [`hash`] — structural FNV-1a hashing over field bit patterns, the
//!   content-addressing primitive used by the arena and the sim cache;
//! * [`stats`] — aggregate trace statistics for validation and reporting;
//! * [`codec`] — a compact binary trace format (generate once, replay
//!   anywhere).
//!
//! # Why this substitution preserves the paper's behaviour
//!
//! The optimum-pipeline-depth problem is driven by aggregate workload
//! statistics — hazards per instruction, the pipeline fraction each hazard
//! stalls, exploitable ILP — not by program semantics. The generator gives
//! direct, independent control over exactly those statistics.
//!
//! # Examples
//!
//! ```
//! use pipedepth_trace::{TraceGenerator, WorkloadModel, TraceStats};
//!
//! let mut gen = TraceGenerator::new(WorkloadModel::legacy_like(), 7);
//! let trace = gen.take_vec(10_000);
//! let stats = TraceStats::of(&trace);
//! assert!(stats.class_fraction(pipedepth_trace::isa::OpClass::Branch) > 0.1);
//! ```

pub mod arena;
pub mod blob;
pub mod codec;
pub mod generator;
pub mod hash;
pub mod isa;
pub mod model;
pub mod stats;

pub use arena::{ArenaStats, TraceArena, TraceRequest};
pub use generator::TraceGenerator;
pub use hash::Fnv64;
pub use isa::{BranchInfo, Instruction, MemRef, OpClass, Reg};
pub use model::{fingerprint_memo_hits, BranchModel, InstructionMix, MemoryModel, WorkloadModel};
pub use stats::TraceStats;
