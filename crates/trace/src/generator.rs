//! Deterministic synthetic trace generation.
//!
//! A [`TraceGenerator`] turns a [`WorkloadModel`] plus a seed into an
//! endless, reproducible stream of [`Instruction`]s. Determinism matters:
//! every pipeline depth of a sweep must see the *same* instruction stream,
//! exactly as the paper replays one trace tape against many processor
//! models.

use crate::isa::{BranchInfo, Instruction, MemRef, OpClass, Reg};
use crate::model::WorkloadModel;
use pipedepth_telemetry::{Counter, Telemetry};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Cache-line-sized code step between sequential instructions (z
/// instructions average ~4 bytes; we use 4).
const INSTR_BYTES: u64 = 4;

/// A deterministic, endless instruction stream for one workload.
///
/// # Examples
///
/// ```
/// use pipedepth_trace::{TraceGenerator, WorkloadModel};
///
/// let mut gen = TraceGenerator::new(WorkloadModel::spec_int_like(), 42);
/// let first: Vec<_> = (&mut gen).take(100).collect();
/// let mut again = TraceGenerator::new(WorkloadModel::spec_int_like(), 42);
/// let second: Vec<_> = (&mut again).take(100).collect();
/// assert_eq!(first, second, "same seed ⇒ same trace");
/// ```
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    model: WorkloadModel,
    rng: StdRng,
    pc: u64,
    /// Ring buffer of the most recent GPR/FPR writers, newest first, used to
    /// realise the dependency-distance distribution.
    recent_gpr: Vec<Reg>,
    recent_fpr: Vec<Reg>,
    next_gpr: u8,
    next_fpr: u8,
    /// Current sequential data pointer.
    data_ptr: u64,
    /// Per-site branch biases, indexed by a hash of the site id.
    site_bias: Vec<f64>,
    emitted: u64,
    /// Telemetry counter for `trace.instructions_generated` (disconnected
    /// unless built with [`TraceGenerator::with_telemetry`]).
    generated: Counter,
    /// Instructions already flushed into `generated`; deltas flush on
    /// [`TraceGenerator::flush_telemetry`] and on drop, keeping the
    /// per-instruction path free of atomics.
    flushed: u64,
}

impl TraceGenerator {
    /// Depth of the recent-writer window used to materialise dependency
    /// distances.
    const WINDOW: usize = 64;

    /// Creates a generator for `model`, seeded deterministically.
    pub fn new(model: WorkloadModel, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let sites = model.branches.static_sites as usize;
        let site_bias = (0..sites)
            .map(|_| {
                if rng.gen_bool(model.branches.biased_fraction) {
                    // Strongly biased site: taken or not-taken dominant.
                    if rng.gen_bool(0.5) {
                        model.branches.bias
                    } else {
                        1.0 - model.branches.bias
                    }
                } else {
                    0.5
                }
            })
            .collect();
        TraceGenerator {
            model,
            rng,
            pc: 0x1_0000,
            recent_gpr: Vec::with_capacity(Self::WINDOW),
            recent_fpr: Vec::with_capacity(Self::WINDOW),
            next_gpr: 0,
            next_fpr: 0,
            data_ptr: 0x4000_0000,
            site_bias,
            emitted: 0,
            generated: Counter::default(),
            flushed: 0,
        }
    }

    /// Creates a generator that reports into a telemetry registry: each
    /// construction bumps `trace.generators_created`, and every emitted
    /// instruction is (batch-)counted into `trace.instructions_generated`.
    /// The stream itself is identical to [`TraceGenerator::new`] with the
    /// same arguments.
    pub fn with_telemetry(model: WorkloadModel, seed: u64, telemetry: &Telemetry) -> Self {
        telemetry.counter("trace.generators_created").inc();
        let mut gen = Self::new(model, seed);
        gen.generated = telemetry.counter("trace.instructions_generated");
        gen
    }

    /// Flushes the not-yet-reported emission count into the telemetry
    /// counter. Called automatically on drop; call it earlier to make a
    /// snapshot current.
    pub fn flush_telemetry(&mut self) {
        self.generated.add(self.emitted - self.flushed);
        self.flushed = self.emitted;
    }

    /// The workload model this generator realises.
    pub fn model(&self) -> &WorkloadModel {
        &self.model
    }

    /// Number of instructions emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Generates the next `n` instructions into a vector.
    pub fn take_vec(&mut self, n: usize) -> Vec<Instruction> {
        (0..n).map(|_| self.next_instruction()).collect()
    }

    fn pick_class(&mut self) -> OpClass {
        let mut roll: f64 = self.rng.gen();
        for (class, frac) in self.model.mix.fractions() {
            if roll < frac {
                return class;
            }
            roll -= frac;
        }
        OpClass::AluRr
    }

    /// Geometric dependency distance with the model's mean, clamped to the
    /// recent-writer window.
    fn dep_distance(&mut self) -> usize {
        let mean = self.model.mean_dep_distance;
        // Geometric with success probability 1/mean, support {1, 2, …}.
        let p = 1.0 / mean;
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let d = (u.ln() / (1.0 - p).ln()).ceil().max(1.0);
        (d as usize).min(Self::WINDOW)
    }

    fn pick_src(&mut self, fp: bool) -> Option<Reg> {
        if !self.rng.gen_bool(self.model.dep_density) {
            return None;
        }
        let d = self.dep_distance();
        let window = if fp {
            &self.recent_fpr
        } else {
            &self.recent_gpr
        };
        if window.is_empty() {
            return None;
        }
        let d = d.min(window.len());
        Some(window[d - 1])
    }

    fn alloc_dst(&mut self, fp: bool) -> Reg {
        let reg = if fp {
            let r = Reg::fpr(self.next_fpr);
            self.next_fpr = self.next_fpr.wrapping_add(1);
            r
        } else {
            let r = Reg::gpr(self.next_gpr);
            self.next_gpr = self.next_gpr.wrapping_add(1);
            r
        };
        let window = if fp {
            &mut self.recent_fpr
        } else {
            &mut self.recent_gpr
        };
        window.insert(0, reg);
        window.truncate(Self::WINDOW);
        reg
    }

    /// The memory model in effect for the current phase.
    fn phase_memory(&self) -> crate::model::MemoryModel {
        match self.model.phases {
            Some(phase) if (self.emitted / phase.period) % 2 == 1 => phase.memory,
            _ => self.model.memory,
        }
    }

    fn next_data_addr(&mut self) -> u64 {
        let mem = self.phase_memory();
        if self.rng.gen_bool(mem.spatial_locality) {
            self.data_ptr = self.data_ptr.wrapping_add(mem.stride);
        } else {
            // Random jump: into the hot subset with the configured
            // probability, else anywhere in the working set.
            let span = if mem.hot_probability > 0.0 && self.rng.gen_bool(mem.hot_probability) {
                mem.hot_set
            } else {
                mem.working_set
            };
            let offset = self.rng.gen_range(0..span);
            self.data_ptr = 0x4000_0000 + (offset & !7);
        }
        // Keep the pointer inside the current phase's working set.
        if self.data_ptr >= 0x4000_0000 + mem.working_set {
            self.data_ptr = 0x4000_0000;
        }
        self.data_ptr
    }

    fn next_branch(&mut self) -> BranchInfo {
        let site = (self.pc >> 2) as usize % self.site_bias.len();
        let taken = self.rng.gen_bool(self.site_bias[site]);
        // Taken branches target one of a bounded set of code-block entry
        // points, so the program forms loops: branch PCs recur, letting a
        // history-based predictor learn them — the property real code has
        // and a uniformly random PC stream lacks. Sequential runs from a
        // block entry average ~1/(branch_frac·taken_rate) instructions, so
        // sizing the block count at sites/12 yields roughly `static_sites`
        // recurring dynamic branch sites.
        let blocks = (self.model.branches.static_sites as u64 / 12).clamp(2, 4096);
        let block_bytes =
            (self.model.branches.code_footprint / blocks).max(INSTR_BYTES * 4) & !(INSTR_BYTES - 1);
        let target = if taken {
            0x1_0000 + self.rng.gen_range(0..blocks) * block_bytes
        } else {
            self.pc + INSTR_BYTES
        };
        BranchInfo { taken, target }
    }

    /// Produces the next instruction of the stream.
    pub fn next_instruction(&mut self) -> Instruction {
        let class = self.pick_class();
        let pc = self.pc;
        let mut instr = Instruction::new(pc, class);

        match class {
            OpClass::AluRr => {
                if let Some(s) = self.pick_src(false) {
                    instr = instr.with_src(s);
                }
                if let Some(s) = self.pick_src(false) {
                    instr = instr.with_src(s);
                }
                instr = instr.with_dst(self.alloc_dst(false));
            }
            OpClass::AluRx | OpClass::Load => {
                // Address register dependency plus the memory reference.
                if let Some(s) = self.pick_src(false) {
                    instr = instr.with_src(s);
                }
                let addr = self.next_data_addr();
                instr = instr
                    .with_mem(MemRef { addr, size: 8 })
                    .with_dst(self.alloc_dst(false));
            }
            OpClass::Store => {
                if let Some(s) = self.pick_src(false) {
                    instr = instr.with_src(s);
                }
                if let Some(s) = self.pick_src(false) {
                    instr = instr.with_src(s);
                }
                let addr = self.next_data_addr();
                instr = instr.with_mem(MemRef { addr, size: 8 });
            }
            OpClass::Branch => {
                if let Some(s) = self.pick_src(false) {
                    instr = instr.with_src(s);
                }
                let b = self.next_branch();
                self.pc = b.target;
                instr = instr.with_branch(b);
            }
            OpClass::Fp | OpClass::FpLong => {
                if let Some(s) = self.pick_src(true) {
                    instr = instr.with_src(s);
                }
                if let Some(s) = self.pick_src(true) {
                    instr = instr.with_src(s);
                }
                instr = instr.with_dst(self.alloc_dst(true));
            }
        }

        if self.model.serial_fraction > 0.0
            && !instr.class.is_fp()
            && self.rng.gen_bool(self.model.serial_fraction)
        {
            instr = instr.with_serial();
        }
        if class != OpClass::Branch {
            self.pc += INSTR_BYTES;
        }
        self.emitted += 1;
        instr
    }
}

impl Iterator for TraceGenerator {
    type Item = Instruction;

    /// The stream is endless; `next` always yields.
    fn next(&mut self) -> Option<Instruction> {
        Some(self.next_instruction())
    }
}

impl Drop for TraceGenerator {
    fn drop(&mut self) {
        self.flush_telemetry();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{BranchModel, InstructionMix, MemoryModel};
    use std::collections::HashSet;

    fn take(model: WorkloadModel, seed: u64, n: usize) -> Vec<Instruction> {
        TraceGenerator::new(model, seed).take_vec(n)
    }

    #[test]
    fn deterministic_per_seed() {
        let a = take(WorkloadModel::modern_like(), 7, 500);
        let b = take(WorkloadModel::modern_like(), 7, 500);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = take(WorkloadModel::modern_like(), 7, 500);
        let b = take(WorkloadModel::modern_like(), 8, 500);
        assert_ne!(a, b);
    }

    #[test]
    fn mix_fractions_are_realised() {
        let n = 20_000;
        let trace = take(WorkloadModel::spec_int_like(), 1, n);
        let branches = trace.iter().filter(|i| i.class == OpClass::Branch).count();
        let loads = trace.iter().filter(|i| i.class == OpClass::Load).count();
        let want_br = InstructionMix::integer().branch;
        let want_ld = InstructionMix::integer().load;
        assert!(
            (branches as f64 / n as f64 - want_br).abs() < 0.02,
            "branch fraction {}",
            branches as f64 / n as f64
        );
        assert!((loads as f64 / n as f64 - want_ld).abs() < 0.02);
    }

    #[test]
    fn memory_ops_carry_addresses() {
        let trace = take(WorkloadModel::spec_int_like(), 2, 2000);
        for i in &trace {
            assert_eq!(i.mem.is_some(), i.class.is_memory(), "{i:?}");
        }
    }

    #[test]
    fn branches_carry_outcomes_and_targets() {
        let trace = take(WorkloadModel::modern_like(), 3, 2000);
        for i in trace.iter().filter(|i| i.class == OpClass::Branch) {
            let b = i.branch.expect("branch must carry info");
            if !b.taken {
                assert_eq!(b.target, i.pc + 4, "not-taken falls through");
            }
        }
    }

    #[test]
    fn addresses_stay_in_working_set() {
        let model = WorkloadModel::new(
            InstructionMix::integer(),
            4.0,
            0.7,
            BranchModel::predictable(),
            MemoryModel::new(4096, 0.5, 8),
        );
        let trace = take(model, 4, 5000);
        for m in trace.iter().filter_map(|i| i.mem) {
            assert!(m.addr >= 0x4000_0000);
            assert!(m.addr < 0x4000_0000 + 4096 + 8, "addr {:#x}", m.addr);
        }
    }

    #[test]
    fn small_working_set_touches_few_lines() {
        let friendly = WorkloadModel::spec_int_like();
        let mut hostile = WorkloadModel::legacy_like();
        // Compare against a uniform (no hot set) scatter over the large set.
        hostile.memory = MemoryModel::new(16 * 1024 * 1024, 0.93, 8);
        let lines = |model, seed| -> usize {
            take(model, seed, 10_000)
                .iter()
                .filter_map(|i| i.mem)
                .map(|m| m.addr >> 6)
                .collect::<HashSet<_>>()
                .len()
        };
        assert!(lines(friendly, 5) < lines(hostile, 5) / 2);
    }

    #[test]
    fn hot_set_concentrates_jumps() {
        let base = MemoryModel::new(16 * 1024 * 1024, 0.5, 8);
        let hot = base.with_hot_set(16 * 1024, 0.9);
        let model_of = |mem| {
            WorkloadModel::new(
                InstructionMix::integer(),
                4.0,
                0.5,
                BranchModel::predictable(),
                mem,
            )
        };
        let lines = |model, seed| -> usize {
            take(model, seed, 10_000)
                .iter()
                .filter_map(|i| i.mem)
                .map(|m| m.addr >> 6)
                .collect::<HashSet<_>>()
                .len()
        };
        assert!(lines(model_of(hot), 9) < lines(model_of(base), 9) / 2);
    }

    #[test]
    fn fp_workload_uses_fp_registers() {
        let trace = take(WorkloadModel::spec_fp_like(), 6, 5000);
        let fp_dsts = trace
            .iter()
            .filter(|i| i.class.is_fp())
            .filter_map(|i| i.dst)
            .filter(|r| matches!(r, Reg::Fpr(_)))
            .count();
        let fp_count = trace.iter().filter(|i| i.class.is_fp()).count();
        assert!(fp_count > 1000, "fp mix should dominate");
        assert_eq!(fp_dsts, fp_count, "every FP op writes an FPR");
    }

    #[test]
    fn dependencies_reference_recent_writers() {
        // With dep_density = 1.0 and tiny mean distance, consecutive ALU ops
        // must chain.
        let model = WorkloadModel::new(
            InstructionMix::new(1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0),
            1.0,
            1.0,
            BranchModel::predictable(),
            MemoryModel::cache_friendly(),
        );
        let trace = take(model, 9, 100);
        for w in trace.windows(2) {
            let prev_dst = w[0].dst.unwrap();
            assert!(
                w[1].srcs().any(|s| s == prev_dst),
                "distance-1 chain broken: {:?} -> {:?}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn taken_rate_reflects_bias() {
        // Highly biased predictable model: taken rate far from 0.5 per site
        // but the emergent aggregate is within (0,1).
        let trace = take(WorkloadModel::spec_int_like(), 10, 20_000);
        let (taken, total) = trace
            .iter()
            .filter(|i| i.class == OpClass::Branch)
            .fold((0u32, 0u32), |(t, n), i| {
                (t + u32::from(i.is_taken_branch()), n + 1)
            });
        let rate = taken as f64 / total as f64;
        assert!(rate > 0.1 && rate < 0.9, "degenerate taken rate {rate}");
    }

    #[test]
    fn phases_toggle_memory_behaviour() {
        use crate::model::PhaseModel;
        // Base phase: tiny 4 KiB hot loop. Alternate phase: scattered 8 MiB.
        let model = WorkloadModel::new(
            InstructionMix::integer(),
            4.0,
            0.5,
            BranchModel::predictable(),
            MemoryModel::new(4 * 1024, 0.9, 8),
        )
        .with_phases(PhaseModel::new(
            5_000,
            MemoryModel::new(8 * 1024 * 1024, 0.2, 8),
        ));
        let trace = take(model, 3, 10_000);
        let lines = |range: std::ops::Range<usize>| {
            trace[range]
                .iter()
                .filter_map(|i| i.mem)
                .map(|m| m.addr >> 6)
                .collect::<HashSet<_>>()
                .len()
        };
        let first = lines(0..5_000);
        let second = lines(5_000..10_000);
        assert!(
            second > first * 4,
            "alternate phase must scatter: {first} vs {second}"
        );
    }

    #[test]
    fn phased_generator_stays_deterministic() {
        use crate::model::PhaseModel;
        let model = WorkloadModel::spec_int_like()
            .with_phases(PhaseModel::new(1_000, MemoryModel::cache_hostile()));
        assert_eq!(take(model, 8, 4000), take(model, 8, 4000));
    }

    #[test]
    fn iterator_is_endless() {
        let mut gen = TraceGenerator::new(WorkloadModel::spec_int_like(), 11);
        assert!(gen.nth(10_000).is_some());
        assert_eq!(gen.emitted(), 10_001);
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn telemetry_counts_generated_instructions() {
        let telemetry = Telemetry::new();
        {
            let mut gen =
                TraceGenerator::with_telemetry(WorkloadModel::spec_int_like(), 1, &telemetry);
            let _ = gen.take_vec(500);
            gen.flush_telemetry();
            assert_eq!(
                telemetry.snapshot().counter("trace.instructions_generated"),
                500
            );
            let _ = gen.take_vec(100);
        } // drop flushes the remainder
        let snap = telemetry.snapshot();
        assert_eq!(snap.counter("trace.instructions_generated"), 600);
        assert_eq!(snap.counter("trace.generators_created"), 1);
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn telemetry_does_not_perturb_the_stream() {
        let telemetry = Telemetry::new();
        let mut counted =
            TraceGenerator::with_telemetry(WorkloadModel::modern_like(), 5, &telemetry);
        let mut plain = TraceGenerator::new(WorkloadModel::modern_like(), 5);
        assert_eq!(counted.take_vec(200), plain.take_vec(200));
    }
}
