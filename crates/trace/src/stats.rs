//! Aggregate statistics of an instruction trace.
//!
//! Used by tests to validate generator fidelity and by the experiment
//! harness to report workload characteristics alongside results.

use crate::isa::{Instruction, OpClass, Reg};
use std::collections::{BTreeMap, BTreeSet};

/// Counters accumulated over a trace.
///
/// All maps are BTree collections so that iterating the statistics (for
/// reports or CSVs) is deterministic regardless of insertion order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Total instructions observed.
    pub instructions: u64,
    /// Count per operation class, ordered by class.
    pub per_class: BTreeMap<OpClass, u64>,
    /// Dynamic branches observed.
    pub branches: u64,
    /// Taken branches observed.
    pub taken_branches: u64,
    /// Memory references observed.
    pub memory_refs: u64,
    /// Distinct 64-byte data lines touched.
    pub distinct_lines: u64,
    /// Sum of observed producer→consumer register distances.
    dep_distance_sum: u64,
    /// Number of dependency edges observed.
    dep_edges: u64,
    // Internal: last writer position per register.
    #[doc(hidden)]
    last_writer: BTreeMap<Reg, u64>,
    #[doc(hidden)]
    lines: BTreeSet<u64>,
}

impl TraceStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Computes statistics over a slice of instructions.
    pub fn of(trace: &[Instruction]) -> Self {
        let mut s = Self::new();
        for i in trace {
            s.observe(i);
        }
        s
    }

    /// Accumulates one instruction.
    pub fn observe(&mut self, instr: &Instruction) {
        let pos = self.instructions;
        self.instructions += 1;
        *self.per_class.entry(instr.class).or_insert(0) += 1;
        if instr.class == OpClass::Branch {
            self.branches += 1;
            if instr.is_taken_branch() {
                self.taken_branches += 1;
            }
        }
        if let Some(m) = instr.mem {
            self.memory_refs += 1;
            self.lines.insert(m.addr >> 6);
            self.distinct_lines = self.lines.len() as u64;
        }
        for src in instr.srcs() {
            if let Some(&w) = self.last_writer.get(&src) {
                self.dep_distance_sum += pos - w;
                self.dep_edges += 1;
            }
        }
        if let Some(d) = instr.dst {
            self.last_writer.insert(d, pos);
        }
    }

    /// Fraction of instructions in `class`.
    pub fn class_fraction(&self, class: OpClass) -> f64 {
        if self.instructions == 0 {
            return 0.0;
        }
        *self.per_class.get(&class).unwrap_or(&0) as f64 / self.instructions as f64
    }

    /// Fraction of dynamic branches that were taken.
    pub fn taken_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.taken_branches as f64 / self.branches as f64
        }
    }

    /// Mean observed producer→consumer register distance.
    pub fn mean_dep_distance(&self) -> f64 {
        if self.dep_edges == 0 {
            0.0
        } else {
            self.dep_distance_sum as f64 / self.dep_edges as f64
        }
    }

    /// Dependency edges per instruction.
    pub fn dep_density(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.dep_edges as f64 / self.instructions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::TraceGenerator;
    use crate::isa::{BranchInfo, MemRef};
    use crate::model::WorkloadModel;

    #[test]
    fn counts_classes_and_branches() {
        let trace = vec![
            Instruction::new(0, OpClass::AluRr).with_dst(Reg::gpr(1)),
            Instruction::new(4, OpClass::Branch).with_branch(BranchInfo {
                taken: true,
                target: 100,
            }),
            Instruction::new(100, OpClass::Load)
                .with_mem(MemRef { addr: 64, size: 8 })
                .with_dst(Reg::gpr(2)),
        ];
        let s = TraceStats::of(&trace);
        assert_eq!(s.instructions, 3);
        assert_eq!(s.branches, 1);
        assert_eq!(s.taken_branches, 1);
        assert_eq!(s.memory_refs, 1);
        assert!((s.class_fraction(OpClass::AluRr) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn dep_distance_measured() {
        let trace = vec![
            Instruction::new(0, OpClass::AluRr).with_dst(Reg::gpr(1)),
            Instruction::new(4, OpClass::AluRr).with_dst(Reg::gpr(2)),
            // Reads r1 written 2 instructions ago.
            Instruction::new(8, OpClass::AluRr)
                .with_src(Reg::gpr(1))
                .with_dst(Reg::gpr(3)),
        ];
        let s = TraceStats::of(&trace);
        assert_eq!(s.mean_dep_distance(), 2.0);
        assert!((s.dep_density() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn distinct_lines_deduplicates() {
        let trace = vec![
            Instruction::new(0, OpClass::Load).with_mem(MemRef { addr: 0, size: 8 }),
            Instruction::new(4, OpClass::Load).with_mem(MemRef { addr: 8, size: 8 }),
            Instruction::new(8, OpClass::Load).with_mem(MemRef { addr: 128, size: 8 }),
        ];
        let s = TraceStats::of(&trace);
        assert_eq!(s.distinct_lines, 2);
    }

    #[test]
    fn generator_statistics_match_model() {
        let model = WorkloadModel::spec_int_like();
        let trace = TraceGenerator::new(model, 42).take_vec(20_000);
        let s = TraceStats::of(&trace);
        assert!((s.class_fraction(OpClass::Branch) - model.mix.branch).abs() < 0.02);
        assert!((s.class_fraction(OpClass::Load) - model.mix.load).abs() < 0.02);
        // Dependency distances are clamped by the window and by register
        // reuse, so the observed mean tracks the model loosely.
        assert!(s.mean_dep_distance() > 1.0);
        assert!(s.dep_density() > 0.3);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = TraceStats::new();
        assert_eq!(s.taken_rate(), 0.0);
        assert_eq!(s.mean_dep_distance(), 0.0);
        assert_eq!(s.class_fraction(OpClass::Load), 0.0);
    }
}
