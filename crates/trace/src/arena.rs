//! The content-addressed trace arena.
//!
//! Every depth point of a sweep replays the *same* instruction stream —
//! the paper replays one trace tape against many processor models — yet a
//! naive harness regenerates that stream once per simulated cell. The
//! arena materialises each distinct `(model, seed, length)` stream exactly
//! once into an `Arc<[Instruction]>` and hands the same allocation to
//! every consumer, so trace generation is paid per *workload*, not per
//! *cell*, and the cycle-level engine (via `run_slice`) becomes the only
//! per-cell cost.
//!
//! The arena is thread-safe. Generation happens under the arena lock, so
//! two concurrent requests for the same stream can never duplicate work —
//! though the intended discipline (used by the experiment runner) is to
//! *pre-stage* all fills from one thread before fanning out, keeping
//! worker threads lock-light and the hit/miss counters deterministic for
//! any thread count.
//!
//! # Examples
//!
//! ```
//! use pipedepth_trace::{TraceArena, WorkloadModel};
//!
//! let arena = TraceArena::new();
//! let a = arena.get_or_generate(WorkloadModel::spec_int_like(), 1, 1_000);
//! let b = arena.get_or_generate(WorkloadModel::spec_int_like(), 1, 1_000);
//! assert!(std::sync::Arc::ptr_eq(&a, &b), "one materialisation, shared");
//! assert_eq!(arena.stats().misses, 1);
//! assert_eq!(arena.stats().hits, 1);
//! ```

use crate::generator::TraceGenerator;
use crate::hash::Fnv64;
use crate::isa::Instruction;
use crate::model::WorkloadModel;
use pipedepth_telemetry::{Counter, Telemetry};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The content address of one materialised stream: the full set of inputs
/// that determine it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceRequest {
    /// Statistical model the stream is drawn from.
    pub model: WorkloadModel,
    /// Seed of the deterministic stream.
    pub seed: u64,
    /// Stream length in instructions.
    pub len: u64,
}

impl TraceRequest {
    /// Structural content hash (collisions resolved by `PartialEq` in the
    /// arena's buckets).
    pub fn key(&self) -> u64 {
        let mut h = Fnv64::new();
        h.write_u64(self.model.fingerprint())
            .write_u64(self.seed)
            .write_u64(self.len);
        h.finish()
    }
}

/// Counters describing an arena's service history.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ArenaStats {
    /// Requests served from an already-resident stream.
    pub hits: u64,
    /// Requests that materialised a new stream.
    pub misses: u64,
    /// Total instructions generated into the arena since creation.
    pub instructions_materialized: u64,
}

impl ArenaStats {
    /// Total requests served.
    pub fn requested(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of requests served without generation (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        if self.requested() == 0 {
            0.0
        } else {
            self.hits as f64 / self.requested() as f64
        }
    }
}

/// One key's entries; the request is kept alongside the stream to resolve
/// hash collisions by exact comparison.
type Bucket = Vec<(TraceRequest, Arc<[Instruction]>)>;

/// Shared, content-addressed store of materialised instruction streams.
#[derive(Debug, Default)]
pub struct TraceArena {
    buckets: Mutex<BTreeMap<u64, Bucket>>,
    hits: AtomicU64,
    misses: AtomicU64,
    instructions: AtomicU64,
    /// Telemetry counters (disconnected by default; see
    /// [`TraceArena::attach_telemetry`]).
    hit_counter: Counter,
    miss_counter: Counter,
    generated_counter: Counter,
    /// Handle passed to the generators the arena creates, so generation
    /// also reports the ordinary `trace.*` counters.
    telemetry: Telemetry,
}

impl TraceArena {
    /// An empty arena.
    pub fn new() -> Self {
        TraceArena::default()
    }

    /// Connects the arena's counters to a telemetry registry:
    /// `trace.arena.hits`, `trace.arena.misses` and
    /// `trace.arena.instructions_materialized` mirror [`ArenaStats`].
    pub fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        self.hit_counter = telemetry.counter("trace.arena.hits");
        self.miss_counter = telemetry.counter("trace.arena.misses");
        self.generated_counter = telemetry.counter("trace.arena.instructions_materialized");
        self.telemetry = telemetry.clone();
    }

    /// The stream for `(model, seed, len)`, materialising it on first
    /// request and sharing the same `Arc` on every subsequent one.
    pub fn get_or_generate(&self, model: WorkloadModel, seed: u64, len: u64) -> Arc<[Instruction]> {
        let request = TraceRequest { model, seed, len };
        let key = request.key();
        let mut buckets = self
            .buckets
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let bucket = buckets.entry(key).or_default();
        if let Some((_, stream)) = bucket.iter().find(|(r, _)| r == &request) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.hit_counter.inc();
            return Arc::clone(stream);
        }
        // Generation happens under the lock: concurrent requests for the
        // same stream must never duplicate the work.
        let mut generator = TraceGenerator::with_telemetry(model, seed, &self.telemetry);
        let stream: Arc<[Instruction]> = generator.take_vec(len as usize).into();
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.instructions.fetch_add(len, Ordering::Relaxed);
        self.miss_counter.inc();
        self.generated_counter.add(len);
        bucket.push((request, Arc::clone(&stream)));
        stream
    }

    /// Looks up a stream without materialising (and without counting a
    /// miss); counts a hit when resident.
    pub fn get(&self, model: WorkloadModel, seed: u64, len: u64) -> Option<Arc<[Instruction]>> {
        let request = TraceRequest { model, seed, len };
        let buckets = self
            .buckets
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let found = buckets
            .get(&request.key())?
            .iter()
            .find(|(r, _)| r == &request)
            .map(|(_, s)| Arc::clone(s));
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.hit_counter.inc();
        }
        found
    }

    /// Whether a stream is already resident (does not touch the counters).
    pub fn contains(&self, model: WorkloadModel, seed: u64, len: u64) -> bool {
        let request = TraceRequest { model, seed, len };
        self.buckets
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(&request.key())
            .is_some_and(|b| b.iter().any(|(r, _)| r == &request))
    }

    /// Number of distinct streams resident.
    pub fn len(&self) -> usize {
        self.buckets
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .values()
            .map(Vec::len)
            .sum()
    }

    /// True when nothing has been materialised yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total instructions resident across all streams.
    pub fn instructions_resident(&self) -> u64 {
        self.buckets
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .values()
            .flatten()
            .map(|(r, _)| r.len)
            .sum()
    }

    /// Current service counters.
    pub fn stats(&self) -> ArenaStats {
        ArenaStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            instructions_materialized: self.instructions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn materialises_once_and_shares() {
        let arena = TraceArena::new();
        let a = arena.get_or_generate(WorkloadModel::modern_like(), 3, 500);
        let b = arena.get_or_generate(WorkloadModel::modern_like(), 3, 500);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(arena.len(), 1);
        let stats = arena.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(stats.instructions_materialized, 500);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn stream_matches_the_generator() {
        let arena = TraceArena::new();
        let stream = arena.get_or_generate(WorkloadModel::spec_fp_like(), 9, 800);
        let direct = TraceGenerator::new(WorkloadModel::spec_fp_like(), 9).take_vec(800);
        assert_eq!(&stream[..], &direct[..]);
    }

    #[test]
    fn distinct_inputs_get_distinct_streams() {
        let arena = TraceArena::new();
        let base = arena.get_or_generate(WorkloadModel::spec_int_like(), 1, 400);
        let reseeded = arena.get_or_generate(WorkloadModel::spec_int_like(), 2, 400);
        let longer = arena.get_or_generate(WorkloadModel::spec_int_like(), 1, 401);
        let remodelled = arena.get_or_generate(WorkloadModel::legacy_like(), 1, 400);
        assert!(!Arc::ptr_eq(&base, &reseeded));
        assert!(!Arc::ptr_eq(&base, &longer));
        assert!(!Arc::ptr_eq(&base, &remodelled));
        assert_eq!(arena.len(), 4);
        assert_eq!(arena.stats().misses, 4);
        assert_eq!(arena.stats().hits, 0);
        assert_eq!(arena.instructions_resident(), 400 + 400 + 401 + 400);
    }

    #[test]
    fn get_never_materialises() {
        let arena = TraceArena::new();
        assert!(arena.get(WorkloadModel::spec_int_like(), 1, 100).is_none());
        assert!(arena.is_empty());
        assert_eq!(arena.stats().requested(), 0, "a miss via get is uncounted");
        arena.get_or_generate(WorkloadModel::spec_int_like(), 1, 100);
        assert!(arena.get(WorkloadModel::spec_int_like(), 1, 100).is_some());
        assert!(arena.contains(WorkloadModel::spec_int_like(), 1, 100));
        assert_eq!(arena.stats().hits, 1);
    }

    #[test]
    fn concurrent_requests_share_one_materialisation() {
        let arena = Arc::new(TraceArena::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let arena = Arc::clone(&arena);
                scope.spawn(move || arena.get_or_generate(WorkloadModel::modern_like(), 7, 2_000));
            }
        });
        assert_eq!(arena.stats().misses, 1, "one thread generates");
        assert_eq!(arena.stats().hits, 3, "the rest share");
        assert_eq!(arena.instructions_resident(), 2_000);
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn telemetry_mirrors_stats() {
        let telemetry = Telemetry::new();
        let mut arena = TraceArena::new();
        arena.attach_telemetry(&telemetry);
        arena.get_or_generate(WorkloadModel::spec_int_like(), 1, 300);
        arena.get_or_generate(WorkloadModel::spec_int_like(), 1, 300);
        let snap = telemetry.snapshot();
        assert_eq!(snap.counter("trace.arena.hits"), 1);
        assert_eq!(snap.counter("trace.arena.misses"), 1);
        assert_eq!(snap.counter("trace.arena.instructions_materialized"), 300);
        // Generation inside the arena reports the ordinary trace counters.
        assert_eq!(snap.counter("trace.instructions_generated"), 300);
        assert_eq!(snap.counter("trace.generators_created"), 1);
    }
}
