//! Structural content hashing for the workspace's cache keys.
//!
//! Both the simulation cache and the trace arena address their entries by
//! content: the full set of fields that determine a deterministic result.
//! [`Fnv64`] is a minimal FNV-1a accumulator over the *bit patterns* of
//! those fields — `f64`s are fed through [`f64::to_bits`], so two
//! configurations hash equally exactly when their fields are bitwise
//! equal, with no intermediate `String` rendering and no allocation.
//! Collisions are always resolved by a full `PartialEq` comparison at the
//! lookup site, so the hash only needs to spread well.

/// An incremental FNV-1a hasher over 64-bit words.
///
/// # Examples
///
/// ```
/// use pipedepth_trace::hash::Fnv64;
///
/// let mut a = Fnv64::new();
/// a.write_u64(7).write_f64(1.5);
/// let mut b = Fnv64::new();
/// b.write_u64(7).write_f64(1.5);
/// assert_eq!(a.finish(), b.finish());
/// b.write_bool(true);
/// assert_ne!(a.finish(), b.finish());
/// ```
#[derive(Debug, Clone)]
pub struct Fnv64 {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Fnv64 {
    /// A fresh hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv64 { state: FNV_OFFSET }
    }

    /// Feeds one 64-bit word, byte by byte (FNV-1a is a byte hash).
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        for byte in v.to_le_bytes() {
            self.state ^= byte as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Feeds a 32-bit word.
    pub fn write_u32(&mut self, v: u32) -> &mut Self {
        self.write_u64(v as u64)
    }

    /// Feeds a boolean as a full word (keeps adjacent fields unambiguous).
    pub fn write_bool(&mut self, v: bool) -> &mut Self {
        self.write_u64(v as u64)
    }

    /// Feeds an `f64` through its IEEE-754 bit pattern. Note that `-0.0`
    /// and `0.0` hash differently; callers relying on `PartialEq`
    /// collision resolution (which treats them as equal) merely get two
    /// cache entries, never a wrong answer.
    pub fn write_f64(&mut self, v: f64) -> &mut Self {
        self.write_u64(v.to_bits())
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_order_sensitive() {
        let mut a = Fnv64::new();
        a.write_u64(1).write_u64(2);
        let mut b = Fnv64::new();
        b.write_u64(2).write_u64(1);
        assert_ne!(a.finish(), b.finish(), "field order must matter");
    }

    #[test]
    fn f64_uses_bit_pattern() {
        let mut a = Fnv64::new();
        a.write_f64(1.0);
        let mut b = Fnv64::new();
        b.write_f64(1.0 + f64::EPSILON);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn bool_and_u32_spread() {
        let mut t = Fnv64::new();
        t.write_bool(true);
        let mut f = Fnv64::new();
        f.write_bool(false);
        assert_ne!(t.finish(), f.finish());
        let mut x = Fnv64::new();
        x.write_u32(5);
        let mut y = Fnv64::new();
        y.write_u64(5);
        assert_eq!(x.finish(), y.finish(), "u32 widens to u64");
    }

    #[test]
    fn empty_hash_is_offset_basis() {
        assert_eq!(Fnv64::new().finish(), 0xcbf2_9ce4_8422_2325);
    }
}
