//! Statistical workload models.
//!
//! A [`WorkloadModel`] captures the aggregate properties of an application
//! that determine its pipeline behaviour: instruction mix, register
//! dependency distances, branch predictability, and memory locality. The
//! paper's traces "were carefully selected to accurately reflect the
//! instruction mix, module mix and branch prediction characteristics of the
//! entire application" — this type is the synthetic equivalent.

use crate::isa::OpClass;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Instruction-mix fractions. Must sum to 1 (validated by
/// [`InstructionMix::new`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstructionMix {
    /// Register-only ALU fraction.
    pub alu_rr: f64,
    /// Memory-source ALU fraction (RX compute).
    pub alu_rx: f64,
    /// Load fraction.
    pub load: f64,
    /// Store fraction.
    pub store: f64,
    /// Branch fraction.
    pub branch: f64,
    /// Pipelineable floating-point fraction.
    pub fp: f64,
    /// Long-latency floating-point fraction (div/sqrt class).
    pub fp_long: f64,
}

impl InstructionMix {
    /// Creates a mix, validating that the fractions are non-negative and
    /// sum to 1 (within 1e-9).
    ///
    /// # Panics
    ///
    /// Panics on negative fractions or a sum differing from 1.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        alu_rr: f64,
        alu_rx: f64,
        load: f64,
        store: f64,
        branch: f64,
        fp: f64,
        fp_long: f64,
    ) -> Self {
        let mix = InstructionMix {
            alu_rr,
            alu_rx,
            load,
            store,
            branch,
            fp,
            fp_long,
        };
        for (c, f) in mix.fractions() {
            assert!(f >= 0.0, "negative fraction for {c}");
        }
        let sum: f64 = mix.fractions().iter().map(|(_, f)| f).sum();
        assert!(
            (sum - 1.0).abs() < 1e-9,
            "instruction mix must sum to 1, got {sum}"
        );
        mix
    }

    /// A generic integer-code mix (no floating point).
    pub fn integer() -> Self {
        InstructionMix::new(0.40, 0.10, 0.22, 0.10, 0.18, 0.0, 0.0)
    }

    /// A floating-point-heavy scientific mix.
    pub fn floating_point() -> Self {
        InstructionMix::new(0.15, 0.05, 0.25, 0.12, 0.08, 0.30, 0.05)
    }

    /// The fraction for each [`OpClass`], in [`OpClass::ALL`] order.
    pub fn fractions(&self) -> [(OpClass, f64); 7] {
        [
            (OpClass::AluRr, self.alu_rr),
            (OpClass::AluRx, self.alu_rx),
            (OpClass::Load, self.load),
            (OpClass::Store, self.store),
            (OpClass::Branch, self.branch),
            (OpClass::Fp, self.fp),
            (OpClass::FpLong, self.fp_long),
        ]
    }

    /// Fraction of instructions taking the RX (memory) pipeline path.
    pub fn memory_fraction(&self) -> f64 {
        self.alu_rx + self.load + self.store
    }
}

/// Branch-behaviour parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BranchModel {
    /// Number of static branch sites the workload cycles through.
    pub static_sites: u32,
    /// Fraction of branch sites that are strongly biased (predictable).
    pub biased_fraction: f64,
    /// Taken probability of a strongly biased site.
    pub bias: f64,
    /// Fraction of *dynamic* branches that are taken overall is emergent;
    /// unbiased sites are 50/50.
    /// Code footprint in bytes that taken-branch targets span (drives
    /// instruction-fetch locality).
    pub code_footprint: u64,
}

impl BranchModel {
    /// Creates a branch model.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range probabilities or zero sites/footprint.
    pub fn new(static_sites: u32, biased_fraction: f64, bias: f64, code_footprint: u64) -> Self {
        assert!(static_sites > 0, "need at least one branch site");
        assert!(
            (0.0..=1.0).contains(&biased_fraction),
            "biased fraction must be a probability"
        );
        assert!((0.0..=1.0).contains(&bias), "bias must be a probability");
        assert!(code_footprint > 0, "code footprint must be positive");
        BranchModel {
            static_sites,
            biased_fraction,
            bias,
            code_footprint,
        }
    }

    /// A predictable branch population (loop-dominated code).
    pub fn predictable() -> Self {
        BranchModel::new(256, 0.95, 0.975, 64 * 1024)
    }

    /// A hard-to-predict branch population (data-dependent control flow).
    pub fn unpredictable() -> Self {
        BranchModel::new(1024, 0.88, 0.95, 256 * 1024)
    }
}

/// Memory-locality parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryModel {
    /// Working-set size in bytes that data addresses span.
    pub working_set: u64,
    /// Probability that an access continues a sequential (striding) run
    /// rather than jumping to a random location.
    pub spatial_locality: f64,
    /// Stride in bytes of sequential runs.
    pub stride: u64,
    /// Size of the hot subset of the working set, in bytes (temporal
    /// locality). Random jumps land here with probability
    /// [`MemoryModel::hot_probability`].
    pub hot_set: u64,
    /// Probability that a random jump targets the hot set.
    pub hot_probability: f64,
}

impl MemoryModel {
    /// Creates a memory model with no separate hot set (jumps are uniform
    /// over the whole working set).
    ///
    /// # Panics
    ///
    /// Panics on a zero working set or stride, or an out-of-range locality.
    pub fn new(working_set: u64, spatial_locality: f64, stride: u64) -> Self {
        assert!(working_set > 0, "working set must be positive");
        assert!(
            (0.0..=1.0).contains(&spatial_locality),
            "spatial locality must be a probability"
        );
        assert!(stride > 0, "stride must be positive");
        MemoryModel {
            working_set,
            spatial_locality,
            stride,
            hot_set: working_set,
            hot_probability: 0.0,
        }
    }

    /// Adds a hot subset: random jumps target the first `hot_set` bytes of
    /// the working set with probability `hot_probability` (temporal
    /// locality, as real heaps exhibit).
    ///
    /// # Panics
    ///
    /// Panics if `hot_set` is zero or exceeds the working set, or
    /// `hot_probability` is not a probability.
    pub fn with_hot_set(mut self, hot_set: u64, hot_probability: f64) -> Self {
        assert!(
            hot_set > 0 && hot_set <= self.working_set,
            "hot set must be positive and within the working set"
        );
        assert!(
            (0.0..=1.0).contains(&hot_probability),
            "hot probability must be a probability"
        );
        self.hot_set = hot_set;
        self.hot_probability = hot_probability;
        self
    }

    /// Cache-friendly memory behaviour: the whole working set fits in L1.
    pub fn cache_friendly() -> Self {
        MemoryModel::new(24 * 1024, 0.93, 8)
    }

    /// Cache-hostile memory behaviour: a large scattered footprint with a
    /// modest hot set.
    pub fn cache_hostile() -> Self {
        MemoryModel::new(16 * 1024 * 1024, 0.93, 8).with_hot_set(24 * 1024, 0.80)
    }
}

/// Program phase behaviour: real applications alternate between regimes
/// (e.g. a pointer-chasing build phase and a streaming scan phase). When a
/// phase model is attached, the workload's memory behaviour toggles between
/// the base [`MemoryModel`] and the phase's every `period` instructions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseModel {
    /// Instructions per phase before toggling.
    pub period: u64,
    /// Memory behaviour of the alternate phase.
    pub memory: MemoryModel,
}

impl PhaseModel {
    /// Creates a phase model.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn new(period: u64, memory: MemoryModel) -> Self {
        assert!(period > 0, "phase period must be positive");
        PhaseModel { period, memory }
    }
}

/// The complete statistical description of a synthetic workload.
///
/// # Examples
///
/// ```
/// use pipedepth_trace::model::WorkloadModel;
///
/// let w = WorkloadModel::spec_int_like();
/// assert!(w.mix.branch > 0.1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadModel {
    /// Instruction mix.
    pub mix: InstructionMix,
    /// Mean register dependency distance (instructions between producer and
    /// consumer); drawn geometrically. Smaller means less ILP.
    pub mean_dep_distance: f64,
    /// Probability that a source operand is a recent-producer register at
    /// all (vs. a long-dead / immediate-like value with no hazard).
    pub dep_density: f64,
    /// Branch behaviour.
    pub branches: BranchModel,
    /// Memory behaviour.
    pub memory: MemoryModel,
    /// Fraction of instructions that are complex, serialising operations
    /// (issue alone): high for legacy CISC assembler code, low for
    /// compiled RISC-style code.
    pub serial_fraction: f64,
    /// Optional alternating-phase behaviour.
    pub phases: Option<PhaseModel>,
}

impl WorkloadModel {
    /// Validates compound constraints.
    ///
    /// # Panics
    ///
    /// Panics if `mean_dep_distance < 1` or `dep_density` is out of range.
    pub fn new(
        mix: InstructionMix,
        mean_dep_distance: f64,
        dep_density: f64,
        branches: BranchModel,
        memory: MemoryModel,
    ) -> Self {
        assert!(
            mean_dep_distance >= 1.0,
            "mean dependency distance must be at least 1"
        );
        assert!(
            (0.0..=1.0).contains(&dep_density),
            "dependency density must be a probability"
        );
        WorkloadModel {
            mix,
            mean_dep_distance,
            dep_density,
            branches,
            memory,
            serial_fraction: 0.0,
            phases: None,
        }
    }

    /// Attaches alternating-phase behaviour (builder style).
    pub fn with_phases(mut self, phases: PhaseModel) -> Self {
        self.phases = Some(phases);
        self
    }

    /// Sets the fraction of complex, serialising instructions (builder
    /// style).
    ///
    /// # Panics
    ///
    /// Panics unless the fraction is a probability.
    pub fn with_serial_fraction(mut self, fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "serial fraction must be a probability"
        );
        self.serial_fraction = fraction;
        self
    }

    /// A SPECint-like workload: regular integer code, predictable branches,
    /// modest working set, decent ILP.
    pub fn spec_int_like() -> Self {
        WorkloadModel::new(
            InstructionMix::integer(),
            7.0,
            0.35,
            BranchModel::predictable(),
            MemoryModel::cache_friendly(),
        )
    }

    /// A legacy database/OLTP-like workload: low ILP, branchy, large
    /// footprint.
    pub fn legacy_like() -> Self {
        WorkloadModel::new(
            InstructionMix::new(0.34, 0.12, 0.24, 0.12, 0.18, 0.0, 0.0),
            3.5,
            0.50,
            BranchModel::unpredictable(),
            MemoryModel::new(2 * 1024 * 1024, 0.93, 8).with_hot_set(32 * 1024, 0.92),
        )
        .with_serial_fraction(0.55)
    }

    /// A modern C++/Java-like workload: indirect-branch heavy, pointer
    /// chasing, moderate ILP.
    pub fn modern_like() -> Self {
        WorkloadModel::new(
            InstructionMix::new(0.36, 0.10, 0.25, 0.11, 0.18, 0.0, 0.0),
            4.5,
            0.40,
            BranchModel::new(512, 0.93, 0.97, 128 * 1024),
            MemoryModel::new(1024 * 1024, 0.93, 8).with_hot_set(28 * 1024, 0.90),
        )
        .with_serial_fraction(0.12)
    }

    /// A SPECfp-like workload: FP-dominated, few branches, streaming
    /// memory over an L2-resident set.
    pub fn spec_fp_like() -> Self {
        WorkloadModel::new(
            InstructionMix::floating_point(),
            8.0,
            0.40,
            BranchModel::predictable(),
            MemoryModel::new(256 * 1024, 0.98, 8),
        )
    }

    /// Structural content hash of the model: FNV-1a over every field's bit
    /// pattern (see [`crate::hash::Fnv64`]). Two models fingerprint equally
    /// exactly when all fields are bitwise equal, so the fingerprint can
    /// key content-addressed stores (the trace arena, the simulation
    /// cache) without rendering the model to a string. Collisions must
    /// still be resolved by `PartialEq` at the lookup site.
    ///
    /// The hash is memoized process-wide: an experiment run fingerprints
    /// the same handful of models once per *cell* (`CellSpec::key()`, the
    /// arena, the sim cache), so after each model's first walk every call
    /// is a short scan of a tiny table. [`fingerprint_memo_hits`] counts
    /// the walks saved.
    pub fn fingerprint(&self) -> u64 {
        let memo = FINGERPRINT_MEMO.get_or_init(|| Mutex::new(Vec::new()));
        {
            let table = memo
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if let Some((_, hash)) = table.iter().find(|(m, _)| m == self) {
                let hash = *hash;
                drop(table);
                FINGERPRINT_MEMO_HITS.fetch_add(1, Ordering::Relaxed);
                return hash;
            }
        }
        let hash = self.fingerprint_uncached();
        let mut table = memo
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        // Re-check under the lock: a racing thread may have inserted the
        // same model between our probe and this insert.
        if !table.iter().any(|(m, _)| m == self) {
            table.push((*self, hash));
        }
        hash
    }

    /// The full field walk behind [`WorkloadModel::fingerprint`], always
    /// recomputed (the memoized path must agree with this by definition).
    pub fn fingerprint_uncached(&self) -> u64 {
        let mut h = crate::hash::Fnv64::new();
        for (_, frac) in self.mix.fractions() {
            h.write_f64(frac);
        }
        h.write_f64(self.mean_dep_distance)
            .write_f64(self.dep_density)
            .write_u32(self.branches.static_sites)
            .write_f64(self.branches.biased_fraction)
            .write_f64(self.branches.bias)
            .write_u64(self.branches.code_footprint);
        let mem = |h: &mut crate::hash::Fnv64, m: &MemoryModel| {
            h.write_u64(m.working_set)
                .write_f64(m.spatial_locality)
                .write_u64(m.stride)
                .write_u64(m.hot_set)
                .write_f64(m.hot_probability);
        };
        mem(&mut h, &self.memory);
        h.write_f64(self.serial_fraction);
        match &self.phases {
            None => {
                h.write_bool(false);
            }
            Some(p) => {
                h.write_bool(true).write_u64(p.period);
                mem(&mut h, &p.memory);
            }
        }
        h.finish()
    }
}

/// Process-wide fingerprint memo: `(model, hash)` pairs, linearly scanned.
/// An experiment run touches a dozen-odd distinct models, so a flat vector
/// with `PartialEq` probing beats any hash structure — and stays fully
/// deterministic.
static FINGERPRINT_MEMO: OnceLock<Mutex<Vec<(WorkloadModel, u64)>>> = OnceLock::new();
/// Fingerprint calls served from the memo since process start.
static FINGERPRINT_MEMO_HITS: AtomicU64 = AtomicU64::new(0);

/// Total [`WorkloadModel::fingerprint`] calls served from the memo since
/// process start (monotone; consumers flush deltas against their own
/// watermark, as the experiment runner does for
/// `trace.arena.fingerprint_memo_hits`).
pub fn fingerprint_memo_hits() -> u64 {
    FINGERPRINT_MEMO_HITS.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_mixes_are_valid() {
        // Constructors panic on invalid mixes, so building them is the test.
        let _ = InstructionMix::integer();
        let _ = InstructionMix::floating_point();
        let _ = WorkloadModel::spec_int_like();
        let _ = WorkloadModel::legacy_like();
        let _ = WorkloadModel::modern_like();
        let _ = WorkloadModel::spec_fp_like();
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn bad_mix_sum_rejected() {
        let _ = InstructionMix::new(0.5, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "negative fraction")]
    fn negative_mix_rejected() {
        let _ = InstructionMix::new(1.2, -0.2, 0.0, 0.0, 0.0, 0.0, 0.0);
    }

    #[test]
    fn memory_fraction_counts_rx_classes() {
        let m = InstructionMix::integer();
        assert!((m.memory_fraction() - (0.10 + 0.22 + 0.10)).abs() < 1e-12);
    }

    #[test]
    fn fp_mix_has_fp() {
        assert!(InstructionMix::floating_point().fp > 0.0);
        assert_eq!(InstructionMix::integer().fp, 0.0);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bad_locality_rejected() {
        let _ = MemoryModel::new(1024, 1.5, 8);
    }

    #[test]
    #[should_panic(expected = "at least one branch site")]
    fn zero_branch_sites_rejected() {
        let _ = BranchModel::new(0, 0.5, 0.5, 1024);
    }

    #[test]
    #[should_panic(expected = "dependency distance")]
    fn tiny_dep_distance_rejected() {
        let _ = WorkloadModel::new(
            InstructionMix::integer(),
            0.5,
            0.5,
            BranchModel::predictable(),
            MemoryModel::cache_friendly(),
        );
    }

    #[test]
    fn class_presets_are_differentiated() {
        let legacy = WorkloadModel::legacy_like();
        let spec = WorkloadModel::spec_int_like();
        // Legacy has lower ILP (shorter dependency distances) and a larger
        // working set.
        assert!(legacy.mean_dep_distance < spec.mean_dep_distance);
        assert!(legacy.memory.working_set > spec.memory.working_set);
        // And less predictable branches.
        assert!(legacy.branches.biased_fraction < spec.branches.biased_fraction);
    }

    #[test]
    fn fingerprint_tracks_content() {
        let base = WorkloadModel::spec_int_like();
        assert_eq!(
            base.fingerprint(),
            WorkloadModel::spec_int_like().fingerprint()
        );
        // Every structural dimension moves the fingerprint.
        let mut deeper = base;
        deeper.mean_dep_distance += 1.0;
        let mut denser = base;
        denser.dep_density = (denser.dep_density + 0.1).min(1.0);
        let mut branchy = base;
        branchy.branches.static_sites += 1;
        let mut bigger = base;
        bigger.memory.working_set *= 2;
        let serial = base.with_serial_fraction(0.25);
        let phased = base.with_phases(PhaseModel::new(1_000, MemoryModel::cache_hostile()));
        for other in [deeper, denser, branchy, bigger, serial, phased] {
            assert_ne!(base.fingerprint(), other.fingerprint());
            assert_ne!(base, other);
        }
        assert_ne!(
            WorkloadModel::legacy_like().fingerprint(),
            WorkloadModel::modern_like().fingerprint()
        );
    }

    #[test]
    fn fingerprint_memo_agrees_with_the_field_walk() {
        let models = [
            WorkloadModel::spec_int_like(),
            WorkloadModel::legacy_like(),
            WorkloadModel::modern_like(),
            WorkloadModel::spec_fp_like(),
            WorkloadModel::spec_int_like().with_serial_fraction(0.3),
        ];
        for m in models {
            // First call may populate the memo, second is served from it;
            // both must equal the always-recomputed walk.
            assert_eq!(m.fingerprint(), m.fingerprint_uncached());
            assert_eq!(m.fingerprint(), m.fingerprint_uncached());
        }
        // Re-fingerprinting a known model is a memo hit.
        let before = fingerprint_memo_hits();
        let _ = WorkloadModel::spec_int_like().fingerprint();
        assert!(fingerprint_memo_hits() > before, "memo hit not counted");
    }
}
