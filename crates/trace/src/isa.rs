//! The z-like instruction set abstraction the simulator executes.
//!
//! The paper's machine model runs zSeries code, whose salient feature for
//! pipeline studies is the split between register-only (**RR**) and
//! register/memory (**RX**) instructions: RX instructions flow through an
//! extra address-generation + cache-access segment of the pipeline (the
//! paper's Fig. 2). We model exactly the information the pipeline needs:
//! operation class, register operands, memory reference, branch behaviour
//! and execution latency class.

use std::fmt;

/// An architected register. The z-like machine has 16 general-purpose and
/// 16 floating-point registers; we give each file its own index space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Reg {
    /// General-purpose register `0..16`.
    Gpr(u8),
    /// Floating-point register `0..16`.
    Fpr(u8),
}

impl Reg {
    /// Number of registers in each file.
    pub const FILE_SIZE: u8 = 16;

    /// Creates a GPR, wrapping the index into range.
    pub fn gpr(i: u8) -> Self {
        Reg::Gpr(i % Self::FILE_SIZE)
    }

    /// Creates an FPR, wrapping the index into range.
    pub fn fpr(i: u8) -> Self {
        Reg::Fpr(i % Self::FILE_SIZE)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Reg::Gpr(i) => write!(f, "r{i}"),
            Reg::Fpr(i) => write!(f, "f{i}"),
        }
    }
}

/// Operation class: determines which pipeline path an instruction takes and
/// its execution latency class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpClass {
    /// Register-only integer ALU operation (RR format): Decode → Rename →
    /// Execute queue → E-unit → Completion.
    AluRr,
    /// Integer operation with a memory source operand (RX format): adds the
    /// Address queue → Agen → Cache access segment.
    AluRx,
    /// Load from memory into a register (RX).
    Load,
    /// Store from a register to memory (RX).
    Store,
    /// Conditional or unconditional branch (resolved in the E-unit).
    Branch,
    /// Floating-point operation (RR path, multi-cycle E-unit occupancy; the
    /// paper: "floating point instructions execute individually and take
    /// multiple cycles to complete").
    Fp,
    /// Long-latency floating-point operation (divide/sqrt class).
    FpLong,
}

impl OpClass {
    /// Whether the instruction takes the RX (address-generation + cache)
    /// path of the pipeline.
    pub fn is_memory(self) -> bool {
        matches!(self, OpClass::AluRx | OpClass::Load | OpClass::Store)
    }

    /// Whether the instruction is floating point.
    pub fn is_fp(self) -> bool {
        matches!(self, OpClass::Fp | OpClass::FpLong)
    }

    /// Base execution latency in *logic work* terms: the number of
    /// single-stage E-unit passes the operation needs at the base (1-stage
    /// E-unit) design. Multi-cycle FP models the paper's non-pipelined FP
    /// execution.
    pub fn base_exec_cycles(self) -> u32 {
        match self {
            OpClass::AluRr | OpClass::AluRx | OpClass::Load | OpClass::Store | OpClass::Branch => 1,
            OpClass::Fp => 4,
            OpClass::FpLong => 12,
        }
    }

    /// All operation classes, for enumeration in mix tables.
    pub const ALL: [OpClass; 7] = [
        OpClass::AluRr,
        OpClass::AluRx,
        OpClass::Load,
        OpClass::Store,
        OpClass::Branch,
        OpClass::Fp,
        OpClass::FpLong,
    ];
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpClass::AluRr => "alu.rr",
            OpClass::AluRx => "alu.rx",
            OpClass::Load => "load",
            OpClass::Store => "store",
            OpClass::Branch => "branch",
            OpClass::Fp => "fp",
            OpClass::FpLong => "fp.long",
        };
        f.write_str(s)
    }
}

/// A memory reference carried by an RX instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemRef {
    /// Byte address.
    pub addr: u64,
    /// Access size in bytes.
    pub size: u8,
}

/// Branch information carried by a branch instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BranchInfo {
    /// Whether the branch is taken in this dynamic instance.
    pub taken: bool,
    /// Target address when taken.
    pub target: u64,
}

/// One dynamic instruction of a trace.
///
/// # Examples
///
/// ```
/// use pipedepth_trace::isa::{Instruction, OpClass, Reg};
///
/// let add = Instruction::new(0x1000, OpClass::AluRr)
///     .with_dst(Reg::gpr(1))
///     .with_src(Reg::gpr(2))
///     .with_src(Reg::gpr(3));
/// assert_eq!(add.srcs().count(), 2);
/// assert!(!add.class.is_memory());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Instruction {
    /// Instruction address.
    pub pc: u64,
    /// Operation class.
    pub class: OpClass,
    /// Destination register, if any.
    pub dst: Option<Reg>,
    /// Up to two source registers.
    pub src: [Option<Reg>; 2],
    /// Memory reference for RX instructions.
    pub mem: Option<MemRef>,
    /// Branch behaviour for branches.
    pub branch: Option<BranchInfo>,
    /// Whether this is a complex operation that must issue alone (legacy
    /// CISC instructions, serialising ops).
    pub serial: bool,
}

impl Instruction {
    /// Creates a bare instruction of the given class at `pc`.
    pub fn new(pc: u64, class: OpClass) -> Self {
        Instruction {
            pc,
            class,
            dst: None,
            src: [None, None],
            mem: None,
            branch: None,
            serial: false,
        }
    }

    /// Marks the instruction as serialising: it issues alone (builder
    /// style).
    pub fn with_serial(mut self) -> Self {
        self.serial = true;
        self
    }

    /// Sets the destination register (builder style).
    pub fn with_dst(mut self, r: Reg) -> Self {
        self.dst = Some(r);
        self
    }

    /// Adds a source register into the first free slot (builder style).
    ///
    /// # Panics
    ///
    /// Panics if both source slots are already occupied.
    pub fn with_src(mut self, r: Reg) -> Self {
        if self.src[0].is_none() {
            self.src[0] = Some(r);
        } else if self.src[1].is_none() {
            self.src[1] = Some(r);
        } else {
            panic!("instruction already has two sources");
        }
        self
    }

    /// Attaches a memory reference (builder style).
    pub fn with_mem(mut self, mem: MemRef) -> Self {
        self.mem = Some(mem);
        self
    }

    /// Attaches branch information (builder style).
    pub fn with_branch(mut self, branch: BranchInfo) -> Self {
        self.branch = Some(branch);
        self
    }

    /// Iterates over the present source registers.
    pub fn srcs(&self) -> impl Iterator<Item = Reg> + '_ {
        self.src.iter().flatten().copied()
    }

    /// Whether this dynamic instance is a taken branch.
    pub fn is_taken_branch(&self) -> bool {
        self.branch.map(|b| b.taken).unwrap_or(false)
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#010x}: {}", self.pc, self.class)?;
        if let Some(d) = self.dst {
            write!(f, " {d}")?;
        }
        for s in self.srcs() {
            write!(f, ", {s}")?;
        }
        if let Some(m) = self.mem {
            write!(f, " [{:#x}]", m.addr)?;
        }
        if let Some(b) = self.branch {
            write!(
                f,
                " {} -> {:#x}",
                if b.taken { "taken" } else { "not-taken" },
                b.target
            )?;
        }
        if self.serial {
            write!(f, " (serial)")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_renders_operands() {
        let i = Instruction::new(0x1000, OpClass::AluRr)
            .with_dst(Reg::gpr(1))
            .with_src(Reg::gpr(2));
        let s = i.to_string();
        assert!(s.contains("alu.rr"));
        assert!(s.contains("r1"));
        assert!(s.contains("r2"));
    }

    #[test]
    fn display_renders_branch_and_serial() {
        let b = Instruction::new(0x20, OpClass::Branch)
            .with_branch(BranchInfo {
                taken: true,
                target: 0x40,
            })
            .with_serial();
        let s = b.to_string();
        assert!(s.contains("taken"));
        assert!(s.contains("(serial)"));
    }

    #[test]
    fn reg_constructors_wrap() {
        assert_eq!(Reg::gpr(17), Reg::Gpr(1));
        assert_eq!(Reg::fpr(16), Reg::Fpr(0));
    }

    #[test]
    fn reg_files_are_distinct() {
        assert_ne!(Reg::gpr(3), Reg::fpr(3));
    }

    #[test]
    fn memory_classes() {
        assert!(OpClass::Load.is_memory());
        assert!(OpClass::Store.is_memory());
        assert!(OpClass::AluRx.is_memory());
        assert!(!OpClass::AluRr.is_memory());
        assert!(!OpClass::Branch.is_memory());
        assert!(!OpClass::Fp.is_memory());
    }

    #[test]
    fn fp_latencies_exceed_integer() {
        assert!(OpClass::Fp.base_exec_cycles() > OpClass::AluRr.base_exec_cycles());
        assert!(OpClass::FpLong.base_exec_cycles() > OpClass::Fp.base_exec_cycles());
    }

    #[test]
    fn builder_fills_sources_in_order() {
        let i = Instruction::new(0, OpClass::AluRr)
            .with_src(Reg::gpr(1))
            .with_src(Reg::gpr(2));
        assert_eq!(i.src, [Some(Reg::Gpr(1)), Some(Reg::Gpr(2))]);
    }

    #[test]
    #[should_panic(expected = "two sources")]
    fn third_source_panics() {
        let _ = Instruction::new(0, OpClass::AluRr)
            .with_src(Reg::gpr(1))
            .with_src(Reg::gpr(2))
            .with_src(Reg::gpr(3));
    }

    #[test]
    fn taken_branch_detection() {
        let b = Instruction::new(0, OpClass::Branch).with_branch(BranchInfo {
            taken: true,
            target: 0x2000,
        });
        assert!(b.is_taken_branch());
        let nb = Instruction::new(0, OpClass::Branch).with_branch(BranchInfo {
            taken: false,
            target: 0x2000,
        });
        assert!(!nb.is_taken_branch());
        assert!(!Instruction::new(0, OpClass::AluRr).is_taken_branch());
    }

    #[test]
    fn display_names() {
        assert_eq!(OpClass::AluRr.to_string(), "alu.rr");
        assert_eq!(Reg::gpr(5).to_string(), "r5");
        assert_eq!(Reg::fpr(5).to_string(), "f5");
    }

    #[test]
    fn all_classes_enumerated_once() {
        let mut seen = std::collections::HashSet::new();
        for c in OpClass::ALL {
            assert!(seen.insert(c), "duplicate in OpClass::ALL: {c}");
        }
        assert_eq!(seen.len(), 7);
    }
}
