//! Binary codecs ([`Blob`]) for the workload-model family, so experiment
//! cell specs embedding a [`WorkloadModel`] can be persisted through
//! `pipedepth-store`.
//!
//! Every field is encoded — floats by IEEE-754 bit pattern — so a
//! decoded model compares equal to the original and reproduces the same
//! content fingerprint; that exactness is what lets the on-disk result
//! tier resolve key collisions by full spec comparison. Any change to
//! these field lists must be accompanied by a `schema_version` bump in
//! the consuming store namespace.

use crate::model::{BranchModel, InstructionMix, MemoryModel, PhaseModel, WorkloadModel};
use pipedepth_store::{Blob, ByteReader, ByteWriter, DecodeError};

impl Blob for InstructionMix {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_f64(self.alu_rr)
            .put_f64(self.alu_rx)
            .put_f64(self.load)
            .put_f64(self.store)
            .put_f64(self.branch)
            .put_f64(self.fp)
            .put_f64(self.fp_long);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(InstructionMix {
            alu_rr: r.take_f64()?,
            alu_rx: r.take_f64()?,
            load: r.take_f64()?,
            store: r.take_f64()?,
            branch: r.take_f64()?,
            fp: r.take_f64()?,
            fp_long: r.take_f64()?,
        })
    }
}

impl Blob for BranchModel {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u32(self.static_sites)
            .put_f64(self.biased_fraction)
            .put_f64(self.bias)
            .put_u64(self.code_footprint);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(BranchModel {
            static_sites: r.take_u32()?,
            biased_fraction: r.take_f64()?,
            bias: r.take_f64()?,
            code_footprint: r.take_u64()?,
        })
    }
}

impl Blob for MemoryModel {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u64(self.working_set)
            .put_f64(self.spatial_locality)
            .put_u64(self.stride)
            .put_u64(self.hot_set)
            .put_f64(self.hot_probability);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(MemoryModel {
            working_set: r.take_u64()?,
            spatial_locality: r.take_f64()?,
            stride: r.take_u64()?,
            hot_set: r.take_u64()?,
            hot_probability: r.take_f64()?,
        })
    }
}

impl Blob for PhaseModel {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u64(self.period);
        self.memory.encode(w);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(PhaseModel {
            period: r.take_u64()?,
            memory: MemoryModel::decode(r)?,
        })
    }
}

impl Blob for WorkloadModel {
    fn encode(&self, w: &mut ByteWriter) {
        self.mix.encode(w);
        w.put_f64(self.mean_dep_distance).put_f64(self.dep_density);
        self.branches.encode(w);
        self.memory.encode(w);
        w.put_f64(self.serial_fraction);
        self.phases.encode(w);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(WorkloadModel {
            mix: InstructionMix::decode(r)?,
            mean_dep_distance: r.take_f64()?,
            dep_density: r.take_f64()?,
            branches: BranchModel::decode(r)?,
            memory: MemoryModel::decode(r)?,
            serial_fraction: r.take_f64()?,
            phases: Option::<PhaseModel>::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_models_round_trip_with_fingerprints() {
        for model in [
            WorkloadModel::spec_int_like(),
            WorkloadModel::spec_fp_like(),
        ] {
            let decoded = WorkloadModel::from_record(&model.to_record()).expect("decodes");
            assert_eq!(decoded, model);
            assert_eq!(
                decoded.fingerprint(),
                model.fingerprint(),
                "content fingerprint survives the disk round trip"
            );
        }
    }

    #[test]
    fn phased_models_round_trip() {
        let mut model = WorkloadModel::spec_fp_like();
        model.phases = Some(PhaseModel {
            period: 10_000,
            memory: model.memory,
        });
        let decoded = WorkloadModel::from_record(&model.to_record()).expect("decodes");
        assert_eq!(decoded, model);
    }

    #[test]
    fn truncated_models_fail_cleanly() {
        let bytes = WorkloadModel::spec_int_like().to_record();
        for keep in [0, 8, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                WorkloadModel::from_record(&bytes[..keep]).is_err(),
                "{keep}"
            );
        }
    }
}
