//! Property-based tests for the trace substrate.

use pipedepth_trace::codec::{decode, encode};
use pipedepth_trace::isa::{BranchInfo, Instruction, MemRef, OpClass, Reg};
use pipedepth_trace::model::{BranchModel, InstructionMix, MemoryModel, WorkloadModel};
use pipedepth_trace::{TraceGenerator, TraceStats};
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (any::<bool>(), 0u8..16).prop_map(|(fp, i)| if fp { Reg::fpr(i) } else { Reg::gpr(i) })
}

fn arb_class() -> impl Strategy<Value = OpClass> {
    prop::sample::select(OpClass::ALL.to_vec())
}

prop_compose! {
    fn arb_instruction()(
        pc in 0u64..1 << 40,
        class in arb_class(),
        dst in prop::option::of(arb_reg()),
        src0 in prop::option::of(arb_reg()),
        src1 in prop::option::of(arb_reg()),
        addr in 0u64..1 << 40,
        size in 1u8..16,
        taken in any::<bool>(),
        target in 0u64..1 << 40,
        serial in any::<bool>(),
    ) -> Instruction {
        let mut i = Instruction::new(pc, class);
        i.dst = dst;
        i.src = [src0, src1];
        if class.is_memory() {
            i.mem = Some(MemRef { addr, size });
        }
        if class == OpClass::Branch {
            i.branch = Some(BranchInfo { taken, target });
        }
        i.serial = serial;
        i
    }
}

fn arb_model() -> impl Strategy<Value = WorkloadModel> {
    (
        1.5f64..12.0, // mean dep distance
        0.1f64..0.9,  // dep density
        0.5f64..0.99, // biased fraction
        0.6f64..0.99, // bias
        0.5f64..0.99, // spatial locality
        12u64..24,    // log2 working set
        0.0f64..0.7,  // serial fraction
    )
        .prop_map(|(dist, dens, biased, bias, loc, ws_log, serial)| {
            WorkloadModel::new(
                InstructionMix::integer(),
                dist,
                dens,
                BranchModel::new(256, biased, bias, 64 * 1024),
                MemoryModel::new(1 << ws_log, loc, 8),
            )
            .with_serial_fraction(serial)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn decode_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        // Whatever the bytes, decode returns Ok or Err — it never panics
        // and never allocates unboundedly.
        let _ = decode(&bytes[..]);
    }

    #[test]
    fn decode_never_panics_on_corrupted_valid_stream(
        seed in any::<u64>(), flip in 0usize..1000, bit in 0u8..8
    ) {
        let trace = TraceGenerator::new(WorkloadModel::spec_int_like(), seed).take_vec(50);
        let mut buf = Vec::new();
        encode(&trace, &mut buf).unwrap();
        let idx = flip % buf.len();
        buf[idx] ^= 1 << bit;
        let _ = decode(&buf[..]);
    }

    #[test]
    fn codec_roundtrips_arbitrary_traces(trace in prop::collection::vec(arb_instruction(), 0..200)) {
        let mut buf = Vec::new();
        encode(&trace, &mut buf).expect("vec write cannot fail");
        let back = decode(&buf[..]).expect("decode what we encoded");
        prop_assert_eq!(back, trace);
    }

    #[test]
    fn generator_is_deterministic(model in arb_model(), seed in any::<u64>()) {
        let a = TraceGenerator::new(model, seed).take_vec(300);
        let b = TraceGenerator::new(model, seed).take_vec(300);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn generated_memory_ops_carry_refs(model in arb_model(), seed in any::<u64>()) {
        let trace = TraceGenerator::new(model, seed).take_vec(500);
        for i in &trace {
            prop_assert_eq!(i.mem.is_some(), i.class.is_memory());
            prop_assert_eq!(i.branch.is_some(), i.class == OpClass::Branch);
        }
    }

    #[test]
    fn generated_addresses_within_working_set(model in arb_model(), seed in any::<u64>()) {
        let ws = model.memory.working_set;
        let trace = TraceGenerator::new(model, seed).take_vec(500);
        for m in trace.iter().filter_map(|i| i.mem) {
            prop_assert!(m.addr >= 0x4000_0000);
            prop_assert!(m.addr < 0x4000_0000 + ws + 64, "addr {:#x} ws {}", m.addr, ws);
        }
    }

    #[test]
    fn not_taken_branches_fall_through(model in arb_model(), seed in any::<u64>()) {
        let trace = TraceGenerator::new(model, seed).take_vec(500);
        for i in trace.iter().filter(|i| i.class == OpClass::Branch) {
            let b = i.branch.expect("branch info present");
            if !b.taken {
                prop_assert_eq!(b.target, i.pc + 4);
            }
        }
    }

    #[test]
    fn stats_fractions_sum_to_one(model in arb_model(), seed in any::<u64>()) {
        let trace = TraceGenerator::new(model, seed).take_vec(1000);
        let stats = TraceStats::of(&trace);
        let total: f64 = OpClass::ALL.iter().map(|&c| stats.class_fraction(c)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert_eq!(stats.instructions, 1000);
    }

    #[test]
    fn serial_fraction_is_realised(seed in any::<u64>(), frac in 0.1f64..0.9) {
        let model = WorkloadModel::new(
            InstructionMix::integer(),
            4.0,
            0.5,
            BranchModel::predictable(),
            MemoryModel::cache_friendly(),
        )
        .with_serial_fraction(frac);
        let trace = TraceGenerator::new(model, seed).take_vec(4000);
        // FP ops are excluded from serialisation; integer mix has none.
        let measured = trace.iter().filter(|i| i.serial).count() as f64 / 4000.0;
        prop_assert!((measured - frac).abs() < 0.06, "wanted {frac}, got {measured}");
    }
}
