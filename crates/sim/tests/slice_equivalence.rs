//! Slice-mode / streaming-mode equivalence.
//!
//! `Engine::run_slice` over an arena-materialised trace is the repro run's
//! hot path; `Engine::run` over a live generator is the reference
//! semantics. The two must be indistinguishable: for every workload class
//! and a spread of pipeline depths, the full `SimReport` — cycle counts,
//! hazard attribution, per-unit activity, miss rates — must be identical,
//! instruction for instruction. This is the contract that lets the runner
//! swap paths freely (`--no-arena`) without perturbing a single figure.

use pipedepth_sim::{Engine, SimConfig};
use pipedepth_trace::{TraceArena, TraceGenerator, WorkloadModel};

const WARMUP: u64 = 3_000;
const MEASURE: u64 = 6_000;
const DEPTHS: [u32; 4] = [2, 8, 16, 25];

/// The paper's four workload classes, by their model presets.
fn classes() -> [(&'static str, WorkloadModel); 4] {
    [
        ("legacy", WorkloadModel::legacy_like()),
        ("spec_int", WorkloadModel::spec_int_like()),
        ("modern", WorkloadModel::modern_like()),
        ("spec_fp", WorkloadModel::spec_fp_like()),
    ]
}

#[test]
fn run_slice_reproduces_streaming_run_exactly() {
    let arena = TraceArena::new();
    for (name, model) in classes() {
        let seed = 0xA11CE ^ name.len() as u64;
        let trace = arena.get_or_generate(model, seed, WARMUP + MEASURE);
        for depth in DEPTHS {
            // Reference: the streaming path over a live generator.
            let mut gen = TraceGenerator::new(model, seed);
            let mut streaming = Engine::new(SimConfig::paper(depth));
            streaming.warm_up(&mut gen, WARMUP);
            let reference = streaming.run(&mut gen, MEASURE);

            // Hot path: the slice entry points over the shared stream.
            let mut sliced = Engine::new(SimConfig::paper(depth));
            sliced.warm_up_slice(&trace[..WARMUP as usize], WARMUP);
            let fast = sliced.run_slice(&trace[WARMUP as usize..], MEASURE);

            // SimReport's PartialEq covers config, plan, instructions,
            // cycles, distinct issue cycles, per-unit activity, hazard
            // events and stall cycles, branches, mispredicts, miss rates
            // and memory wait — the whole observable surface.
            assert_eq!(
                reference, fast,
                "slice mode diverged for {name} at depth {depth}"
            );
        }
    }
    // The whole matrix drew its traces from four materialisations.
    assert_eq!(arena.stats().misses, 4);
}

#[test]
fn slice_windows_compose_like_one_stream() {
    // Splitting the slice at the warmup boundary must behave like the
    // generator's single continuous stream: no instruction is dropped or
    // replayed at the seam. Run the measure window over the *wrong* seam
    // and check it actually changes the answer (the seam is load-bearing).
    let model = WorkloadModel::spec_int_like();
    let arena = TraceArena::new();
    let trace = arena.get_or_generate(model, 7, WARMUP + MEASURE);
    let mut aligned = Engine::new(SimConfig::paper(12));
    aligned.warm_up_slice(&trace[..WARMUP as usize], WARMUP);
    let good = aligned.run_slice(&trace[WARMUP as usize..], MEASURE);

    let mut misaligned = Engine::new(SimConfig::paper(12));
    misaligned.warm_up_slice(&trace[..WARMUP as usize], WARMUP);
    let skewed = misaligned.run_slice(&trace[WARMUP as usize + 1..], MEASURE - 1);
    assert_ne!(
        good, skewed,
        "a one-instruction seam shift must be observable"
    );
}
