//! Property-based tests for the pipeline simulator.

use pipedepth_sim::{Engine, Features, HazardKind, IssuePolicy, SimConfig, StagePlan, Unit};
use pipedepth_trace::{TraceGenerator, WorkloadModel};
use proptest::prelude::*;

fn arb_depth() -> impl Strategy<Value = u32> {
    2u32..=25
}

fn arb_model() -> impl Strategy<Value = WorkloadModel> {
    prop::sample::select(vec![
        WorkloadModel::legacy_like(),
        WorkloadModel::spec_int_like(),
        WorkloadModel::modern_like(),
        WorkloadModel::spec_fp_like(),
    ])
}

fn run(model: WorkloadModel, seed: u64, depth: u32, n: u64) -> pipedepth_sim::SimReport {
    let mut e = Engine::new(SimConfig::paper(depth));
    let mut gen = TraceGenerator::new(model, seed);
    e.run(&mut gen, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn stage_plans_partition_every_depth(depth in arb_depth()) {
        let plan = StagePlan::try_for_depth(depth).expect("valid depth");
        prop_assert_eq!(plan.counted_depth(), depth);
        prop_assert!(plan.decode >= 1);
        prop_assert!(plan.execute >= 1);
    }

    #[test]
    fn cpi_never_beats_issue_width(model in arb_model(), seed in any::<u64>(), depth in arb_depth()) {
        let r = run(model, seed, depth, 4000);
        // 4-wide machine: at most 4 instructions per cycle.
        prop_assert!(r.cpi() >= 0.25 - 1e-12, "cpi {}", r.cpi());
    }

    #[test]
    fn retire_cycle_bounds_cycle_count(model in arb_model(), seed in any::<u64>(), depth in arb_depth()) {
        let r = run(model, seed, depth, 2000);
        // Every instruction passes the whole machine at least once.
        let plan = StagePlan::try_for_depth(depth).expect("valid depth");
        let min_transit = (plan.decode + plan.execute + plan.complete) as u64;
        prop_assert!(r.cycles >= min_transit + 2000 / 4 - 1, "cycles {}", r.cycles);
    }

    #[test]
    fn alpha_within_machine_limits(model in arb_model(), seed in any::<u64>(), depth in arb_depth()) {
        let r = run(model, seed, depth, 4000);
        prop_assert!(r.alpha() >= 1.0);
        prop_assert!(r.alpha() <= 4.0 + 1e-12);
    }

    #[test]
    fn gamma_respects_the_cap(model in arb_model(), seed in any::<u64>(), depth in arb_depth()) {
        let r = run(model, seed, depth, 4000);
        // Stalls are capped at two pipeline drains per hazard.
        prop_assert!(r.gamma() <= 2.0 + 1e-9, "gamma {}", r.gamma());
        prop_assert!(r.gamma() >= 0.0);
    }

    #[test]
    fn determinism_across_identical_runs(model in arb_model(), seed in any::<u64>(), depth in arb_depth()) {
        let a = run(model, seed, depth, 2000);
        let b = run(model, seed, depth, 2000);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn warmup_preserves_measured_instruction_count(model in arb_model(), seed in any::<u64>()) {
        let mut e = Engine::new(SimConfig::paper(10));
        let mut gen = TraceGenerator::new(model, seed);
        e.warm_up(&mut gen, 3000);
        let r = e.run(&mut gen, 2000);
        prop_assert_eq!(r.instructions, 2000);
        prop_assert!(r.cycles > 0);
    }

    #[test]
    fn out_of_order_never_slower(model in arb_model(), seed in any::<u64>(), depth in arb_depth()) {
        let cfg_in = SimConfig::paper(depth);
        let cfg_ooo = SimConfig::paper(depth).with_features(Features {
            issue: IssuePolicy::OutOfOrder,
            ..Features::default()
        });
        let mut a = Engine::new(cfg_in);
        let mut b = Engine::new(cfg_ooo);
        let mut g1 = TraceGenerator::new(model, seed);
        let mut g2 = TraceGenerator::new(model, seed);
        let r_in = a.run(&mut g1, 3000);
        let r_ooo = b.run(&mut g2, 3000);
        prop_assert!(
            r_ooo.cycles <= r_in.cycles,
            "ooo {} vs in-order {}",
            r_ooo.cycles,
            r_in.cycles
        );
    }

    #[test]
    fn hazard_totals_are_consistent(model in arb_model(), seed in any::<u64>(), depth in arb_depth()) {
        let r = run(model, seed, depth, 3000);
        let sum: u64 = HazardKind::ALL.iter().map(|&k| r.hazards.events(k)).sum();
        prop_assert_eq!(sum, r.hazards.total_events());
        let stall_sum: u64 = HazardKind::ALL.iter().map(|&k| r.hazards.stall_cycles(k)).sum();
        prop_assert_eq!(stall_sum, r.hazards.total_stall_cycles());
    }

    #[test]
    fn activity_consistent_with_plan(model in arb_model(), seed in any::<u64>(), depth in arb_depth()) {
        let r = run(model, seed, depth, 3000);
        let plan = StagePlan::try_for_depth(depth).expect("valid depth");
        // Decode and Complete are traversed by every instruction.
        prop_assert_eq!(r.unit_activity(Unit::Decode), 3000 * plan.decode as u64);
        prop_assert_eq!(r.unit_activity(Unit::Complete), 3000 * plan.complete as u64);
        // Memory units only by memory instructions.
        prop_assert!(r.unit_activity(Unit::Cache) <= 3000 * plan.cache as u64);
    }
}
