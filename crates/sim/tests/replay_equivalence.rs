//! Annotate/replay vs. stage-engine equivalence.
//!
//! The sweep kernel's contract is exactness: annotating a trace once and
//! replaying the annotation per depth must produce a `SimReport` that is
//! *bit-identical* to a fresh stage-engine pass over the same stream —
//! for every workload class, every depth, single-depth and batched
//! multi-lane replay alike. This is the contract that lets the runner
//! group a sweep's cells into one annotate + one batched replay
//! (`--no-sweep-kernel` restores the per-cell engine path) without
//! perturbing a single figure.

use pipedepth_sim::annotate::{annotate, AnnotationStore};
use pipedepth_sim::config::{Features, IssuePolicy};
use pipedepth_sim::replay::{replay, replay_sweep};
use pipedepth_sim::{Engine, SimConfig, SimReport};
use pipedepth_telemetry::Telemetry;
use pipedepth_trace::isa::Instruction;
use pipedepth_trace::{TraceArena, WorkloadModel};

const WARMUP: u64 = 3_000;
const MEASURE: u64 = 6_000;
const DEPTHS: [u32; 5] = [2, 7, 13, 19, 25];

/// The paper's four workload classes, by their model presets.
fn classes() -> [(&'static str, WorkloadModel); 4] {
    [
        ("legacy", WorkloadModel::legacy_like()),
        ("spec_int", WorkloadModel::spec_int_like()),
        ("modern", WorkloadModel::modern_like()),
        ("spec_fp", WorkloadModel::spec_fp_like()),
    ]
}

/// The reference semantics: a fresh stage engine over the slice hot path.
fn engine_reference(trace: &[Instruction], config: SimConfig, warmup: u64) -> SimReport {
    let mut engine = Engine::new(config);
    engine.warm_up_slice(&trace[..warmup as usize], warmup);
    engine.run_slice(&trace[warmup as usize..], u64::MAX)
}

#[test]
fn replay_reproduces_engine_across_class_depth_grid() {
    let arena = TraceArena::new();
    for (name, model) in classes() {
        let seed = 0xA11CE ^ name.len() as u64;
        let trace = arena.get_or_generate(model, seed, WARMUP + MEASURE);
        let base = SimConfig::paper(DEPTHS[0]);
        let notes = annotate(&trace, base.cache, base.predictor).expect("valid config");

        // Batched: all five depths advanced through one annotation pass.
        let configs: Vec<SimConfig> = DEPTHS.iter().map(|&d| SimConfig::paper(d)).collect();
        let batched = replay_sweep(&notes, &configs, WARMUP, MEASURE, &Telemetry::disabled())
            .expect("valid configs");
        assert_eq!(batched.len(), DEPTHS.len());

        for (config, from_batch) in configs.iter().zip(&batched) {
            let reference = engine_reference(&trace, *config, WARMUP);
            let single = replay(&notes, *config, WARMUP, MEASURE).expect("valid config");
            assert_eq!(
                reference, single,
                "single-depth replay diverged for {name} at depth {}",
                config.depth
            );
            assert_eq!(
                &reference, from_batch,
                "batched replay diverged for {name} at depth {}",
                config.depth
            );
        }
    }
}

#[test]
fn batched_lanes_may_differ_in_everything_but_the_annotation() {
    // Lanes sharing one annotation may differ in any knob that does not
    // feed it: depth, width, cache ports, forwarding, stall-on-use,
    // queue scaling, issue policy. Mix them all in one batch.
    let arena = TraceArena::new();
    let trace = arena.get_or_generate(WorkloadModel::modern_like(), 99, WARMUP + MEASURE);
    let base = SimConfig::paper(8);
    let notes = annotate(&trace, base.cache, base.predictor).expect("valid config");

    let mut lanes = vec![SimConfig::paper(8), SimConfig::paper(20)];
    let mut narrow = SimConfig::paper(12);
    narrow.width = 2;
    narrow.cache_ports = 1;
    lanes.push(narrow);
    let mut no_forwarding = SimConfig::paper(12);
    no_forwarding.features = Features {
        forwarding: false,
        ..Features::default()
    };
    lanes.push(no_forwarding);
    let mut blocking = SimConfig::paper(16);
    blocking.features = Features {
        stall_on_use: false,
        scaled_queues: false,
        ..Features::default()
    };
    lanes.push(blocking);
    let mut ooo = SimConfig::paper(16);
    ooo.features = Features {
        issue: IssuePolicy::OutOfOrder,
        ..Features::default()
    };
    lanes.push(ooo);

    let batched =
        replay_sweep(&notes, &lanes, WARMUP, MEASURE, &Telemetry::disabled()).expect("valid");
    for (config, report) in lanes.iter().zip(&batched) {
        let reference = engine_reference(&trace, *config, WARMUP);
        assert_eq!(
            &reference, report,
            "mixed-feature lane diverged (depth {}, width {})",
            config.depth, config.width
        );
    }
}

#[test]
fn warmup_seam_matches_engine_exactly() {
    // The warmup boundary is where the lane resets its statistics while
    // keeping timing state; sweep it across odd positions, including 0
    // and beyond the trace length.
    let arena = TraceArena::new();
    let trace = arena.get_or_generate(WorkloadModel::spec_fp_like(), 5, 4_000);
    let config = SimConfig::paper(11);
    let notes = annotate(&trace, config.cache, config.predictor).expect("valid config");
    for warmup in [0u64, 1, 777, 3_999, 4_000, 9_000] {
        let clamped = warmup.min(4_000);
        let mut engine = Engine::new(config);
        engine.warm_up_slice(&trace, warmup);
        let reference = engine.run_slice(&trace[clamped as usize..], u64::MAX);
        let fast = replay(&notes, config, warmup, u64::MAX).expect("valid config");
        assert_eq!(reference, fast, "warmup seam {warmup} diverged");
    }
}

/// A deterministic xorshift for randomized-model generation — the vendored
/// proptest idiom without the dependency.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// Uniform-ish f64 in [lo, hi).
    fn in_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (self.next() >> 11) as f64 / (1u64 << 53) as f64 * (hi - lo)
    }
}

#[test]
fn randomized_workloads_replay_exactly() {
    // Proptest-style: perturb a base model's knobs through a seeded RNG
    // and pin replay == engine on every case. Failures print the case
    // seed, which fully reproduces the model.
    let arena = TraceArena::new();
    let mut rng = XorShift(0xDEC0DE);
    for case in 0..8u64 {
        let case_seed = rng.next();
        // A random instruction mix: raw weights, normalised to sum to 1.
        let w = [
            rng.in_range(0.2, 1.0),  // alu_rr
            rng.in_range(0.0, 0.3),  // alu_rx
            rng.in_range(0.1, 0.6),  // load
            rng.in_range(0.05, 0.3), // store
            rng.in_range(0.05, 0.4), // branch
            rng.in_range(0.0, 0.5),  // fp
            rng.in_range(0.0, 0.1),  // fp_long
        ];
        let sum: f64 = w.iter().sum();
        let mix = pipedepth_trace::model::InstructionMix::new(
            w[0] / sum,
            w[1] / sum,
            w[2] / sum,
            w[3] / sum,
            w[4] / sum,
            w[5] / sum,
            w[6] / sum,
        );
        let mut model = WorkloadModel::modern_like();
        model.mix = mix;
        model.mean_dep_distance = rng.in_range(1.5, 12.0);
        model.dep_density = rng.in_range(0.2, 0.9);
        model.memory.spatial_locality = rng.in_range(0.3, 0.95);
        model.memory.working_set = 1 << (14 + (rng.next() % 10));
        model.branches.biased_fraction = rng.in_range(0.5, 0.98);
        model.branches.bias = rng.in_range(0.55, 0.99);
        model.serial_fraction = rng.in_range(0.0, 0.02);
        let depth = 2 + (rng.next() % 24) as u32;
        let warmup = rng.next() % 2_000;

        let trace = arena.get_or_generate(model, case_seed, 5_000);
        let config = SimConfig::paper(depth);
        let notes = annotate(&trace, config.cache, config.predictor).expect("valid config");
        let reference = engine_reference(&trace, config, warmup);
        let fast = replay(&notes, config, warmup, u64::MAX).expect("valid config");
        assert_eq!(
            reference, fast,
            "randomized case {case} (seed {case_seed:#x}, depth {depth}, warmup {warmup}) diverged"
        );
    }
}

#[test]
fn store_shares_one_annotation_per_stream_and_config() {
    // The runner's discipline: one annotation per (stream, cache,
    // predictor), reused across the whole depth sweep.
    let arena = TraceArena::new();
    let model = WorkloadModel::spec_int_like();
    let trace = arena.get_or_generate(model, 3, 2_000);
    let store = AnnotationStore::new();
    let base = SimConfig::paper(4);
    for depth in DEPTHS {
        let config = SimConfig::paper(depth);
        let notes = store
            .get_or_annotate(11, &trace, config.cache, config.predictor)
            .expect("valid config");
        let fast = replay(&notes, config, 500, u64::MAX).expect("valid config");
        let reference = engine_reference(&trace, config, 500);
        assert_eq!(reference, fast, "store-served replay diverged at {depth}");
    }
    assert_eq!(store.stats().misses, 1, "one annotation pass for the sweep");
    assert_eq!(store.stats().hits, DEPTHS.len() as u64 - 1);
    let _ = base;
}
