//! Exact-schedule tests: for hand-crafted traces the engine's cycle-level
//! behaviour is analytically predictable, and these tests pin it down to
//! the exact cycle. They are the strongest guard against timing
//! regressions in the interval engine.

use pipedepth_sim::{Engine, SimConfig, StagePlan};
use pipedepth_trace::isa::{Instruction, OpClass, Reg};

/// The paper machine with instruction fetch disabled (always hits), so the
/// schedules below are exact from cycle zero without warming the I-cache.
fn machine(depth: u32) -> SimConfig {
    let mut cfg = SimConfig::paper(depth);
    cfg.cache.l1i_bytes = 0;
    cfg
}

fn alu(k: u8) -> Instruction {
    Instruction::new(k as u64 * 4, OpClass::AluRr).with_dst(Reg::gpr(k))
}

fn alu_dep(k: u8, on: u8) -> Instruction {
    Instruction::new(k as u64 * 4, OpClass::AluRr)
        .with_dst(Reg::gpr(k))
        .with_src(Reg::gpr(on))
}

#[test]
fn single_instruction_transits_the_whole_pipe() {
    for depth in [4u32, 8, 16, 25] {
        let plan = StagePlan::try_for_depth(depth).expect("valid depth");
        let mut e = Engine::new(machine(depth));
        let t = e.step_timing(&alu(0));
        // Decode starts at cycle 0; issue right after decode; execute takes
        // the planned E-unit stages; then completion, then retire.
        assert_eq!(t.decode, 0, "depth {depth}");
        assert_eq!(t.issue, plan.decode as u64, "depth {depth}");
        assert_eq!(t.exec_done, t.issue + plan.execute as u64, "depth {depth}");
        assert_eq!(
            t.retire,
            t.exec_done + plan.complete as u64,
            "depth {depth}"
        );
    }
}

#[test]
fn independent_alus_schedule_four_wide() {
    let depth = 12;
    let plan = StagePlan::try_for_depth(depth).expect("valid depth");
    let mut e = Engine::new(machine(depth));
    // 12 independent ALU ops: decode 4 per cycle, issue 4 per cycle.
    let timings: Vec<_> = (0..12).map(|k| e.step_timing(&alu(k))).collect();
    for (k, t) in timings.iter().enumerate() {
        let group = (k / 4) as u64;
        assert_eq!(t.decode, group, "op {k}");
        assert_eq!(t.issue, plan.decode as u64 + group, "op {k}");
    }
}

#[test]
fn forwarded_chain_issues_back_to_back() {
    // With forwarding, a dependent chain issues one instruction per cycle:
    // each consumer reads its producer's result one cycle after issue.
    let depth = 16;
    let plan = StagePlan::try_for_depth(depth).expect("valid depth");
    let mut e = Engine::new(machine(depth));
    let t0 = e.step_timing(&alu(0));
    assert_eq!(t0.issue, plan.decode as u64);
    for k in 1..10u8 {
        let t = e.step_timing(&alu_dep(k, k - 1));
        assert_eq!(
            t.issue,
            plan.decode as u64 + k as u64,
            "chain op {k} must issue exactly one cycle after its producer"
        );
    }
}

#[test]
fn unforwarded_chain_waits_the_full_eunit() {
    use pipedepth_sim::Features;
    let depth = 16;
    let plan = StagePlan::try_for_depth(depth).expect("valid depth");
    let cfg = machine(depth).with_features(Features {
        forwarding: false,
        ..Features::default()
    });
    let mut e = Engine::new(cfg);
    let t0 = e.step_timing(&alu(0));
    let t1 = e.step_timing(&alu_dep(1, 0));
    // The consumer waits for the producer's full execute latency.
    assert_eq!(t1.issue, t0.issue + plan.execute as u64);
}

#[test]
fn serial_instruction_owns_its_cycle() {
    let depth = 8;
    let mut e = Engine::new(machine(depth));
    let a = e.step_timing(&alu(0));
    let s = e.step_timing(&alu(1).with_serial());
    let b = e.step_timing(&alu(2));
    // The serialising op issues strictly after the previous op's cycle and
    // nothing shares its cycle.
    assert!(s.issue > a.issue);
    assert!(b.issue > s.issue);
}

#[test]
fn retire_keeps_program_order_and_width() {
    let depth = 10;
    let mut e = Engine::new(machine(depth));
    // 8 independent ops: retire 4 per cycle, in order.
    let retires: Vec<u64> = (0..8).map(|k| e.step_timing(&alu(k)).retire).collect();
    assert!(retires.windows(2).all(|w| w[1] >= w[0]));
    assert_eq!(
        retires[4],
        retires[0] + 1,
        "second retire group one cycle later"
    );
}

#[test]
fn store_does_not_block_the_pipe() {
    use pipedepth_trace::isa::MemRef;
    let depth = 12;
    let mut e = Engine::new(machine(depth));
    // A store to an uncached line followed by an independent ALU op: the
    // write buffer hides the store entirely.
    let st = Instruction::new(0, OpClass::Store).with_mem(MemRef {
        addr: 0x9_0000_0000,
        size: 8,
    });
    let t_store = e.step_timing(&st);
    let t_alu = e.step_timing(&alu(1));
    assert!(
        t_alu.issue <= t_store.issue + 1,
        "store {t_store:?} must not stall {t_alu:?}"
    );
}

#[test]
fn load_hit_data_flows_through_the_rx_segment() {
    use pipedepth_trace::isa::MemRef;
    let depth = 16;
    let plan = StagePlan::try_for_depth(depth).expect("valid depth");
    let mut e = Engine::new(machine(depth));
    // Warm the line, then measure a dependent pair.
    let warm = Instruction::new(0, OpClass::Load)
        .with_mem(MemRef {
            addr: 0x1000,
            size: 8,
        })
        .with_dst(Reg::gpr(15));
    e.step_timing(&warm);
    let ld = Instruction::new(4, OpClass::Load)
        .with_mem(MemRef {
            addr: 0x1000,
            size: 8,
        })
        .with_dst(Reg::gpr(1));
    let t_ld = e.step_timing(&ld);
    let t_use = e.step_timing(&alu_dep(2, 1));
    // The consumer reads the load's data at the end of the cache segment:
    // agen + cache stages beyond decode (plus one decode-group offset).
    let data_ready = t_ld.decode + (plan.decode + plan.agen + plan.cache) as u64;
    assert!(
        t_use.issue >= data_ready,
        "use at {} vs data ready {data_ready}",
        t_use.issue
    );
    assert!(
        t_use.issue <= data_ready + 1,
        "load-use bubble too long: use {} vs data {data_ready}",
        t_use.issue
    );
}

#[test]
fn mispredict_refills_from_decode() {
    use pipedepth_trace::isa::BranchInfo;
    let depth = 20;
    let plan = StagePlan::try_for_depth(depth).expect("valid depth");
    let mut e = Engine::new(machine(depth));
    // Train the predictor taken, then surprise it.
    for k in 0..12u64 {
        let b = Instruction::new(0x100, OpClass::Branch).with_branch(BranchInfo {
            taken: true,
            target: 0x200 + k,
        });
        e.step_timing(&b);
    }
    let surprise = Instruction::new(0x100, OpClass::Branch).with_branch(BranchInfo {
        taken: false,
        target: 0x104,
    });
    let t_branch = e.step_timing(&surprise);
    let t_next = e.step_timing(&alu(1));
    // The next instruction decodes only after the branch resolves.
    assert_eq!(
        t_next.decode,
        t_branch.exec_done + 1,
        "refill must start right after resolution"
    );
    // And the total penalty is at least the decode→execute transit.
    assert!(t_next.decode - t_branch.decode >= (plan.decode + plan.execute) as u64);
}
