//! The replay pass: a tight per-depth timing kernel over an
//! [`AnnotatedTrace`], batched across depth lanes.
//!
//! With fetch classes, data-access classes and branch outcomes resolved
//! once by [`crate::annotate()`], what remains per depth is pure interval
//! timing: port acquisitions, stage-latency arithmetic, the scoreboard,
//! and hazard attribution. [`replay_sweep`] walks the annotation **once**,
//! decoding each instruction's note a single time and advancing every
//! depth lane through it before moving on — so a whole sweep costs one
//! linear pass over the annotation's struct-of-arrays columns instead of
//! D independent engine passes, each re-running the cache and predictor
//! models.
//!
//! Each `Lane` is the timing-only residue of one [`crate::Engine`]:
//! four ports, the issue ring, a flat 32-slot scoreboard and a handful of
//! scalars (≈ half a kilobyte), so a full 24-lane sweep's mutable state
//! stays cache-resident while the annotation streams through. Exactness is
//! the contract: every port acquisition and every hazard record happens in
//! the precise order of the stage engine, and the differential suite
//! (`sim/tests/replay_equivalence.rs`) pins the resulting [`SimReport`]s
//! bit-identical to [`crate::Engine`]'s.

use crate::annotate::{AnnotatedTrace, FLAG_MEM, FLAG_SERIAL, NO_REG};
use crate::config::{ConfigError, IssuePolicy, SimConfig, StagePlan, Unit};
use crate::engine::metric_names;
use crate::hazard::{HazardKind, HazardStats};
use crate::report::SimReport;
use crate::stage::{IssueRing, Port, Tables, WriterKind, REG_SLOTS};
use pipedepth_telemetry::Telemetry;
use pipedepth_trace::isa::OpClass;

/// One instruction's note, decoded from the annotation columns once per
/// position and shared by every lane.
#[derive(Debug, Clone, Copy)]
struct Note {
    class: OpClass,
    is_mem: bool,
    is_fp: bool,
    has_mem: bool,
    serial: bool,
    dst: u8,
    src: [u8; 2],
    fetch: u8,
    data: u8,
    branch: u8,
}

impl AnnotatedTrace {
    #[inline]
    fn note(&self, i: usize) -> Note {
        let class = OpClass::ALL[self.classes[i] as usize];
        let flags = self.flags[i];
        Note {
            class,
            is_mem: class.is_memory(),
            is_fp: class.is_fp(),
            has_mem: flags & FLAG_MEM != 0,
            serial: flags & FLAG_SERIAL != 0,
            dst: self.dst[i],
            src: self.src[i],
            fetch: self.fetch[i],
            data: self.data[i],
            branch: self.branch[i],
        }
    }
}

/// The timing-only state of one depth configuration: the residue of an
/// [`crate::Engine`] once the cache arrays, predictor table and trace
/// decoding are factored out into the annotation.
#[derive(Debug, Clone)]
struct Lane {
    config: SimConfig,
    plan: StagePlan,
    tables: Tables,
    in_order: bool,
    forwarding: bool,
    stall_on_use: bool,

    // Front end.
    decode_port: Port,
    redirect_at: u64,
    last_decode: u64,
    // Scoreboard.
    reg_ready: [u64; REG_SLOTS],
    reg_writer: [WriterKind; REG_SLOTS],
    // Issue.
    issue_port: Port,
    ring: IssueRing,
    last_issue: u64,
    last_issue_cycle_seen: Option<u64>,
    // Exec core.
    cache_port: Port,
    retire_port: Port,
    fp_busy_until: u64,
    last_retire: u64,
    finish_cycle: u64,

    // Window statistics (zeroed at the warmup boundary).
    stats_base_cycle: u64,
    instructions: u64,
    activity: [u64; Unit::ALL.len()],
    hazards: HazardStats,
    memory_wait: u64,
    fetch_stall_cycles: u64,
    branches: u64,
    mispredicts: u64,
    serialized: u64,
    distinct: u64,
    /// `(accesses, misses)` for the l1d, l1i, l2 levels.
    cache: [(u64, u64); 3],
}

impl Lane {
    fn new(config: SimConfig) -> Result<Lane, ConfigError> {
        config.validate()?;
        let plan = StagePlan::try_for_depth(config.depth)?;
        let tables = Tables::new(&config, &plan);
        Ok(Lane {
            in_order: match config.features.issue {
                IssuePolicy::InOrder => true,
                IssuePolicy::OutOfOrder => false,
            },
            forwarding: config.features.forwarding,
            stall_on_use: config.features.stall_on_use,
            decode_port: Port::new(config.width),
            redirect_at: 0,
            last_decode: 0,
            reg_ready: [0; REG_SLOTS],
            reg_writer: [WriterKind::Normal; REG_SLOTS],
            issue_port: Port::new(config.width),
            ring: IssueRing::new(tables.queue_capacity),
            last_issue: 0,
            last_issue_cycle_seen: None,
            cache_port: Port::new(config.cache_ports),
            retire_port: Port::new(config.width),
            fp_busy_until: 0,
            last_retire: 0,
            finish_cycle: 0,
            stats_base_cycle: 0,
            instructions: 0,
            activity: [0; Unit::ALL.len()],
            hazards: HazardStats::new(),
            memory_wait: 0,
            fetch_stall_cycles: 0,
            branches: 0,
            mispredicts: 0,
            serialized: 0,
            distinct: 0,
            cache: [(0, 0); 3],
            config,
            plan,
            tables,
        })
    }

    /// Advances this lane through one annotated instruction, in exactly
    /// the stage engine's operation order.
    fn step(&mut self, n: &Note) {
        let tables = self.tables;

        // ---- Front end: fetch + decode --------------------------------
        let queue_floor = self.ring.floor();
        let mut decode_req = self.last_decode.max(self.redirect_at).max(queue_floor);
        if n.fetch != 0 {
            self.cache[1].0 += 1;
            if n.fetch >= 2 {
                self.cache[1].1 += 1;
                self.cache[2].0 += 1;
            }
            if n.fetch == 3 {
                self.cache[2].1 += 1;
            }
            let fetch_extra = tables.miss_penalty[(n.fetch - 1) as usize];
            if fetch_extra > 0 {
                self.hazards
                    .record(HazardKind::Memory, fetch_extra.min(tables.hazard_cap));
                self.memory_wait += fetch_extra;
                self.fetch_stall_cycles += fetch_extra;
                decode_req += fetch_extra;
            }
        }
        let decode_cycle = self.decode_port.acquire(decode_req);
        self.last_decode = decode_cycle;
        let decode_done = decode_cycle + tables.decode;

        // ---- Scoreboard: source readiness -----------------------------
        let mut src_ready = 0u64;
        let mut src_writer = WriterKind::Normal;
        for &s in &n.src {
            if s == NO_REG {
                continue;
            }
            let slot = s as usize;
            let at = self.reg_ready[slot];
            if at > src_ready {
                src_ready = at;
                src_writer = self.reg_writer[slot];
            } else if at == src_ready && self.reg_writer[slot] == WriterKind::Miss {
                src_writer = WriterKind::Miss;
            }
        }

        // ---- RX address/cache segment ---------------------------------
        let mut data_ready = decode_done;
        let mut pipe_ready = decode_done;
        let mut miss_extra = 0u64;
        if n.has_mem {
            let agen_done = decode_done.max(src_ready) + tables.agen;
            self.cache[0].0 += 1;
            if n.data >= 2 {
                self.cache[0].1 += 1;
                self.cache[2].0 += 1;
            }
            if n.data == 3 {
                self.cache[2].1 += 1;
            }
            if n.class == OpClass::Store {
                data_ready = agen_done;
                pipe_ready = agen_done;
            } else {
                let access_at = self.cache_port.acquire(agen_done);
                miss_extra = tables.miss_penalty[(n.data - 1) as usize];
                data_ready = access_at + tables.cache + miss_extra;
                if n.class == OpClass::Load && self.stall_on_use {
                    pipe_ready = access_at + tables.cache;
                } else if n.class == OpClass::Load {
                    pipe_ready = data_ready;
                }
            }
        }
        if n.class == OpClass::AluRx {
            pipe_ready = data_ready;
        }
        if n.has_mem {
            self.activity[Unit::Agen as usize] += tables.agen;
            self.activity[Unit::Cache as usize] += tables.cache;
        }

        // ---- Issue to the E-unit (in order, width-limited) ------------
        let queue_ready = if n.is_mem { pipe_ready } else { decode_done };
        let fp_ready = if n.is_fp { self.fp_busy_until } else { 0 };
        let order_floor = if self.in_order { self.last_issue } else { 0 };
        let mut base = queue_ready.max(src_ready).max(fp_ready).max(order_floor);
        if n.serial {
            base = base.max(self.last_issue + 1);
            self.issue_port.close_cycle();
            self.serialized += 1;
        }
        let prev_issue = self.last_issue;
        let at = self.issue_port.acquire(base);
        if n.serial {
            self.issue_port.close_cycle();
        }
        self.last_issue = at;
        self.ring.push(at);
        if self.last_issue_cycle_seen != Some(at) {
            self.distinct += 1;
            self.last_issue_cycle_seen = Some(at);
        }

        // ---- Hazard attribution ---------------------------------------
        let transit = decode_done
            + if n.is_mem {
                tables.agen + tables.cache
            } else {
                0
            };
        let floor = if self.in_order {
            transit.max(prev_issue)
        } else {
            transit
        };
        let own = queue_ready.max(src_ready).max(fp_ready);
        let stall = own.saturating_sub(floor);
        if stall > 0 {
            let gamma_stall = stall.min(tables.hazard_cap);
            let load_use_blocked = n.class == OpClass::AluRx && miss_extra > 0;
            let kind = if load_use_blocked || src_writer == WriterKind::Miss {
                Some(HazardKind::Memory)
            } else if src_ready > floor {
                if src_writer == WriterKind::FpUnit {
                    None
                } else {
                    Some(HazardKind::Data)
                }
            } else if fp_ready > floor {
                None
            } else {
                Some(HazardKind::Structural)
            };
            if let Some(kind) = kind {
                self.hazards.record(kind, gamma_stall);
            }
        }
        self.memory_wait += miss_extra;

        // ---- Execute + writeback --------------------------------------
        let exec_done = at + tables.execute + tables.exec_extra[n.class as usize];
        if n.is_fp {
            self.fp_busy_until = exec_done;
        }
        if n.dst != NO_REG {
            let alu_ready = if self.forwarding { at + 1 } else { exec_done };
            let miss_writer = if miss_extra > 0 {
                WriterKind::Miss
            } else {
                WriterKind::Normal
            };
            let (ready_at, writer) = match n.class {
                OpClass::Load => (data_ready, miss_writer),
                OpClass::Fp | OpClass::FpLong => (exec_done, WriterKind::FpUnit),
                _ => (alu_ready, miss_writer),
            };
            self.reg_ready[n.dst as usize] = ready_at;
            self.reg_writer[n.dst as usize] = writer;
        }
        self.activity[Unit::Execute as usize] += tables.execute;

        // ---- Branch resolution ----------------------------------------
        if n.branch != 0 {
            self.branches += 1;
            if n.branch == 2 {
                self.mispredicts += 1;
                let resume = exec_done + 1;
                let refill = resume.saturating_sub(decode_cycle + 1);
                self.hazards
                    .record(HazardKind::Control, refill.min(tables.hazard_cap));
                self.redirect_at = resume;
            }
        }

        // ---- Completion / retire --------------------------------------
        let retire = self
            .retire_port
            .acquire((exec_done + tables.complete).max(self.last_retire));
        self.last_retire = retire;
        self.finish_cycle = self.finish_cycle.max(retire);
        self.activity[Unit::Decode as usize] += tables.decode;
        self.activity[Unit::Complete as usize] += tables.complete;
        self.instructions += 1;
    }

    /// Opens a fresh measurement window at the warmup boundary: zeroes
    /// every statistic while keeping all timing state (ports, scoreboard,
    /// redirect, FP occupancy, decoupling window) intact — the mirror of
    /// [`crate::Engine::reset_stats`].
    fn reset_stats(&mut self) {
        self.instructions = 0;
        self.activity = [0; Unit::ALL.len()];
        self.stats_base_cycle = self.finish_cycle;
        self.hazards = HazardStats::new();
        self.memory_wait = 0;
        self.fetch_stall_cycles = 0;
        self.branches = 0;
        self.mispredicts = 0;
        self.serialized = 0;
        self.distinct = 0;
        self.last_issue_cycle_seen = None;
        self.cache = [(0, 0); 3];
    }

    fn report(&self) -> SimReport {
        let rate = |(accesses, misses): (u64, u64)| {
            if accesses == 0 {
                0.0
            } else {
                misses as f64 / accesses as f64
            }
        };
        SimReport::gather(
            self.config,
            self.plan,
            self.instructions,
            self.finish_cycle.saturating_sub(self.stats_base_cycle),
            self.distinct,
            &self.activity,
            self.hazards.clone(),
            self.branches,
            self.mispredicts,
            rate(self.cache[0]),
            rate(self.cache[2]),
            rate(self.cache[1]),
            self.memory_wait,
        )
    }
}

/// Replays an annotation against every configuration in `configs` in one
/// batched pass: `warmup` instructions of untimed training per lane, then
/// up to `instructions` measured ones (clamped to the annotation length,
/// exactly like [`crate::Engine::run_slice`]). Returns one [`SimReport`]
/// per configuration, in order — each bit-identical to what a fresh
/// [`crate::Engine`] produces over the same stream.
///
/// The annotation must have been produced from the same stream with each
/// configuration's own `cache`/`predictor` settings (lanes may differ in
/// depth, width, ports and feature toggles — everything that does not feed
/// the annotation).
///
/// With telemetry attached, the run flushes the same aggregate `sim.*`
/// counters as the engine, summed across lanes, once at the end of the
/// pass.
///
/// # Errors
///
/// Returns the first [`ConfigError`] found validating any configuration.
pub fn replay_sweep(
    notes: &AnnotatedTrace,
    configs: &[SimConfig],
    warmup: u64,
    instructions: u64,
    telemetry: &Telemetry,
) -> Result<Vec<SimReport>, ConfigError> {
    let mut lanes = configs
        .iter()
        .map(|&config| Lane::new(config))
        .collect::<Result<Vec<_>, _>>()?;

    let split = usize::try_from(warmup)
        .unwrap_or(usize::MAX)
        .min(notes.len());
    for i in 0..split {
        let n = notes.note(i);
        for lane in &mut lanes {
            lane.step(&n);
        }
    }
    let warmed: u64 = lanes.iter().map(|l| l.instructions).sum();
    telemetry.counter("sim.warmup_instructions").add(warmed);
    for lane in &mut lanes {
        lane.reset_stats();
    }

    let measured = usize::try_from(instructions)
        .unwrap_or(usize::MAX)
        .min(notes.len() - split);
    for i in split..split + measured {
        let n = notes.note(i);
        for lane in &mut lanes {
            lane.step(&n);
        }
    }
    flush_telemetry(&lanes, telemetry);
    Ok(lanes.iter().map(Lane::report).collect())
}

/// Replays an annotation against one configuration — the single-depth
/// convenience wrapper over [`replay_sweep`], with telemetry disabled.
///
/// # Errors
///
/// Returns the first [`ConfigError`] found validating the configuration.
pub fn replay(
    notes: &AnnotatedTrace,
    config: SimConfig,
    warmup: u64,
    instructions: u64,
) -> Result<SimReport, ConfigError> {
    let mut reports = replay_sweep(
        notes,
        std::slice::from_ref(&config),
        warmup,
        instructions,
        &Telemetry::disabled(),
    )?;
    // analysis: allow(panic-path) — replay_sweep returns exactly one report
    // per input configuration, and one configuration was passed.
    Ok(reports.pop().expect("one report per configuration"))
}

/// Flushes the lanes' summed window statistics into the same static-name
/// `sim.*` counters the engine flushes, once per replay pass.
fn flush_telemetry(lanes: &[Lane], telemetry: &Telemetry) {
    if !telemetry.is_enabled() {
        return;
    }
    let sum = |f: &dyn Fn(&Lane) -> u64| lanes.iter().map(f).sum::<u64>();
    let t = telemetry;
    t.counter("sim.instructions").add(sum(&|l| l.instructions));
    for (i, &kind) in HazardKind::ALL.iter().enumerate() {
        t.counter(metric_names::HAZARD_EVENTS[i])
            .add(sum(&|l| l.hazards.events(kind)));
        t.counter(metric_names::HAZARD_STALL_CYCLES[i])
            .add(sum(&|l| l.hazards.stall_cycles(kind)));
    }
    t.counter("sim.stage.frontend.fetch_stall_cycles")
        .add(sum(&|l| l.fetch_stall_cycles));
    t.counter("sim.stage.frontend.redirects")
        .add(sum(&|l| l.mispredicts));
    t.counter("sim.stage.issue.serialized_ops")
        .add(sum(&|l| l.serialized));
    t.counter("sim.stage.issue.distinct_cycles")
        .add(sum(&|l| l.distinct));
    t.counter("sim.stage.exec.memory_wait_cycles")
        .add(sum(&|l| l.memory_wait));
    // Every branch in the window is one predictor observation: hits are
    // the correctly predicted ones, misses the rest — the engine's
    // observed/correct deltas expressed through the annotation.
    t.counter("sim.predictor.hits")
        .add(sum(&|l| l.branches - l.mispredicts));
    t.counter("sim.predictor.misses")
        .add(sum(&|l| l.mispredicts));
    for i in 0..3 {
        t.counter(metric_names::CACHE_HITS[i])
            .add(sum(&|l| l.cache[i].0 - l.cache[i].1));
        t.counter(metric_names::CACHE_MISSES[i])
            .add(sum(&|l| l.cache[i].1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotate::annotate;
    use crate::engine::Engine;
    use pipedepth_trace::{TraceGenerator, WorkloadModel};

    fn trace(n: usize) -> Vec<pipedepth_trace::isa::Instruction> {
        TraceGenerator::new(WorkloadModel::modern_like(), 11).take_vec(n)
    }

    #[test]
    fn single_depth_replay_matches_engine() {
        let stream = trace(6_000);
        let config = SimConfig::paper(14);
        let notes = annotate(&stream, config.cache, config.predictor).expect("valid config");
        let mut engine = Engine::new(config);
        engine.warm_up_slice(&stream, 2_000);
        let expected = engine.run_slice(&stream[2_000..], 4_000);
        let got = replay(&notes, config, 2_000, 4_000).expect("valid config");
        assert_eq!(expected, got);
    }

    #[test]
    fn batched_lanes_match_individual_replays() {
        let stream = trace(5_000);
        let base = SimConfig::paper(10);
        let notes = annotate(&stream, base.cache, base.predictor).expect("valid config");
        let configs: Vec<SimConfig> = [4, 10, 22].iter().map(|&d| SimConfig::paper(d)).collect();
        let batched = replay_sweep(&notes, &configs, 1_000, 4_000, &Telemetry::disabled())
            .expect("valid configs");
        for (config, report) in configs.iter().zip(&batched) {
            let single = replay(&notes, *config, 1_000, 4_000).expect("valid config");
            assert_eq!(&single, report, "depth {}", config.depth);
        }
    }

    #[test]
    fn replay_clamps_to_annotation_length() {
        let stream = trace(1_000);
        let config = SimConfig::paper(8);
        let notes = annotate(&stream, config.cache, config.predictor).expect("valid config");
        let r = replay(&notes, config, 0, 5_000).expect("valid config");
        assert_eq!(r.instructions, 1_000);
        let all_warm = replay(&notes, config, 5_000, 5_000).expect("valid config");
        assert_eq!(all_warm.instructions, 0, "everything consumed by warmup");
    }

    #[test]
    fn replay_rejects_invalid_config() {
        let stream = trace(100);
        let good = SimConfig::paper(8);
        let notes = annotate(&stream, good.cache, good.predictor).expect("valid config");
        let mut bad = good;
        bad.width = 0;
        assert!(replay(&notes, bad, 0, 100).is_err());
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn sweep_flushes_engine_identical_counters() {
        let stream = trace(4_000);
        let config = SimConfig::paper(12);
        let notes = annotate(&stream, config.cache, config.predictor).expect("valid config");

        let engine_telemetry = Telemetry::new();
        let mut engine = Engine::new(config).with_telemetry(engine_telemetry.clone());
        engine.warm_up_slice(&stream, 1_000);
        engine.run_slice(&stream[1_000..], 3_000);

        let replay_telemetry = Telemetry::new();
        replay_sweep(&notes, &[config], 1_000, 3_000, &replay_telemetry).expect("valid config");

        let a = engine_telemetry.snapshot();
        let b = replay_telemetry.snapshot();
        for name in [
            "sim.instructions",
            "sim.warmup_instructions",
            "sim.stage.frontend.fetch_stall_cycles",
            "sim.stage.frontend.redirects",
            "sim.stage.issue.serialized_ops",
            "sim.stage.issue.distinct_cycles",
            "sim.stage.exec.memory_wait_cycles",
            "sim.predictor.hits",
            "sim.predictor.misses",
            "sim.cache.l1d.hits",
            "sim.cache.l1d.misses",
            "sim.cache.l1i.hits",
            "sim.cache.l1i.misses",
            "sim.cache.l2.hits",
            "sim.cache.l2.misses",
            "sim.stage.hazard.control.events",
            "sim.stage.hazard.control.stall_cycles",
            "sim.stage.hazard.data.events",
            "sim.stage.hazard.data.stall_cycles",
            "sim.stage.hazard.memory.events",
            "sim.stage.hazard.memory.stall_cycles",
            "sim.stage.hazard.structural.events",
            "sim.stage.hazard.structural.stall_cycles",
        ] {
            assert_eq!(a.counter(name), b.counter(name), "counter {name}");
        }
    }
}
