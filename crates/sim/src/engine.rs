//! The timing engine: a cycle-accurate interval simulator of the paper's
//! 4-issue in-order superscalar pipeline.
//!
//! Every instruction's passage through the machine is resolved to exact
//! cycle numbers under the configured stage plan, port widths, branch
//! predictor and cache hierarchy. The engine is deterministic: the same
//! trace and configuration always produce the same cycle counts, per-unit
//! activity, and hazard attribution.
//!
//! The simulation style is *interval* (scoreboard) simulation: instead of
//! iterating machine state cycle by cycle, each instruction's stage entry
//! times are computed from its predecessors' times and resource
//! availability. For an in-order machine this is exact, and it yields the
//! per-unit occupancy counts the power model needs.
//!
//! The engine itself is a thin per-instruction orchestrator over the
//! explicit stage units of [`crate::stage`]: the [`FrontEnd`] fetches and
//! decodes, the [`HazardUnit`] scores sources and classifies stalls, the
//! [`IssueStage`] binds issue cycles, and the [`ExecCore`] runs the cache
//! segment, the E-unit and retirement. [`Engine::step_timing`] wires their
//! calls together in the exact operation order of the original fused body,
//! so the decomposition is invisible in any [`SimReport`].

use crate::cache::Hierarchy;
use crate::config::{ConfigError, IssuePolicy, SimConfig, StagePlan, Unit};
use crate::hazard::HazardKind;
use crate::predictor::Gshare;
use crate::report::SimReport;
use crate::stage::{ExecCore, FrontEnd, HazardUnit, IssueStage, StallInputs, Tables};
use pipedepth_telemetry::Telemetry;
use pipedepth_trace::isa::Instruction;

/// Static telemetry metric names for the aggregate flush, resolved at
/// compile time so neither the engine nor the replay kernel formats or
/// allocates a single string when flushing a run window. Array entries
/// follow [`HazardKind::ALL`] order and the report's l1d/l1i/l2 cache
/// order respectively, and must stay in lockstep with the names tested by
/// the manifest/telemetry suites.
pub(crate) mod metric_names {
    /// `sim.stage.hazard.<kind>.events`, in `HazardKind::ALL` order.
    pub(crate) const HAZARD_EVENTS: [&str; 4] = [
        "sim.stage.hazard.control.events",
        "sim.stage.hazard.data.events",
        "sim.stage.hazard.memory.events",
        "sim.stage.hazard.structural.events",
    ];
    /// `sim.stage.hazard.<kind>.stall_cycles`, in `HazardKind::ALL` order.
    pub(crate) const HAZARD_STALL_CYCLES: [&str; 4] = [
        "sim.stage.hazard.control.stall_cycles",
        "sim.stage.hazard.data.stall_cycles",
        "sim.stage.hazard.memory.stall_cycles",
        "sim.stage.hazard.structural.stall_cycles",
    ];
    /// `sim.cache.<level>.hits` for the l1d, l1i, l2 levels.
    pub(crate) const CACHE_HITS: [&str; 3] = [
        "sim.cache.l1d.hits",
        "sim.cache.l1i.hits",
        "sim.cache.l2.hits",
    ];
    /// `sim.cache.<level>.misses` for the l1d, l1i, l2 levels.
    pub(crate) const CACHE_MISSES: [&str; 3] = [
        "sim.cache.l1d.misses",
        "sim.cache.l1i.misses",
        "sim.cache.l2.misses",
    ];
}

/// Cycle-level timing of one instruction's passage through the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstrTiming {
    /// Cycle the instruction entered decode.
    pub decode: u64,
    /// Cycle it issued to the E-unit.
    pub issue: u64,
    /// Cycle its execution completed.
    pub exec_done: u64,
    /// Cycle it retired.
    pub retire: u64,
}

/// The pipeline timing engine.
///
/// # Examples
///
/// ```
/// use pipedepth_sim::{Engine, SimConfig};
/// use pipedepth_trace::{TraceGenerator, WorkloadModel};
///
/// let mut engine = Engine::new(SimConfig::paper(8));
/// let mut gen = TraceGenerator::new(WorkloadModel::spec_int_like(), 1);
/// let report = engine.run(&mut gen, 10_000);
/// assert!(report.cpi() > 0.25, "cannot beat the 4-wide issue limit");
/// ```
#[derive(Debug, Clone)]
pub struct Engine {
    config: SimConfig,
    plan: StagePlan,
    /// The cache hierarchy is shared state: the front end fetches code
    /// lines and the exec core accesses data through the same hierarchy.
    caches: Hierarchy,
    /// Per-configuration latency tables (see [`Tables`]).
    tables: Tables,

    front_end: FrontEnd,
    hazard_unit: HazardUnit,
    issue_stage: IssueStage,
    exec_core: ExecCore,

    instructions: u64,
    /// Cycle at which the current measurement window opened.
    stats_base_cycle: u64,
    activity: [u64; Unit::ALL.len()],

    telemetry: Telemetry,
    /// Statistic totals already flushed into the telemetry registry;
    /// flushing records only the delta since this watermark, once per run
    /// window, so the per-instruction hot path stays free of atomics.
    flushed: StatTotals,
}

/// Cumulative statistic totals, captured to flush per-run deltas into the
/// telemetry counters.
#[derive(Debug, Clone, Copy, Default)]
struct StatTotals {
    instructions: u64,
    hazard_events: [u64; HazardKind::ALL.len()],
    hazard_stalls: [u64; HazardKind::ALL.len()],
    fetch_stall_cycles: u64,
    redirects: u64,
    serialized_ops: u64,
    distinct_issue_cycles: u64,
    memory_wait_cycles: u64,
    predictor_observed: u64,
    predictor_correct: u64,
    /// `(accesses, misses)` for the l1d, l1i, l2 levels.
    cache: [(u64, u64); 3],
}

impl Engine {
    /// Combined capacity, in instructions, of the decoupling queues between
    /// decode and issue (address + execution queues) at depth `p`. Queues
    /// are sized with the pipeline — a deeper machine needs more
    /// instructions in flight to cover its own latencies, and the paper's
    /// expansion methodology grows the queue stages alongside the units.
    /// With `scaled_queues` disabled the capacity is a fixed 16 entries.
    pub fn queue_capacity(depth: u32) -> usize {
        (8 + 2 * depth) as usize
    }

    /// Creates an engine for one pipeline configuration.
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration; use [`Engine::try_new`] to
    /// handle that case as an error.
    pub fn new(config: SimConfig) -> Self {
        Self::try_new(config).expect("simulator configuration must be valid")
    }

    /// Creates an engine for one pipeline configuration, validated.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] found by [`SimConfig::validate`].
    pub fn try_new(config: SimConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        let plan = StagePlan::try_for_depth(config.depth)?;
        let caches = Hierarchy::try_new(config.cache)?;
        let tables = Tables::new(&config, &plan);
        Ok(Engine {
            front_end: FrontEnd::new(&config)?,
            hazard_unit: HazardUnit::new(),
            issue_stage: IssueStage::new(config.width, tables.queue_capacity),
            exec_core: ExecCore::new(config.width, config.cache_ports),
            config,
            plan,
            caches,
            tables,
            instructions: 0,
            stats_base_cycle: 0,
            activity: [0; Unit::ALL.len()],
            telemetry: Telemetry::disabled(),
            flushed: StatTotals::default(),
        })
    }

    /// Attaches a telemetry handle (builder style). [`Engine::run`] and
    /// [`Engine::warm_up`] flush aggregate statistics into it — counters
    /// under `sim.*` — once per run window.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The configuration this engine realises.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The stage plan in effect.
    pub fn plan(&self) -> &StagePlan {
        &self.plan
    }

    /// The cache hierarchy (for inspection).
    pub fn caches(&self) -> &Hierarchy {
        &self.caches
    }

    /// The branch predictor (for inspection).
    pub fn predictor(&self) -> &Gshare {
        self.front_end.predictor()
    }

    /// The fetch/decode front end (for inspection).
    pub fn front_end(&self) -> &FrontEnd {
        &self.front_end
    }

    /// The scoreboard and stall classifier (for inspection).
    pub fn hazard_unit(&self) -> &HazardUnit {
        &self.hazard_unit
    }

    /// The issue stage (for inspection).
    pub fn issue_stage(&self) -> &IssueStage {
        &self.issue_stage
    }

    /// The execution core (for inspection).
    pub fn exec_core(&self) -> &ExecCore {
        &self.exec_core
    }

    #[inline]
    fn bump_activity(&mut self, unit: Unit, stages: u64) {
        // Unit is fieldless and `ALL` is in declaration order, so the
        // discriminant is the activity index.
        self.activity[unit as usize] += stages;
    }

    /// Simulates one instruction, returning the cycle it retires.
    pub fn step(&mut self, instr: &Instruction) -> u64 {
        self.step_timing(instr).retire
    }

    /// Simulates one instruction, returning its full stage timing.
    ///
    /// This is the cycle orchestrator: each stage unit resolves its own
    /// segment, in the machine's order — fetch/decode, source scoreboard,
    /// address/cache segment, issue, hazard attribution, execute, branch
    /// resolution, retire.
    pub fn step_timing(&mut self, instr: &Instruction) -> InstrTiming {
        let tables = self.tables;

        // ---- Front end: fetch + decode --------------------------------
        let queue_floor = self.issue_stage.queue_floor();
        let fd = self.front_end.fetch_and_decode(
            instr,
            &mut self.caches,
            &tables,
            &mut self.hazard_unit,
            queue_floor,
        );

        // ---- Scoreboard: source readiness -----------------------------
        let src = self.hazard_unit.sources(instr);

        // ---- RX address/cache segment ---------------------------------
        let is_mem = instr.class.is_memory();
        let seg = self.exec_core.memory_segment(
            instr,
            fd.decode_done,
            src.ready,
            &mut self.caches,
            &tables,
            self.config.features.stall_on_use,
        );
        if instr.mem.is_some() {
            self.bump_activity(Unit::Agen, tables.agen);
            self.bump_activity(Unit::Cache, tables.cache);
        }

        // ---- Issue to the E-unit (in order, width-limited) ------------
        let queue_ready = if is_mem {
            seg.pipe_ready
        } else {
            fd.decode_done
        };
        let fp_ready = self.exec_core.fp_ready(instr.class.is_fp());
        let in_order = match self.config.features.issue {
            IssuePolicy::InOrder => true,
            // Out of order: only the instruction's own constraints gate its
            // issue; the decoupling window plays the ROB's role.
            IssuePolicy::OutOfOrder => false,
        };
        let order_floor = if in_order {
            self.issue_stage.last_issue()
        } else {
            0
        };
        let base = queue_ready.max(src.ready).max(fp_ready).max(order_floor);
        let issued = self.issue_stage.bind(base, instr.serial);

        // ---- Hazard attribution ---------------------------------------
        self.hazard_unit.attribute(
            &tables,
            &StallInputs {
                is_mem,
                class: instr.class,
                decode_done: fd.decode_done,
                prev_issue: issued.prev,
                in_order,
                queue_ready,
                src,
                fp_ready,
                miss_extra: seg.miss_extra,
            },
        );

        // ---- Execute + writeback --------------------------------------
        let exec_done = self.exec_core.execute(
            instr,
            issued.at,
            &tables,
            self.config.features.forwarding,
            &seg,
            &mut self.hazard_unit,
        );
        // The iterative tail of a multi-cycle FP operation spins a narrow
        // datapath, not the full E-unit latch complement; only the
        // pipelined pass is charged to the unit's activity.
        self.bump_activity(Unit::Execute, tables.execute);

        // ---- Branch resolution ----------------------------------------
        self.front_end.resolve_branch(
            instr,
            fd.decode_cycle,
            exec_done,
            &tables,
            &mut self.hazard_unit,
        );

        // ---- Completion / retire --------------------------------------
        let retire = self.exec_core.retire(exec_done + tables.complete);
        self.bump_activity(Unit::Decode, tables.decode);
        self.bump_activity(Unit::Complete, tables.complete);

        self.instructions += 1;
        InstrTiming {
            decode: fd.decode_cycle,
            issue: issued.at,
            exec_done,
            retire,
        }
    }

    /// Runs `count` instructions as warmup — caches fill and the predictor
    /// trains, but no statistics are kept. Call before [`Engine::run`] to
    /// measure steady-state behaviour, as the experiment harness does.
    ///
    /// With telemetry attached, only `sim.warmup_instructions` is flushed:
    /// warmup statistics are discarded by design.
    pub fn warm_up<I>(&mut self, trace: I, count: u64)
    where
        I: IntoIterator<Item = Instruction>,
    {
        let mut trace = trace.into_iter();
        for _ in 0..count {
            match trace.next() {
                Some(instr) => {
                    self.step(&instr);
                }
                None => break,
            }
        }
        let warmed = self.instructions.saturating_sub(self.flushed.instructions);
        self.telemetry
            .counter("sim.warmup_instructions")
            .add(warmed);
        self.reset_stats();
    }

    /// Opens a fresh measurement window: zeroes every statistic while
    /// keeping all microarchitectural state (caches, predictor, in-flight
    /// timing) intact.
    pub fn reset_stats(&mut self) {
        self.instructions = 0;
        self.activity = [0; Unit::ALL.len()];
        self.stats_base_cycle = self.exec_core.finish_cycle();
        self.caches.reset_stats();
        self.front_end.reset_stats();
        self.hazard_unit.reset_stats();
        self.issue_stage.reset_stats();
        self.flushed = StatTotals::default();
    }

    /// Runs `count` instructions from a trace source and produces the
    /// report. With telemetry attached, the run's aggregate statistics are
    /// flushed into the `sim.*` counters on completion.
    pub fn run<I>(&mut self, trace: I, count: u64) -> SimReport
    where
        I: IntoIterator<Item = Instruction>,
    {
        let mut trace = trace.into_iter();
        for _ in 0..count {
            match trace.next() {
                Some(instr) => {
                    self.step(&instr);
                }
                None => break,
            }
        }
        self.flush_telemetry();
        self.report()
    }

    /// Slice-mode warmup: the counterpart of [`Engine::warm_up`] for a
    /// materialised trace (e.g. one resident in a
    /// [`pipedepth_trace::TraceArena`]). Simulates `trace[..count]` (or
    /// the whole slice if shorter) with no statistics kept.
    pub fn warm_up_slice(&mut self, trace: &[Instruction], count: u64) {
        let n = usize::try_from(count)
            .unwrap_or(usize::MAX)
            .min(trace.len());
        for instr in &trace[..n] {
            self.step_timing(instr);
        }
        let warmed = self.instructions.saturating_sub(self.flushed.instructions);
        self.telemetry
            .counter("sim.warmup_instructions")
            .add(warmed);
        self.reset_stats();
    }

    /// Slice-mode run: the hot path for arena-resident traces. Identical
    /// semantics to [`Engine::run`] over the same instructions — the same
    /// `SimReport`, cycle for cycle — but instructions are borrowed
    /// straight from the slice instead of being copied out of an iterator
    /// one at a time, so a shared `Arc<[Instruction]>` stream can be
    /// replayed against many configurations with zero per-cell trace cost.
    pub fn run_slice(&mut self, trace: &[Instruction], count: u64) -> SimReport {
        let n = usize::try_from(count)
            .unwrap_or(usize::MAX)
            .min(trace.len());
        for instr in &trace[..n] {
            self.step_timing(instr);
        }
        self.flush_telemetry();
        self.report()
    }

    fn stat_totals(&self) -> StatTotals {
        let predictor = self.front_end.predictor();
        let mut totals = StatTotals {
            instructions: self.instructions,
            fetch_stall_cycles: self.front_end.fetch_stall_cycles(),
            redirects: self.front_end.mispredicts(),
            serialized_ops: self.issue_stage.serialized_ops(),
            distinct_issue_cycles: self.issue_stage.distinct_issue_cycles(),
            memory_wait_cycles: self.hazard_unit.memory_wait_cycles(),
            predictor_observed: predictor.observed(),
            predictor_correct: predictor.correct(),
            cache: [
                (self.caches.l1().accesses(), self.caches.l1().misses()),
                (
                    self.caches.l1i().map_or(0, |c| c.accesses()),
                    self.caches.l1i().map_or(0, |c| c.misses()),
                ),
                (self.caches.l2().accesses(), self.caches.l2().misses()),
            ],
            ..StatTotals::default()
        };
        for (i, &kind) in HazardKind::ALL.iter().enumerate() {
            totals.hazard_events[i] = self.hazard_unit.stats().events(kind);
            totals.hazard_stalls[i] = self.hazard_unit.stats().stall_cycles(kind);
        }
        totals
    }

    /// Flushes the delta of every statistic since the last flush into the
    /// attached telemetry registry, under per-stage `sim.stage.*` names.
    /// No-op when telemetry is disabled.
    fn flush_telemetry(&mut self) {
        if !self.telemetry.is_enabled() {
            return;
        }
        let now = self.stat_totals();
        let prev = std::mem::replace(&mut self.flushed, now);
        let t = &self.telemetry;
        t.counter("sim.instructions")
            .add(now.instructions.saturating_sub(prev.instructions));
        for i in 0..HazardKind::ALL.len() {
            t.counter(metric_names::HAZARD_EVENTS[i])
                .add(now.hazard_events[i].saturating_sub(prev.hazard_events[i]));
            t.counter(metric_names::HAZARD_STALL_CYCLES[i])
                .add(now.hazard_stalls[i].saturating_sub(prev.hazard_stalls[i]));
        }
        t.counter("sim.stage.frontend.fetch_stall_cycles").add(
            now.fetch_stall_cycles
                .saturating_sub(prev.fetch_stall_cycles),
        );
        t.counter("sim.stage.frontend.redirects")
            .add(now.redirects.saturating_sub(prev.redirects));
        t.counter("sim.stage.issue.serialized_ops")
            .add(now.serialized_ops.saturating_sub(prev.serialized_ops));
        t.counter("sim.stage.issue.distinct_cycles").add(
            now.distinct_issue_cycles
                .saturating_sub(prev.distinct_issue_cycles),
        );
        t.counter("sim.stage.exec.memory_wait_cycles").add(
            now.memory_wait_cycles
                .saturating_sub(prev.memory_wait_cycles),
        );
        let observed = now
            .predictor_observed
            .saturating_sub(prev.predictor_observed);
        let hits = now.predictor_correct.saturating_sub(prev.predictor_correct);
        t.counter("sim.predictor.hits").add(hits);
        t.counter("sim.predictor.misses")
            .add(observed.saturating_sub(hits));
        for i in 0..3 {
            let accesses = now.cache[i].0.saturating_sub(prev.cache[i].0);
            let misses = now.cache[i].1.saturating_sub(prev.cache[i].1);
            t.counter(metric_names::CACHE_HITS[i])
                .add(accesses.saturating_sub(misses));
            t.counter(metric_names::CACHE_MISSES[i]).add(misses);
        }
    }

    /// Produces the report for everything simulated so far.
    pub fn report(&self) -> SimReport {
        SimReport::gather(
            self.config,
            self.plan,
            self.instructions,
            self.exec_core
                .finish_cycle()
                .saturating_sub(self.stats_base_cycle),
            self.issue_stage.distinct_issue_cycles(),
            &self.activity,
            self.hazard_unit.stats().clone(),
            self.front_end.branches(),
            self.front_end.mispredicts(),
            self.caches.l1().miss_rate(),
            self.caches.l2().miss_rate(),
            self.caches.l1i().map(|c| c.miss_rate()).unwrap_or(0.0),
            self.hazard_unit.memory_wait_cycles(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hazard::HazardKind;
    use pipedepth_trace::isa::{BranchInfo, MemRef, OpClass, Reg};

    fn alu(pc: u64, dst: u8, srcs: &[u8]) -> Instruction {
        let mut i = Instruction::new(pc, OpClass::AluRr).with_dst(Reg::gpr(dst));
        for &s in srcs {
            i = i.with_src(Reg::gpr(s));
        }
        i
    }

    #[test]
    fn slice_run_matches_streaming_run() {
        let mut gen =
            pipedepth_trace::TraceGenerator::new(pipedepth_trace::WorkloadModel::modern_like(), 11);
        let trace = gen.take_vec(6_000);
        let mut streaming = Engine::new(SimConfig::paper(14));
        streaming.warm_up(trace[..2_000].iter().copied(), 2_000);
        let a = streaming.run(trace[2_000..].iter().copied(), 4_000);
        let mut sliced = Engine::new(SimConfig::paper(14));
        sliced.warm_up_slice(&trace, 2_000);
        let b = sliced.run_slice(&trace[2_000..], 4_000);
        assert_eq!(a, b, "slice mode must reproduce the streaming report");
    }

    #[test]
    fn slice_run_stops_at_slice_end() {
        let mut gen = pipedepth_trace::TraceGenerator::new(
            pipedepth_trace::WorkloadModel::spec_int_like(),
            2,
        );
        let trace = gen.take_vec(1_000);
        let mut e = Engine::new(SimConfig::paper(8));
        let r = e.run_slice(&trace, 5_000);
        assert_eq!(r.instructions, 1_000, "count beyond the slice is clamped");
    }

    #[test]
    fn independent_alus_fill_the_width() {
        let mut e = Engine::new(SimConfig::paper(8));
        // 8 independent ALU ops, width 4: two issue cycles.
        for k in 0..8 {
            e.step(&alu(k * 4, k as u8, &[]));
        }
        let r = e.report();
        assert_eq!(r.instructions, 8);
        assert_eq!(r.distinct_issue_cycles, 2, "4-wide ⇒ 8 ops in 2 cycles");
        assert!((r.alpha() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn dependent_chain_serialises() {
        let mut e = Engine::new(SimConfig::paper(8));
        // Each op reads the previous op's destination.
        e.step(&alu(0, 0, &[]));
        for k in 1..10u8 {
            e.step(&alu(k as u64 * 4, k, &[k - 1]));
        }
        let r = e.report();
        // Chain of 10 with E-unit latency ≥ 1: at least 10 issue cycles.
        assert!(r.distinct_issue_cycles >= 10);
        assert!(r.hazards.events(HazardKind::Data) > 0);
    }

    #[test]
    fn mispredicted_branch_costs_a_refill() {
        let depth = 16;
        let mut e = Engine::new(SimConfig::paper(depth));
        // Train nothing; a not-taken-predicted branch that is taken.
        let b = Instruction::new(0x100, OpClass::Branch).with_branch(BranchInfo {
            taken: false,
            target: 0x104,
        });
        // First make the predictor strongly taken by observing taken
        // branches at this pc.
        for _ in 0..8 {
            e.step(
                &Instruction::new(0x100, OpClass::Branch).with_branch(BranchInfo {
                    taken: true,
                    target: 0x200,
                }),
            );
        }
        let before = e.report().hazards.events(HazardKind::Control);
        e.step(&b); // now mispredicted (predictor says taken)
        e.step(&alu(0x104, 1, &[]));
        let r = e.report();
        assert!(
            r.hazards.events(HazardKind::Control) > before,
            "mispredict must record a control hazard"
        );
        // The refill is at least the decode→execute transit.
        let plan = StagePlan::try_for_depth(depth).expect("valid depth");
        assert!(r.hazards.stall_cycles(HazardKind::Control) as u32 >= plan.decode + plan.execute);
    }

    #[test]
    fn cache_miss_delays_dependent() {
        let mut e = Engine::new(SimConfig::paper(8));
        let load = Instruction::new(0, OpClass::Load)
            .with_mem(MemRef {
                addr: 0x9999_0000,
                size: 8,
            })
            .with_dst(Reg::gpr(1));
        e.step(&load); // cold miss to memory
        e.step(&alu(4, 2, &[1])); // consumer
        let r = e.report();
        // The stall is recorded (capped at two pipeline drains for γ).
        assert!(r.hazards.events(HazardKind::Memory) >= 1);
        assert!(
            r.hazards.stall_cycles(HazardKind::Memory) >= e.config.depth as u64,
            "memory stall cycles {}",
            r.hazards.stall_cycles(HazardKind::Memory)
        );
    }

    #[test]
    fn fp_is_structurally_serialised() {
        let mut e = Engine::new(SimConfig::paper(8));
        for k in 0..4u8 {
            let i = Instruction::new(k as u64 * 4, OpClass::Fp).with_dst(Reg::fpr(k));
            e.step(&i);
        }
        let r = e.report();
        // Independent FP ops cannot dual-issue: the FP unit is busy. The
        // wait is occupancy (reduced α), deliberately not a hazard event.
        assert!(r.distinct_issue_cycles >= 4);
        assert!((r.alpha() - 1.0).abs() < 1e-9);
        assert_eq!(r.hazards.events(HazardKind::Structural), 0);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut e = Engine::new(SimConfig::paper(12));
            let mut gen = pipedepth_trace::TraceGenerator::new(
                pipedepth_trace::WorkloadModel::modern_like(),
                3,
            );
            e.run(&mut gen, 5_000)
        };
        let a = run();
        let b = run();
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.hazards, b.hazards);
    }

    #[test]
    fn deeper_pipeline_takes_more_cycles() {
        let cpi_at = |depth| {
            let mut e = Engine::new(SimConfig::paper(depth));
            let mut gen = pipedepth_trace::TraceGenerator::new(
                pipedepth_trace::WorkloadModel::spec_int_like(),
                7,
            );
            e.run(&mut gen, 20_000).cpi()
        };
        let shallow = cpi_at(4);
        let deep = cpi_at(20);
        assert!(deep > shallow, "CPI {shallow} -> {deep}");
    }

    #[test]
    fn time_per_instruction_is_convex_in_depth() {
        // BIPS (1/time) should peak at an intermediate depth: the shallow
        // design has a slow clock, the deep one pays hazards.
        let time_at = |depth| {
            let mut e = Engine::new(SimConfig::paper(depth));
            let mut gen = pipedepth_trace::TraceGenerator::new(
                pipedepth_trace::WorkloadModel::spec_int_like(),
                7,
            );
            e.run(&mut gen, 20_000).time_per_instruction_fo4()
        };
        let t2 = time_at(2);
        let t14 = time_at(14);
        assert!(t14 < t2, "pipelining must help initially: {t2} vs {t14}");
    }

    #[test]
    fn activity_scales_with_plan() {
        let mut e = Engine::new(SimConfig::paper(20));
        let mut gen = pipedepth_trace::TraceGenerator::new(
            pipedepth_trace::WorkloadModel::spec_int_like(),
            5,
        );
        let r = e.run(&mut gen, 5_000);
        let plan = StagePlan::try_for_depth(20).expect("valid depth");
        let decode_activity = r.unit_activity(Unit::Decode);
        assert_eq!(decode_activity, 5_000 * plan.decode as u64);
        // Cache activity only for memory instructions.
        assert!(r.unit_activity(Unit::Cache) < 5_000 * plan.cache as u64);
        assert!(r.unit_activity(Unit::Cache) > 0);
    }

    fn run_with_features(features: crate::config::Features, depth: u32) -> SimReport {
        let cfg = SimConfig::paper(depth).with_features(features);
        let mut e = Engine::new(cfg);
        let mut gen =
            pipedepth_trace::TraceGenerator::new(pipedepth_trace::WorkloadModel::modern_like(), 21);
        e.warm_up(&mut gen, 10_000);
        e.run(&mut gen, 20_000)
    }

    #[test]
    fn out_of_order_is_at_least_as_fast() {
        use crate::config::{Features, IssuePolicy};
        let inorder = run_with_features(Features::default(), 12);
        let ooo = run_with_features(
            Features {
                issue: IssuePolicy::OutOfOrder,
                ..Features::default()
            },
            12,
        );
        assert!(
            ooo.cpi() <= inorder.cpi() + 1e-9,
            "OoO {} vs in-order {}",
            ooo.cpi(),
            inorder.cpi()
        );
    }

    #[test]
    fn disabling_forwarding_slows_dependent_code() {
        use crate::config::Features;
        let with = run_with_features(Features::default(), 16);
        let without = run_with_features(
            Features {
                forwarding: false,
                ..Features::default()
            },
            16,
        );
        assert!(
            without.cpi() > with.cpi(),
            "no-forwarding {} vs forwarding {}",
            without.cpi(),
            with.cpi()
        );
    }

    #[test]
    fn disabling_stall_on_use_slows_memory_code() {
        use crate::config::Features;
        let with = run_with_features(Features::default(), 12);
        let without = run_with_features(
            Features {
                stall_on_use: false,
                ..Features::default()
            },
            12,
        );
        assert!(without.cpi() >= with.cpi());
    }

    #[test]
    fn fixed_queues_throttle_deep_pipelines() {
        use crate::config::Features;
        let scaled = run_with_features(Features::default(), 24);
        let fixed = run_with_features(
            Features {
                scaled_queues: false,
                ..Features::default()
            },
            24,
        );
        assert!(
            fixed.cpi() >= scaled.cpi(),
            "fixed {} vs scaled {}",
            fixed.cpi(),
            scaled.cpi()
        );
    }

    #[test]
    fn prefetcher_reduces_streaming_misses() {
        let mut cfg = SimConfig::paper(8);
        cfg.cache.prefetch = false;
        let mut e_off = Engine::new(cfg);
        let mut e_on = Engine::new(SimConfig::paper(8));
        let model = pipedepth_trace::WorkloadModel::spec_fp_like();
        let mut g1 = pipedepth_trace::TraceGenerator::new(model, 5);
        let mut g2 = pipedepth_trace::TraceGenerator::new(model, 5);
        e_off.warm_up(&mut g1, 10_000);
        e_on.warm_up(&mut g2, 10_000);
        let off = e_off.run(&mut g1, 20_000);
        let on = e_on.run(&mut g2, 20_000);
        assert!(
            on.l1_miss_rate < off.l1_miss_rate,
            "prefetch on {} vs off {}",
            on.l1_miss_rate,
            off.l1_miss_rate
        );
    }

    #[test]
    fn large_code_footprint_misses_icache() {
        let run_model = |model| {
            let mut e = Engine::new(SimConfig::paper(10));
            let mut gen = pipedepth_trace::TraceGenerator::new(model, 13);
            e.warm_up(&mut gen, 10_000);
            e.run(&mut gen, 20_000)
        };
        let legacy = run_model(pipedepth_trace::WorkloadModel::legacy_like());
        let spec = run_model(pipedepth_trace::WorkloadModel::spec_int_like());
        assert!(
            legacy.l1i_miss_rate > spec.l1i_miss_rate,
            "legacy {} vs specint {}",
            legacy.l1i_miss_rate,
            spec.l1i_miss_rate
        );
        assert!(spec.l1i_miss_rate < 0.05, "specint code is cache-resident");
    }

    #[test]
    fn disabling_icache_makes_fetch_free() {
        let mut cfg = SimConfig::paper(10);
        cfg.cache.l1i_bytes = 0;
        let mut e = Engine::new(cfg);
        let mut gen =
            pipedepth_trace::TraceGenerator::new(pipedepth_trace::WorkloadModel::legacy_like(), 13);
        let r = e.run(&mut gen, 10_000);
        assert_eq!(r.l1i_miss_rate, 0.0);
    }

    #[test]
    fn timing_stages_are_ordered() {
        let mut e = Engine::new(SimConfig::paper(12));
        let mut gen =
            pipedepth_trace::TraceGenerator::new(pipedepth_trace::WorkloadModel::modern_like(), 17);
        let mut last_retire = 0;
        for _ in 0..2000 {
            let i = gen.next_instruction();
            let t = e.step_timing(&i);
            assert!(t.decode <= t.issue, "{t:?}");
            assert!(t.issue < t.exec_done, "{t:?}");
            assert!(t.exec_done < t.retire, "{t:?}");
            // Retirement is in order.
            assert!(t.retire >= last_retire, "{t:?} after {last_retire}");
            last_retire = t.retire;
        }
    }

    #[test]
    fn in_order_issue_is_monotone() {
        let mut e = Engine::new(SimConfig::paper(10));
        let mut gen = pipedepth_trace::TraceGenerator::new(
            pipedepth_trace::WorkloadModel::spec_int_like(),
            18,
        );
        let mut last_issue = 0;
        for _ in 0..2000 {
            let i = gen.next_instruction();
            let t = e.step_timing(&i);
            assert!(t.issue >= last_issue, "in-order issue went backwards");
            last_issue = t.issue;
        }
    }

    #[test]
    fn empty_run_reports_zero() {
        let e = Engine::new(SimConfig::paper(8));
        let r = e.report();
        assert_eq!(r.instructions, 0);
        assert_eq!(r.cycles, 0);
        assert_eq!(r.cpi(), 0.0);
    }

    #[test]
    fn try_new_rejects_invalid_config() {
        let mut cfg = SimConfig::paper(8);
        cfg.width = 0;
        assert!(matches!(
            Engine::try_new(cfg),
            Err(ConfigError::Width { width: 0 })
        ));
        assert!(Engine::try_new(SimConfig::paper(8)).is_ok());
    }

    #[test]
    fn stage_units_are_inspectable() {
        let mut e = Engine::new(SimConfig::paper(10));
        let mut gen =
            pipedepth_trace::TraceGenerator::new(pipedepth_trace::WorkloadModel::modern_like(), 23);
        let r = e.run(&mut gen, 5_000);
        // The report is assembled from the units' own counters.
        assert_eq!(e.front_end().branches(), r.branches);
        assert_eq!(e.front_end().mispredicts(), r.mispredicts);
        assert_eq!(
            e.issue_stage().distinct_issue_cycles(),
            r.distinct_issue_cycles
        );
        assert_eq!(e.hazard_unit().stats(), &r.hazards);
        assert_eq!(e.hazard_unit().memory_wait_cycles(), r.memory_wait_cycles);
        assert!(e.exec_core().finish_cycle() >= r.cycles);
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn run_flushes_aggregate_counters() {
        let telemetry = Telemetry::new();
        let mut e = Engine::new(SimConfig::paper(12)).with_telemetry(telemetry.clone());
        let mut gen =
            pipedepth_trace::TraceGenerator::new(pipedepth_trace::WorkloadModel::modern_like(), 3);
        e.warm_up(&mut gen, 1_000);
        let report = e.run(&mut gen, 5_000);
        let snap = telemetry.snapshot();
        assert_eq!(snap.counter("sim.warmup_instructions"), 1_000);
        assert_eq!(snap.counter("sim.instructions"), 5_000);
        assert_eq!(
            snap.counter("sim.predictor.hits") + snap.counter("sim.predictor.misses"),
            report.branches
        );
        for kind in HazardKind::ALL {
            assert_eq!(
                snap.counter(&format!("sim.stage.hazard.{kind}.events")),
                report.hazards.events(kind),
                "hazard {kind}"
            );
            assert_eq!(
                snap.counter(&format!("sim.stage.hazard.{kind}.stall_cycles")),
                report.hazards.stall_cycles(kind),
                "hazard {kind}"
            );
        }
        // Per-stage counters track the report's view of the same window.
        assert_eq!(
            snap.counter("sim.stage.frontend.redirects"),
            report.mispredicts
        );
        assert_eq!(
            snap.counter("sim.stage.issue.distinct_cycles"),
            report.distinct_issue_cycles
        );
        assert_eq!(
            snap.counter("sim.stage.exec.memory_wait_cycles"),
            report.memory_wait_cycles
        );
        assert!(snap.counter("sim.cache.l1d.hits") > 0);
        assert!(snap.counter("sim.cache.l1i.hits") > 0);
        // A second run adds only its own delta.
        e.run(&mut gen, 1_000);
        assert_eq!(telemetry.snapshot().counter("sim.instructions"), 6_000);
    }

    #[test]
    fn run_accepts_into_iterator() {
        // A materialised Vec (an IntoIterator, not an Iterator) works too.
        let mut gen =
            pipedepth_trace::TraceGenerator::new(pipedepth_trace::WorkloadModel::modern_like(), 9);
        let trace = gen.take_vec(2_000);
        let mut from_vec = Engine::new(SimConfig::paper(10));
        let a = from_vec.run(trace.clone(), 2_000);
        let mut from_iter = Engine::new(SimConfig::paper(10));
        let b = from_iter.run(trace.iter().copied(), 2_000);
        assert_eq!(a.cycles, b.cycles);
    }
}
