//! The timing engine: a cycle-accurate interval simulator of the paper's
//! 4-issue in-order superscalar pipeline.
//!
//! Every instruction's passage through the machine is resolved to exact
//! cycle numbers under the configured stage plan, port widths, branch
//! predictor and cache hierarchy. The engine is deterministic: the same
//! trace and configuration always produce the same cycle counts, per-unit
//! activity, and hazard attribution.
//!
//! The simulation style is *interval* (scoreboard) simulation: instead of
//! iterating machine state cycle by cycle, each instruction's stage entry
//! times are computed from its predecessors' times and resource
//! availability. For an in-order machine this is exact, and it yields the
//! per-unit occupancy counts the power model needs.

use crate::cache::{AccessResult, Hierarchy};
use crate::config::{ConfigError, IssuePolicy, SimConfig, StagePlan, Unit};
use crate::hazard::{HazardKind, HazardStats};
use crate::predictor::Gshare;
use crate::report::SimReport;
use pipedepth_telemetry::Telemetry;
use pipedepth_trace::isa::{Instruction, OpClass, Reg};

/// A resource granting at most `width` acquisitions per cycle, in order.
#[derive(Debug, Clone)]
struct Port {
    width: u32,
    cycle: u64,
    used: u32,
}

impl Port {
    fn new(width: u32) -> Self {
        assert!(width >= 1, "port width must be at least 1");
        Port {
            width,
            cycle: 0,
            used: 0,
        }
    }

    /// Grants a slot at the earliest cycle ≥ `at` consistent with previous
    /// grants (grants never go backwards: the machine is in order).
    fn acquire(&mut self, at: u64) -> u64 {
        if at > self.cycle {
            self.cycle = at;
            self.used = 1;
        } else if self.used < self.width {
            self.used += 1;
        } else {
            self.cycle += 1;
            self.used = 1;
        }
        self.cycle
    }

    /// Marks the current cycle exhausted, so the next grant opens a new
    /// cycle (used by serialising instructions).
    fn close_cycle(&mut self) {
        self.used = self.width;
    }
}

/// How the most recent writer of a register produced its value — used to
/// classify the stalls of dependent instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WriterKind {
    /// Ordinary pipelined producer.
    Normal,
    /// Producer was delayed by a cache miss.
    Miss,
    /// Producer was a multi-cycle FP operation (fixed-cycle latency:
    /// waiting on it is occupancy, not a depth-scaled hazard).
    FpUnit,
}

/// Both register files flattened into one slot space: GPRs at
/// `0..FILE_SIZE`, FPRs at `FILE_SIZE..2*FILE_SIZE`. A single pair of
/// flat arrays keeps every ready-time lookup a direct index with no
/// per-file dispatch on the hot path.
const REG_SLOTS: usize = 2 * Reg::FILE_SIZE as usize;

fn reg_slot(reg: Reg) -> usize {
    match reg {
        Reg::Gpr(i) => i as usize,
        Reg::Fpr(i) => Reg::FILE_SIZE as usize + i as usize,
    }
}

/// Fixed-capacity ring of the most recent issue cycles, replacing the
/// `VecDeque` issue history. The backing buffer is a power of two, so the
/// oldest retained entry — the decoupling-queue floor — is one masked
/// index away. Pushing past capacity overwrites the oldest slot, exactly
/// the pop-front/push-back pattern of the old deque, with no branchy
/// wraparound logic and no heap churn after construction.
#[derive(Debug, Clone)]
struct IssueRing {
    buf: Box<[u64]>,
    mask: usize,
    capacity: usize,
    /// Total pushes since construction (monotone; the live window is the
    /// last `capacity` of them).
    count: usize,
}

impl IssueRing {
    fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "queue capacity must be at least 1");
        let size = capacity.next_power_of_two();
        IssueRing {
            buf: vec![0; size].into_boxed_slice(),
            mask: size - 1,
            capacity,
            count: 0,
        }
    }

    /// The queue floor: decode may not run ahead of the issue cycle of the
    /// instruction `capacity` slots back (0 while the window is filling).
    #[inline]
    fn floor(&self) -> u64 {
        if self.count >= self.capacity {
            self.buf[(self.count - self.capacity) & self.mask]
        } else {
            0
        }
    }

    #[inline]
    fn push(&mut self, issue: u64) {
        self.buf[self.count & self.mask] = issue;
        self.count += 1;
    }
}

/// Per-configuration latency tables, computed once at engine construction
/// so the per-instruction path never re-derives a stage latency, converts
/// an FO4 penalty, or walks `Unit::ALL`.
#[derive(Debug, Clone, Copy)]
struct Tables {
    /// Stage latencies of the plan, widened once.
    decode: u64,
    agen: u64,
    cache: u64,
    execute: u64,
    complete: u64,
    /// Extra E-unit cycles per operation class (`class as usize` index).
    exec_extra: [u64; OpClass::ALL.len()],
    /// Miss penalty in cycles per access result (`result as usize` index):
    /// `fo4_to_cycles(penalty_fo4(..))` with the float math paid up front.
    miss_penalty: [u64; 3],
    /// Hazard-stall cap: two full pipeline drains.
    hazard_cap: u64,
    /// Effective decode→issue decoupling capacity.
    queue_capacity: usize,
}

/// Cycle-level timing of one instruction's passage through the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstrTiming {
    /// Cycle the instruction entered decode.
    pub decode: u64,
    /// Cycle it issued to the E-unit.
    pub issue: u64,
    /// Cycle its execution completed.
    pub exec_done: u64,
    /// Cycle it retired.
    pub retire: u64,
}

/// The pipeline timing engine.
///
/// # Examples
///
/// ```
/// use pipedepth_sim::{Engine, SimConfig};
/// use pipedepth_trace::{TraceGenerator, WorkloadModel};
///
/// let mut engine = Engine::new(SimConfig::paper(8));
/// let mut gen = TraceGenerator::new(WorkloadModel::spec_int_like(), 1);
/// let report = engine.run(&mut gen, 10_000);
/// assert!(report.cpi() > 0.25, "cannot beat the 4-wide issue limit");
/// ```
#[derive(Debug, Clone)]
pub struct Engine {
    config: SimConfig,
    plan: StagePlan,
    caches: Hierarchy,
    predictor: Gshare,

    decode_port: Port,
    issue_port: Port,
    cache_port: Port,
    retire_port: Port,

    /// Flattened register scoreboards (see [`reg_slot`]).
    reg_ready: [u64; REG_SLOTS],
    reg_writer: [WriterKind; REG_SLOTS],
    /// Per-configuration latency tables (see [`Tables`]).
    tables: Tables,

    redirect_at: u64,
    /// Last instruction-cache line fetched (fetch accesses once per line).
    last_fetch_line: u64,
    /// Issue cycles of the most recent instructions, bounding how far the
    /// front end can run ahead (finite decoupling queues).
    issue_history: IssueRing,
    last_decode: u64,
    last_issue: u64,
    last_retire: u64,
    fp_busy_until: u64,

    instructions: u64,
    finish_cycle: u64,
    /// Cycle at which the current measurement window opened.
    stats_base_cycle: u64,
    distinct_issue_cycles: u64,
    last_issue_cycle_seen: Option<u64>,
    activity: [u64; Unit::ALL.len()],
    hazards: HazardStats,
    branches: u64,
    mispredicts: u64,
    memory_wait_cycles: u64,

    telemetry: Telemetry,
    /// Statistic totals already flushed into the telemetry registry;
    /// flushing records only the delta since this watermark, once per run
    /// window, so the per-instruction hot path stays free of atomics.
    flushed: StatTotals,
}

/// Cumulative statistic totals, captured to flush per-run deltas into the
/// telemetry counters.
#[derive(Debug, Clone, Copy, Default)]
struct StatTotals {
    instructions: u64,
    hazard_events: [u64; HazardKind::ALL.len()],
    hazard_stalls: [u64; HazardKind::ALL.len()],
    predictor_observed: u64,
    predictor_correct: u64,
    /// `(accesses, misses)` for the l1d, l1i, l2 levels.
    cache: [(u64, u64); 3],
}

impl Engine {
    /// Combined capacity, in instructions, of the decoupling queues between
    /// decode and issue (address + execution queues) at depth `p`. Queues
    /// are sized with the pipeline — a deeper machine needs more
    /// instructions in flight to cover its own latencies, and the paper's
    /// expansion methodology grows the queue stages alongside the units.
    /// With `scaled_queues` disabled the capacity is a fixed 16 entries.
    pub fn queue_capacity(depth: u32) -> usize {
        (8 + 2 * depth) as usize
    }

    fn tables_for(config: &SimConfig, plan: &StagePlan, caches: &Hierarchy) -> Tables {
        let mut exec_extra = [0u64; OpClass::ALL.len()];
        for class in OpClass::ALL {
            // Extra E-unit cycles beyond the pipelined pass for multi-cycle
            // (floating-point) operations. Following the paper's model —
            // "floating point instructions execute individually and take
            // multiple cycles to complete" — the iteration count is fixed in
            // *cycles*, so FP latency shrinks in absolute time as the clock
            // speeds up with depth. Combined with the serialisation of the
            // FP unit this yields low α and deep optimum depths for FP
            // workloads, as the paper reports.
            let extra_passes = class.base_exec_cycles().saturating_sub(1) as u64;
            exec_extra[class as usize] = extra_passes * 2;
        }
        let mut miss_penalty = [0u64; 3];
        for result in [AccessResult::L1, AccessResult::L2, AccessResult::Memory] {
            miss_penalty[result as usize] = config.fo4_to_cycles(caches.penalty_fo4(result));
        }
        Tables {
            decode: plan.decode as u64,
            agen: plan.agen as u64,
            cache: plan.cache as u64,
            execute: plan.execute as u64,
            complete: plan.complete as u64,
            exec_extra,
            miss_penalty,
            hazard_cap: 2 * config.depth as u64,
            queue_capacity: if config.features.scaled_queues {
                Engine::queue_capacity(config.depth)
            } else {
                16
            },
        }
    }

    /// Creates an engine for one pipeline configuration.
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration; use [`Engine::try_new`] to
    /// handle that case as an error.
    pub fn new(config: SimConfig) -> Self {
        Self::try_new(config).expect("simulator configuration must be valid")
    }

    /// Creates an engine for one pipeline configuration, validated.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] found by [`SimConfig::validate`].
    pub fn try_new(config: SimConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        let plan = StagePlan::try_for_depth(config.depth)?;
        let caches = Hierarchy::try_new(config.cache)?;
        let tables = Engine::tables_for(&config, &plan, &caches);
        Ok(Engine {
            config,
            plan,
            caches,
            predictor: Gshare::try_new(config.predictor)?,
            decode_port: Port::new(config.width),
            issue_port: Port::new(config.width),
            cache_port: Port::new(config.cache_ports),
            retire_port: Port::new(config.width),
            reg_ready: [0; REG_SLOTS],
            reg_writer: [WriterKind::Normal; REG_SLOTS],
            redirect_at: 0,
            last_fetch_line: u64::MAX,
            issue_history: IssueRing::new(tables.queue_capacity),
            tables,
            last_decode: 0,
            last_issue: 0,
            last_retire: 0,
            fp_busy_until: 0,
            instructions: 0,
            finish_cycle: 0,
            stats_base_cycle: 0,
            distinct_issue_cycles: 0,
            last_issue_cycle_seen: None,
            activity: [0; Unit::ALL.len()],
            hazards: HazardStats::new(),
            branches: 0,
            mispredicts: 0,
            memory_wait_cycles: 0,
            telemetry: Telemetry::disabled(),
            flushed: StatTotals::default(),
        })
    }

    /// Attaches a telemetry handle (builder style). [`Engine::run`] and
    /// [`Engine::warm_up`] flush aggregate statistics into it — counters
    /// under `sim.*` — once per run window.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The configuration this engine realises.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The stage plan in effect.
    pub fn plan(&self) -> &StagePlan {
        &self.plan
    }

    /// The cache hierarchy (for inspection).
    pub fn caches(&self) -> &Hierarchy {
        &self.caches
    }

    /// The branch predictor (for inspection).
    pub fn predictor(&self) -> &Gshare {
        &self.predictor
    }

    #[inline]
    fn set_ready(&mut self, reg: Reg, at: u64, writer: WriterKind) {
        let slot = reg_slot(reg);
        self.reg_ready[slot] = at;
        self.reg_writer[slot] = writer;
    }

    #[inline]
    fn bump_activity(&mut self, unit: Unit, stages: u64) {
        // Unit is fieldless and `ALL` is in declaration order, so the
        // discriminant is the activity index.
        self.activity[unit as usize] += stages;
    }

    /// Simulates one instruction, returning the cycle it retires.
    pub fn step(&mut self, instr: &Instruction) -> u64 {
        self.step_timing(instr).retire
    }

    /// Simulates one instruction, returning its full stage timing.
    pub fn step_timing(&mut self, instr: &Instruction) -> InstrTiming {
        let tables = self.tables;

        // ---- Decode (front end) --------------------------------------
        // Finite decoupling queues: decode cannot run more than
        // QUEUE_CAPACITY instructions ahead of issue.
        let queue_floor = self.issue_history.floor();
        let mut decode_req = self.last_decode.max(self.redirect_at).max(queue_floor);

        // ---- Instruction fetch ----------------------------------------
        // One instruction-cache access per new code line; a fetch miss
        // stalls decode for the (absolute-time) miss latency.
        let line = instr.pc / self.config.cache.line_bytes;
        if line != self.last_fetch_line {
            self.last_fetch_line = line;
            let result = self.caches.fetch(instr.pc);
            let fetch_extra = tables.miss_penalty[result as usize];
            if fetch_extra > 0 {
                self.hazards
                    .record(HazardKind::Memory, fetch_extra.min(tables.hazard_cap));
                self.memory_wait_cycles += fetch_extra;
                decode_req += fetch_extra;
            }
        }
        let decode_cycle = self.decode_port.acquire(decode_req);
        self.last_decode = decode_cycle;
        let decode_done = decode_cycle + tables.decode;

        // ---- Source readiness ----------------------------------------
        let mut src_ready = 0u64;
        let mut src_writer = WriterKind::Normal;
        for s in instr.srcs() {
            let slot = reg_slot(s);
            let ready = self.reg_ready[slot];
            if ready > src_ready {
                src_ready = ready;
                src_writer = self.reg_writer[slot];
            } else if ready == src_ready && self.reg_writer[slot] == WriterKind::Miss {
                src_writer = WriterKind::Miss;
            }
        }
        let src_from_miss = src_writer == WriterKind::Miss;

        // ---- RX address/cache segment --------------------------------
        let is_mem = instr.class.is_memory();
        let mut data_ready = decode_done;
        let mut pipe_ready = decode_done;
        let mut miss_extra = 0u64;
        if let Some(mem) = instr.mem {
            let agen_start = decode_done.max(src_ready);
            let agen_done = agen_start + tables.agen;
            if instr.class == OpClass::Store {
                // Stores retire through a write buffer: they update cache
                // state but neither contend for a load port nor stall the
                // pipeline on a miss.
                self.caches.access(mem.addr);
                data_ready = agen_done;
                pipe_ready = agen_done;
            } else {
                let access_at = self.cache_port.acquire(agen_done);
                let result = self.caches.access(mem.addr);
                miss_extra = tables.miss_penalty[result as usize];
                data_ready = access_at + tables.cache + miss_extra;
                if instr.class == OpClass::Load && self.config.features.stall_on_use {
                    // Non-blocking cache, stall-on-use: the load itself
                    // proceeds down the pipe under a miss; only consumers
                    // wait for the returning data (via the scoreboard).
                    pipe_ready = access_at + tables.cache;
                } else if instr.class == OpClass::Load {
                    pipe_ready = data_ready;
                }
            }
            self.bump_activity(Unit::Agen, tables.agen);
            self.bump_activity(Unit::Cache, tables.cache);
        }

        // AluRx consumes its memory operand in the E-unit, so it cannot
        // issue before the data arrives; loads and stores flow by.
        if instr.class == OpClass::AluRx {
            pipe_ready = data_ready;
        }

        // ---- Issue to the E-unit (in order, width-limited) ------------
        let queue_ready = if is_mem { pipe_ready } else { decode_done };
        let fp_ready = if instr.class.is_fp() {
            self.fp_busy_until
        } else {
            0
        };
        let order_floor = match self.config.features.issue {
            IssuePolicy::InOrder => self.last_issue,
            // Out of order: only the instruction's own constraints gate its
            // issue; the decoupling window (above) plays the ROB's role.
            IssuePolicy::OutOfOrder => 0,
        };
        let mut base = queue_ready.max(src_ready).max(fp_ready).max(order_floor);
        if instr.serial {
            // Complex serialising operations issue alone: they start a new
            // issue cycle and exhaust it.
            base = base.max(self.last_issue + 1);
            self.issue_port.close_cycle();
        }
        let prev_issue = self.last_issue;
        let issue = self.issue_port.acquire(base);
        if instr.serial {
            self.issue_port.close_cycle();
        }
        self.last_issue = issue;
        self.issue_history.push(issue);

        // ---- Hazard attribution ---------------------------------------
        // A hazard is the *marginal* delay this instruction's own
        // constraints add beyond both its unobstructed pipeline transit and
        // the in-order backpressure floor (an older instruction's stall is
        // that instruction's hazard, not a new one). Stalls are capped at
        // two full pipeline drains when accounted toward γ: a stall cannot
        // idle more pipeline than the machine has, and the residue of long
        // memory waits is absolute time, tracked separately below.
        let transit = decode_done
            + if is_mem {
                tables.agen + tables.cache
            } else {
                0
            };
        let floor = match self.config.features.issue {
            IssuePolicy::InOrder => transit.max(prev_issue),
            IssuePolicy::OutOfOrder => transit,
        };
        let own = queue_ready.max(src_ready).max(fp_ready);
        let stall = own.saturating_sub(floor);
        if stall > 0 {
            let gamma_stall = stall.min(tables.hazard_cap);
            // Classification precedence: a cache miss anywhere in the
            // dependence chain is a memory event; otherwise a register
            // dependence is a data event; waiting on the busy FP unit is
            // occupancy (the machine is doing work — it surfaces as reduced
            // superscalar degree α, as in the paper's multi-cycle FP model),
            // not a hazard; everything else (ports, queues) is structural.
            let load_use_blocked = instr.class == OpClass::AluRx && miss_extra > 0;
            let kind = if load_use_blocked || src_from_miss {
                Some(HazardKind::Memory)
            } else if src_ready > floor {
                // A dependent waiting on the fixed-cycle FP unit is
                // occupancy (the unit is doing work at the clock rate), not
                // a depth-scaled pipeline hazard — mirror the fp_ready case.
                if src_writer == WriterKind::FpUnit {
                    None
                } else {
                    Some(HazardKind::Data)
                }
            } else if fp_ready > floor {
                None
            } else {
                Some(HazardKind::Structural)
            };
            if let Some(kind) = kind {
                self.hazards.record(kind, gamma_stall);
            }
        }
        // Absolute-time memory latency (does not scale with pipeline depth;
        // reported as a per-instruction time so the theory comparison can
        // treat it as the additive constant it is).
        self.memory_wait_cycles += miss_extra;

        // ---- Execute ---------------------------------------------------
        let exec_lat = tables.execute + tables.exec_extra[instr.class as usize];
        let exec_done = issue + exec_lat;
        if instr.class.is_fp() {
            self.fp_busy_until = exec_done;
        }
        if let Some(dst) = instr.dst {
            // Full forwarding network: simple ALU results bypass to
            // consumers one cycle after issue (real deep pipelines keep
            // single-cycle ALU loops); loads bypass from the cache return;
            // iterative FP forwards only when the unit finishes. The deep
            // E-unit's full latency still gates branch resolution and
            // retirement.
            let alu_ready = if self.config.features.forwarding {
                issue + 1
            } else {
                exec_done
            };
            let (ready_at, writer) = match instr.class {
                OpClass::Load => (
                    data_ready,
                    if miss_extra > 0 {
                        WriterKind::Miss
                    } else {
                        WriterKind::Normal
                    },
                ),
                OpClass::Fp | OpClass::FpLong => (exec_done, WriterKind::FpUnit),
                _ => (
                    alu_ready,
                    if miss_extra > 0 {
                        WriterKind::Miss
                    } else {
                        WriterKind::Normal
                    },
                ),
            };
            self.set_ready(dst, ready_at, writer);
        }
        // The iterative tail of a multi-cycle FP operation spins a narrow
        // datapath, not the full E-unit latch complement; only the
        // pipelined pass is charged to the unit's activity.
        self.bump_activity(Unit::Execute, tables.execute);

        // ---- Branch resolution ------------------------------------------
        if instr.class == OpClass::Branch {
            self.branches += 1;
            let taken = instr.is_taken_branch();
            let hit = self.predictor.observe(instr.pc, taken);
            if !hit {
                self.mispredicts += 1;
                let resume = exec_done + 1;
                // The flush stalls decode from right after the branch until
                // resolution: a full decode→execute refill. For γ purposes
                // the stall is capped like every other hazard.
                let refill = resume.saturating_sub(decode_cycle + 1);
                self.hazards
                    .record(HazardKind::Control, refill.min(tables.hazard_cap));
                self.redirect_at = resume;
            }
        }

        // ---- Completion / retire ----------------------------------------
        let complete_done = exec_done + tables.complete;
        let retire = self
            .retire_port
            .acquire(complete_done.max(self.last_retire));
        self.last_retire = retire;
        self.finish_cycle = self.finish_cycle.max(retire);
        self.bump_activity(Unit::Decode, tables.decode);
        self.bump_activity(Unit::Complete, tables.complete);

        // ---- Superscalar accounting -------------------------------------
        if self.last_issue_cycle_seen != Some(issue) {
            self.distinct_issue_cycles += 1;
            self.last_issue_cycle_seen = Some(issue);
        }
        self.instructions += 1;
        InstrTiming {
            decode: decode_cycle,
            issue,
            exec_done,
            retire,
        }
    }

    /// Runs `count` instructions as warmup — caches fill and the predictor
    /// trains, but no statistics are kept. Call before [`Engine::run`] to
    /// measure steady-state behaviour, as the experiment harness does.
    ///
    /// With telemetry attached, only `sim.warmup_instructions` is flushed:
    /// warmup statistics are discarded by design.
    pub fn warm_up<I>(&mut self, trace: I, count: u64)
    where
        I: IntoIterator<Item = Instruction>,
    {
        let mut trace = trace.into_iter();
        for _ in 0..count {
            match trace.next() {
                Some(instr) => {
                    self.step(&instr);
                }
                None => break,
            }
        }
        let warmed = self.instructions.saturating_sub(self.flushed.instructions);
        self.telemetry
            .counter("sim.warmup_instructions")
            .add(warmed);
        self.reset_stats();
    }

    /// Opens a fresh measurement window: zeroes every statistic while
    /// keeping all microarchitectural state (caches, predictor, in-flight
    /// timing) intact.
    pub fn reset_stats(&mut self) {
        self.instructions = 0;
        self.distinct_issue_cycles = 0;
        self.last_issue_cycle_seen = None;
        self.activity = [0; Unit::ALL.len()];
        self.hazards = HazardStats::new();
        self.branches = 0;
        self.mispredicts = 0;
        self.memory_wait_cycles = 0;
        self.stats_base_cycle = self.finish_cycle;
        self.caches.reset_stats();
        self.predictor.reset_stats();
        self.flushed = StatTotals::default();
    }

    /// Runs `count` instructions from a trace source and produces the
    /// report. With telemetry attached, the run's aggregate statistics are
    /// flushed into the `sim.*` counters on completion.
    pub fn run<I>(&mut self, trace: I, count: u64) -> SimReport
    where
        I: IntoIterator<Item = Instruction>,
    {
        let mut trace = trace.into_iter();
        for _ in 0..count {
            match trace.next() {
                Some(instr) => {
                    self.step(&instr);
                }
                None => break,
            }
        }
        self.flush_telemetry();
        self.report()
    }

    /// Slice-mode warmup: the counterpart of [`Engine::warm_up`] for a
    /// materialised trace (e.g. one resident in a
    /// [`pipedepth_trace::TraceArena`]). Simulates `trace[..count]` (or
    /// the whole slice if shorter) with no statistics kept.
    pub fn warm_up_slice(&mut self, trace: &[Instruction], count: u64) {
        let n = usize::try_from(count)
            .unwrap_or(usize::MAX)
            .min(trace.len());
        for instr in &trace[..n] {
            self.step_timing(instr);
        }
        let warmed = self.instructions.saturating_sub(self.flushed.instructions);
        self.telemetry
            .counter("sim.warmup_instructions")
            .add(warmed);
        self.reset_stats();
    }

    /// Slice-mode run: the hot path for arena-resident traces. Identical
    /// semantics to [`Engine::run`] over the same instructions — the same
    /// `SimReport`, cycle for cycle — but instructions are borrowed
    /// straight from the slice instead of being copied out of an iterator
    /// one at a time, so a shared `Arc<[Instruction]>` stream can be
    /// replayed against many configurations with zero per-cell trace cost.
    pub fn run_slice(&mut self, trace: &[Instruction], count: u64) -> SimReport {
        let n = usize::try_from(count)
            .unwrap_or(usize::MAX)
            .min(trace.len());
        for instr in &trace[..n] {
            self.step_timing(instr);
        }
        self.flush_telemetry();
        self.report()
    }

    fn stat_totals(&self) -> StatTotals {
        let mut totals = StatTotals {
            instructions: self.instructions,
            predictor_observed: self.predictor.observed(),
            predictor_correct: self.predictor.correct(),
            cache: [
                (self.caches.l1().accesses(), self.caches.l1().misses()),
                (
                    self.caches.l1i().map_or(0, |c| c.accesses()),
                    self.caches.l1i().map_or(0, |c| c.misses()),
                ),
                (self.caches.l2().accesses(), self.caches.l2().misses()),
            ],
            ..StatTotals::default()
        };
        for (i, &kind) in HazardKind::ALL.iter().enumerate() {
            totals.hazard_events[i] = self.hazards.events(kind);
            totals.hazard_stalls[i] = self.hazards.stall_cycles(kind);
        }
        totals
    }

    /// Flushes the delta of every statistic since the last flush into the
    /// attached telemetry registry. No-op when telemetry is disabled.
    fn flush_telemetry(&mut self) {
        if !self.telemetry.is_enabled() {
            return;
        }
        let now = self.stat_totals();
        let prev = std::mem::replace(&mut self.flushed, now);
        let t = &self.telemetry;
        t.counter("sim.instructions")
            .add(now.instructions.saturating_sub(prev.instructions));
        for (i, kind) in HazardKind::ALL.iter().enumerate() {
            t.counter(&format!("sim.hazards.{kind}.events"))
                .add(now.hazard_events[i].saturating_sub(prev.hazard_events[i]));
            t.counter(&format!("sim.hazards.{kind}.stall_cycles"))
                .add(now.hazard_stalls[i].saturating_sub(prev.hazard_stalls[i]));
        }
        let observed = now
            .predictor_observed
            .saturating_sub(prev.predictor_observed);
        let hits = now.predictor_correct.saturating_sub(prev.predictor_correct);
        t.counter("sim.predictor.hits").add(hits);
        t.counter("sim.predictor.misses")
            .add(observed.saturating_sub(hits));
        for (i, level) in ["l1d", "l1i", "l2"].iter().enumerate() {
            let accesses = now.cache[i].0.saturating_sub(prev.cache[i].0);
            let misses = now.cache[i].1.saturating_sub(prev.cache[i].1);
            t.counter(&format!("sim.cache.{level}.hits"))
                .add(accesses.saturating_sub(misses));
            t.counter(&format!("sim.cache.{level}.misses")).add(misses);
        }
    }

    /// Produces the report for everything simulated so far.
    pub fn report(&self) -> SimReport {
        SimReport::gather(
            self.config,
            self.plan,
            self.instructions,
            self.finish_cycle.saturating_sub(self.stats_base_cycle),
            self.distinct_issue_cycles,
            &self.activity,
            self.hazards.clone(),
            self.branches,
            self.mispredicts,
            self.caches.l1().miss_rate(),
            self.caches.l2().miss_rate(),
            self.caches.l1i().map(|c| c.miss_rate()).unwrap_or(0.0),
            self.memory_wait_cycles,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipedepth_trace::isa::{BranchInfo, MemRef};

    fn alu(pc: u64, dst: u8, srcs: &[u8]) -> Instruction {
        let mut i = Instruction::new(pc, OpClass::AluRr).with_dst(Reg::gpr(dst));
        for &s in srcs {
            i = i.with_src(Reg::gpr(s));
        }
        i
    }

    #[test]
    fn issue_ring_matches_deque_semantics() {
        use std::collections::VecDeque;
        // The ring must report exactly the floor the old VecDeque history
        // produced: 0 while filling, then the oldest retained issue cycle.
        for capacity in [1usize, 3, 16, 24, 56] {
            let mut ring = IssueRing::new(capacity);
            let mut deque: VecDeque<u64> = VecDeque::new();
            for i in 0..200u64 {
                let expected = if deque.len() >= capacity {
                    *deque.front().unwrap()
                } else {
                    0
                };
                assert_eq!(ring.floor(), expected, "capacity {capacity}, push {i}");
                let issue = i * 3 / 2; // monotone, with repeats
                if deque.len() >= capacity {
                    deque.pop_front();
                }
                deque.push_back(issue);
                ring.push(issue);
            }
        }
    }

    #[test]
    fn slice_run_matches_streaming_run() {
        let mut gen =
            pipedepth_trace::TraceGenerator::new(pipedepth_trace::WorkloadModel::modern_like(), 11);
        let trace = gen.take_vec(6_000);
        let mut streaming = Engine::new(SimConfig::paper(14));
        streaming.warm_up(trace[..2_000].iter().copied(), 2_000);
        let a = streaming.run(trace[2_000..].iter().copied(), 4_000);
        let mut sliced = Engine::new(SimConfig::paper(14));
        sliced.warm_up_slice(&trace, 2_000);
        let b = sliced.run_slice(&trace[2_000..], 4_000);
        assert_eq!(a, b, "slice mode must reproduce the streaming report");
    }

    #[test]
    fn slice_run_stops_at_slice_end() {
        let mut gen = pipedepth_trace::TraceGenerator::new(
            pipedepth_trace::WorkloadModel::spec_int_like(),
            2,
        );
        let trace = gen.take_vec(1_000);
        let mut e = Engine::new(SimConfig::paper(8));
        let r = e.run_slice(&trace, 5_000);
        assert_eq!(r.instructions, 1_000, "count beyond the slice is clamped");
    }

    #[test]
    fn port_respects_width() {
        let mut p = Port::new(2);
        assert_eq!(p.acquire(5), 5);
        assert_eq!(p.acquire(5), 5);
        assert_eq!(p.acquire(5), 6);
        assert_eq!(p.acquire(5), 6, "in-order port never goes back");
        assert_eq!(p.acquire(10), 10);
    }

    #[test]
    fn independent_alus_fill_the_width() {
        let mut e = Engine::new(SimConfig::paper(8));
        // 8 independent ALU ops, width 4: two issue cycles.
        for k in 0..8 {
            e.step(&alu(k * 4, k as u8, &[]));
        }
        let r = e.report();
        assert_eq!(r.instructions, 8);
        assert_eq!(r.distinct_issue_cycles, 2, "4-wide ⇒ 8 ops in 2 cycles");
        assert!((r.alpha() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn dependent_chain_serialises() {
        let mut e = Engine::new(SimConfig::paper(8));
        // Each op reads the previous op's destination.
        e.step(&alu(0, 0, &[]));
        for k in 1..10u8 {
            e.step(&alu(k as u64 * 4, k, &[k - 1]));
        }
        let r = e.report();
        // Chain of 10 with E-unit latency ≥ 1: at least 10 issue cycles.
        assert!(r.distinct_issue_cycles >= 10);
        assert!(r.hazards.events(HazardKind::Data) > 0);
    }

    #[test]
    fn mispredicted_branch_costs_a_refill() {
        let depth = 16;
        let mut e = Engine::new(SimConfig::paper(depth));
        // Train nothing; a not-taken-predicted branch that is taken.
        let b = Instruction::new(0x100, OpClass::Branch).with_branch(BranchInfo {
            taken: false,
            target: 0x104,
        });
        // First make the predictor strongly taken by observing taken
        // branches at this pc.
        for _ in 0..8 {
            e.step(
                &Instruction::new(0x100, OpClass::Branch).with_branch(BranchInfo {
                    taken: true,
                    target: 0x200,
                }),
            );
        }
        let before = e.report().hazards.events(HazardKind::Control);
        e.step(&b); // now mispredicted (predictor says taken)
        e.step(&alu(0x104, 1, &[]));
        let r = e.report();
        assert!(
            r.hazards.events(HazardKind::Control) > before,
            "mispredict must record a control hazard"
        );
        // The refill is at least the decode→execute transit.
        let plan = StagePlan::try_for_depth(depth).expect("valid depth");
        assert!(r.hazards.stall_cycles(HazardKind::Control) as u32 >= plan.decode + plan.execute);
    }

    #[test]
    fn cache_miss_delays_dependent() {
        let mut e = Engine::new(SimConfig::paper(8));
        let load = Instruction::new(0, OpClass::Load)
            .with_mem(MemRef {
                addr: 0x9999_0000,
                size: 8,
            })
            .with_dst(Reg::gpr(1));
        e.step(&load); // cold miss to memory
        e.step(&alu(4, 2, &[1])); // consumer
        let r = e.report();
        // The stall is recorded (capped at two pipeline drains for γ).
        assert!(r.hazards.events(HazardKind::Memory) >= 1);
        assert!(
            r.hazards.stall_cycles(HazardKind::Memory) >= e.config.depth as u64,
            "memory stall cycles {}",
            r.hazards.stall_cycles(HazardKind::Memory)
        );
    }

    #[test]
    fn fp_is_structurally_serialised() {
        let mut e = Engine::new(SimConfig::paper(8));
        for k in 0..4u8 {
            let i = Instruction::new(k as u64 * 4, OpClass::Fp).with_dst(Reg::fpr(k));
            e.step(&i);
        }
        let r = e.report();
        // Independent FP ops cannot dual-issue: the FP unit is busy. The
        // wait is occupancy (reduced α), deliberately not a hazard event.
        assert!(r.distinct_issue_cycles >= 4);
        assert!((r.alpha() - 1.0).abs() < 1e-9);
        assert_eq!(r.hazards.events(HazardKind::Structural), 0);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut e = Engine::new(SimConfig::paper(12));
            let mut gen = pipedepth_trace::TraceGenerator::new(
                pipedepth_trace::WorkloadModel::modern_like(),
                3,
            );
            e.run(&mut gen, 5_000)
        };
        let a = run();
        let b = run();
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.hazards, b.hazards);
    }

    #[test]
    fn deeper_pipeline_takes_more_cycles() {
        let cpi_at = |depth| {
            let mut e = Engine::new(SimConfig::paper(depth));
            let mut gen = pipedepth_trace::TraceGenerator::new(
                pipedepth_trace::WorkloadModel::spec_int_like(),
                7,
            );
            e.run(&mut gen, 20_000).cpi()
        };
        let shallow = cpi_at(4);
        let deep = cpi_at(20);
        assert!(deep > shallow, "CPI {shallow} -> {deep}");
    }

    #[test]
    fn time_per_instruction_is_convex_in_depth() {
        // BIPS (1/time) should peak at an intermediate depth: the shallow
        // design has a slow clock, the deep one pays hazards.
        let time_at = |depth| {
            let mut e = Engine::new(SimConfig::paper(depth));
            let mut gen = pipedepth_trace::TraceGenerator::new(
                pipedepth_trace::WorkloadModel::spec_int_like(),
                7,
            );
            e.run(&mut gen, 20_000).time_per_instruction_fo4()
        };
        let t2 = time_at(2);
        let t14 = time_at(14);
        assert!(t14 < t2, "pipelining must help initially: {t2} vs {t14}");
    }

    #[test]
    fn activity_scales_with_plan() {
        let mut e = Engine::new(SimConfig::paper(20));
        let mut gen = pipedepth_trace::TraceGenerator::new(
            pipedepth_trace::WorkloadModel::spec_int_like(),
            5,
        );
        let r = e.run(&mut gen, 5_000);
        let plan = StagePlan::try_for_depth(20).expect("valid depth");
        let decode_activity = r.unit_activity(Unit::Decode);
        assert_eq!(decode_activity, 5_000 * plan.decode as u64);
        // Cache activity only for memory instructions.
        assert!(r.unit_activity(Unit::Cache) < 5_000 * plan.cache as u64);
        assert!(r.unit_activity(Unit::Cache) > 0);
    }

    fn run_with_features(features: crate::config::Features, depth: u32) -> SimReport {
        let cfg = SimConfig::paper(depth).with_features(features);
        let mut e = Engine::new(cfg);
        let mut gen =
            pipedepth_trace::TraceGenerator::new(pipedepth_trace::WorkloadModel::modern_like(), 21);
        e.warm_up(&mut gen, 10_000);
        e.run(&mut gen, 20_000)
    }

    #[test]
    fn out_of_order_is_at_least_as_fast() {
        use crate::config::{Features, IssuePolicy};
        let inorder = run_with_features(Features::default(), 12);
        let ooo = run_with_features(
            Features {
                issue: IssuePolicy::OutOfOrder,
                ..Features::default()
            },
            12,
        );
        assert!(
            ooo.cpi() <= inorder.cpi() + 1e-9,
            "OoO {} vs in-order {}",
            ooo.cpi(),
            inorder.cpi()
        );
    }

    #[test]
    fn disabling_forwarding_slows_dependent_code() {
        use crate::config::Features;
        let with = run_with_features(Features::default(), 16);
        let without = run_with_features(
            Features {
                forwarding: false,
                ..Features::default()
            },
            16,
        );
        assert!(
            without.cpi() > with.cpi(),
            "no-forwarding {} vs forwarding {}",
            without.cpi(),
            with.cpi()
        );
    }

    #[test]
    fn disabling_stall_on_use_slows_memory_code() {
        use crate::config::Features;
        let with = run_with_features(Features::default(), 12);
        let without = run_with_features(
            Features {
                stall_on_use: false,
                ..Features::default()
            },
            12,
        );
        assert!(without.cpi() >= with.cpi());
    }

    #[test]
    fn fixed_queues_throttle_deep_pipelines() {
        use crate::config::Features;
        let scaled = run_with_features(Features::default(), 24);
        let fixed = run_with_features(
            Features {
                scaled_queues: false,
                ..Features::default()
            },
            24,
        );
        assert!(
            fixed.cpi() >= scaled.cpi(),
            "fixed {} vs scaled {}",
            fixed.cpi(),
            scaled.cpi()
        );
    }

    #[test]
    fn prefetcher_reduces_streaming_misses() {
        let mut cfg = SimConfig::paper(8);
        cfg.cache.prefetch = false;
        let mut e_off = Engine::new(cfg);
        let mut e_on = Engine::new(SimConfig::paper(8));
        let model = pipedepth_trace::WorkloadModel::spec_fp_like();
        let mut g1 = pipedepth_trace::TraceGenerator::new(model, 5);
        let mut g2 = pipedepth_trace::TraceGenerator::new(model, 5);
        e_off.warm_up(&mut g1, 10_000);
        e_on.warm_up(&mut g2, 10_000);
        let off = e_off.run(&mut g1, 20_000);
        let on = e_on.run(&mut g2, 20_000);
        assert!(
            on.l1_miss_rate < off.l1_miss_rate,
            "prefetch on {} vs off {}",
            on.l1_miss_rate,
            off.l1_miss_rate
        );
    }

    #[test]
    fn large_code_footprint_misses_icache() {
        let run_model = |model| {
            let mut e = Engine::new(SimConfig::paper(10));
            let mut gen = pipedepth_trace::TraceGenerator::new(model, 13);
            e.warm_up(&mut gen, 10_000);
            e.run(&mut gen, 20_000)
        };
        let legacy = run_model(pipedepth_trace::WorkloadModel::legacy_like());
        let spec = run_model(pipedepth_trace::WorkloadModel::spec_int_like());
        assert!(
            legacy.l1i_miss_rate > spec.l1i_miss_rate,
            "legacy {} vs specint {}",
            legacy.l1i_miss_rate,
            spec.l1i_miss_rate
        );
        assert!(spec.l1i_miss_rate < 0.05, "specint code is cache-resident");
    }

    #[test]
    fn disabling_icache_makes_fetch_free() {
        let mut cfg = SimConfig::paper(10);
        cfg.cache.l1i_bytes = 0;
        let mut e = Engine::new(cfg);
        let mut gen =
            pipedepth_trace::TraceGenerator::new(pipedepth_trace::WorkloadModel::legacy_like(), 13);
        let r = e.run(&mut gen, 10_000);
        assert_eq!(r.l1i_miss_rate, 0.0);
    }

    #[test]
    fn timing_stages_are_ordered() {
        let mut e = Engine::new(SimConfig::paper(12));
        let mut gen =
            pipedepth_trace::TraceGenerator::new(pipedepth_trace::WorkloadModel::modern_like(), 17);
        let mut last_retire = 0;
        for _ in 0..2000 {
            let i = gen.next_instruction();
            let t = e.step_timing(&i);
            assert!(t.decode <= t.issue, "{t:?}");
            assert!(t.issue < t.exec_done, "{t:?}");
            assert!(t.exec_done < t.retire, "{t:?}");
            // Retirement is in order.
            assert!(t.retire >= last_retire, "{t:?} after {last_retire}");
            last_retire = t.retire;
        }
    }

    #[test]
    fn in_order_issue_is_monotone() {
        let mut e = Engine::new(SimConfig::paper(10));
        let mut gen = pipedepth_trace::TraceGenerator::new(
            pipedepth_trace::WorkloadModel::spec_int_like(),
            18,
        );
        let mut last_issue = 0;
        for _ in 0..2000 {
            let i = gen.next_instruction();
            let t = e.step_timing(&i);
            assert!(t.issue >= last_issue, "in-order issue went backwards");
            last_issue = t.issue;
        }
    }

    #[test]
    fn empty_run_reports_zero() {
        let e = Engine::new(SimConfig::paper(8));
        let r = e.report();
        assert_eq!(r.instructions, 0);
        assert_eq!(r.cycles, 0);
        assert_eq!(r.cpi(), 0.0);
    }

    #[test]
    fn try_new_rejects_invalid_config() {
        let mut cfg = SimConfig::paper(8);
        cfg.width = 0;
        assert!(matches!(
            Engine::try_new(cfg),
            Err(ConfigError::Width { width: 0 })
        ));
        assert!(Engine::try_new(SimConfig::paper(8)).is_ok());
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn run_flushes_aggregate_counters() {
        let telemetry = Telemetry::new();
        let mut e = Engine::new(SimConfig::paper(12)).with_telemetry(telemetry.clone());
        let mut gen =
            pipedepth_trace::TraceGenerator::new(pipedepth_trace::WorkloadModel::modern_like(), 3);
        e.warm_up(&mut gen, 1_000);
        let report = e.run(&mut gen, 5_000);
        let snap = telemetry.snapshot();
        assert_eq!(snap.counter("sim.warmup_instructions"), 1_000);
        assert_eq!(snap.counter("sim.instructions"), 5_000);
        assert_eq!(
            snap.counter("sim.predictor.hits") + snap.counter("sim.predictor.misses"),
            report.branches
        );
        for kind in HazardKind::ALL {
            assert_eq!(
                snap.counter(&format!("sim.hazards.{kind}.events")),
                report.hazards.events(kind),
                "hazard {kind}"
            );
            assert_eq!(
                snap.counter(&format!("sim.hazards.{kind}.stall_cycles")),
                report.hazards.stall_cycles(kind),
                "hazard {kind}"
            );
        }
        assert!(snap.counter("sim.cache.l1d.hits") > 0);
        assert!(snap.counter("sim.cache.l1i.hits") > 0);
        // A second run adds only its own delta.
        e.run(&mut gen, 1_000);
        assert_eq!(telemetry.snapshot().counter("sim.instructions"), 6_000);
    }

    #[test]
    fn run_accepts_into_iterator() {
        // A materialised Vec (an IntoIterator, not an Iterator) works too.
        let mut gen =
            pipedepth_trace::TraceGenerator::new(pipedepth_trace::WorkloadModel::modern_like(), 9);
        let trace = gen.take_vec(2_000);
        let mut from_vec = Engine::new(SimConfig::paper(10));
        let a = from_vec.run(trace.clone(), 2_000);
        let mut from_iter = Engine::new(SimConfig::paper(10));
        let b = from_iter.run(trace.iter().copied(), 2_000);
        assert_eq!(a.cycles, b.cycles);
    }
}
