//! Simulator configuration and the stage plan.
//!
//! The modelled machine is the paper's Fig. 2: a 4-issue in-order
//! superscalar with two instruction flows —
//!
//! ```text
//! RR:  Decode → Rename → Exec queue → E-unit → Completion → Retire
//! RX:  Decode → Rename → Addr queue → Agen → Cache → Exec queue → E-unit → …
//! ```
//!
//! Pipeline depth is counted "between the beginning of decode and the end of
//! execution". Depth scaling follows the paper's methodology: extra stages
//! are inserted in Decode, Cache access and the E-unit simultaneously;
//! contraction merges units onto the same cycle (a merged unit has zero
//! transit latency and, in the power model, shares the cycle under the
//! max-power rule).

use std::fmt;

/// Why a simulator configuration was rejected.
///
/// Returned by the fallible constructors ([`SimConfig::builder`],
/// [`SimConfig::try_paper`], [`StagePlan::try_for_depth`], …) instead of
/// panicking. The enum is `#[non_exhaustive]`: future validation rules may
/// add variants without a breaking change.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ConfigError {
    /// Pipeline depth outside the supported `2..=64` range.
    Depth {
        /// The rejected depth.
        depth: u32,
    },
    /// Issue width must be at least 1.
    Width {
        /// The rejected width.
        width: u32,
    },
    /// Cache-port count must be at least 1.
    CachePorts {
        /// The rejected port count.
        ports: u32,
    },
    /// Total logic depth `t_p` must be positive and finite.
    LogicDepth {
        /// The rejected value, in FO4.
        fo4: f64,
    },
    /// Latch overhead `t_o` must be non-negative and finite.
    LatchOverhead {
        /// The rejected value, in FO4.
        fo4: f64,
    },
    /// A cache level's geometry is inconsistent.
    CacheGeometry {
        /// Which level (`"l1d"`, `"l1i"`, `"l2"`, or `"cache"` when built
        /// directly).
        level: &'static str,
        /// What is wrong with it.
        problem: &'static str,
    },
    /// A miss latency must be non-negative and finite.
    CacheLatency {
        /// Which latency (`"l2"` or `"memory"`).
        which: &'static str,
        /// The rejected value, in FO4.
        fo4: f64,
    },
    /// Predictor table size outside the supported `1..=24` bits.
    PredictorTableBits {
        /// The rejected log2 table size.
        table_bits: u32,
    },
    /// Predictor history longer than the 32 branches supported.
    PredictorHistoryBits {
        /// The rejected history length.
        history_bits: u32,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Depth { depth } => {
                write!(f, "pipeline depth {depth} outside supported range 2..=64")
            }
            ConfigError::Width { width } => {
                write!(f, "issue width {width} must be at least 1")
            }
            ConfigError::CachePorts { ports } => {
                write!(f, "cache-port count {ports} must be at least 1")
            }
            ConfigError::LogicDepth { fo4 } => {
                write!(f, "total logic depth {fo4} FO4 must be positive and finite")
            }
            ConfigError::LatchOverhead { fo4 } => {
                write!(
                    f,
                    "latch overhead {fo4} FO4 must be non-negative and finite"
                )
            }
            ConfigError::CacheGeometry { level, problem } => {
                write!(f, "{level} cache {problem}")
            }
            ConfigError::CacheLatency { which, fo4 } => {
                write!(
                    f,
                    "{which} miss latency {fo4} FO4 must be non-negative and finite"
                )
            }
            ConfigError::PredictorTableBits { table_bits } => {
                write!(
                    f,
                    "predictor table size of {table_bits} bits outside supported range 1..=24"
                )
            }
            ConfigError::PredictorHistoryBits { history_bits } => {
                write!(
                    f,
                    "predictor history of {history_bits} branches exceeds the supported 32"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Validates one cache level's geometry (shared by [`CacheConfig`] and the
/// direct `CacheLevel` constructor).
pub(crate) fn check_cache_geometry(
    level: &'static str,
    bytes: u64,
    ways: u32,
    line_bytes: u64,
) -> Result<(), ConfigError> {
    let geometry = |problem| ConfigError::CacheGeometry { level, problem };
    if !bytes.is_power_of_two() {
        return Err(geometry("size must be a power of two"));
    }
    if !line_bytes.is_power_of_two() {
        return Err(geometry("line size must be a power of two"));
    }
    if ways < 1 {
        return Err(geometry("needs at least one way"));
    }
    if bytes < ways as u64 * line_bytes {
        return Err(geometry("is too small for its associativity"));
    }
    Ok(())
}

/// Scalable pipeline units (the ones the paper inserts stages into, plus the
/// fixed-function back end).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Unit {
    /// Instruction decode (and rename on out-of-order models).
    Decode,
    /// Address generation for RX instructions.
    Agen,
    /// Data-cache access.
    Cache,
    /// The execution unit.
    Execute,
    /// Completion/retire (fixed depth, not counted in the paper's p).
    Complete,
}

impl Unit {
    /// The depth-scaled units, in pipeline order.
    pub const SCALED: [Unit; 4] = [Unit::Decode, Unit::Agen, Unit::Cache, Unit::Execute];

    /// All units.
    pub const ALL: [Unit; 5] = [
        Unit::Decode,
        Unit::Agen,
        Unit::Cache,
        Unit::Execute,
        Unit::Complete,
    ];

    /// Share of the processor's total logic depth assigned to this unit
    /// (the weights used to split the paper's `t_p` across units).
    pub fn logic_weight(self) -> f64 {
        match self {
            Unit::Decode => 0.30,
            Unit::Agen => 0.15,
            Unit::Cache => 0.25,
            Unit::Execute => 0.30,
            Unit::Complete => 0.0,
        }
    }
}

impl fmt::Display for Unit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Unit::Decode => "decode",
            Unit::Agen => "agen",
            Unit::Cache => "cache",
            Unit::Execute => "execute",
            Unit::Complete => "complete",
        };
        f.write_str(s)
    }
}

/// Per-unit stage counts for one pipeline depth: the realisation of the
/// paper's "expand the pipeline in a uniform manner".
///
/// A unit with zero stages is *merged* into the preceding cycle (possible
/// only at the shallowest depths), matching the paper's contraction
/// procedure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StagePlan {
    /// Decode stages.
    pub decode: u32,
    /// Address-generation stages.
    pub agen: u32,
    /// Cache-access stages.
    pub cache: u32,
    /// E-unit stages.
    pub execute: u32,
    /// Completion stages (fixed; not counted in the paper's depth).
    pub complete: u32,
}

impl StagePlan {
    /// Builds the plan for a target depth by largest-remainder apportioning
    /// of the scaled units' logic weights.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::Depth`] unless `2 ≤ depth ≤ 64`.
    pub fn try_for_depth(depth: u32) -> Result<Self, ConfigError> {
        if !(2..=64).contains(&depth) {
            return Err(ConfigError::Depth { depth });
        }
        let weights: Vec<f64> = Unit::SCALED.iter().map(|u| u.logic_weight()).collect();
        let mut alloc: Vec<u32> = weights
            .iter()
            .map(|w| (w * depth as f64).floor() as u32)
            .collect();
        let mut rem: Vec<(usize, f64)> = weights
            .iter()
            .enumerate()
            .map(|(i, w)| (i, w * depth as f64 - alloc[i] as f64))
            .collect();
        rem.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("weights are finite"));
        let mut missing = depth - alloc.iter().sum::<u32>();
        for (i, _) in rem {
            if missing == 0 {
                break;
            }
            alloc[i] += 1;
            missing -= 1;
        }
        // Decode and Execute always get at least one cycle: fetch-decode and
        // execution can never be folded away entirely. Steal from the
        // largest allocation if needed.
        for must in [0usize, 3usize] {
            if alloc[must] == 0 {
                let (donor, _) = alloc
                    .iter()
                    .enumerate()
                    .max_by_key(|&(_, &a)| a)
                    .expect("four units");
                alloc[donor] -= 1;
                alloc[must] += 1;
            }
        }
        Ok(StagePlan {
            decode: alloc[0],
            agen: alloc[1],
            cache: alloc[2],
            execute: alloc[3],
            complete: 2,
        })
    }

    /// Stage count of a unit.
    pub fn stages(&self, unit: Unit) -> u32 {
        match unit {
            Unit::Decode => self.decode,
            Unit::Agen => self.agen,
            Unit::Cache => self.cache,
            Unit::Execute => self.execute,
            Unit::Complete => self.complete,
        }
    }

    /// The counted pipeline depth (decode through execute).
    pub fn counted_depth(&self) -> u32 {
        self.decode + self.agen + self.cache + self.execute
    }

    /// Units merged into a neighbouring cycle (zero transit latency).
    pub fn merged_units(&self) -> Vec<Unit> {
        Unit::SCALED
            .iter()
            .copied()
            .filter(|&u| self.stages(u) == 0)
            .collect()
    }
}

/// Issue policy of the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IssuePolicy {
    /// Strict in-order issue: a stalled instruction blocks everything
    /// younger (the paper's model for this study).
    #[default]
    InOrder,
    /// Relaxed (out-of-order) issue within the decoupling window: an
    /// instruction issues as soon as its own operands and resources are
    /// ready; retirement stays in order. The paper reports that in-order
    /// vs out-of-order changes the optimisation only through α and γ.
    OutOfOrder,
}

/// Microarchitectural feature toggles, used by the ablation experiments.
/// Defaults reproduce the paper machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Features {
    /// Full forwarding network: ALU results bypass to consumers one cycle
    /// after issue instead of at the end of the E-unit pipe.
    pub forwarding: bool,
    /// Non-blocking cache with stall-on-use: a load miss delays only its
    /// consumers, not the load's own passage down the pipe.
    pub stall_on_use: bool,
    /// Scale the decode/issue decoupling queues with pipeline depth
    /// (otherwise a fixed 16-entry queue throttles deep designs).
    pub scaled_queues: bool,
    /// Issue policy.
    pub issue: IssuePolicy,
}

impl Default for Features {
    fn default() -> Self {
        Features {
            forwarding: true,
            stall_on_use: true,
            scaled_queues: true,
            issue: IssuePolicy::InOrder,
        }
    }
}

/// Data-cache hierarchy parameters. Miss latencies are denominated in FO4 —
/// absolute time — so the *cycle* cost of a miss grows as the pipeline gets
/// deeper and the clock faster, exactly as in a real machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheConfig {
    /// L1 data cache size in bytes.
    pub l1_bytes: u64,
    /// L1 associativity.
    pub l1_ways: u32,
    /// L1 instruction cache size in bytes (0 disables instruction-fetch
    /// modelling: fetch always hits).
    pub l1i_bytes: u64,
    /// L1 instruction cache associativity.
    pub l1i_ways: u32,
    /// L2 size in bytes.
    pub l2_bytes: u64,
    /// L2 associativity.
    pub l2_ways: u32,
    /// Line size in bytes (shared).
    pub line_bytes: u64,
    /// L2 access latency in FO4 (added to an L1 miss).
    pub l2_latency_fo4: f64,
    /// Memory access latency in FO4 (added to an L2 miss).
    pub memory_latency_fo4: f64,
    /// Enable the degree-1 next-line prefetcher.
    pub prefetch: bool,
}

impl CacheConfig {
    /// Checks the geometry and latencies of every configured level.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError::CacheGeometry`] or
    /// [`ConfigError::CacheLatency`] found.
    pub fn validate(&self) -> Result<(), ConfigError> {
        check_cache_geometry("l1d", self.l1_bytes, self.l1_ways, self.line_bytes)?;
        if self.l1i_bytes > 0 {
            check_cache_geometry("l1i", self.l1i_bytes, self.l1i_ways, self.line_bytes)?;
        }
        check_cache_geometry("l2", self.l2_bytes, self.l2_ways, self.line_bytes)?;
        for (which, fo4) in [
            ("l2", self.l2_latency_fo4),
            ("memory", self.memory_latency_fo4),
        ] {
            if !(fo4.is_finite() && fo4 >= 0.0) {
                return Err(ConfigError::CacheLatency { which, fo4 });
            }
        }
        Ok(())
    }

    /// Extra latency in FO4 beyond the pipelined L1 access for an access
    /// satisfied at `result`'s level. This is pure configuration — no cache
    /// state — so both the live [`crate::cache::Hierarchy`] and the replay
    /// kernel's latency tables derive miss penalties from the same source.
    pub fn penalty_fo4(&self, result: crate::cache::AccessResult) -> f64 {
        match result {
            crate::cache::AccessResult::L1 => 0.0,
            crate::cache::AccessResult::L2 => self.l2_latency_fo4,
            crate::cache::AccessResult::Memory => self.l2_latency_fo4 + self.memory_latency_fo4,
        }
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            l1_bytes: 32 * 1024,
            l1_ways: 8,
            l1i_bytes: 16 * 1024,
            l1i_ways: 4,
            l2_bytes: 1024 * 1024,
            l2_ways: 8,
            line_bytes: 64,
            l2_latency_fo4: 280.0,
            memory_latency_fo4: 2400.0,
            prefetch: true,
        }
    }
}

/// Branch-predictor parameters (gshare).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredictorConfig {
    /// log2 of the pattern-history-table size.
    pub table_bits: u32,
    /// Global-history length in branches.
    pub history_bits: u32,
}

impl PredictorConfig {
    /// Checks the table and history sizes.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::PredictorTableBits`] unless
    /// `1 ≤ table_bits ≤ 24` (larger tables would allocate unreasonably),
    /// or [`ConfigError::PredictorHistoryBits`] if the history exceeds 32
    /// branches.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !(1..=24).contains(&self.table_bits) {
            return Err(ConfigError::PredictorTableBits {
                table_bits: self.table_bits,
            });
        }
        if self.history_bits > 32 {
            return Err(ConfigError::PredictorHistoryBits {
                history_bits: self.history_bits,
            });
        }
        Ok(())
    }
}

impl Default for PredictorConfig {
    fn default() -> Self {
        PredictorConfig {
            table_bits: 14,
            history_bits: 0,
        }
    }
}

/// Complete simulator configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Superscalar issue width (the paper models a 4-issue machine).
    pub width: u32,
    /// Target pipeline depth (decode → execute), 2..=25 in the paper.
    pub depth: u32,
    /// Total processor logic delay `t_p` in FO4.
    pub logic_fo4: f64,
    /// Per-stage latch overhead `t_o` in FO4.
    pub latch_overhead_fo4: f64,
    /// Cache hierarchy.
    pub cache: CacheConfig,
    /// Branch predictor.
    pub predictor: PredictorConfig,
    /// Number of cache ports (simultaneous data-cache accesses per cycle).
    pub cache_ports: u32,
    /// Microarchitectural feature toggles (ablations).
    pub features: Features,
}

impl SimConfig {
    /// The paper's machine at the given depth: 4-issue, `t_p = 140`,
    /// `t_o = 2.5`.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is outside `2..=64`; use [`SimConfig::try_paper`]
    /// to handle that case as an error.
    pub fn paper(depth: u32) -> Self {
        Self::try_paper(depth).expect("the paper preset is valid for depths 2..=64")
    }

    /// The paper's machine at the given depth, validated.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::Depth`] if `depth` is outside `2..=64`.
    pub fn try_paper(depth: u32) -> Result<Self, ConfigError> {
        let config = SimConfig {
            width: 4,
            depth,
            logic_fo4: 140.0,
            latch_overhead_fo4: 2.5,
            cache: CacheConfig::default(),
            predictor: PredictorConfig::default(),
            cache_ports: 2,
            features: Features::default(),
        };
        config.validate()?;
        Ok(config)
    }

    /// Starts a builder seeded with the paper machine at depth 8. Set the
    /// fields that differ, then call [`SimConfigBuilder::build`], which
    /// validates everything at once.
    ///
    /// # Examples
    ///
    /// ```
    /// use pipedepth_sim::SimConfig;
    ///
    /// let config = SimConfig::builder().depth(14).width(2).build()?;
    /// assert_eq!(config.depth, 14);
    /// assert!(SimConfig::builder().depth(99).build().is_err());
    /// # Ok::<(), pipedepth_sim::ConfigError>(())
    /// ```
    pub fn builder() -> SimConfigBuilder {
        SimConfigBuilder {
            config: SimConfig {
                width: 4,
                depth: 8,
                logic_fo4: 140.0,
                latch_overhead_fo4: 2.5,
                cache: CacheConfig::default(),
                predictor: PredictorConfig::default(),
                cache_ports: 2,
                features: Features::default(),
            },
        }
    }

    /// Checks every field of the configuration.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] found: depth, width and port
    /// ranges, positive finite timing parameters, cache geometry, and
    /// predictor sizes.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !(2..=64).contains(&self.depth) {
            return Err(ConfigError::Depth { depth: self.depth });
        }
        if self.width < 1 {
            return Err(ConfigError::Width { width: self.width });
        }
        if self.cache_ports < 1 {
            return Err(ConfigError::CachePorts {
                ports: self.cache_ports,
            });
        }
        if !(self.logic_fo4.is_finite() && self.logic_fo4 > 0.0) {
            return Err(ConfigError::LogicDepth {
                fo4: self.logic_fo4,
            });
        }
        if !(self.latch_overhead_fo4.is_finite() && self.latch_overhead_fo4 >= 0.0) {
            return Err(ConfigError::LatchOverhead {
                fo4: self.latch_overhead_fo4,
            });
        }
        self.cache.validate()?;
        self.predictor.validate()
    }

    /// Returns a copy with different feature toggles (builder style).
    pub fn with_features(mut self, features: Features) -> Self {
        self.features = features;
        self
    }

    /// The stage plan realising this configuration's depth.
    ///
    /// # Panics
    ///
    /// Panics if the (public, mutable) `depth` field has been set outside
    /// `2..=64`; configurations from the fallible constructors are always
    /// in range.
    pub fn plan(&self) -> StagePlan {
        // analysis: allow(panic-path) — documented above: only hand-mutating
        // the public `depth` field out of 2..=64 can trip this
        StagePlan::try_for_depth(self.depth).expect("validated depth")
    }

    /// Cycle time `t_s = t_o + t_p/p` in FO4.
    pub fn cycle_time_fo4(&self) -> f64 {
        self.latch_overhead_fo4 + self.logic_fo4 / self.depth as f64
    }

    /// Converts an FO4 latency to (ceiling) cycles at this depth's clock.
    pub fn fo4_to_cycles(&self, fo4: f64) -> u64 {
        (fo4 / self.cycle_time_fo4()).ceil() as u64
    }

    /// Structural content hash of the configuration: every field that
    /// determines simulation behaviour, fed through
    /// [`pipedepth_trace::hash::Fnv64`] by bit pattern, with no
    /// intermediate rendering or allocation. Two configs hash equally
    /// exactly when bitwise equal; callers content-addressing by this
    /// value resolve collisions with `PartialEq`.
    pub fn fingerprint(&self) -> u64 {
        let mut h = pipedepth_trace::hash::Fnv64::new();
        h.write_u32(self.width)
            .write_u32(self.depth)
            .write_f64(self.logic_fo4)
            .write_f64(self.latch_overhead_fo4)
            .write_u64(self.cache.l1_bytes)
            .write_u32(self.cache.l1_ways)
            .write_u64(self.cache.l1i_bytes)
            .write_u32(self.cache.l1i_ways)
            .write_u64(self.cache.l2_bytes)
            .write_u32(self.cache.l2_ways)
            .write_u64(self.cache.line_bytes)
            .write_f64(self.cache.l2_latency_fo4)
            .write_f64(self.cache.memory_latency_fo4)
            .write_bool(self.cache.prefetch)
            .write_u32(self.predictor.table_bits)
            .write_u32(self.predictor.history_bits)
            .write_u32(self.cache_ports)
            .write_bool(self.features.forwarding)
            .write_bool(self.features.stall_on_use)
            .write_bool(self.features.scaled_queues)
            .write_bool(self.features.issue == IssuePolicy::OutOfOrder);
        h.finish()
    }
}

/// Builder for [`SimConfig`], created by [`SimConfig::builder`].
///
/// Every setter overwrites one field; [`SimConfigBuilder::build`] validates
/// the whole configuration and returns it, or the first [`ConfigError`].
#[derive(Debug, Clone)]
pub struct SimConfigBuilder {
    config: SimConfig,
}

impl SimConfigBuilder {
    /// Sets the superscalar issue width.
    pub fn width(mut self, width: u32) -> Self {
        self.config.width = width;
        self
    }

    /// Sets the target pipeline depth (decode → execute).
    pub fn depth(mut self, depth: u32) -> Self {
        self.config.depth = depth;
        self
    }

    /// Sets the total processor logic delay `t_p` in FO4.
    pub fn logic_fo4(mut self, fo4: f64) -> Self {
        self.config.logic_fo4 = fo4;
        self
    }

    /// Sets the per-stage latch overhead `t_o` in FO4.
    pub fn latch_overhead_fo4(mut self, fo4: f64) -> Self {
        self.config.latch_overhead_fo4 = fo4;
        self
    }

    /// Sets the cache hierarchy parameters.
    pub fn cache(mut self, cache: CacheConfig) -> Self {
        self.config.cache = cache;
        self
    }

    /// Sets the branch-predictor parameters.
    pub fn predictor(mut self, predictor: PredictorConfig) -> Self {
        self.config.predictor = predictor;
        self
    }

    /// Sets the number of data-cache ports.
    pub fn cache_ports(mut self, ports: u32) -> Self {
        self.config.cache_ports = ports;
        self
    }

    /// Sets the microarchitectural feature toggles.
    pub fn features(mut self, features: Features) -> Self {
        self.config.features = features;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] [`SimConfig::validate`] finds.
    pub fn build(self) -> Result<SimConfig, ConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan_for(depth: u32) -> StagePlan {
        StagePlan::try_for_depth(depth).expect("valid depth")
    }

    #[test]
    fn plans_sum_to_depth() {
        for depth in 2..=25 {
            let plan = plan_for(depth);
            assert_eq!(plan.counted_depth(), depth, "plan {plan:?}");
        }
    }

    #[test]
    fn decode_and_execute_never_vanish() {
        for depth in 2..=25 {
            let plan = plan_for(depth);
            assert!(plan.decode >= 1, "depth {depth}: {plan:?}");
            assert!(plan.execute >= 1, "depth {depth}: {plan:?}");
        }
    }

    #[test]
    fn shallow_plans_merge_units() {
        let plan = plan_for(2);
        assert!(!plan.merged_units().is_empty());
        let deep = plan_for(20);
        assert!(deep.merged_units().is_empty());
    }

    #[test]
    fn deeper_plans_dominate_shallower() {
        // Expansion is uniform: no unit loses stages when depth grows.
        for depth in 2..25 {
            let a = plan_for(depth);
            let b = plan_for(depth + 1);
            for u in Unit::SCALED {
                assert!(
                    b.stages(u) + 1 >= a.stages(u),
                    "unit {u} shrank too much from depth {depth}: {a:?} -> {b:?}"
                );
            }
        }
    }

    #[test]
    fn weights_sum_to_one() {
        let sum: f64 = Unit::SCALED.iter().map(|u| u.logic_weight()).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn paper_cycle_times() {
        assert!((SimConfig::paper(7).cycle_time_fo4() - 22.5).abs() < 1e-12);
        assert!((SimConfig::paper(8).cycle_time_fo4() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn fo4_to_cycles_rounds_up() {
        let cfg = SimConfig::paper(7); // 22.5 FO4 cycle
        assert_eq!(cfg.fo4_to_cycles(22.5), 1);
        assert_eq!(cfg.fo4_to_cycles(23.0), 2);
        assert_eq!(cfg.fo4_to_cycles(280.0), 13);
    }

    #[test]
    fn fingerprint_tracks_every_field() {
        let base = SimConfig::paper(8);
        assert_eq!(base.fingerprint(), SimConfig::paper(8).fingerprint());
        let mut variants = vec![SimConfig::paper(9)];
        let mut v = base;
        v.width = 2;
        variants.push(v);
        let mut v = base;
        v.logic_fo4 = 141.0;
        variants.push(v);
        let mut v = base;
        v.latch_overhead_fo4 = 3.0;
        variants.push(v);
        let mut v = base;
        v.cache.l1_bytes *= 2;
        variants.push(v);
        let mut v = base;
        v.cache.l2_latency_fo4 += 1.0;
        variants.push(v);
        let mut v = base;
        v.cache.prefetch = false;
        variants.push(v);
        let mut v = base;
        v.predictor.table_bits = 10;
        variants.push(v);
        let mut v = base;
        v.cache_ports += 1;
        variants.push(v);
        let mut v = base;
        v.features.forwarding = false;
        variants.push(v);
        let mut v = base;
        v.features.issue = IssuePolicy::OutOfOrder;
        variants.push(v);
        for (i, variant) in variants.iter().enumerate() {
            assert_ne!(
                base.fingerprint(),
                variant.fingerprint(),
                "variant {i} must change the fingerprint"
            );
        }
    }

    #[test]
    fn miss_cycles_grow_with_depth() {
        // Absolute-time miss latencies cost more cycles at faster clocks.
        let shallow = SimConfig::paper(4);
        let deep = SimConfig::paper(24);
        assert!(
            deep.fo4_to_cycles(2400.0) > shallow.fo4_to_cycles(2400.0) * 3,
            "deep {} vs shallow {}",
            deep.fo4_to_cycles(2400.0),
            shallow.fo4_to_cycles(2400.0)
        );
    }

    #[test]
    fn depth_one_rejected() {
        assert_eq!(
            StagePlan::try_for_depth(1),
            Err(ConfigError::Depth { depth: 1 })
        );
        assert_eq!(
            SimConfig::try_paper(65),
            Err(ConfigError::Depth { depth: 65 })
        );
    }

    #[test]
    fn builder_accepts_valid_overrides() {
        let config = SimConfig::builder()
            .depth(14)
            .width(2)
            .cache_ports(1)
            .logic_fo4(110.0)
            .latch_overhead_fo4(3.0)
            .build()
            .expect("valid configuration");
        assert_eq!(config.depth, 14);
        assert_eq!(config.width, 2);
        assert_eq!(config.cache_ports, 1);
        assert_eq!(config.plan().counted_depth(), 14);
    }

    #[test]
    fn builder_rejects_each_bad_field() {
        assert!(matches!(
            SimConfig::builder().depth(1).build(),
            Err(ConfigError::Depth { depth: 1 })
        ));
        assert!(matches!(
            SimConfig::builder().width(0).build(),
            Err(ConfigError::Width { width: 0 })
        ));
        assert!(matches!(
            SimConfig::builder().cache_ports(0).build(),
            Err(ConfigError::CachePorts { ports: 0 })
        ));
        assert!(matches!(
            SimConfig::builder().logic_fo4(0.0).build(),
            Err(ConfigError::LogicDepth { .. })
        ));
        assert!(matches!(
            SimConfig::builder().latch_overhead_fo4(-1.0).build(),
            Err(ConfigError::LatchOverhead { .. })
        ));
        assert!(matches!(
            SimConfig::builder()
                .predictor(PredictorConfig {
                    table_bits: 0,
                    history_bits: 0,
                })
                .build(),
            Err(ConfigError::PredictorTableBits { table_bits: 0 })
        ));
        let cache = CacheConfig {
            l1_bytes: 500,
            ..CacheConfig::default()
        };
        assert!(matches!(
            SimConfig::builder().cache(cache).build(),
            Err(ConfigError::CacheGeometry { level: "l1d", .. })
        ));
    }

    #[test]
    fn cache_validation_covers_each_level() {
        let cfg = CacheConfig {
            l1i_bytes: 100,
            ..CacheConfig::default()
        };
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::CacheGeometry { level: "l1i", .. })
        ));
        let cfg = CacheConfig {
            l1i_bytes: 0, // disabled: not validated
            l2_ways: 0,
            ..CacheConfig::default()
        };
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::CacheGeometry { level: "l2", .. })
        ));
        let cfg = CacheConfig {
            memory_latency_fo4: f64::NAN,
            ..CacheConfig::default()
        };
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::CacheLatency {
                which: "memory",
                ..
            })
        ));
    }

    #[test]
    fn config_error_displays_and_implements_error() {
        let err: Box<dyn std::error::Error> = Box::new(ConfigError::Depth { depth: 99 });
        assert!(err.to_string().contains("99"));
        assert!(ConfigError::CacheGeometry {
            level: "l1d",
            problem: "size must be a power of two",
        }
        .to_string()
        .contains("l1d"));
    }

    #[test]
    fn unit_display() {
        assert_eq!(Unit::Decode.to_string(), "decode");
        assert_eq!(Unit::Execute.to_string(), "execute");
    }
}
