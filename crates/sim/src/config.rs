//! Simulator configuration and the stage plan.
//!
//! The modelled machine is the paper's Fig. 2: a 4-issue in-order
//! superscalar with two instruction flows —
//!
//! ```text
//! RR:  Decode → Rename → Exec queue → E-unit → Completion → Retire
//! RX:  Decode → Rename → Addr queue → Agen → Cache → Exec queue → E-unit → …
//! ```
//!
//! Pipeline depth is counted "between the beginning of decode and the end of
//! execution". Depth scaling follows the paper's methodology: extra stages
//! are inserted in Decode, Cache access and the E-unit simultaneously;
//! contraction merges units onto the same cycle (a merged unit has zero
//! transit latency and, in the power model, shares the cycle under the
//! max-power rule).

use std::fmt;

/// Scalable pipeline units (the ones the paper inserts stages into, plus the
/// fixed-function back end).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Unit {
    /// Instruction decode (and rename on out-of-order models).
    Decode,
    /// Address generation for RX instructions.
    Agen,
    /// Data-cache access.
    Cache,
    /// The execution unit.
    Execute,
    /// Completion/retire (fixed depth, not counted in the paper's p).
    Complete,
}

impl Unit {
    /// The depth-scaled units, in pipeline order.
    pub const SCALED: [Unit; 4] = [Unit::Decode, Unit::Agen, Unit::Cache, Unit::Execute];

    /// All units.
    pub const ALL: [Unit; 5] = [
        Unit::Decode,
        Unit::Agen,
        Unit::Cache,
        Unit::Execute,
        Unit::Complete,
    ];

    /// Share of the processor's total logic depth assigned to this unit
    /// (the weights used to split the paper's `t_p` across units).
    pub fn logic_weight(self) -> f64 {
        match self {
            Unit::Decode => 0.30,
            Unit::Agen => 0.15,
            Unit::Cache => 0.25,
            Unit::Execute => 0.30,
            Unit::Complete => 0.0,
        }
    }
}

impl fmt::Display for Unit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Unit::Decode => "decode",
            Unit::Agen => "agen",
            Unit::Cache => "cache",
            Unit::Execute => "execute",
            Unit::Complete => "complete",
        };
        f.write_str(s)
    }
}

/// Per-unit stage counts for one pipeline depth: the realisation of the
/// paper's "expand the pipeline in a uniform manner".
///
/// A unit with zero stages is *merged* into the preceding cycle (possible
/// only at the shallowest depths), matching the paper's contraction
/// procedure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StagePlan {
    /// Decode stages.
    pub decode: u32,
    /// Address-generation stages.
    pub agen: u32,
    /// Cache-access stages.
    pub cache: u32,
    /// E-unit stages.
    pub execute: u32,
    /// Completion stages (fixed; not counted in the paper's depth).
    pub complete: u32,
}

impl StagePlan {
    /// Builds the plan for a target depth by largest-remainder apportioning
    /// of the scaled units' logic weights.
    ///
    /// # Panics
    ///
    /// Panics unless `2 ≤ depth ≤ 64`.
    pub fn for_depth(depth: u32) -> Self {
        assert!((2..=64).contains(&depth), "depth must be in 2..=64");
        let weights: Vec<f64> = Unit::SCALED.iter().map(|u| u.logic_weight()).collect();
        let mut alloc: Vec<u32> = weights
            .iter()
            .map(|w| (w * depth as f64).floor() as u32)
            .collect();
        let mut rem: Vec<(usize, f64)> = weights
            .iter()
            .enumerate()
            .map(|(i, w)| (i, w * depth as f64 - alloc[i] as f64))
            .collect();
        rem.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("weights are finite"));
        let mut missing = depth - alloc.iter().sum::<u32>();
        for (i, _) in rem {
            if missing == 0 {
                break;
            }
            alloc[i] += 1;
            missing -= 1;
        }
        // Decode and Execute always get at least one cycle: fetch-decode and
        // execution can never be folded away entirely. Steal from the
        // largest allocation if needed.
        for must in [0usize, 3usize] {
            if alloc[must] == 0 {
                let (donor, _) = alloc
                    .iter()
                    .enumerate()
                    .max_by_key(|&(_, &a)| a)
                    .expect("four units");
                alloc[donor] -= 1;
                alloc[must] += 1;
            }
        }
        StagePlan {
            decode: alloc[0],
            agen: alloc[1],
            cache: alloc[2],
            execute: alloc[3],
            complete: 2,
        }
    }

    /// Stage count of a unit.
    pub fn stages(&self, unit: Unit) -> u32 {
        match unit {
            Unit::Decode => self.decode,
            Unit::Agen => self.agen,
            Unit::Cache => self.cache,
            Unit::Execute => self.execute,
            Unit::Complete => self.complete,
        }
    }

    /// The counted pipeline depth (decode through execute).
    pub fn counted_depth(&self) -> u32 {
        self.decode + self.agen + self.cache + self.execute
    }

    /// Units merged into a neighbouring cycle (zero transit latency).
    pub fn merged_units(&self) -> Vec<Unit> {
        Unit::SCALED
            .iter()
            .copied()
            .filter(|&u| self.stages(u) == 0)
            .collect()
    }
}

/// Issue policy of the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IssuePolicy {
    /// Strict in-order issue: a stalled instruction blocks everything
    /// younger (the paper's model for this study).
    #[default]
    InOrder,
    /// Relaxed (out-of-order) issue within the decoupling window: an
    /// instruction issues as soon as its own operands and resources are
    /// ready; retirement stays in order. The paper reports that in-order
    /// vs out-of-order changes the optimisation only through α and γ.
    OutOfOrder,
}

/// Microarchitectural feature toggles, used by the ablation experiments.
/// Defaults reproduce the paper machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Features {
    /// Full forwarding network: ALU results bypass to consumers one cycle
    /// after issue instead of at the end of the E-unit pipe.
    pub forwarding: bool,
    /// Non-blocking cache with stall-on-use: a load miss delays only its
    /// consumers, not the load's own passage down the pipe.
    pub stall_on_use: bool,
    /// Scale the decode/issue decoupling queues with pipeline depth
    /// (otherwise a fixed 16-entry queue throttles deep designs).
    pub scaled_queues: bool,
    /// Issue policy.
    pub issue: IssuePolicy,
}

impl Default for Features {
    fn default() -> Self {
        Features {
            forwarding: true,
            stall_on_use: true,
            scaled_queues: true,
            issue: IssuePolicy::InOrder,
        }
    }
}

/// Data-cache hierarchy parameters. Miss latencies are denominated in FO4 —
/// absolute time — so the *cycle* cost of a miss grows as the pipeline gets
/// deeper and the clock faster, exactly as in a real machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheConfig {
    /// L1 data cache size in bytes.
    pub l1_bytes: u64,
    /// L1 associativity.
    pub l1_ways: u32,
    /// L1 instruction cache size in bytes (0 disables instruction-fetch
    /// modelling: fetch always hits).
    pub l1i_bytes: u64,
    /// L1 instruction cache associativity.
    pub l1i_ways: u32,
    /// L2 size in bytes.
    pub l2_bytes: u64,
    /// L2 associativity.
    pub l2_ways: u32,
    /// Line size in bytes (shared).
    pub line_bytes: u64,
    /// L2 access latency in FO4 (added to an L1 miss).
    pub l2_latency_fo4: f64,
    /// Memory access latency in FO4 (added to an L2 miss).
    pub memory_latency_fo4: f64,
    /// Enable the degree-1 next-line prefetcher.
    pub prefetch: bool,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            l1_bytes: 32 * 1024,
            l1_ways: 8,
            l1i_bytes: 16 * 1024,
            l1i_ways: 4,
            l2_bytes: 1024 * 1024,
            l2_ways: 8,
            line_bytes: 64,
            l2_latency_fo4: 280.0,
            memory_latency_fo4: 2400.0,
            prefetch: true,
        }
    }
}

/// Branch-predictor parameters (gshare).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredictorConfig {
    /// log2 of the pattern-history-table size.
    pub table_bits: u32,
    /// Global-history length in branches.
    pub history_bits: u32,
}

impl Default for PredictorConfig {
    fn default() -> Self {
        PredictorConfig {
            table_bits: 14,
            history_bits: 0,
        }
    }
}

/// Complete simulator configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Superscalar issue width (the paper models a 4-issue machine).
    pub width: u32,
    /// Target pipeline depth (decode → execute), 2..=25 in the paper.
    pub depth: u32,
    /// Total processor logic delay `t_p` in FO4.
    pub logic_fo4: f64,
    /// Per-stage latch overhead `t_o` in FO4.
    pub latch_overhead_fo4: f64,
    /// Cache hierarchy.
    pub cache: CacheConfig,
    /// Branch predictor.
    pub predictor: PredictorConfig,
    /// Number of cache ports (simultaneous data-cache accesses per cycle).
    pub cache_ports: u32,
    /// Microarchitectural feature toggles (ablations).
    pub features: Features,
}

impl SimConfig {
    /// The paper's machine at the given depth: 4-issue, `t_p = 140`,
    /// `t_o = 2.5`.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is outside `2..=64`.
    pub fn paper(depth: u32) -> Self {
        SimConfig {
            width: 4,
            depth,
            logic_fo4: 140.0,
            latch_overhead_fo4: 2.5,
            cache: CacheConfig::default(),
            predictor: PredictorConfig::default(),
            cache_ports: 2,
            features: Features::default(),
        }
    }

    /// Returns a copy with different feature toggles (builder style).
    pub fn with_features(mut self, features: Features) -> Self {
        self.features = features;
        self
    }

    /// The stage plan realising this configuration's depth.
    pub fn plan(&self) -> StagePlan {
        StagePlan::for_depth(self.depth)
    }

    /// Cycle time `t_s = t_o + t_p/p` in FO4.
    pub fn cycle_time_fo4(&self) -> f64 {
        self.latch_overhead_fo4 + self.logic_fo4 / self.depth as f64
    }

    /// Converts an FO4 latency to (ceiling) cycles at this depth's clock.
    pub fn fo4_to_cycles(&self, fo4: f64) -> u64 {
        (fo4 / self.cycle_time_fo4()).ceil() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_sum_to_depth() {
        for depth in 2..=25 {
            let plan = StagePlan::for_depth(depth);
            assert_eq!(plan.counted_depth(), depth, "plan {plan:?}");
        }
    }

    #[test]
    fn decode_and_execute_never_vanish() {
        for depth in 2..=25 {
            let plan = StagePlan::for_depth(depth);
            assert!(plan.decode >= 1, "depth {depth}: {plan:?}");
            assert!(plan.execute >= 1, "depth {depth}: {plan:?}");
        }
    }

    #[test]
    fn shallow_plans_merge_units() {
        let plan = StagePlan::for_depth(2);
        assert!(!plan.merged_units().is_empty());
        let deep = StagePlan::for_depth(20);
        assert!(deep.merged_units().is_empty());
    }

    #[test]
    fn deeper_plans_dominate_shallower() {
        // Expansion is uniform: no unit loses stages when depth grows.
        for depth in 2..25 {
            let a = StagePlan::for_depth(depth);
            let b = StagePlan::for_depth(depth + 1);
            for u in Unit::SCALED {
                assert!(
                    b.stages(u) + 1 >= a.stages(u),
                    "unit {u} shrank too much from depth {depth}: {a:?} -> {b:?}"
                );
            }
        }
    }

    #[test]
    fn weights_sum_to_one() {
        let sum: f64 = Unit::SCALED.iter().map(|u| u.logic_weight()).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn paper_cycle_times() {
        assert!((SimConfig::paper(7).cycle_time_fo4() - 22.5).abs() < 1e-12);
        assert!((SimConfig::paper(8).cycle_time_fo4() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn fo4_to_cycles_rounds_up() {
        let cfg = SimConfig::paper(7); // 22.5 FO4 cycle
        assert_eq!(cfg.fo4_to_cycles(22.5), 1);
        assert_eq!(cfg.fo4_to_cycles(23.0), 2);
        assert_eq!(cfg.fo4_to_cycles(280.0), 13);
    }

    #[test]
    fn miss_cycles_grow_with_depth() {
        // Absolute-time miss latencies cost more cycles at faster clocks.
        let shallow = SimConfig::paper(4);
        let deep = SimConfig::paper(24);
        assert!(
            deep.fo4_to_cycles(2400.0) > shallow.fo4_to_cycles(2400.0) * 3,
            "deep {} vs shallow {}",
            deep.fo4_to_cycles(2400.0),
            shallow.fo4_to_cycles(2400.0)
        );
    }

    #[test]
    #[should_panic(expected = "2..=64")]
    fn depth_one_rejected() {
        let _ = StagePlan::for_depth(1);
    }

    #[test]
    fn unit_display() {
        assert_eq!(Unit::Decode.to_string(), "decode");
        assert_eq!(Unit::Execute.to_string(), "execute");
    }
}
