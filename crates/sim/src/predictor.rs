//! Branch prediction.
//!
//! A gshare predictor: the branch PC is XOR-folded with a global outcome
//! history to index a table of 2-bit saturating counters. With
//! `history_bits = 0` it degenerates to a bimodal (PC-indexed) predictor —
//! the right default for this workspace's synthetic traces, whose branch
//! outcomes are independent per-site draws: no history correlation exists to
//! exploit, and XORing an uncorrelated history only scatters the counters.
//! Mispredictions are the pipeline's dominant depth-scaled hazard — a wrong
//! prediction costs a full decode-to-execute refill.

use crate::config::{ConfigError, PredictorConfig};

/// A 2-bit saturating counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Counter(u8);

impl Counter {
    const WEAK_TAKEN: Counter = Counter(2);

    fn predict(self) -> bool {
        self.0 >= 2
    }

    fn update(&mut self, taken: bool) {
        if taken {
            self.0 = (self.0 + 1).min(3);
        } else {
            self.0 = self.0.saturating_sub(1);
        }
    }
}

/// A gshare branch predictor.
///
/// # Examples
///
/// ```
/// use pipedepth_sim::predictor::Gshare;
/// use pipedepth_sim::config::PredictorConfig;
///
/// let mut bp = Gshare::try_new(PredictorConfig::default())?;
/// // A branch that is always taken becomes perfectly predicted.
/// for _ in 0..32 {
///     bp.observe(0x4000, true);
/// }
/// let (hits, total) = (bp.correct(), bp.observed());
/// assert!(hits * 10 >= total * 9);
/// # Ok::<(), pipedepth_sim::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Gshare {
    table: Vec<Counter>,
    history: u64,
    history_mask: u64,
    index_mask: u64,
    observed: u64,
    correct: u64,
}

impl Gshare {
    /// Creates a predictor from its configuration, validated.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::PredictorTableBits`] if `table_bits` is zero
    /// or above 24 (would allocate unreasonably), or
    /// [`ConfigError::PredictorHistoryBits`] if `history_bits` exceeds 32.
    pub fn try_new(config: PredictorConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        Ok(Gshare {
            table: vec![Counter::WEAK_TAKEN; 1 << config.table_bits],
            history: 0,
            history_mask: (1u64 << config.history_bits).wrapping_sub(1),
            index_mask: (1u64 << config.table_bits) - 1,
            observed: 0,
            correct: 0,
        })
    }

    fn index(&self, pc: u64) -> usize {
        (((pc >> 2) ^ self.history) & self.index_mask) as usize
    }

    /// Predicts the outcome of the branch at `pc` without updating state.
    pub fn predict(&self, pc: u64) -> bool {
        self.table[self.index(pc)].predict()
    }

    /// Predicts, then trains on the actual outcome; returns whether the
    /// prediction was correct.
    pub fn observe(&mut self, pc: u64, taken: bool) -> bool {
        let idx = self.index(pc);
        let predicted = self.table[idx].predict();
        self.table[idx].update(taken);
        self.history = ((self.history << 1) | u64::from(taken)) & self.history_mask;
        self.observed += 1;
        let hit = predicted == taken;
        if hit {
            self.correct += 1;
        }
        hit
    }

    /// Zeroes the accuracy counters without forgetting learned state
    /// (start of a measurement window after warmup).
    pub fn reset_stats(&mut self) {
        self.observed = 0;
        self.correct = 0;
    }

    /// Branches observed so far.
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Correct predictions so far.
    pub fn correct(&self) -> u64 {
        self.correct
    }

    /// Misprediction rate over everything observed (0 when nothing seen).
    pub fn miss_rate(&self) -> f64 {
        if self.observed == 0 {
            0.0
        } else {
            1.0 - self.correct as f64 / self.observed as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn predictor() -> Gshare {
        Gshare::try_new(PredictorConfig::default()).expect("valid configuration")
    }

    #[test]
    fn counter_saturates() {
        let mut c = Counter(0);
        c.update(false);
        assert_eq!(c.0, 0);
        for _ in 0..5 {
            c.update(true);
        }
        assert_eq!(c.0, 3);
        assert!(c.predict());
    }

    #[test]
    fn learns_constant_branch() {
        let mut bp = predictor();
        for _ in 0..100 {
            bp.observe(0x1000, true);
        }
        assert!(bp.miss_rate() < 0.1);
    }

    #[test]
    fn learns_alternating_pattern_via_history() {
        let mut bp = Gshare::try_new(PredictorConfig {
            table_bits: 12,
            history_bits: 10,
        })
        .expect("valid configuration");
        for i in 0..2000u64 {
            bp.observe(0x1000, i % 2 == 0);
        }
        // With global history the alternating pattern becomes predictable.
        assert!(bp.miss_rate() < 0.1, "miss rate {}", bp.miss_rate());
    }

    #[test]
    fn random_branches_hover_near_half() {
        // A deterministic pseudo-random outcome stream.
        let mut bp = predictor();
        let mut x = 0x12345678u64;
        for _ in 0..20_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            bp.observe(0x2000 + (x & 0xFF0), (x >> 33) & 1 == 1);
        }
        let rate = bp.miss_rate();
        assert!(rate > 0.35 && rate < 0.65, "miss rate {rate}");
    }

    #[test]
    fn predict_is_pure() {
        let mut bp = predictor();
        bp.observe(0x1000, true);
        let p1 = bp.predict(0x1000);
        let p2 = bp.predict(0x1000);
        assert_eq!(p1, p2);
        assert_eq!(bp.observed(), 1);
    }

    #[test]
    fn distinct_pcs_use_distinct_counters() {
        let mut bp = predictor();
        for _ in 0..50 {
            bp.observe(0x1000, true);
            bp.observe(0x2000, false);
        }
        // Both learned despite opposite outcomes.
        assert!(bp.miss_rate() < 0.3);
    }

    #[test]
    fn zero_table_rejected() {
        assert_eq!(
            Gshare::try_new(PredictorConfig {
                table_bits: 0,
                history_bits: 4,
            })
            .unwrap_err(),
            ConfigError::PredictorTableBits { table_bits: 0 }
        );
        assert!(matches!(
            Gshare::try_new(PredictorConfig {
                table_bits: 14,
                history_bits: 40,
            }),
            Err(ConfigError::PredictorHistoryBits { history_bits: 40 })
        ));
    }
}
