//! Hazard classification and accounting.
//!
//! The theory consumes hazards in aggregate: their count `N_H`, and the
//! weighted average fraction `γ` of the pipeline each one stalls. The
//! engine attributes every stall episode to the hazard kind whose constraint
//! dominated it.

use std::fmt;

/// The kinds of pipeline hazards the machine suffers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum HazardKind {
    /// Branch misprediction: the front end refills from decode.
    Control,
    /// Register data dependency: a consumer waits for a producer.
    Data,
    /// Cache miss: data returns late from L2 or memory.
    Memory,
    /// Structural: an issue port, cache port, or the unpipelined FP unit is
    /// busy.
    Structural,
}

impl HazardKind {
    /// All hazard kinds.
    pub const ALL: [HazardKind; 4] = [
        HazardKind::Control,
        HazardKind::Data,
        HazardKind::Memory,
        HazardKind::Structural,
    ];
}

impl fmt::Display for HazardKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            HazardKind::Control => "control",
            HazardKind::Data => "data",
            HazardKind::Memory => "memory",
            HazardKind::Structural => "structural",
        };
        f.write_str(s)
    }
}

/// Accumulated hazard statistics for one simulation.
///
/// Counters are dense arrays indexed by [`HazardKind`], so iteration
/// order is the declaration order of the kinds — deterministic by
/// construction.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HazardStats {
    events: [u64; HazardKind::ALL.len()],
    stall_cycles: [u64; HazardKind::ALL.len()],
}

impl HazardStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one hazard episode of `kind` stalling for `cycles`.
    ///
    /// Zero-cycle episodes are ignored — a constraint that did not delay
    /// anything is not a hazard.
    pub fn record(&mut self, kind: HazardKind, cycles: u64) {
        if cycles == 0 {
            return;
        }
        self.events[kind as usize] += 1;
        self.stall_cycles[kind as usize] += cycles;
    }

    /// Number of hazard episodes of `kind`.
    pub fn events(&self, kind: HazardKind) -> u64 {
        self.events[kind as usize]
    }

    /// Total stall cycles attributed to `kind`.
    pub fn stall_cycles(&self, kind: HazardKind) -> u64 {
        self.stall_cycles[kind as usize]
    }

    /// Total hazard episodes, the theory's `N_H`.
    pub fn total_events(&self) -> u64 {
        self.events.iter().sum()
    }

    /// Total stall cycles across kinds.
    pub fn total_stall_cycles(&self) -> u64 {
        self.stall_cycles.iter().sum()
    }

    /// Mean stall per hazard in cycles (0 when no hazards).
    pub fn mean_stall(&self) -> f64 {
        let n = self.total_events();
        if n == 0 {
            0.0
        } else {
            self.total_stall_cycles() as f64 / n as f64
        }
    }

    /// The theory's `γ`: the weighted average fraction of the pipeline a
    /// hazard stalls, i.e. mean stall cycles divided by the pipeline depth.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn gamma(&self, depth: u32) -> f64 {
        assert!(depth > 0, "pipeline depth must be positive");
        self.mean_stall() / depth as f64
    }
}

// The persistence codec lives here because the per-kind arrays are
// private: a decoded report must reproduce them exactly, which `record`
// (episode-granular, zero-suppressing) cannot.
impl pipedepth_store::Blob for HazardStats {
    fn encode(&self, w: &mut pipedepth_store::ByteWriter) {
        for &n in self.events.iter().chain(&self.stall_cycles) {
            w.put_u64(n);
        }
    }

    fn decode(
        r: &mut pipedepth_store::ByteReader<'_>,
    ) -> Result<Self, pipedepth_store::DecodeError> {
        let mut stats = HazardStats::new();
        for slot in stats.events.iter_mut().chain(&mut stats.stall_cycles) {
            *slot = r.take_u64()?;
        }
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_cycle_episodes_ignored() {
        let mut s = HazardStats::new();
        s.record(HazardKind::Data, 0);
        assert_eq!(s.total_events(), 0);
    }

    #[test]
    fn records_accumulate_per_kind() {
        let mut s = HazardStats::new();
        s.record(HazardKind::Control, 10);
        s.record(HazardKind::Control, 12);
        s.record(HazardKind::Data, 2);
        assert_eq!(s.events(HazardKind::Control), 2);
        assert_eq!(s.stall_cycles(HazardKind::Control), 22);
        assert_eq!(s.events(HazardKind::Data), 1);
        assert_eq!(s.total_events(), 3);
        assert_eq!(s.total_stall_cycles(), 24);
        assert_eq!(s.mean_stall(), 8.0);
    }

    #[test]
    fn gamma_is_mean_stall_over_depth() {
        let mut s = HazardStats::new();
        s.record(HazardKind::Control, 8);
        s.record(HazardKind::Data, 4);
        assert!((s.gamma(12) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_zero() {
        let s = HazardStats::new();
        assert_eq!(s.mean_stall(), 0.0);
        assert_eq!(s.gamma(10), 0.0);
        assert_eq!(s.events(HazardKind::Memory), 0);
    }

    #[test]
    fn display_names() {
        assert_eq!(HazardKind::Control.to_string(), "control");
        assert_eq!(HazardKind::Structural.to_string(), "structural");
    }
}
