//! Binary codecs ([`Blob`](pipedepth_store::Blob)) for simulator configurations, reports and
//! annotations, so finished simulation work can be persisted through
//! `pipedepth-store` and reused across processes.
//!
//! Three record families are covered:
//!
//! * the configuration side ([`SimConfig`] and its parts) — the *spec*
//!   half of a persisted result, encoded field-for-field so a decoded
//!   spec compares equal to the original and reproduces the same
//!   [`SimConfig::fingerprint`];
//! * the result side ([`SimReport`], with the hazard codec next to its
//!   private fields in [`crate::hazard`]) — bit-exact, floats included;
//! * the annotation side ([`AnnotatedTrace`] plus [`AnnotationKey`]) —
//!   the depth-invariant columns of the annotate-once sweep kernel,
//!   whose recomputation cost (one engine-like pass per workload) is
//!   exactly what a warm store amortises away.
//!
//! Any change to these field lists must bump the consuming namespace's
//! `schema_version` so older snapshots self-invalidate to a cold start.

use crate::annotate::{AnnotatedTrace, AnnotationKey};
use crate::config::{CacheConfig, Features, IssuePolicy, PredictorConfig, SimConfig, StagePlan};
use crate::report::SimReport;
use pipedepth_store::{Blob, ByteReader, ByteWriter, DecodeError};

impl Blob for CacheConfig {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u64(self.l1_bytes)
            .put_u32(self.l1_ways)
            .put_u64(self.l1i_bytes)
            .put_u32(self.l1i_ways)
            .put_u64(self.l2_bytes)
            .put_u32(self.l2_ways)
            .put_u64(self.line_bytes)
            .put_f64(self.l2_latency_fo4)
            .put_f64(self.memory_latency_fo4)
            .put_bool(self.prefetch);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(CacheConfig {
            l1_bytes: r.take_u64()?,
            l1_ways: r.take_u32()?,
            l1i_bytes: r.take_u64()?,
            l1i_ways: r.take_u32()?,
            l2_bytes: r.take_u64()?,
            l2_ways: r.take_u32()?,
            line_bytes: r.take_u64()?,
            l2_latency_fo4: r.take_f64()?,
            memory_latency_fo4: r.take_f64()?,
            prefetch: r.take_bool()?,
        })
    }
}

impl Blob for PredictorConfig {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u32(self.table_bits).put_u32(self.history_bits);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(PredictorConfig {
            table_bits: r.take_u32()?,
            history_bits: r.take_u32()?,
        })
    }
}

impl Blob for Features {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_bool(self.forwarding)
            .put_bool(self.stall_on_use)
            .put_bool(self.scaled_queues)
            .put_u8(match self.issue {
                IssuePolicy::InOrder => 0,
                IssuePolicy::OutOfOrder => 1,
            });
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(Features {
            forwarding: r.take_bool()?,
            stall_on_use: r.take_bool()?,
            scaled_queues: r.take_bool()?,
            issue: match r.take_u8()? {
                0 => IssuePolicy::InOrder,
                1 => IssuePolicy::OutOfOrder,
                _ => return Err(DecodeError::Invalid("issue policy")),
            },
        })
    }
}

impl Blob for StagePlan {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u32(self.decode)
            .put_u32(self.agen)
            .put_u32(self.cache)
            .put_u32(self.execute)
            .put_u32(self.complete);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(StagePlan {
            decode: r.take_u32()?,
            agen: r.take_u32()?,
            cache: r.take_u32()?,
            execute: r.take_u32()?,
            complete: r.take_u32()?,
        })
    }
}

impl Blob for SimConfig {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u32(self.width)
            .put_u32(self.depth)
            .put_f64(self.logic_fo4)
            .put_f64(self.latch_overhead_fo4);
        self.cache.encode(w);
        self.predictor.encode(w);
        w.put_u32(self.cache_ports);
        self.features.encode(w);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(SimConfig {
            width: r.take_u32()?,
            depth: r.take_u32()?,
            logic_fo4: r.take_f64()?,
            latch_overhead_fo4: r.take_f64()?,
            cache: CacheConfig::decode(r)?,
            predictor: PredictorConfig::decode(r)?,
            cache_ports: r.take_u32()?,
            features: Features::decode(r)?,
        })
    }
}

impl Blob for SimReport {
    fn encode(&self, w: &mut ByteWriter) {
        self.config.encode(w);
        self.plan.encode(w);
        w.put_u64(self.instructions)
            .put_u64(self.cycles)
            .put_u64(self.distinct_issue_cycles);
        for &a in &self.activity {
            w.put_u64(a);
        }
        self.hazards.encode(w);
        w.put_u64(self.branches)
            .put_u64(self.mispredicts)
            .put_f64(self.l1_miss_rate)
            .put_f64(self.l2_miss_rate)
            .put_f64(self.l1i_miss_rate)
            .put_u64(self.memory_wait_cycles);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        let config = SimConfig::decode(r)?;
        let plan = StagePlan::decode(r)?;
        let instructions = r.take_u64()?;
        let cycles = r.take_u64()?;
        let distinct_issue_cycles = r.take_u64()?;
        let mut activity = [0u64; 5];
        for a in &mut activity {
            *a = r.take_u64()?;
        }
        Ok(SimReport {
            config,
            plan,
            instructions,
            cycles,
            distinct_issue_cycles,
            activity,
            hazards: crate::hazard::HazardStats::decode(r)?,
            branches: r.take_u64()?,
            mispredicts: r.take_u64()?,
            l1_miss_rate: r.take_f64()?,
            l2_miss_rate: r.take_f64()?,
            l1i_miss_rate: r.take_f64()?,
            memory_wait_cycles: r.take_u64()?,
        })
    }
}

impl Blob for AnnotationKey {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u64(self.trace_key).put_u64(self.len as u64);
        self.cache.encode(w);
        self.predictor.encode(w);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        let trace_key = r.take_u64()?;
        let len = usize::try_from(r.take_u64()?)
            .map_err(|_| DecodeError::Invalid("annotation length"))?;
        Ok(AnnotationKey {
            trace_key,
            len,
            cache: CacheConfig::decode(r)?,
            predictor: PredictorConfig::decode(r)?,
        })
    }
}

impl Blob for AnnotatedTrace {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_bytes(&self.classes)
            .put_bytes(&self.flags)
            .put_bytes(&self.dst);
        // `src` is two flat register slots per instruction.
        let mut src = Vec::with_capacity(self.src.len() * 2);
        for pair in &self.src {
            src.extend_from_slice(pair);
        }
        w.put_bytes(&src)
            .put_bytes(&self.fetch)
            .put_bytes(&self.data)
            .put_bytes(&self.branch);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        let classes = r.take_bytes()?.to_vec();
        let flags = r.take_bytes()?.to_vec();
        let dst = r.take_bytes()?.to_vec();
        let src_flat = r.take_bytes()?;
        if src_flat.len() % 2 != 0 {
            return Err(DecodeError::Invalid("src column length"));
        }
        let src: Vec<[u8; 2]> = src_flat.chunks_exact(2).map(|c| [c[0], c[1]]).collect();
        let fetch = r.take_bytes()?.to_vec();
        let data = r.take_bytes()?.to_vec();
        let branch = r.take_bytes()?.to_vec();
        let n = classes.len();
        if [
            flags.len(),
            dst.len(),
            src.len(),
            fetch.len(),
            data.len(),
            branch.len(),
        ]
        .iter()
        .any(|&len| len != n)
        {
            return Err(DecodeError::Invalid("annotation column lengths"));
        }
        Ok(AnnotatedTrace {
            classes,
            flags,
            dst,
            src,
            fetch,
            data,
            branch,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotate::annotate;
    use pipedepth_trace::{TraceGenerator, WorkloadModel};

    #[test]
    fn configs_round_trip_with_fingerprints() {
        let mut config = SimConfig::paper(17);
        config.features.issue = IssuePolicy::OutOfOrder;
        config.features.scaled_queues = true;
        config.cache.prefetch = !config.cache.prefetch;
        let decoded = SimConfig::from_record(&config.to_record()).expect("decodes");
        assert_eq!(decoded, config);
        assert_eq!(decoded.fingerprint(), config.fingerprint());
    }

    #[test]
    fn reports_round_trip_bit_exactly() {
        let trace = TraceGenerator::new(WorkloadModel::spec_int_like(), 11).take_vec(3_000);
        let cfg = SimConfig::paper(9);
        let report = crate::replay::replay(
            &annotate(&trace, cfg.cache, cfg.predictor).expect("valid config"),
            cfg,
            1_000,
            2_000,
        )
        .expect("replay");
        let decoded = SimReport::from_record(&report.to_record()).expect("decodes");
        assert_eq!(decoded, report);
    }

    #[test]
    fn annotations_round_trip() {
        let cfg = SimConfig::paper(12);
        let trace = TraceGenerator::new(WorkloadModel::spec_fp_like(), 5).take_vec(2_500);
        let notes = annotate(&trace, cfg.cache, cfg.predictor).expect("valid config");
        let decoded = AnnotatedTrace::from_record(&notes.to_record()).expect("decodes");
        assert_eq!(decoded, notes);
        assert_eq!(decoded.len(), 2_500);
    }

    #[test]
    fn annotation_keys_round_trip() {
        let cfg = SimConfig::paper(12);
        let key = AnnotationKey {
            trace_key: 0xFEED_F00D,
            len: 2_500,
            cache: cfg.cache,
            predictor: cfg.predictor,
        };
        let decoded = AnnotationKey::from_record(&key.to_record()).expect("decodes");
        assert_eq!(decoded, key);
    }

    #[test]
    fn corrupt_columns_are_rejected() {
        let cfg = SimConfig::paper(8);
        let trace = TraceGenerator::new(WorkloadModel::spec_int_like(), 3).take_vec(500);
        let notes = annotate(&trace, cfg.cache, cfg.predictor).expect("valid config");
        let bytes = notes.to_record();
        // Shorten the trailing branch column by one element: the column
        // length check must reject the mismatch.
        let mut short = bytes.clone();
        short.truncate(bytes.len() - 1);
        let len_pos = bytes.len() - 500 - 4;
        let new_len = 499u32.to_le_bytes();
        short[len_pos..len_pos + 4].copy_from_slice(&new_len);
        assert_eq!(
            AnnotatedTrace::from_record(&short),
            Err(DecodeError::Invalid("annotation column lengths"))
        );
    }
}
