//! Cycle-accurate, configurable-depth pipeline simulator for the
//! `pipedepth` workspace.
//!
//! This crate is the stand-in for the proprietary IBM simulator the paper
//! used. It models the paper's Fig. 2 machine — a 4-issue in-order
//! superscalar with split RR/RX instruction flows — at any pipeline depth
//! from 2 to 25+ stages, using the paper's own scaling methodology: stages
//! are inserted into Decode, Cache access and the E-unit simultaneously;
//! shallow configurations merge units onto shared cycles.
//!
//! * [`config`] — machine configuration and the per-depth [`StagePlan`];
//! * [`predictor`] — a gshare branch predictor;
//! * [`cache`] — a two-level set-associative data-cache hierarchy with
//!   FO4-denominated (absolute-time) miss latencies;
//! * [`engine`] — the deterministic interval timing engine;
//! * [`stage`] — the explicit stage units ([`FrontEnd`], [`HazardUnit`],
//!   [`IssueStage`], [`ExecCore`]) the engine orchestrates each cycle;
//! * [`hazard`] — hazard classification and the `γ`/`N_H` accounting;
//! * [`report`] — results plus extraction of the theory's workload
//!   parameters (`α`, `γ`, `N_H/N_I`) from a single simulation.
//!
//! # Examples
//!
//! Sweep one workload across pipeline depths, as every experiment in the
//! paper does:
//!
//! ```
//! use pipedepth_sim::{Engine, SimConfig};
//! use pipedepth_trace::{TraceGenerator, WorkloadModel};
//!
//! let mut times = Vec::new();
//! for depth in [4, 8, 16] {
//!     let mut engine = Engine::new(SimConfig::paper(depth));
//!     let mut gen = TraceGenerator::new(WorkloadModel::spec_int_like(), 42);
//!     let report = engine.run(&mut gen, 5_000);
//!     times.push(report.time_per_instruction_fo4());
//! }
//! // Pipelining from 4 to 8 stages speeds this workload up.
//! assert!(times[1] < times[0]);
//! ```

/// The annotate pass: depth-invariant event classification, once per trace.
pub mod annotate;
/// Binary codecs for persisting configs, reports and annotations.
pub mod blob;
/// The two-level cache hierarchy and its access bookkeeping.
pub mod cache;
/// Simulator configuration: stage plans, feature toggles, the builder.
pub mod config;
/// The cycle orchestrator driving the stage units over a trace.
pub mod engine;
/// Hazard taxonomy and per-kind stall statistics.
pub mod hazard;
/// The branch predictor model.
pub mod predictor;
/// The depth-batched timing replay kernel over an annotation.
pub mod replay;
/// The immutable end-of-run [`SimReport`].
pub mod report;
/// The explicit stage units the engine is composed of.
pub mod stage;

/// The annotate-once surface: the SoA annotation, the one-pass classifier
/// and the content-addressed store.
pub use annotate::{
    annotate, annotation_fingerprint, AnnotateStats, AnnotatedTrace, AnnotationKey, AnnotationStore,
};
/// Configuration surface: `SimConfig`, its builder, and the plan types.
pub use config::{
    CacheConfig, ConfigError, Features, IssuePolicy, PredictorConfig, SimConfig, SimConfigBuilder,
    StagePlan, Unit,
};
/// The engine and its per-instruction timing record.
pub use engine::{Engine, InstrTiming};
/// Hazard kinds and their aggregate statistics.
pub use hazard::{HazardKind, HazardStats};
/// The per-depth and batched multi-depth replay kernels.
pub use replay::{replay, replay_sweep};
/// The end-of-run report.
pub use report::SimReport;
/// The stage units and their hand-off records.
pub use stage::{
    ExecCore, FetchDecode, FrontEnd, HazardUnit, IssueRing, IssueStage, Issued, MemorySegment, Port,
};
