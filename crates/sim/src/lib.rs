//! Cycle-accurate, configurable-depth pipeline simulator for the
//! `pipedepth` workspace.
//!
//! This crate is the stand-in for the proprietary IBM simulator the paper
//! used. It models the paper's Fig. 2 machine — a 4-issue in-order
//! superscalar with split RR/RX instruction flows — at any pipeline depth
//! from 2 to 25+ stages, using the paper's own scaling methodology: stages
//! are inserted into Decode, Cache access and the E-unit simultaneously;
//! shallow configurations merge units onto shared cycles.
//!
//! * [`config`] — machine configuration and the per-depth [`StagePlan`];
//! * [`predictor`] — a gshare branch predictor;
//! * [`cache`] — a two-level set-associative data-cache hierarchy with
//!   FO4-denominated (absolute-time) miss latencies;
//! * [`engine`] — the deterministic interval timing engine;
//! * [`hazard`] — hazard classification and the `γ`/`N_H` accounting;
//! * [`report`] — results plus extraction of the theory's workload
//!   parameters (`α`, `γ`, `N_H/N_I`) from a single simulation.
//!
//! # Examples
//!
//! Sweep one workload across pipeline depths, as every experiment in the
//! paper does:
//!
//! ```
//! use pipedepth_sim::{Engine, SimConfig};
//! use pipedepth_trace::{TraceGenerator, WorkloadModel};
//!
//! let mut times = Vec::new();
//! for depth in [4, 8, 16] {
//!     let mut engine = Engine::new(SimConfig::paper(depth));
//!     let mut gen = TraceGenerator::new(WorkloadModel::spec_int_like(), 42);
//!     let report = engine.run(&mut gen, 5_000);
//!     times.push(report.time_per_instruction_fo4());
//! }
//! // Pipelining from 4 to 8 stages speeds this workload up.
//! assert!(times[1] < times[0]);
//! ```

pub mod cache;
pub mod config;
pub mod engine;
pub mod hazard;
pub mod predictor;
pub mod report;

pub use config::{
    CacheConfig, ConfigError, Features, IssuePolicy, PredictorConfig, SimConfig, SimConfigBuilder,
    StagePlan, Unit,
};
pub use engine::{Engine, InstrTiming};
pub use hazard::{HazardKind, HazardStats};
pub use report::SimReport;
