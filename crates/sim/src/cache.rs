//! Set-associative data caches with LRU replacement.
//!
//! Misses are charged in FO4 (absolute time); the engine converts them to
//! cycles at the configured clock, so deepening the pipeline makes misses
//! cost more cycles — the behaviour that damps the benefit of very fast
//! clocks in real machines.

use crate::config::{check_cache_geometry, CacheConfig, ConfigError};

/// Where an access was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessResult {
    /// Hit in the L1 data cache.
    L1,
    /// Missed L1, hit L2.
    L2,
    /// Missed both levels; satisfied from memory.
    Memory,
}

/// One set-associative cache level with true-LRU replacement.
#[derive(Debug, Clone)]
pub struct CacheLevel {
    sets: usize,
    ways: usize,
    line_shift: u32,
    /// `tags[set * ways + way]`; `u64::MAX` marks invalid.
    tags: Vec<u64>,
    /// LRU ages: smaller is more recent.
    ages: Vec<u32>,
    clock: u32,
    accesses: u64,
    misses: u64,
}

impl CacheLevel {
    /// Builds a level from size/associativity/line size, validated.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::CacheGeometry`] unless sizes are powers of
    /// two and consistent (`bytes ≥ ways × line`).
    pub fn try_new(bytes: u64, ways: u32, line_bytes: u64) -> Result<Self, ConfigError> {
        check_cache_geometry("cache", bytes, ways, line_bytes)?;
        let lines = bytes / line_bytes;
        let sets = (lines / ways as u64) as usize;
        Ok(CacheLevel {
            sets,
            ways: ways as usize,
            line_shift: line_bytes.trailing_zeros(),
            tags: vec![u64::MAX; sets * ways as usize],
            ages: vec![0; sets * ways as usize],
            clock: 0,
            accesses: 0,
            misses: 0,
        })
    }

    /// Looks up `addr`, filling on miss. Returns `true` on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.accesses += 1;
        self.clock = self.clock.wrapping_add(1);
        let line = addr >> self.line_shift;
        let set = (line as usize) % self.sets;
        let base = set * self.ways;
        let slots = &mut self.tags[base..base + self.ways];
        if let Some(way) = slots.iter().position(|&t| t == line) {
            self.ages[base + way] = self.clock;
            return true;
        }
        self.misses += 1;
        // Victim: invalid way first, else least recently used.
        let victim = (0..self.ways)
            .min_by_key(|&w| {
                if self.tags[base + w] == u64::MAX {
                    (0u8, 0u32)
                } else {
                    (1u8, self.ages[base + w])
                }
            })
            .expect("ways >= 1");
        self.tags[base + victim] = line;
        self.ages[base + victim] = self.clock;
        false
    }

    /// Installs a line without counting it as a demand access (prefetch).
    pub fn prefetch(&mut self, addr: u64) {
        let before = (self.accesses, self.misses);
        self.access(addr);
        self.accesses = before.0;
        self.misses = before.1;
    }

    /// Zeroes the access/miss counters without touching cache contents
    /// (start of a measurement window after warmup).
    pub fn reset_stats(&mut self) {
        self.accesses = 0;
        self.misses = 0;
    }

    /// Accesses observed.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Misses observed.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss rate (0 when no accesses).
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// A two-level cache hierarchy: split L1 (instruction + data) over a
/// shared L2.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    l1: CacheLevel,
    l1i: Option<CacheLevel>,
    l2: CacheLevel,
    config: CacheConfig,
}

impl Hierarchy {
    /// Builds the hierarchy from its configuration.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent geometry; use [`Hierarchy::try_new`] to
    /// handle that case as an error.
    pub fn new(config: CacheConfig) -> Self {
        Self::try_new(config).expect("cache configuration must be consistent")
    }

    /// Builds the hierarchy from its configuration, validated.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] found by
    /// [`CacheConfig::validate`].
    pub fn try_new(config: CacheConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        Ok(Hierarchy {
            l1: CacheLevel::try_new(config.l1_bytes, config.l1_ways, config.line_bytes)?,
            l1i: (config.l1i_bytes > 0)
                .then(|| CacheLevel::try_new(config.l1i_bytes, config.l1i_ways, config.line_bytes))
                .transpose()?,
            l2: CacheLevel::try_new(config.l2_bytes, config.l2_ways, config.line_bytes)?,
            config,
        })
    }

    /// Performs an instruction fetch. With no instruction cache configured
    /// (`l1i_bytes == 0`) every fetch hits.
    ///
    /// A fetch miss also triggers a next-line prefetch (sequential code),
    /// when prefetching is enabled.
    pub fn fetch(&mut self, pc: u64) -> AccessResult {
        let Some(l1i) = self.l1i.as_mut() else {
            return AccessResult::L1;
        };
        let result = if l1i.access(pc) {
            AccessResult::L1
        } else if self.l2.access(pc) {
            AccessResult::L2
        } else {
            AccessResult::Memory
        };
        if self.config.prefetch && result != AccessResult::L1 {
            let next_line = (pc | (self.config.line_bytes - 1)) + 1;
            l1i.prefetch(next_line);
            self.l2.prefetch(next_line);
        }
        result
    }

    /// The instruction cache, if configured.
    pub fn l1i(&self) -> Option<&CacheLevel> {
        self.l1i.as_ref()
    }

    /// Performs an access, updating both levels as needed.
    ///
    /// A demand miss also triggers a next-line prefetch into both levels
    /// (degree-1 sequential prefetcher), so streaming access patterns do not
    /// pay a miss on every line — the behaviour any real memory system of
    /// the paper's era already had.
    pub fn access(&mut self, addr: u64) -> AccessResult {
        let result = if self.l1.access(addr) {
            AccessResult::L1
        } else if self.l2.access(addr) {
            AccessResult::L2
        } else {
            AccessResult::Memory
        };
        if self.config.prefetch && result != AccessResult::L1 {
            let next_line = (addr | (self.config.line_bytes - 1)) + 1;
            self.l1.prefetch(next_line);
            self.l2.prefetch(next_line);
        }
        result
    }

    /// Extra latency in FO4 beyond the pipelined L1 access for a result.
    pub fn penalty_fo4(&self, result: AccessResult) -> f64 {
        self.config.penalty_fo4(result)
    }

    /// Zeroes all levels' counters without touching contents.
    pub fn reset_stats(&mut self) {
        self.l1.reset_stats();
        if let Some(l1i) = self.l1i.as_mut() {
            l1i.reset_stats();
        }
        self.l2.reset_stats();
    }

    /// The L1 level (for statistics).
    pub fn l1(&self) -> &CacheLevel {
        &self.l1
    }

    /// The L2 level (for statistics).
    pub fn l2(&self) -> &CacheLevel {
        &self.l2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CacheLevel {
        // 4 sets × 2 ways × 64B = 512B.
        CacheLevel::try_new(512, 2, 64).expect("valid geometry")
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = tiny();
        assert!(!c.access(0x1000));
        assert!(c.access(0x1000));
        assert!(c.access(0x103F), "same line");
        assert!(!c.access(0x1040), "next line");
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = tiny();
        // Three lines mapping to the same set (set stride = 4 lines = 256B).
        let a = 0x0000;
        let b = 0x0100;
        let d = 0x0200;
        c.access(a);
        c.access(b);
        c.access(a); // a most recent
        c.access(d); // evicts b
        assert!(c.access(a), "a survives");
        assert!(!c.access(b), "b was evicted");
    }

    #[test]
    fn miss_rate_counts() {
        let mut c = tiny();
        c.access(0x0);
        c.access(0x0);
        c.access(0x0);
        c.access(0x0);
        assert_eq!(c.accesses(), 4);
        assert_eq!(c.misses(), 1);
        assert!((c.miss_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let mut c = tiny();
        // Cycle through 16 distinct lines repeatedly in a 512B cache that
        // holds 8: every access misses after warmup under LRU.
        let mut misses_last_round = 0;
        for round in 0..4 {
            misses_last_round = 0;
            for i in 0..16u64 {
                if !c.access(i * 64) {
                    misses_last_round += 1;
                }
            }
            if round == 0 {
                assert_eq!(misses_last_round, 16, "cold misses");
            }
        }
        assert_eq!(misses_last_round, 16, "LRU thrash on cyclic overflow");
    }

    #[test]
    fn hierarchy_escalates() {
        let mut h = Hierarchy::new(CacheConfig::default());
        assert_eq!(h.access(0x8000), AccessResult::Memory);
        assert_eq!(h.access(0x8000), AccessResult::L1);
        // Evicting from a 32KB L1 requires touching > 32KB; simpler: a
        // different line is still in L2 after first touch.
        let mut h2 = Hierarchy::new(CacheConfig::default());
        h2.access(0x8000);
        // Blow the L1 set: same set index every 4KB stride (64 sets × 64B).
        for i in 1..=9u64 {
            h2.access(0x8000 + i * 4096);
        }
        assert_eq!(h2.access(0x8000), AccessResult::L2, "L1 victim hits in L2");
    }

    #[test]
    fn penalties_ordered() {
        let h = Hierarchy::new(CacheConfig::default());
        assert_eq!(h.penalty_fo4(AccessResult::L1), 0.0);
        assert!(h.penalty_fo4(AccessResult::L2) > 0.0);
        assert!(h.penalty_fo4(AccessResult::Memory) > h.penalty_fo4(AccessResult::L2));
    }

    #[test]
    fn non_power_of_two_rejected() {
        assert!(matches!(
            CacheLevel::try_new(500, 2, 64),
            Err(ConfigError::CacheGeometry { .. })
        ));
        assert!(matches!(
            Hierarchy::try_new(CacheConfig {
                l2_bytes: 100,
                ..CacheConfig::default()
            }),
            Err(ConfigError::CacheGeometry { level: "l2", .. })
        ));
    }
}
