//! The issue stage: port binding, the decoupling window and α accounting.

use super::Port;

/// Fixed-capacity ring of the most recent issue cycles, replacing the
/// `VecDeque` issue history. The backing buffer is a power of two, so the
/// oldest retained entry — the decoupling-queue floor — is one masked
/// index away. Pushing past capacity overwrites the oldest slot, exactly
/// the pop-front/push-back pattern of the old deque, with no branchy
/// wraparound logic and no heap churn after construction.
#[derive(Debug, Clone)]
pub struct IssueRing {
    buf: Box<[u64]>,
    mask: usize,
    capacity: usize,
    /// Total pushes since construction (monotone; the live window is the
    /// last `capacity` of them).
    count: usize,
}

impl IssueRing {
    /// A ring retaining the last `capacity` issue cycles.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "queue capacity must be at least 1");
        let size = capacity.next_power_of_two();
        IssueRing {
            buf: vec![0; size].into_boxed_slice(),
            mask: size - 1,
            capacity,
            count: 0,
        }
    }

    /// The queue floor: decode may not run ahead of the issue cycle of the
    /// instruction `capacity` slots back (0 while the window is filling).
    #[inline]
    pub fn floor(&self) -> u64 {
        if self.count >= self.capacity {
            self.buf[(self.count - self.capacity) & self.mask]
        } else {
            0
        }
    }

    /// Records one issue cycle, evicting the oldest once full.
    #[inline]
    pub fn push(&mut self, issue: u64) {
        self.buf[self.count & self.mask] = issue;
        self.count += 1;
    }
}

/// The cycles surrounding one issue-port grant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Issued {
    /// Issue cycle of the previous instruction (the in-order hazard floor).
    pub prev: u64,
    /// Cycle this instruction was granted.
    pub at: u64,
}

/// The issue stage: the width-limited issue port, the decode→issue
/// decoupling window, and distinct-issue-cycle (superscalar `α`)
/// accounting.
#[derive(Debug, Clone)]
pub struct IssueStage {
    port: Port,
    /// Issue cycles of the most recent instructions, bounding how far the
    /// front end can run ahead (finite decoupling queues).
    history: IssueRing,
    last_issue: u64,
    distinct_issue_cycles: u64,
    last_issue_cycle_seen: Option<u64>,
    serialized_ops: u64,
}

impl IssueStage {
    /// An issue stage of the given port width and decoupling capacity.
    pub(crate) fn new(width: u32, queue_capacity: usize) -> Self {
        IssueStage {
            port: Port::new(width),
            history: IssueRing::new(queue_capacity),
            last_issue: 0,
            distinct_issue_cycles: 0,
            last_issue_cycle_seen: None,
            serialized_ops: 0,
        }
    }

    /// The decoupling-queue floor decode may not run ahead of.
    pub(crate) fn queue_floor(&self) -> u64 {
        self.history.floor()
    }

    /// Issue cycle of the most recently issued instruction.
    pub fn last_issue(&self) -> u64 {
        self.last_issue
    }

    /// Number of distinct cycles in which at least one instruction issued
    /// in the current measurement window.
    pub fn distinct_issue_cycles(&self) -> u64 {
        self.distinct_issue_cycles
    }

    /// Serialising instructions issued in the current measurement window.
    pub fn serialized_ops(&self) -> u64 {
        self.serialized_ops
    }

    /// Binds one instruction to an issue cycle no earlier than `base`.
    ///
    /// Complex serialising operations issue alone: they start a new issue
    /// cycle and exhaust it. Also maintains the decoupling window and the
    /// distinct-issue-cycle count.
    pub(crate) fn bind(&mut self, base: u64, serial: bool) -> Issued {
        let mut base = base;
        if serial {
            base = base.max(self.last_issue + 1);
            self.port.close_cycle();
            self.serialized_ops += 1;
        }
        let prev = self.last_issue;
        let at = self.port.acquire(base);
        if serial {
            self.port.close_cycle();
        }
        self.last_issue = at;
        self.history.push(at);
        if self.last_issue_cycle_seen != Some(at) {
            self.distinct_issue_cycles += 1;
            self.last_issue_cycle_seen = Some(at);
        }
        Issued { prev, at }
    }

    /// Zeroes the window statistics, keeping port and window state intact.
    pub(crate) fn reset_stats(&mut self) {
        self.distinct_issue_cycles = 0;
        self.last_issue_cycle_seen = None;
        self.serialized_ops = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn issue_ring_matches_deque_semantics() {
        use std::collections::VecDeque;
        // The ring must report exactly the floor the old VecDeque history
        // produced: 0 while filling, then the oldest retained issue cycle.
        for capacity in [1usize, 3, 16, 24, 56] {
            let mut ring = IssueRing::new(capacity);
            let mut deque: VecDeque<u64> = VecDeque::new();
            for i in 0..200u64 {
                let expected = if deque.len() >= capacity {
                    *deque.front().unwrap()
                } else {
                    0
                };
                assert_eq!(ring.floor(), expected, "capacity {capacity}, push {i}");
                let issue = i * 3 / 2; // monotone, with repeats
                if deque.len() >= capacity {
                    deque.pop_front();
                }
                deque.push_back(issue);
                ring.push(issue);
            }
        }
    }

    #[test]
    fn serial_ops_issue_alone() {
        let mut stage = IssueStage::new(4, 8);
        let a = stage.bind(0, false);
        let b = stage.bind(0, true);
        let c = stage.bind(0, false);
        assert_eq!(a.at, 0);
        assert!(b.at > a.at, "serial op opens a new cycle");
        assert!(c.at > b.at, "serial op exhausts its cycle");
        assert_eq!(stage.serialized_ops(), 1);
    }

    #[test]
    fn distinct_cycles_count_grants_not_instructions() {
        let mut stage = IssueStage::new(2, 8);
        for _ in 0..4 {
            stage.bind(0, false);
        }
        assert_eq!(stage.distinct_issue_cycles(), 2, "2-wide ⇒ 4 ops, 2 cycles");
    }
}
