//! Explicit stage units of the pipeline engine.
//!
//! The timing engine used to be a single monolithic `step_timing` body in
//! which fetch, hazard detection, issue and execute were fused. This module
//! splits that body into four units, each owning the architectural state of
//! its pipeline segment:
//!
//! * [`FrontEnd`] — instruction fetch, the decode port, the branch
//!   predictor and redirect bookkeeping;
//! * [`HazardUnit`] — the register scoreboard and the stall classification
//!   that feeds the theory's `γ`/`N_H` accounting;
//! * [`IssueStage`] — the issue port, the decode→issue decoupling window
//!   ([`IssueRing`]) and superscalar (`α`) accounting;
//! * [`ExecCore`] — the cache and retire ports, the unpipelined FP unit's
//!   busy time, and in-order retirement.
//!
//! The engine is reduced to a thin per-instruction orchestrator over these
//! units. The decomposition is *timing-neutral*: every port acquisition,
//! cache access and hazard record happens in exactly the order the fused
//! body performed them, so a `SimReport` is bit-identical before and after
//! the split (pinned by the `slice_equivalence` and differential suites).

mod exec_core;
mod front_end;
mod hazard_unit;
mod issue_stage;

/// The execution/retire unit and its memory-segment hand-off.
pub use exec_core::{ExecCore, MemorySegment};
/// The fetch/decode unit and its hand-off record.
pub use front_end::{FetchDecode, FrontEnd};
/// The register scoreboard and stall-attribution unit.
pub use hazard_unit::HazardUnit;
/// The issue queue, its ring buffer, and the issue-grant record.
pub use issue_stage::{IssueRing, IssueStage, Issued};

pub(crate) use hazard_unit::{reg_slot, StallInputs, WriterKind, REG_SLOTS};

use crate::cache::AccessResult;
use crate::config::{SimConfig, StagePlan};
use pipedepth_trace::isa::OpClass;

/// A resource granting at most `width` acquisitions per cycle, in order.
///
/// Ports model the machine's per-cycle bandwidth limits: the decode, issue
/// and retire ports are as wide as the machine, the cache port as wide as
/// the configured load-port count. Grants never go backwards — the machine
/// is in order.
#[derive(Debug, Clone)]
pub struct Port {
    width: u32,
    cycle: u64,
    used: u32,
}

impl Port {
    /// A port of the given per-cycle width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn new(width: u32) -> Self {
        assert!(width >= 1, "port width must be at least 1");
        Port {
            width,
            cycle: 0,
            used: 0,
        }
    }

    /// Grants a slot at the earliest cycle ≥ `at` consistent with previous
    /// grants (grants never go backwards: the machine is in order).
    pub fn acquire(&mut self, at: u64) -> u64 {
        if at > self.cycle {
            self.cycle = at;
            self.used = 1;
        } else if self.used < self.width {
            self.used += 1;
        } else {
            self.cycle += 1;
            self.used = 1;
        }
        self.cycle
    }

    /// Marks the current cycle exhausted, so the next grant opens a new
    /// cycle (used by serialising instructions).
    pub fn close_cycle(&mut self) {
        self.used = self.width;
    }
}

/// Per-configuration latency tables, computed once at engine construction
/// so the per-instruction path never re-derives a stage latency, converts
/// an FO4 penalty, or walks the unit list.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Tables {
    /// Stage latencies of the plan, widened once.
    pub(crate) decode: u64,
    pub(crate) agen: u64,
    pub(crate) cache: u64,
    pub(crate) execute: u64,
    pub(crate) complete: u64,
    /// Extra E-unit cycles per operation class (`class as usize` index).
    pub(crate) exec_extra: [u64; OpClass::ALL.len()],
    /// Miss penalty in cycles per access result (`result as usize` index):
    /// `fo4_to_cycles(penalty_fo4(..))` with the float math paid up front.
    pub(crate) miss_penalty: [u64; 3],
    /// Hazard-stall cap: two full pipeline drains.
    pub(crate) hazard_cap: u64,
    /// Effective decode→issue decoupling capacity.
    pub(crate) queue_capacity: usize,
    /// Instruction-cache line size, for the once-per-line fetch filter.
    pub(crate) line_bytes: u64,
}

impl Tables {
    pub(crate) fn new(config: &SimConfig, plan: &StagePlan) -> Tables {
        let mut exec_extra = [0u64; OpClass::ALL.len()];
        for class in OpClass::ALL {
            // Extra E-unit cycles beyond the pipelined pass for multi-cycle
            // (floating-point) operations. Following the paper's model —
            // "floating point instructions execute individually and take
            // multiple cycles to complete" — the iteration count is fixed in
            // *cycles*, so FP latency shrinks in absolute time as the clock
            // speeds up with depth. Combined with the serialisation of the
            // FP unit this yields low α and deep optimum depths for FP
            // workloads, as the paper reports.
            let extra_passes = class.base_exec_cycles().saturating_sub(1) as u64;
            exec_extra[class as usize] = extra_passes * 2;
        }
        let mut miss_penalty = [0u64; 3];
        for result in [AccessResult::L1, AccessResult::L2, AccessResult::Memory] {
            miss_penalty[result as usize] = config.fo4_to_cycles(config.cache.penalty_fo4(result));
        }
        Tables {
            decode: plan.decode as u64,
            agen: plan.agen as u64,
            cache: plan.cache as u64,
            execute: plan.execute as u64,
            complete: plan.complete as u64,
            exec_extra,
            miss_penalty,
            hazard_cap: 2 * config.depth as u64,
            queue_capacity: if config.features.scaled_queues {
                crate::engine::Engine::queue_capacity(config.depth)
            } else {
                16
            },
            line_bytes: config.cache.line_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn port_respects_width() {
        let mut p = Port::new(2);
        assert_eq!(p.acquire(5), 5);
        assert_eq!(p.acquire(5), 5);
        assert_eq!(p.acquire(5), 6);
        assert_eq!(p.acquire(5), 6, "in-order port never goes back");
        assert_eq!(p.acquire(10), 10);
    }

    #[test]
    fn closed_cycle_forces_a_fresh_grant() {
        let mut p = Port::new(4);
        assert_eq!(p.acquire(3), 3);
        p.close_cycle();
        assert_eq!(p.acquire(3), 4, "closed cycle admits no more grants");
    }
}
