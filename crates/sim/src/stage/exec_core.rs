//! The execution core: cache access, the E-unit, writeback and retire.

use super::{HazardUnit, Port, Tables, WriterKind};
use crate::cache::Hierarchy;
use pipedepth_trace::isa::{Instruction, OpClass};

/// Timing of the RX address/cache segment of one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemorySegment {
    /// Cycle the instruction's result data is available to consumers.
    pub data_ready: u64,
    /// Cycle the instruction itself can proceed down the pipe (under
    /// stall-on-use a missed load flows on while consumers wait).
    pub pipe_ready: u64,
    /// Absolute-time miss penalty this access paid, in cycles.
    pub miss_extra: u64,
}

/// The execution core: the cache and retire ports, the unpipelined FP
/// unit's busy time, writeback into the scoreboard, and in-order
/// retirement.
#[derive(Debug, Clone)]
pub struct ExecCore {
    cache_port: Port,
    retire_port: Port,
    fp_busy_until: u64,
    last_retire: u64,
    finish_cycle: u64,
}

impl ExecCore {
    /// An execution core with a `width`-wide retire port and
    /// `cache_ports` load ports.
    pub(crate) fn new(width: u32, cache_ports: u32) -> Self {
        ExecCore {
            cache_port: Port::new(cache_ports),
            retire_port: Port::new(width),
            fp_busy_until: 0,
            last_retire: 0,
            finish_cycle: 0,
        }
    }

    /// The cycle the last retired instruction left the machine.
    pub fn finish_cycle(&self) -> u64 {
        self.finish_cycle
    }

    /// When the unpipelined FP unit stops gating `instr` (0 for non-FP).
    pub(crate) fn fp_ready(&self, is_fp: bool) -> u64 {
        if is_fp {
            self.fp_busy_until
        } else {
            0
        }
    }

    /// Runs the RX address-generation/cache segment of one instruction.
    ///
    /// Stores retire through a write buffer: they update cache state but
    /// neither contend for a load port nor stall the pipeline on a miss.
    /// Loads acquire a cache port; under stall-on-use a missed load itself
    /// proceeds down the pipe and only consumers wait (via the scoreboard).
    /// An `AluRx` consumes its memory operand in the E-unit, so it cannot
    /// issue before the data arrives.
    pub(crate) fn memory_segment(
        &mut self,
        instr: &Instruction,
        decode_done: u64,
        src_ready: u64,
        caches: &mut Hierarchy,
        tables: &Tables,
        stall_on_use: bool,
    ) -> MemorySegment {
        let mut data_ready = decode_done;
        let mut pipe_ready = decode_done;
        let mut miss_extra = 0u64;
        if let Some(mem) = instr.mem {
            let agen_start = decode_done.max(src_ready);
            let agen_done = agen_start + tables.agen;
            if instr.class == OpClass::Store {
                caches.access(mem.addr);
                data_ready = agen_done;
                pipe_ready = agen_done;
            } else {
                let access_at = self.cache_port.acquire(agen_done);
                let result = caches.access(mem.addr);
                miss_extra = tables.miss_penalty[result as usize];
                data_ready = access_at + tables.cache + miss_extra;
                if instr.class == OpClass::Load && stall_on_use {
                    // Non-blocking cache, stall-on-use: the load itself
                    // proceeds down the pipe under a miss; only consumers
                    // wait for the returning data (via the scoreboard).
                    pipe_ready = access_at + tables.cache;
                } else if instr.class == OpClass::Load {
                    pipe_ready = data_ready;
                }
            }
        }
        if instr.class == OpClass::AluRx {
            pipe_ready = data_ready;
        }
        MemorySegment {
            data_ready,
            pipe_ready,
            miss_extra,
        }
    }

    /// Executes one issued instruction: computes its E-unit completion,
    /// occupies the FP unit for multi-cycle FP operations, and writes the
    /// destination's ready time back into the scoreboard.
    pub(crate) fn execute(
        &mut self,
        instr: &Instruction,
        issue: u64,
        tables: &Tables,
        forwarding: bool,
        seg: &MemorySegment,
        hazards: &mut HazardUnit,
    ) -> u64 {
        let exec_lat = tables.execute + tables.exec_extra[instr.class as usize];
        let exec_done = issue + exec_lat;
        if instr.class.is_fp() {
            self.fp_busy_until = exec_done;
        }
        if let Some(dst) = instr.dst {
            // Full forwarding network: simple ALU results bypass to
            // consumers one cycle after issue (real deep pipelines keep
            // single-cycle ALU loops); loads bypass from the cache return;
            // iterative FP forwards only when the unit finishes. The deep
            // E-unit's full latency still gates branch resolution and
            // retirement.
            let alu_ready = if forwarding { issue + 1 } else { exec_done };
            let miss_writer = if seg.miss_extra > 0 {
                WriterKind::Miss
            } else {
                WriterKind::Normal
            };
            let (ready_at, writer) = match instr.class {
                OpClass::Load => (seg.data_ready, miss_writer),
                OpClass::Fp | OpClass::FpLong => (exec_done, WriterKind::FpUnit),
                _ => (alu_ready, miss_writer),
            };
            hazards.set_ready(dst, ready_at, writer);
        }
        exec_done
    }

    /// Retires one instruction in order through the retire port, tracking
    /// the machine's finish cycle.
    pub(crate) fn retire(&mut self, complete_done: u64) -> u64 {
        let retire = self
            .retire_port
            .acquire(complete_done.max(self.last_retire));
        self.last_retire = retire;
        self.finish_cycle = self.finish_cycle.max(retire);
        retire
    }
}
