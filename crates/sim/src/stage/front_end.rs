//! The fetch/decode front end.

use super::{HazardUnit, Port, Tables};
use crate::cache::Hierarchy;
use crate::config::{ConfigError, SimConfig};
use crate::hazard::HazardKind;
use crate::predictor::Gshare;
use pipedepth_trace::isa::{Instruction, OpClass};

/// Decode timing produced by the front end's fetch/decode step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FetchDecode {
    /// Cycle the instruction entered decode.
    pub decode_cycle: u64,
    /// Cycle decode finished (entry plus the plan's decode latency).
    pub decode_done: u64,
}

/// The front end: instruction fetch, the decode port, the branch predictor
/// and misprediction redirects.
///
/// Owns everything the machine uses to get an instruction *into* the
/// pipeline: the once-per-line instruction-cache fetch filter, the
/// width-limited decode port, the gshare predictor, and the redirect cycle
/// a mispredicted branch stalls decode until.
#[derive(Debug, Clone)]
pub struct FrontEnd {
    decode_port: Port,
    predictor: Gshare,
    /// Decode may not restart before this cycle (branch redirect).
    redirect_at: u64,
    /// Last instruction-cache line fetched (fetch accesses once per line).
    last_fetch_line: u64,
    last_decode: u64,
    branches: u64,
    mispredicts: u64,
    /// Decode cycles lost to instruction-fetch misses (absolute-time).
    fetch_stall_cycles: u64,
}

impl FrontEnd {
    /// Builds the front end for one configuration.
    pub(crate) fn new(config: &SimConfig) -> Result<Self, ConfigError> {
        Ok(FrontEnd {
            decode_port: Port::new(config.width),
            predictor: Gshare::try_new(config.predictor)?,
            redirect_at: 0,
            last_fetch_line: u64::MAX,
            last_decode: 0,
            branches: 0,
            mispredicts: 0,
            fetch_stall_cycles: 0,
        })
    }

    /// The branch predictor (for inspection).
    pub fn predictor(&self) -> &Gshare {
        &self.predictor
    }

    /// Dynamic branches observed in the current measurement window.
    pub fn branches(&self) -> u64 {
        self.branches
    }

    /// Mispredicted branches in the current measurement window.
    pub fn mispredicts(&self) -> u64 {
        self.mispredicts
    }

    /// Decode cycles lost to instruction-fetch misses in the current
    /// measurement window.
    pub fn fetch_stall_cycles(&self) -> u64 {
        self.fetch_stall_cycles
    }

    /// Fetches and decodes one instruction: applies the decoupling-queue
    /// floor and any pending redirect, charges an instruction-cache access
    /// once per new code line (a fetch miss stalls decode for the
    /// absolute-time miss latency and records a memory hazard), then grants
    /// a decode slot.
    pub(crate) fn fetch_and_decode(
        &mut self,
        instr: &Instruction,
        caches: &mut Hierarchy,
        tables: &Tables,
        hazards: &mut HazardUnit,
        queue_floor: u64,
    ) -> FetchDecode {
        // Finite decoupling queues: decode cannot run more than the queue
        // capacity ahead of issue.
        let mut decode_req = self.last_decode.max(self.redirect_at).max(queue_floor);

        // One instruction-cache access per new code line; a fetch miss
        // stalls decode for the (absolute-time) miss latency.
        let line = instr.pc / tables.line_bytes;
        if line != self.last_fetch_line {
            self.last_fetch_line = line;
            let result = caches.fetch(instr.pc);
            let fetch_extra = tables.miss_penalty[result as usize];
            if fetch_extra > 0 {
                hazards.record_capped(HazardKind::Memory, fetch_extra, tables.hazard_cap);
                hazards.add_memory_wait(fetch_extra);
                self.fetch_stall_cycles += fetch_extra;
                decode_req += fetch_extra;
            }
        }
        let decode_cycle = self.decode_port.acquire(decode_req);
        self.last_decode = decode_cycle;
        FetchDecode {
            decode_cycle,
            decode_done: decode_cycle + tables.decode,
        }
    }

    /// Resolves a branch at execute: observes the predictor and, on a
    /// mispredict, records the control-hazard refill and sets the redirect
    /// cycle decode resumes at. Non-branches are a no-op.
    pub(crate) fn resolve_branch(
        &mut self,
        instr: &Instruction,
        decode_cycle: u64,
        exec_done: u64,
        tables: &Tables,
        hazards: &mut HazardUnit,
    ) {
        if instr.class != OpClass::Branch {
            return;
        }
        self.branches += 1;
        let taken = instr.is_taken_branch();
        let hit = self.predictor.observe(instr.pc, taken);
        if !hit {
            self.mispredicts += 1;
            let resume = exec_done + 1;
            // The flush stalls decode from right after the branch until
            // resolution: a full decode→execute refill. For γ purposes
            // the stall is capped like every other hazard.
            let refill = resume.saturating_sub(decode_cycle + 1);
            hazards.record_capped(HazardKind::Control, refill, tables.hazard_cap);
            self.redirect_at = resume;
        }
    }

    /// Zeroes the front end's statistics, keeping microarchitectural state
    /// (predictor tables, decode timing, pending redirect) intact.
    pub(crate) fn reset_stats(&mut self) {
        self.branches = 0;
        self.mispredicts = 0;
        self.fetch_stall_cycles = 0;
        self.predictor.reset_stats();
    }
}
