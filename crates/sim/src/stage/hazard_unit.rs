//! The register scoreboard and stall classification.

use super::Tables;
use crate::hazard::{HazardKind, HazardStats};
use pipedepth_trace::isa::{Instruction, OpClass, Reg};

/// How the most recent writer of a register produced its value — used to
/// classify the stalls of dependent instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WriterKind {
    /// Ordinary pipelined producer.
    Normal,
    /// Producer was delayed by a cache miss.
    Miss,
    /// Producer was a multi-cycle FP operation (fixed-cycle latency:
    /// waiting on it is occupancy, not a depth-scaled hazard).
    FpUnit,
}

/// Both register files flattened into one slot space: GPRs at
/// `0..FILE_SIZE`, FPRs at `FILE_SIZE..2*FILE_SIZE`. A single pair of
/// flat arrays keeps every ready-time lookup a direct index with no
/// per-file dispatch on the hot path.
pub(crate) const REG_SLOTS: usize = 2 * Reg::FILE_SIZE as usize;

pub(crate) fn reg_slot(reg: Reg) -> usize {
    match reg {
        Reg::Gpr(i) => i as usize,
        Reg::Fpr(i) => Reg::FILE_SIZE as usize + i as usize,
    }
}

/// The readiness of an instruction's source operands: the cycle the last
/// one arrives and the kind of producer that wrote it.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SourceReadiness {
    pub(crate) ready: u64,
    pub(crate) writer: WriterKind,
}

/// Everything the hazard classifier needs to attribute one instruction's
/// stall, gathered by the orchestrator after the issue cycle is known.
#[derive(Debug, Clone, Copy)]
pub(crate) struct StallInputs {
    pub(crate) is_mem: bool,
    pub(crate) class: OpClass,
    pub(crate) decode_done: u64,
    /// Issue cycle of the previous instruction (the in-order floor).
    pub(crate) prev_issue: u64,
    pub(crate) in_order: bool,
    pub(crate) queue_ready: u64,
    pub(crate) src: SourceReadiness,
    pub(crate) fp_ready: u64,
    pub(crate) miss_extra: u64,
}

/// The hazard unit: the register scoreboard plus the stall classification
/// that produces the theory's `γ` and `N_H` inputs.
///
/// Owns the flattened register-ready scoreboard, the per-kind
/// [`HazardStats`], and the absolute-time memory-wait accumulator the
/// theory comparison treats as the additive `t_mem` constant.
#[derive(Debug, Clone)]
pub struct HazardUnit {
    /// Flattened register scoreboards (see `reg_slot`).
    reg_ready: [u64; REG_SLOTS],
    reg_writer: [WriterKind; REG_SLOTS],
    stats: HazardStats,
    memory_wait_cycles: u64,
}

impl HazardUnit {
    /// A fresh scoreboard: every register ready at cycle 0.
    pub(crate) fn new() -> Self {
        HazardUnit {
            reg_ready: [0; REG_SLOTS],
            reg_writer: [WriterKind::Normal; REG_SLOTS],
            stats: HazardStats::new(),
            memory_wait_cycles: 0,
        }
    }

    /// Hazard statistics of the current measurement window.
    pub fn stats(&self) -> &HazardStats {
        &self.stats
    }

    /// Total cycles spent waiting on cache-miss latency (absolute-time
    /// component, excluded from the γ accounting).
    pub fn memory_wait_cycles(&self) -> u64 {
        self.memory_wait_cycles
    }

    /// When the latest-arriving source of `instr` is ready, and what kind
    /// of producer wrote it (ties at equal readiness prefer a miss writer,
    /// so a dependent of a missed load classifies as a memory stall).
    pub(crate) fn sources(&self, instr: &Instruction) -> SourceReadiness {
        let mut ready = 0u64;
        let mut writer = WriterKind::Normal;
        for s in instr.srcs() {
            let slot = reg_slot(s);
            let at = self.reg_ready[slot];
            if at > ready {
                ready = at;
                writer = self.reg_writer[slot];
            } else if at == ready && self.reg_writer[slot] == WriterKind::Miss {
                writer = WriterKind::Miss;
            }
        }
        SourceReadiness { ready, writer }
    }

    /// Marks `reg` ready at cycle `at`, remembering the producer kind.
    #[inline]
    pub(crate) fn set_ready(&mut self, reg: Reg, at: u64, writer: WriterKind) {
        let slot = reg_slot(reg);
        self.reg_ready[slot] = at;
        self.reg_writer[slot] = writer;
    }

    /// Records one hazard episode, capped at `cap` cycles for γ purposes.
    pub(crate) fn record_capped(&mut self, kind: HazardKind, cycles: u64, cap: u64) {
        self.stats.record(kind, cycles.min(cap));
    }

    /// Accumulates absolute-time memory-wait cycles.
    pub(crate) fn add_memory_wait(&mut self, cycles: u64) {
        self.memory_wait_cycles += cycles;
    }

    /// Attributes one instruction's stall to the hazard kind whose
    /// constraint dominated it, and accumulates its absolute-time miss
    /// latency.
    ///
    /// A hazard is the *marginal* delay this instruction's own constraints
    /// add beyond both its unobstructed pipeline transit and the in-order
    /// backpressure floor (an older instruction's stall is that
    /// instruction's hazard, not a new one). Stalls are capped at two full
    /// pipeline drains when accounted toward γ: a stall cannot idle more
    /// pipeline than the machine has, and the residue of long memory waits
    /// is absolute time, tracked separately.
    pub(crate) fn attribute(&mut self, tables: &Tables, inp: &StallInputs) {
        let transit = inp.decode_done
            + if inp.is_mem {
                tables.agen + tables.cache
            } else {
                0
            };
        let floor = if inp.in_order {
            transit.max(inp.prev_issue)
        } else {
            transit
        };
        let own = inp.queue_ready.max(inp.src.ready).max(inp.fp_ready);
        let stall = own.saturating_sub(floor);
        if stall > 0 {
            let gamma_stall = stall.min(tables.hazard_cap);
            // Classification precedence: a cache miss anywhere in the
            // dependence chain is a memory event; otherwise a register
            // dependence is a data event; waiting on the busy FP unit is
            // occupancy (the machine is doing work — it surfaces as reduced
            // superscalar degree α, as in the paper's multi-cycle FP model),
            // not a hazard; everything else (ports, queues) is structural.
            let load_use_blocked = inp.class == OpClass::AluRx && inp.miss_extra > 0;
            let src_from_miss = inp.src.writer == WriterKind::Miss;
            let kind = if load_use_blocked || src_from_miss {
                Some(HazardKind::Memory)
            } else if inp.src.ready > floor {
                // A dependent waiting on the fixed-cycle FP unit is
                // occupancy (the unit is doing work at the clock rate), not
                // a depth-scaled pipeline hazard — mirror the fp_ready case.
                if inp.src.writer == WriterKind::FpUnit {
                    None
                } else {
                    Some(HazardKind::Data)
                }
            } else if inp.fp_ready > floor {
                None
            } else {
                Some(HazardKind::Structural)
            };
            if let Some(kind) = kind {
                self.stats.record(kind, gamma_stall);
            }
        }
        // Absolute-time memory latency (does not scale with pipeline depth;
        // reported as a per-instruction time so the theory comparison can
        // treat it as the additive constant it is).
        self.memory_wait_cycles += inp.miss_extra;
    }

    /// Zeroes the window statistics, keeping the scoreboard (in-flight
    /// register timing) intact.
    pub(crate) fn reset_stats(&mut self) {
        self.stats = HazardStats::new();
        self.memory_wait_cycles = 0;
    }
}
