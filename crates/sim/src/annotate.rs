//! The annotate pass: depth-invariant event classification, run once per
//! workload trace.
//!
//! The sweep at the heart of the paper evaluates the *same* instruction
//! stream at every pipeline depth. Within that stream, three families of
//! events do not depend on depth at all — they are functions of the trace
//! and of the cache/predictor configuration only:
//!
//! * **instruction fetch**: the once-per-line fetch filter and the
//!   L1i/L2/memory class of each counted fetch (cache *state* evolves in
//!   trace order, independent of stage timing);
//! * **data access**: the L1d/L2/memory class of every memory operand
//!   (same argument — accesses happen in trace order on the in-order
//!   machine, and the prefetcher reacts only to access results);
//! * **branch outcome**: the gshare predictor trains on the architectural
//!   taken/not-taken stream, which timing cannot alter.
//!
//! [`annotate()`] replays exactly the engine's cache and predictor model over
//! a trace once and records those outcomes — together with the decoded
//! per-instruction fields the timing kernel needs (class, flat register
//! slots, serialize/memory flags) — into a struct-of-arrays
//! [`AnnotatedTrace`]. The per-depth *timing* replay
//! ([`crate::replay::replay_sweep`]) then runs over the annotation with no
//! cache arrays, no predictor table and no instruction decoding in its
//! inner loop. Everything that is **not** provably depth-invariant (port
//! contention, miss *penalties in cycles*, queue floors, hazard
//! attribution) deliberately stays in the per-depth kernel.
//!
//! [`AnnotationStore`] is the content-addressed companion of
//! [`pipedepth_trace::TraceArena`]: one annotation per distinct
//! `(stream, cache config, predictor config)`, shared by `Arc`, with
//! `trace.annotate.*` telemetry counters.

use crate::cache::Hierarchy;
use crate::config::{CacheConfig, ConfigError, PredictorConfig};
use crate::predictor::Gshare;
use crate::stage::reg_slot;
use pipedepth_telemetry::{Counter, Telemetry};
use pipedepth_trace::isa::{Instruction, OpClass};
use pipedepth_trace::Fnv64;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Sentinel register slot: "no destination / source absent".
pub(crate) const NO_REG: u8 = u8::MAX;
/// Flag bit: the instruction is a serialising operation.
pub(crate) const FLAG_SERIAL: u8 = 1;
/// Flag bit: the instruction carries a memory operand (`mem.is_some()`).
pub(crate) const FLAG_MEM: u8 = 2;

/// The depth-invariant annotation of one instruction stream, in
/// struct-of-arrays layout: one compact column per field, indexed by
/// instruction position, so the replay kernel streams each column linearly.
///
/// Encodings (one byte each):
/// * `classes[i]` — the [`OpClass`] discriminant;
/// * `flags[i]` — serialise/memory flag bits;
/// * `dst[i]`, `src[i]` — flat register slots (GPRs then FPRs), `0xFF`
///   when absent;
/// * `fetch[i]` — `0` = no counted instruction-cache access (same code
///   line as the previous instruction, or no L1i configured), else the
///   access level + 1 (`1` = L1i hit, `2` = L2, `3` = memory);
/// * `data[i]` — `0` = no memory operand, else the access level + 1
///   (`1` = L1d hit, `2` = L2, `3` = memory);
/// * `branch[i]` — `0` = not a branch, `1` = predicted correctly,
///   `2` = mispredicted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnnotatedTrace {
    pub(crate) classes: Vec<u8>,
    pub(crate) flags: Vec<u8>,
    pub(crate) dst: Vec<u8>,
    pub(crate) src: Vec<[u8; 2]>,
    pub(crate) fetch: Vec<u8>,
    pub(crate) data: Vec<u8>,
    pub(crate) branch: Vec<u8>,
}

impl AnnotatedTrace {
    /// Number of annotated instructions.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// True for the annotation of an empty stream.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Approximate resident size in bytes (for capacity accounting).
    pub fn bytes(&self) -> usize {
        // Seven one-byte columns, of which `src` holds two bytes.
        self.len() * 8
    }
}

/// Runs the engine's cache and predictor model over `trace` once and
/// returns the depth-invariant annotation.
///
/// The pass mirrors the stage engine's event order exactly: per
/// instruction, the fetch filter first, then the data access, then the
/// branch observation — so the cache and predictor state evolve exactly as
/// they do inside [`crate::Engine`] at any depth.
///
/// # Errors
///
/// Returns the first [`ConfigError`] found validating the cache or
/// predictor configuration.
pub fn annotate(
    trace: &[Instruction],
    cache: CacheConfig,
    predictor: PredictorConfig,
) -> Result<AnnotatedTrace, ConfigError> {
    let mut caches = Hierarchy::try_new(cache)?;
    let mut bp = Gshare::try_new(predictor)?;
    let has_l1i = cache.l1i_bytes > 0;
    let line_bytes = cache.line_bytes;
    let mut last_fetch_line = u64::MAX;

    let n = trace.len();
    let mut out = AnnotatedTrace {
        classes: Vec::with_capacity(n),
        flags: Vec::with_capacity(n),
        dst: Vec::with_capacity(n),
        src: Vec::with_capacity(n),
        fetch: Vec::with_capacity(n),
        data: Vec::with_capacity(n),
        branch: Vec::with_capacity(n),
    };
    let slot = |reg: Option<pipedepth_trace::isa::Reg>| reg.map_or(NO_REG, |r| reg_slot(r) as u8);

    for instr in trace {
        out.classes.push(instr.class as u8);
        let mut flags = 0u8;
        if instr.serial {
            flags |= FLAG_SERIAL;
        }
        if instr.mem.is_some() {
            flags |= FLAG_MEM;
        }
        out.flags.push(flags);
        out.dst.push(slot(instr.dst));
        out.src.push([slot(instr.src[0]), slot(instr.src[1])]);

        // Fetch: one counted access per new code line, exactly the front
        // end's filter. With no L1i the engine's fetch is a free hit with
        // no counters touched, so it annotates as "no counted fetch".
        let line = instr.pc / line_bytes;
        let fetch = if line != last_fetch_line {
            last_fetch_line = line;
            if has_l1i {
                caches.fetch(instr.pc) as u8 + 1
            } else {
                0
            }
        } else {
            0
        };
        out.fetch.push(fetch);

        // Data access: every memory operand touches the hierarchy (stores
        // included — they update cache state through the write buffer).
        let data = match instr.mem {
            Some(mem) => caches.access(mem.addr) as u8 + 1,
            None => 0,
        };
        out.data.push(data);

        // Branch outcome: the predictor trains on the architectural
        // outcome stream.
        let branch = if instr.class == OpClass::Branch {
            if bp.observe(instr.pc, instr.is_taken_branch()) {
                1
            } else {
                2
            }
        } else {
            0
        };
        out.branch.push(branch);
    }
    Ok(out)
}

/// Content fingerprint of the annotation-relevant configuration: every
/// cache and predictor field. Two configurations with equal fingerprints
/// (and equal field values — collisions are resolved by comparison in the
/// store) produce identical annotations for the same stream.
pub fn annotation_fingerprint(cache: &CacheConfig, predictor: &PredictorConfig) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(cache.l1_bytes)
        .write_u32(cache.l1_ways)
        .write_u64(cache.l1i_bytes)
        .write_u32(cache.l1i_ways)
        .write_u64(cache.l2_bytes)
        .write_u32(cache.l2_ways)
        .write_u64(cache.line_bytes)
        .write_f64(cache.l2_latency_fo4)
        .write_f64(cache.memory_latency_fo4)
        .write_bool(cache.prefetch)
        .write_u32(predictor.table_bits)
        .write_u32(predictor.history_bits);
    h.finish()
}

/// Counters describing an annotation store's service history.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AnnotateStats {
    /// Requests served from an already-resident annotation.
    pub hits: u64,
    /// Requests that ran a fresh annotation pass.
    pub misses: u64,
    /// Total instructions annotated since creation.
    pub instructions_annotated: u64,
}

impl AnnotateStats {
    /// Total requests served.
    pub fn requested(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of requests served without annotating (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        if self.requested() == 0 {
            0.0
        } else {
            self.hits as f64 / self.requested() as f64
        }
    }
}

/// Full identity of one resident annotation (collision resolution for the
/// store's hash buckets, and the persisted record key of the annotation
/// namespace in an on-disk store).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnnotationKey {
    /// The stream's arena key ([`pipedepth_trace::TraceRequest::key`]).
    pub trace_key: u64,
    /// Stream length (a second identity check alongside the key).
    pub len: usize,
    /// Cache configuration the annotation was computed under.
    pub cache: CacheConfig,
    /// Predictor configuration the annotation was computed under.
    pub predictor: PredictorConfig,
}

impl AnnotationKey {
    /// The key's bucket hash inside an [`AnnotationStore`].
    fn hash(&self) -> u64 {
        let mut h = Fnv64::new();
        h.write_u64(self.trace_key)
            .write_u64(self.len as u64)
            .write_u64(annotation_fingerprint(&self.cache, &self.predictor));
        h.finish()
    }
}

type Bucket = Vec<(AnnotationKey, Arc<AnnotatedTrace>)>;

/// Content-addressed store of annotations, the companion of
/// [`pipedepth_trace::TraceArena`]: one annotation pass per distinct
/// `(stream, cache config, predictor config)`, shared by `Arc` thereafter.
///
/// Like the arena, annotation happens under the store lock so concurrent
/// requests never duplicate a pass, and the intended discipline is to
/// pre-stage annotations serially before fanning out workers — which also
/// keeps the `trace.annotate.*` counters deterministic for any thread
/// count.
#[derive(Debug, Default)]
pub struct AnnotationStore {
    buckets: Mutex<BTreeMap<u64, Bucket>>,
    hits: AtomicU64,
    misses: AtomicU64,
    instructions: AtomicU64,
    hit_counter: Counter,
    miss_counter: Counter,
    annotated_counter: Counter,
}

impl AnnotationStore {
    /// An empty store.
    pub fn new() -> Self {
        AnnotationStore::default()
    }

    /// Connects the store's counters to a telemetry registry:
    /// `trace.annotate.hits`, `trace.annotate.misses` and
    /// `trace.annotate.instructions_annotated` mirror [`AnnotateStats`].
    pub fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        self.hit_counter = telemetry.counter("trace.annotate.hits");
        self.miss_counter = telemetry.counter("trace.annotate.misses");
        self.annotated_counter = telemetry.counter("trace.annotate.instructions_annotated");
    }

    /// The annotation for `trace` under `(cache, predictor)`, running the
    /// pass on first request and sharing the same `Arc` on every
    /// subsequent one. `trace_key` is the stream's content key (the arena
    /// key), which stands in for the stream's bytes in the store address.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] found validating the cache or
    /// predictor configuration.
    pub fn get_or_annotate(
        &self,
        trace_key: u64,
        trace: &[Instruction],
        cache: CacheConfig,
        predictor: PredictorConfig,
    ) -> Result<Arc<AnnotatedTrace>, ConfigError> {
        let key = AnnotationKey {
            trace_key,
            len: trace.len(),
            cache,
            predictor,
        };
        let hash = key.hash();
        let mut buckets = self
            .buckets
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let bucket = buckets.entry(hash).or_default();
        if let Some((_, notes)) = bucket.iter().find(|(k, _)| k == &key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.hit_counter.inc();
            return Ok(Arc::clone(notes));
        }
        // Annotation happens under the lock: concurrent requests for the
        // same annotation must never duplicate the work.
        let notes = Arc::new(annotate(trace, cache, predictor)?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.instructions
            .fetch_add(trace.len() as u64, Ordering::Relaxed);
        self.miss_counter.inc();
        self.annotated_counter.add(trace.len() as u64);
        bucket.push((key, Arc::clone(&notes)));
        Ok(notes)
    }

    /// A point-in-time snapshot of every resident annotation, in
    /// deterministic bucket-hash order — the export path for a
    /// persistent store. Does not touch the service counters.
    pub fn export(&self) -> Vec<(AnnotationKey, Arc<AnnotatedTrace>)> {
        let buckets = self
            .buckets
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        buckets
            .values()
            .flat_map(|bucket| bucket.iter().map(|(key, notes)| (*key, Arc::clone(notes))))
            .collect()
    }

    /// Installs an annotation computed by a previous run (a warm-store
    /// load). Counter-neutral: seeding is not a service request, so the
    /// hit/miss statistics stay exactly what this process's own requests
    /// produce. Returns whether the annotation was actually installed
    /// (false when an equal key was already resident).
    pub fn seed(&self, key: AnnotationKey, notes: Arc<AnnotatedTrace>) -> bool {
        let hash = key.hash();
        let mut buckets = self
            .buckets
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let bucket = buckets.entry(hash).or_default();
        if bucket.iter().any(|(k, _)| k == &key) {
            return false;
        }
        bucket.push((key, notes));
        true
    }

    /// Number of distinct annotations resident.
    pub fn len(&self) -> usize {
        self.buckets
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .values()
            .map(Vec::len)
            .sum()
    }

    /// True when nothing has been annotated yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current service counters.
    pub fn stats(&self) -> AnnotateStats {
        AnnotateStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            instructions_annotated: self.instructions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use pipedepth_trace::{TraceGenerator, WorkloadModel};

    fn sample_trace(n: usize) -> Vec<Instruction> {
        TraceGenerator::new(WorkloadModel::spec_int_like(), 42).take_vec(n)
    }

    #[test]
    fn annotation_is_deterministic_and_sized() {
        let trace = sample_trace(2_000);
        let cfg = SimConfig::paper(8);
        let a = annotate(&trace, cfg.cache, cfg.predictor).expect("valid config");
        let b = annotate(&trace, cfg.cache, cfg.predictor).expect("valid config");
        assert_eq!(a, b);
        assert_eq!(a.len(), 2_000);
        assert!(!a.is_empty());
        assert_eq!(a.bytes(), 16_000);
    }

    #[test]
    fn annotation_is_depth_independent_inputs_only() {
        // The annotation takes no depth at all — but the same cache and
        // predictor configs at different prefetch settings must differ.
        let trace = sample_trace(2_000);
        let cfg = SimConfig::paper(8);
        let mut no_prefetch = cfg.cache;
        no_prefetch.prefetch = false;
        let a = annotate(&trace, cfg.cache, cfg.predictor).expect("valid config");
        let b = annotate(&trace, no_prefetch, cfg.predictor).expect("valid config");
        assert_ne!(a, b, "prefetch changes the miss classes");
        assert_ne!(
            annotation_fingerprint(&cfg.cache, &cfg.predictor),
            annotation_fingerprint(&no_prefetch, &cfg.predictor)
        );
    }

    #[test]
    fn branch_outcomes_match_a_fresh_predictor() {
        let trace = sample_trace(3_000);
        let cfg = SimConfig::paper(8);
        let notes = annotate(&trace, cfg.cache, cfg.predictor).expect("valid config");
        let mut bp = Gshare::try_new(cfg.predictor).expect("valid config");
        for (instr, &b) in trace.iter().zip(&notes.branch) {
            if instr.class == OpClass::Branch {
                let hit = bp.observe(instr.pc, instr.is_taken_branch());
                assert_eq!(b, if hit { 1 } else { 2 });
            } else {
                assert_eq!(b, 0);
            }
        }
    }

    #[test]
    fn disabled_icache_annotates_no_fetches() {
        let trace = sample_trace(1_000);
        let cfg = SimConfig::paper(8);
        let mut cache = cfg.cache;
        cache.l1i_bytes = 0;
        let notes = annotate(&trace, cache, cfg.predictor).expect("valid config");
        assert!(notes.fetch.iter().all(|&f| f == 0));
    }

    #[test]
    fn store_annotates_once_and_shares() {
        let trace = sample_trace(1_500);
        let cfg = SimConfig::paper(8);
        let store = AnnotationStore::new();
        let a = store
            .get_or_annotate(7, &trace, cfg.cache, cfg.predictor)
            .expect("valid config");
        let b = store
            .get_or_annotate(7, &trace, cfg.cache, cfg.predictor)
            .expect("valid config");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(store.len(), 1);
        let stats = store.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(stats.instructions_annotated, 1_500);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
        // A different cache config is a different annotation.
        let mut other = cfg.cache;
        other.prefetch = false;
        store
            .get_or_annotate(7, &trace, other, cfg.predictor)
            .expect("valid config");
        assert_eq!(store.len(), 2);
        assert!(!store.is_empty());
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn store_telemetry_mirrors_stats() {
        let telemetry = Telemetry::new();
        let mut store = AnnotationStore::new();
        store.attach_telemetry(&telemetry);
        let trace = sample_trace(600);
        let cfg = SimConfig::paper(8);
        store
            .get_or_annotate(1, &trace, cfg.cache, cfg.predictor)
            .expect("valid config");
        store
            .get_or_annotate(1, &trace, cfg.cache, cfg.predictor)
            .expect("valid config");
        let snap = telemetry.snapshot();
        assert_eq!(snap.counter("trace.annotate.hits"), 1);
        assert_eq!(snap.counter("trace.annotate.misses"), 1);
        assert_eq!(snap.counter("trace.annotate.instructions_annotated"), 600);
    }
}
