//! Simulation results and theory-parameter extraction.
//!
//! A [`SimReport`] carries everything a single simulation produced: cycle
//! counts, per-unit activity (for the power model), hazard statistics, and
//! the extracted theory parameters `α`, `γ` and `N_H/N_I` — the quantities
//! the paper reads off "the simulation of a single pipeline depth" to
//! parameterise its analytic curves.

use crate::config::{SimConfig, StagePlan, Unit};
use crate::hazard::HazardStats;

/// The result of simulating one workload at one pipeline depth.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Configuration simulated.
    pub config: SimConfig,
    /// Stage plan in effect.
    pub plan: StagePlan,
    /// Instructions completed.
    pub instructions: u64,
    /// Total cycles to retire the last instruction.
    pub cycles: u64,
    /// Number of distinct cycles in which at least one instruction issued.
    pub distinct_issue_cycles: u64,
    /// Instruction-stage occupancies per unit (for the power model), in
    /// [`Unit::ALL`] order.
    pub activity: [u64; 5],
    /// Hazard statistics.
    pub hazards: HazardStats,
    /// Dynamic branches.
    pub branches: u64,
    /// Mispredicted branches.
    pub mispredicts: u64,
    /// L1 data-cache miss rate.
    pub l1_miss_rate: f64,
    /// L2 miss rate (of L2 accesses).
    pub l2_miss_rate: f64,
    /// L1 instruction-cache miss rate (0 when no I-cache is configured).
    pub l1i_miss_rate: f64,
    /// Total cycles spent waiting on cache-miss latency (absolute-time
    /// component, excluded from the γ accounting).
    pub memory_wait_cycles: u64,
}

impl SimReport {
    /// Assembles a report (used by the engine).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn gather(
        config: SimConfig,
        plan: StagePlan,
        instructions: u64,
        cycles: u64,
        distinct_issue_cycles: u64,
        activity: &[u64; 5],
        hazards: HazardStats,
        branches: u64,
        mispredicts: u64,
        l1_miss_rate: f64,
        l2_miss_rate: f64,
        l1i_miss_rate: f64,
        memory_wait_cycles: u64,
    ) -> Self {
        SimReport {
            config,
            plan,
            instructions,
            cycles,
            distinct_issue_cycles,
            activity: *activity,
            hazards,
            branches,
            mispredicts,
            l1_miss_rate,
            l2_miss_rate,
            l1i_miss_rate,
            memory_wait_cycles,
        }
    }

    /// Per-instruction absolute-time memory latency in FO4 — the additive
    /// constant the synthetic machine's cache misses contribute to the time
    /// per instruction, which the paper's τ(p) does not model.
    pub fn memory_time_per_instruction_fo4(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.memory_wait_cycles as f64 * self.config.cycle_time_fo4() / self.instructions as f64
        }
    }

    /// Cycles per instruction (0 for an empty run).
    pub fn cpi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.cycles as f64 / self.instructions as f64
        }
    }

    /// Time per instruction in FO4: `CPI × t_s` — the simulator's measured
    /// counterpart of the theory's `τ`.
    pub fn time_per_instruction_fo4(&self) -> f64 {
        self.cpi() * self.config.cycle_time_fo4()
    }

    /// Throughput in instructions per FO4 (∝ BIPS).
    pub fn throughput(&self) -> f64 {
        let t = self.time_per_instruction_fo4();
        if t == 0.0 {
            0.0
        } else {
            1.0 / t
        }
    }

    /// Activity (instruction-stage occupancies) of one unit.
    pub fn unit_activity(&self, unit: Unit) -> u64 {
        let idx = Unit::ALL
            .iter()
            .position(|&u| u == unit)
            .expect("unit is in Unit::ALL");
        self.activity[idx]
    }

    /// Extracted superscalar degree `α`: instructions per active issue
    /// cycle.
    pub fn alpha(&self) -> f64 {
        if self.distinct_issue_cycles == 0 {
            1.0
        } else {
            (self.instructions as f64 / self.distinct_issue_cycles as f64).max(1.0)
        }
    }

    /// Extracted hazard pipeline fraction `γ` (mean stall over depth).
    pub fn gamma(&self) -> f64 {
        self.hazards.gamma(self.config.depth)
    }

    /// Extracted hazards per instruction `N_H/N_I`.
    pub fn hazard_rate(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.hazards.total_events() as f64 / self.instructions as f64
        }
    }

    /// Branch misprediction rate.
    pub fn mispredict_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.branches as f64
        }
    }

    /// The hazard product `α·γ·N_H/N_I` that the theory's Eq. 2 divides
    /// by — the single number that sets the performance-only optimum.
    pub fn hazard_product(&self) -> f64 {
        self.alpha() * self.gamma() * self.hazard_rate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use pipedepth_trace::{TraceGenerator, WorkloadModel};

    fn run(depth: u32, seed: u64, n: u64) -> SimReport {
        let mut e = Engine::new(SimConfig::paper(depth));
        let mut gen = TraceGenerator::new(WorkloadModel::spec_int_like(), seed);
        e.run(&mut gen, n)
    }

    #[test]
    fn cpi_and_time_consistent() {
        let r = run(10, 1, 10_000);
        let t = r.time_per_instruction_fo4();
        assert!((t - r.cpi() * r.config.cycle_time_fo4()).abs() < 1e-12);
        assert!((r.throughput() - 1.0 / t).abs() < 1e-15);
    }

    #[test]
    fn alpha_between_one_and_width() {
        let r = run(10, 2, 20_000);
        assert!(r.alpha() >= 1.0);
        assert!(r.alpha() <= 4.0);
    }

    #[test]
    fn extracted_parameters_positive_for_real_workloads() {
        let r = run(12, 3, 20_000);
        assert!(r.gamma() > 0.0);
        assert!(r.hazard_rate() > 0.0);
        assert!(r.hazard_product() > 0.0);
    }

    #[test]
    fn mispredict_rate_below_one() {
        let r = run(12, 4, 20_000);
        assert!(r.mispredict_rate() > 0.0);
        assert!(r.mispredict_rate() < 0.5);
    }

    #[test]
    fn l1_miss_rate_reasonable_for_friendly_workload() {
        let r = run(8, 5, 20_000);
        assert!(
            r.l1_miss_rate < 0.2,
            "cache-friendly miss rate {}",
            r.l1_miss_rate
        );
    }

    #[test]
    fn activity_nonzero_for_all_scaled_units() {
        let r = run(12, 6, 5_000);
        for u in Unit::SCALED {
            if r.plan.stages(u) > 0 {
                assert!(r.unit_activity(u) > 0, "unit {u} idle");
            }
        }
    }
}
