//! Property-based tests for the numerical substrate.

use pipedepth_math::fit::{cubic_peak_fit, power_law_fit, scale_fit};
use pipedepth_math::histogram::Histogram;
use pipedepth_math::lsq::fit_polynomial;
use pipedepth_math::optimize::{golden_section_max, maximize};
use pipedepth_math::roots::{real_roots, solve_cubic, solve_quadratic};
use pipedepth_math::stats::Summary;
use pipedepth_math::Polynomial;
use proptest::prelude::*;

fn small_f64() -> impl Strategy<Value = f64> {
    (-100.0f64..100.0).prop_filter("finite", |x| x.is_finite())
}

fn root_val() -> impl Strategy<Value = f64> {
    (-50.0f64..50.0).prop_filter("not tiny-clustered", |x| x.abs() > 1e-3)
}

proptest! {
    #[test]
    fn poly_add_is_commutative(a in prop::collection::vec(small_f64(), 0..6),
                               b in prop::collection::vec(small_f64(), 0..6),
                               x in small_f64()) {
        let pa = Polynomial::new(a);
        let pb = Polynomial::new(b);
        let lhs = (&pa + &pb).eval(x);
        let rhs = (&pb + &pa).eval(x);
        prop_assert!((lhs - rhs).abs() <= 1e-9 * lhs.abs().max(rhs.abs()).max(1.0));
    }

    #[test]
    fn poly_mul_eval_is_pointwise_product(a in prop::collection::vec(small_f64(), 1..5),
                                          b in prop::collection::vec(small_f64(), 1..5),
                                          x in -3.0f64..3.0) {
        let pa = Polynomial::new(a);
        let pb = Polynomial::new(b);
        let prod = (&pa * &pb).eval(x);
        let point = pa.eval(x) * pb.eval(x);
        prop_assert!((prod - point).abs() <= 1e-6 * prod.abs().max(point.abs()).max(1.0));
    }

    #[test]
    fn poly_derivative_is_linear(a in prop::collection::vec(small_f64(), 0..6),
                                 b in prop::collection::vec(small_f64(), 0..6),
                                 x in small_f64()) {
        let pa = Polynomial::new(a);
        let pb = Polynomial::new(b);
        let lhs = (&pa + &pb).derivative().eval(x);
        let rhs = pa.derivative().eval(x) + pb.derivative().eval(x);
        prop_assert!((lhs - rhs).abs() <= 1e-8 * lhs.abs().max(rhs.abs()).max(1.0));
    }

    #[test]
    fn deflate_then_expand_roundtrips(roots in prop::collection::vec(root_val(), 1..5),
                                      probe in -10.0f64..10.0) {
        let poly = roots.iter().fold(Polynomial::constant(1.0), |acc, &r| {
            acc * Polynomial::linear_root(r)
        });
        let (q, rem) = poly.deflate(roots[0]);
        let scale: f64 = poly.coeffs().iter().fold(1.0f64, |m, c| m.max(c.abs()));
        prop_assert!(rem.abs() <= 1e-6 * scale);
        let rebuilt = q * Polynomial::linear_root(roots[0]);
        let diff = (rebuilt.eval(probe) - poly.eval(probe)).abs();
        prop_assert!(diff <= 1e-5 * scale * (1.0 + probe.abs().powi(roots.len() as i32)));
    }

    #[test]
    fn quadratic_roots_annihilate(a in root_val(), b in small_f64(), c in small_f64()) {
        for r in solve_quadratic(a, b, c) {
            let v = a * r * r + b * r + c;
            let scale = a.abs().max(b.abs()).max(c.abs()).max(1.0) * (1.0 + r * r);
            prop_assert!(v.abs() <= 1e-7 * scale, "root {r} gives {v}");
        }
    }

    #[test]
    fn cubic_from_roots_recovered(r1 in root_val(), r2 in root_val(), r3 in root_val(),
                                  lead in 0.1f64..10.0) {
        // Require separated roots to avoid multiplicity tolerance questions.
        prop_assume!((r1 - r2).abs() > 0.5 && (r1 - r3).abs() > 0.5 && (r2 - r3).abs() > 0.5);
        let p = Polynomial::linear_root(r1) * Polynomial::linear_root(r2) * Polynomial::linear_root(r3);
        let p = p.scale(lead);
        let got = solve_cubic(p.coeff(3), p.coeff(2), p.coeff(1), p.coeff(0));
        prop_assert_eq!(got.len(), 3);
        let mut want = [r1, r2, r3];
        want.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (g, w) in got.iter().zip(want) {
            prop_assert!((g - w).abs() <= 1e-5 * w.abs().max(1.0), "got {g}, want {w}");
        }
    }

    #[test]
    fn quartic_real_roots_found(r1 in root_val(), r2 in root_val(),
                                r3 in root_val(), r4 in root_val()) {
        prop_assume!([r1, r2, r3, r4].windows(1).len() == 4);
        let mut want = [r1, r2, r3, r4];
        want.sort_by(|a, b| a.partial_cmp(b).unwrap());
        // Require pairwise separation for clean root identification.
        prop_assume!(want.windows(2).all(|w| (w[1] - w[0]).abs() > 1.0));
        let p = want.iter().fold(Polynomial::constant(1.0), |acc, &r| acc * Polynomial::linear_root(r));
        let got = real_roots(&p);
        prop_assert_eq!(got.len(), 4, "want {:?} got {:?}", want, got);
        for (g, w) in got.iter().zip(want) {
            prop_assert!((g - w).abs() <= 1e-4 * w.abs().max(1.0), "got {g}, want {w}");
        }
    }

    #[test]
    fn ferrari_matches_durand_kerner(r1 in root_val(), r2 in root_val(),
                                     r3 in root_val(), r4 in root_val()) {
        use pipedepth_math::roots::{durand_kerner, solve_quartic};
        let mut want = [r1, r2, r3, r4];
        want.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assume!(want.windows(2).all(|w| (w[1] - w[0]).abs() > 1.0));
        let p = want.iter().fold(Polynomial::constant(1.0), |acc, &r| acc * Polynomial::linear_root(r));
        let c = p.coeffs();
        let ferrari = solve_quartic(c[4], c[3], c[2], c[1], c[0]);
        let mut dk: Vec<f64> = durand_kerner(&p)
            .into_iter()
            .filter(|z| z.is_approx_real(1e-7))
            .map(|z| z.re)
            .collect();
        dk.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert_eq!(ferrari.len(), 4, "want {:?}", want);
        for (f, w) in ferrari.iter().zip(want) {
            prop_assert!((f - w).abs() < 1e-4 * w.abs().max(1.0), "ferrari {f} vs true {w}");
        }
        let _ = dk;
    }

    #[test]
    fn maximize_finds_quadratic_peak(peak in -20.0f64..20.0, width in 0.1f64..5.0) {
        let f = |x: f64| -width * (x - peak) * (x - peak);
        let m = maximize(f, -30.0, 30.0, 128);
        prop_assert!((m.x - peak).abs() < 1e-5);
        prop_assert!(m.interior);
    }

    #[test]
    fn golden_section_never_leaves_interval(a in -10.0f64..0.0, span in 0.5f64..20.0) {
        let b = a + span;
        let (x, _) = golden_section_max(&|x: f64| (x * 0.7).sin(), a, b, 1e-9);
        prop_assert!(x >= a - 1e-9 && x <= b + 1e-9);
    }

    #[test]
    fn polyfit_interpolates_exact_polynomials(coeffs in prop::collection::vec(-5.0f64..5.0, 1..5)) {
        let deg = coeffs.len() - 1;
        let p = Polynomial::new(coeffs.clone());
        let xs: Vec<f64> = (0..(deg + 4)).map(|i| i as f64 * 0.7 - 1.0).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| p.eval(x)).collect();
        let fitted = fit_polynomial(&xs, &ys, deg).unwrap();
        for (f, c) in fitted.iter().zip(&coeffs) {
            prop_assert!((f - c).abs() <= 1e-5 * c.abs().max(1.0), "fit {f} vs {c}");
        }
    }

    #[test]
    fn power_law_fit_recovers(scale in 0.1f64..10.0, exp in 0.2f64..2.5) {
        let xs: Vec<f64> = (2..=25).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| scale * x.powf(exp)).collect();
        let fit = power_law_fit(&xs, &ys).unwrap();
        prop_assert!((fit.exponent - exp).abs() < 1e-6);
        prop_assert!((fit.scale - scale).abs() < 1e-5 * scale);
    }

    #[test]
    fn scale_fit_is_exact_for_scaled_model(s in -5.0f64..5.0,
                                           model in prop::collection::vec(0.1f64..10.0, 2..20)) {
        let ys: Vec<f64> = model.iter().map(|m| s * m).collect();
        let fit = scale_fit(&ys, &model).unwrap();
        prop_assert!((fit.scale - s).abs() <= 1e-9 * s.abs().max(1.0));
    }

    #[test]
    fn cubic_peak_fit_peak_inside_range(shift in 4.0f64..20.0) {
        let xs: Vec<f64> = (2..=25).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| -(x - shift) * (x - shift)).collect();
        let fit = cubic_peak_fit(&xs, &ys).unwrap();
        prop_assert!(fit.peak_x >= 2.0 && fit.peak_x <= 25.0);
        prop_assert!((fit.peak_x - shift).abs() < 0.5);
    }

    #[test]
    fn histogram_total_equals_insertions(xs in prop::collection::vec(-5.0f64..15.0, 0..100)) {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for &x in &xs {
            h.add(x);
        }
        prop_assert_eq!(h.total(), xs.len() as u64);
    }

    #[test]
    fn summary_bounds_mean_and_median(xs in prop::collection::vec(-1e3f64..1e3, 1..50)) {
        let s = Summary::of(&xs).unwrap();
        prop_assert!(s.min <= s.mean + 1e-9 && s.mean <= s.max + 1e-9);
        prop_assert!(s.min <= s.median && s.median <= s.max);
        prop_assert!(s.std_dev >= 0.0);
    }
}
