//! Linear least squares.
//!
//! Solves `min ‖A·x − y‖²` through the normal equations `AᵀA·x = Aᵀy`,
//! factored with Gaussian elimination and partial pivoting. The design
//! matrices in this workspace are tiny (≤ 5 columns), so the normal-equation
//! approach is both adequate and dependency-free.

use std::error::Error;
use std::fmt;

/// Error returned when a least-squares system cannot be solved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveError {
    /// The normal matrix is singular (collinear columns or too few points).
    Singular,
    /// Input slices disagree in length or are empty.
    BadInput(String),
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Singular => write!(f, "normal equations are singular"),
            SolveError::BadInput(msg) => write!(f, "bad least-squares input: {msg}"),
        }
    }
}

impl Error for SolveError {}

/// A dense row-major matrix just big enough for normal equations.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "row-major data length mismatch");
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Mutable element accessor.
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// Solves `self · x = b` in place via Gaussian elimination with partial
    /// pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::Singular`] when a pivot underflows, and
    /// [`SolveError::BadInput`] when the matrix is not square or `b` has the
    /// wrong length.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, SolveError> {
        if self.rows != self.cols {
            return Err(SolveError::BadInput(format!(
                "matrix is {}x{}, expected square",
                self.rows, self.cols
            )));
        }
        if b.len() != self.rows {
            return Err(SolveError::BadInput(format!(
                "rhs has length {}, expected {}",
                b.len(),
                self.rows
            )));
        }
        let n = self.rows;
        let mut a = self.data.clone();
        let mut x = b.to_vec();
        let scale: f64 = a.iter().fold(0.0f64, |m, &v| m.max(v.abs())).max(1.0);

        for col in 0..n {
            // Partial pivot.
            let mut pivot_row = col;
            let mut pivot_val = a[col * n + col].abs();
            for r in (col + 1)..n {
                let v = a[r * n + col].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val <= 1e-13 * scale {
                return Err(SolveError::Singular);
            }
            if pivot_row != col {
                for c in 0..n {
                    a.swap(col * n + c, pivot_row * n + c);
                }
                x.swap(col, pivot_row);
            }
            let pivot = a[col * n + col];
            for r in (col + 1)..n {
                let factor = a[r * n + col] / pivot;
                if factor == 0.0 {
                    continue;
                }
                for c in col..n {
                    a[r * n + c] -= factor * a[col * n + c];
                }
                x[r] -= factor * x[col];
            }
        }
        // Back substitution.
        for col in (0..n).rev() {
            let mut acc = x[col];
            for c in (col + 1)..n {
                acc -= a[col * n + c] * x[c];
            }
            x[col] = acc / a[col * n + col];
        }
        Ok(x)
    }
}

/// Solves the linear least-squares problem for a design matrix given as a
/// basis-function expansion: row `i` of the design matrix is
/// `[basis[0](x[i]), …, basis[k-1](x[i])]`.
///
/// Returns the coefficient vector minimising `Σ_i (y_i − Σ_j c_j·φ_j(x_i))²`.
///
/// # Errors
///
/// Returns an error when inputs are empty/mismatched, when there are fewer
/// points than coefficients, or when the normal equations are singular.
pub fn fit_basis(
    xs: &[f64],
    ys: &[f64],
    basis: &[&dyn Fn(f64) -> f64],
) -> Result<Vec<f64>, SolveError> {
    if xs.len() != ys.len() {
        return Err(SolveError::BadInput(format!(
            "x and y have different lengths ({} vs {})",
            xs.len(),
            ys.len()
        )));
    }
    let k = basis.len();
    if k == 0 {
        return Err(SolveError::BadInput("empty basis".into()));
    }
    if xs.len() < k {
        return Err(SolveError::BadInput(format!(
            "{} points cannot determine {} coefficients",
            xs.len(),
            k
        )));
    }
    // Normal equations: N = AᵀA (k×k), r = Aᵀy (k).
    let mut normal = Matrix::zeros(k, k);
    let mut rhs = vec![0.0; k];
    for (&x, &y) in xs.iter().zip(ys) {
        let phi: Vec<f64> = basis.iter().map(|f| f(x)).collect();
        for i in 0..k {
            rhs[i] += phi[i] * y;
            for j in 0..k {
                let v = normal.get(i, j) + phi[i] * phi[j];
                normal.set(i, j, v);
            }
        }
    }
    normal.solve(&rhs)
}

/// Fits a polynomial of the given `degree` in the least-squares sense.
///
/// Returns coefficients in ascending order (constant first).
///
/// # Errors
///
/// Same failure modes as [`fit_basis`].
///
/// # Examples
///
/// ```
/// use pipedepth_math::lsq::fit_polynomial;
/// let xs = [0.0, 1.0, 2.0, 3.0];
/// let ys = [1.0, 3.0, 5.0, 7.0];
/// let c = fit_polynomial(&xs, &ys, 1)?;
/// assert!((c[0] - 1.0).abs() < 1e-9 && (c[1] - 2.0).abs() < 1e-9);
/// # Ok::<(), pipedepth_math::lsq::SolveError>(())
/// ```
pub fn fit_polynomial(xs: &[f64], ys: &[f64], degree: usize) -> Result<Vec<f64>, SolveError> {
    let basis: Vec<Box<dyn Fn(f64) -> f64>> = (0..=degree)
        .map(|k| {
            let k = k as i32;
            Box::new(move |x: f64| x.powi(k)) as Box<dyn Fn(f64) -> f64>
        })
        .collect();
    let refs: Vec<&dyn Fn(f64) -> f64> = basis.iter().map(|b| b.as_ref()).collect();
    fit_basis(xs, ys, &refs)
}

/// Coefficient of determination R² of predictions against observations.
///
/// Returns 1.0 for a perfect fit and can be negative for fits worse than the
/// mean. Returns `f64::NAN` when `ys` has no variance.
pub fn r_squared(ys: &[f64], predictions: &[f64]) -> f64 {
    assert_eq!(ys.len(), predictions.len(), "length mismatch");
    let n = ys.len() as f64;
    let mean = ys.iter().sum::<f64>() / n;
    let ss_tot: f64 = ys.iter().map(|y| (y - mean).powi(2)).sum();
    let ss_res: f64 = ys
        .iter()
        .zip(predictions)
        .map(|(y, p)| (y - p).powi(2))
        .sum();
    if ss_tot == 0.0 {
        f64::NAN
    } else {
        1.0 - ss_res / ss_tot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_identity() {
        let mut m = Matrix::zeros(3, 3);
        for i in 0..3 {
            m.set(i, i, 1.0);
        }
        let x = m.solve(&[4.0, 5.0, 6.0]).unwrap();
        assert_eq!(x, vec![4.0, 5.0, 6.0]);
    }

    #[test]
    fn solve_requires_pivoting() {
        // First pivot is zero; must swap rows.
        let m = Matrix::from_rows(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        let x = m.solve(&[3.0, 7.0]).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-12 && (x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solve_general_3x3() {
        let m = Matrix::from_rows(3, 3, vec![2.0, 1.0, -1.0, -3.0, -1.0, 2.0, -2.0, 1.0, 2.0]);
        let x = m.solve(&[8.0, -11.0, -3.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-10);
        assert!((x[1] - 3.0).abs() < 1e-10);
        assert!((x[2] + 1.0).abs() < 1e-10);
    }

    #[test]
    fn singular_detected() {
        let m = Matrix::from_rows(2, 2, vec![1.0, 2.0, 2.0, 4.0]);
        assert_eq!(m.solve(&[1.0, 2.0]), Err(SolveError::Singular));
    }

    #[test]
    fn non_square_rejected() {
        let m = Matrix::zeros(2, 3);
        assert!(matches!(m.solve(&[1.0, 2.0]), Err(SolveError::BadInput(_))));
    }

    #[test]
    fn polynomial_fit_exact_cubic() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|&x| 2.0 - x + 0.5 * x * x - 0.01 * x * x * x)
            .collect();
        let c = fit_polynomial(&xs, &ys, 3).unwrap();
        assert!((c[0] - 2.0).abs() < 1e-8);
        assert!((c[1] + 1.0).abs() < 1e-8);
        assert!((c[2] - 0.5).abs() < 1e-9);
        assert!((c[3] + 0.01).abs() < 1e-10);
    }

    #[test]
    fn polynomial_fit_overdetermined_noise_free() {
        let xs: Vec<f64> = (2..=25).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 1.0 + 3.0 * x).collect();
        let c = fit_polynomial(&xs, &ys, 1).unwrap();
        assert!((c[0] - 1.0).abs() < 1e-9 && (c[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn underdetermined_rejected() {
        let r = fit_polynomial(&[1.0, 2.0], &[1.0, 2.0], 3);
        assert!(matches!(r, Err(SolveError::BadInput(_))));
    }

    #[test]
    fn length_mismatch_rejected() {
        let r = fit_polynomial(&[1.0, 2.0, 3.0], &[1.0, 2.0], 1);
        assert!(matches!(r, Err(SolveError::BadInput(_))));
    }

    #[test]
    fn r_squared_perfect_and_mean() {
        let ys = [1.0, 2.0, 3.0];
        assert!((r_squared(&ys, &ys) - 1.0).abs() < 1e-15);
        let mean_pred = [2.0, 2.0, 2.0];
        assert!(r_squared(&ys, &mean_pred).abs() < 1e-15);
    }

    #[test]
    fn fit_basis_mixed_functions() {
        // y = 2·sin(x) + 3·x
        let xs: Vec<f64> = (0..50).map(|i| i as f64 * 0.1).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 2.0 * x.sin() + 3.0 * x).collect();
        let sin_f = |x: f64| x.sin();
        let lin_f = |x: f64| x;
        let c = fit_basis(&xs, &ys, &[&sin_f, &lin_f]).unwrap();
        assert!((c[0] - 2.0).abs() < 1e-8);
        assert!((c[1] - 3.0).abs() < 1e-8);
    }
}
