//! Numerical substrate for the `pipedepth` workspace.
//!
//! This crate provides, from scratch and with no external dependencies, the
//! numerical machinery the reproduction of Hartstein & Puzak (MICRO-36, 2003)
//! needs:
//!
//! * [`poly`] — dense univariate polynomials with arithmetic and calculus;
//! * [`complex`] — a minimal complex-number type used by the root finders;
//! * [`roots`] — closed-form quadratic/cubic/quartic solvers, the
//!   Durand–Kerner simultaneous iteration for general degree, and Newton /
//!   bisection polishing;
//! * [`optimize`] — one-dimensional maximisation (golden-section search with
//!   grid bracketing);
//! * [`lsq`] — linear least squares via normal equations and Gaussian
//!   elimination with partial pivoting;
//! * [`fit`] — the specific fits used by the paper: cubic least-squares fit
//!   with peak extraction (Figs. 6/7), power-law fit (Fig. 3), and
//!   scale-only fit of a theory curve to data (Figs. 4/5);
//! * [`stats`] — summary statistics;
//! * [`histogram`] — fixed-bin histograms with ASCII rendering (Figs. 6/7).
//!
//! # Examples
//!
//! Find the peak of a noisy cubic the way the paper extracts optimum pipeline
//! depths from simulation data:
//!
//! ```
//! use pipedepth_math::fit::cubic_peak_fit;
//!
//! let xs: Vec<f64> = (2..=25).map(|p| p as f64).collect();
//! // A concave-ish response peaking near x = 8.
//! let ys: Vec<f64> = xs.iter().map(|&x| -0.002 * (x - 8.0).powi(2) + 1.0).collect();
//! let fit = cubic_peak_fit(&xs, &ys).expect("well-conditioned fit");
//! assert!((fit.peak_x - 8.0).abs() < 0.5);
//! ```

pub mod complex;
pub mod fit;
pub mod histogram;
pub mod lsq;
pub mod optimize;
pub mod poly;
pub mod roots;
pub mod stats;

pub use complex::Complex;
pub use poly::Polynomial;

/// Default absolute tolerance used by iterative routines in this crate.
pub const EPS: f64 = 1e-12;

/// Returns `true` when two floats agree to within `tol` absolutely or
/// relatively (whichever is looser), the comparison used throughout the
/// workspace's numerical tests.
///
/// # Examples
///
/// ```
/// assert!(pipedepth_math::approx_eq(1.0, 1.0 + 1e-13, 1e-9));
/// assert!(!pipedepth_math::approx_eq(1.0, 1.1, 1e-9));
/// ```
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    let diff = (a - b).abs();
    diff <= tol || diff <= tol * a.abs().max(b.abs())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_absolute() {
        assert!(approx_eq(0.0, 1e-15, 1e-12));
        assert!(!approx_eq(0.0, 1e-3, 1e-12));
    }

    #[test]
    fn approx_eq_relative() {
        assert!(approx_eq(1e12, 1e12 + 1.0, 1e-9));
        assert!(!approx_eq(1e12, 1.1e12, 1e-9));
    }

    #[test]
    fn approx_eq_symmetric() {
        assert_eq!(approx_eq(3.0, 3.1, 0.05), approx_eq(3.1, 3.0, 0.05));
    }
}
