//! The specific curve fits the paper performs on simulation data.
//!
//! * [`cubic_peak_fit`] — the "blind least squares fit to a cubic function"
//!   whose maximum the paper takes as the observed optimum pipeline depth
//!   (Section 4, Figs. 6/7).
//! * [`power_law_fit`] — the `N(p) = c·p^β` fit of Fig. 3 (latch growth).
//! * [`scale_fit`] — fitting a theory curve to data with the overall scale
//!   factor as the only adjustable parameter (Figs. 4a–c, 5).

use crate::lsq::{self, SolveError};
use crate::roots::solve_quadratic;
use crate::Polynomial;

/// Result of a cubic least-squares fit with peak extraction.
#[derive(Debug, Clone, PartialEq)]
pub struct CubicPeak {
    /// The fitted cubic polynomial (ascending coefficients).
    pub poly: Polynomial,
    /// Location of the interior maximum of the cubic within the data range
    /// (clamped to the range if the analytic peak falls outside it).
    pub peak_x: f64,
    /// Fitted value at [`CubicPeak::peak_x`].
    pub peak_y: f64,
    /// Whether the analytic maximum fell inside the data range.
    pub interior: bool,
    /// Coefficient of determination of the fit.
    pub r_squared: f64,
}

/// Fits `y ≈ c₀ + c₁x + c₂x² + c₃x³` and extracts the curve's maximum over
/// the data range, exactly as the paper does to find the optimum pipeline
/// depth for each workload.
///
/// The candidate peaks are the roots of the derivative plus the two range
/// endpoints; the argmax among them is reported. `interior` is `false` when
/// an endpoint wins, which corresponds to the paper's "optimum at a single
/// stage" (or "deeper than simulated") outcomes.
///
/// # Errors
///
/// Propagates [`SolveError`] from the underlying least-squares solve (fewer
/// than 4 points, mismatched lengths, collinear data).
pub fn cubic_peak_fit(xs: &[f64], ys: &[f64]) -> Result<CubicPeak, SolveError> {
    let coeffs = lsq::fit_polynomial(xs, ys, 3)?;
    let poly = Polynomial::new(coeffs);
    let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);

    let deriv = poly.derivative();
    let mut candidates = vec![lo, hi];
    for r in solve_quadratic(deriv.coeff(2), deriv.coeff(1), deriv.coeff(0)) {
        if r > lo && r < hi {
            candidates.push(r);
        }
    }
    let (peak_x, peak_y) = candidates
        .iter()
        .map(|&x| (x, poly.eval(x)))
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite fit values"))
        .expect("candidates is never empty");
    let interior = peak_x > lo && peak_x < hi;

    let preds: Vec<f64> = xs.iter().map(|&x| poly.eval(x)).collect();
    let r2 = lsq::r_squared(ys, &preds);
    Ok(CubicPeak {
        poly,
        peak_x,
        peak_y,
        interior,
        r_squared: r2,
    })
}

/// Result of a power-law fit `y ≈ c·x^β`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerLaw {
    /// Multiplicative constant `c`.
    pub scale: f64,
    /// Exponent `β`.
    pub exponent: f64,
    /// R² of the fit in log space.
    pub r_squared: f64,
}

impl PowerLaw {
    /// Evaluates the fitted law at `x`.
    pub fn eval(&self, x: f64) -> f64 {
        self.scale * x.powf(self.exponent)
    }
}

/// Fits `y ≈ c·x^β` by linear least squares in log-log space, the fit used
/// for the paper's Fig. 3 (latch count vs. pipeline depth).
///
/// # Errors
///
/// Returns [`SolveError::BadInput`] when any `x` or `y` is non-positive (the
/// logarithm would be undefined) or fewer than two points are supplied.
pub fn power_law_fit(xs: &[f64], ys: &[f64]) -> Result<PowerLaw, SolveError> {
    if xs.len() != ys.len() {
        return Err(SolveError::BadInput(format!(
            "x and y have different lengths ({} vs {})",
            xs.len(),
            ys.len()
        )));
    }
    if xs.len() < 2 {
        return Err(SolveError::BadInput(
            "need at least two points for a power-law fit".into(),
        ));
    }
    if xs.iter().chain(ys).any(|&v| v <= 0.0) {
        return Err(SolveError::BadInput(
            "power-law fit requires strictly positive data".into(),
        ));
    }
    let lx: Vec<f64> = xs.iter().map(|x| x.ln()).collect();
    let ly: Vec<f64> = ys.iter().map(|y| y.ln()).collect();
    let c = lsq::fit_polynomial(&lx, &ly, 1)?;
    let preds: Vec<f64> = lx.iter().map(|&x| c[0] + c[1] * x).collect();
    Ok(PowerLaw {
        scale: c[0].exp(),
        exponent: c[1],
        r_squared: lsq::r_squared(&ly, &preds),
    })
}

/// Result of a scale-only fit `y ≈ s·model(x)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleFit {
    /// The fitted scale factor `s`.
    pub scale: f64,
    /// R² of the scaled model against the data.
    pub r_squared: f64,
}

/// Fits the single multiplicative constant `s` minimising
/// `Σ (y_i − s·m_i)²`, where `m_i` are model predictions — exactly how the
/// paper overlays its theory curves on simulation data ("the only adjustable
/// parameter being the overall scale factor", Figs. 4a–c).
///
/// The closed form is `s = Σ y·m / Σ m²`.
///
/// # Errors
///
/// Returns [`SolveError::BadInput`] on length mismatch or all-zero model.
pub fn scale_fit(ys: &[f64], model: &[f64]) -> Result<ScaleFit, SolveError> {
    if ys.len() != model.len() {
        return Err(SolveError::BadInput(format!(
            "data and model have different lengths ({} vs {})",
            ys.len(),
            model.len()
        )));
    }
    let denom: f64 = model.iter().map(|m| m * m).sum();
    if denom == 0.0 {
        return Err(SolveError::BadInput("model is identically zero".into()));
    }
    let num: f64 = ys.iter().zip(model).map(|(y, m)| y * m).sum();
    let s = num / denom;
    let preds: Vec<f64> = model.iter().map(|m| s * m).collect();
    Ok(ScaleFit {
        scale: s,
        r_squared: lsq::r_squared(ys, &preds),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cubic_peak_on_exact_cubic() {
        // -(x-8)² ≈ has max at 8; embed in a cubic with tiny x³ term.
        let xs: Vec<f64> = (2..=25).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|&x| 10.0 - 0.05 * (x - 8.0).powi(2) + 1e-4 * (x - 8.0).powi(3))
            .collect();
        let fit = cubic_peak_fit(&xs, &ys).unwrap();
        assert!(fit.interior);
        assert!((fit.peak_x - 8.0).abs() < 0.2, "peak at {}", fit.peak_x);
        assert!(fit.r_squared > 0.999);
    }

    #[test]
    fn cubic_peak_monotone_data_hits_boundary() {
        let xs: Vec<f64> = (1..=20).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| x.sqrt()).collect();
        let fit = cubic_peak_fit(&xs, &ys).unwrap();
        assert!(!fit.interior);
        assert!((fit.peak_x - 20.0).abs() < 1e-9);
    }

    #[test]
    fn cubic_peak_decreasing_data_picks_low_boundary() {
        let xs: Vec<f64> = (1..=20).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 1.0 / x).collect();
        let fit = cubic_peak_fit(&xs, &ys).unwrap();
        // 1/x is convex decreasing; cubic fit may put its max at either the
        // low end or nowhere interior — it must not claim an interior peak
        // far from the low boundary.
        assert!(fit.peak_x < 3.0);
    }

    #[test]
    fn cubic_peak_needs_four_points() {
        let r = cubic_peak_fit(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0]);
        assert!(r.is_err());
    }

    #[test]
    fn power_law_recovers_exponent() {
        let xs: Vec<f64> = (2..=25).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 3.5 * x.powf(1.1)).collect();
        let fit = power_law_fit(&xs, &ys).unwrap();
        assert!((fit.exponent - 1.1).abs() < 1e-9);
        assert!((fit.scale - 3.5).abs() < 1e-8);
        assert!(fit.r_squared > 0.999_999);
    }

    #[test]
    fn power_law_eval_roundtrip() {
        let fit = PowerLaw {
            scale: 2.0,
            exponent: 1.3,
            r_squared: 1.0,
        };
        assert!((fit.eval(4.0) - 2.0 * 4f64.powf(1.3)).abs() < 1e-12);
    }

    #[test]
    fn power_law_rejects_nonpositive() {
        assert!(power_law_fit(&[1.0, 0.0], &[1.0, 1.0]).is_err());
        assert!(power_law_fit(&[1.0, 2.0], &[1.0, -1.0]).is_err());
    }

    #[test]
    fn scale_fit_exact() {
        let model = [1.0, 2.0, 3.0, 4.0];
        let ys: Vec<f64> = model.iter().map(|m| 2.5 * m).collect();
        let fit = scale_fit(&ys, &model).unwrap();
        assert!((fit.scale - 2.5).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn scale_fit_zero_model_rejected() {
        assert!(scale_fit(&[1.0, 2.0], &[0.0, 0.0]).is_err());
    }

    #[test]
    fn scale_fit_noisy_data_near_true_scale() {
        let model: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        // "Noise" alternates ±1%, leaving the scale essentially unbiased.
        let ys: Vec<f64> = model
            .iter()
            .enumerate()
            .map(|(i, m)| 3.0 * m * if i % 2 == 0 { 1.01 } else { 0.99 })
            .collect();
        let fit = scale_fit(&ys, &model).unwrap();
        assert!((fit.scale - 3.0).abs() < 0.02);
    }
}
