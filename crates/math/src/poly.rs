//! Dense univariate polynomials over `f64`.
//!
//! Coefficients are stored in ascending order of power: `coeffs[k]` multiplies
//! `x^k`. The representation is kept *trimmed* — the leading coefficient is
//! non-zero unless the polynomial is identically zero (represented by an
//! empty coefficient vector).

use crate::Complex;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// A dense univariate polynomial with `f64` coefficients in ascending order.
///
/// # Examples
///
/// ```
/// use pipedepth_math::Polynomial;
///
/// // 3x² - 2x + 1
/// let p = Polynomial::new(vec![1.0, -2.0, 3.0]);
/// assert_eq!(p.degree(), Some(2));
/// assert_eq!(p.eval(2.0), 9.0);
/// assert_eq!(p.derivative().eval(2.0), 10.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Polynomial {
    coeffs: Vec<f64>,
}

impl Polynomial {
    /// Creates a polynomial from coefficients in ascending order of power,
    /// trimming trailing (leading-power) zeros.
    pub fn new(coeffs: Vec<f64>) -> Self {
        let mut p = Self { coeffs };
        p.trim();
        p
    }

    /// The zero polynomial.
    pub fn zero() -> Self {
        Self { coeffs: Vec::new() }
    }

    /// The constant polynomial `c`.
    ///
    /// # Examples
    ///
    /// ```
    /// use pipedepth_math::Polynomial;
    /// assert_eq!(Polynomial::constant(4.0).eval(100.0), 4.0);
    /// ```
    pub fn constant(c: f64) -> Self {
        Self::new(vec![c])
    }

    /// The monomial `c·x^k`.
    pub fn monomial(c: f64, k: usize) -> Self {
        let mut coeffs = vec![0.0; k + 1];
        coeffs[k] = c;
        Self::new(coeffs)
    }

    /// The polynomial `x + c`, a convenience for building factored forms.
    ///
    /// # Examples
    ///
    /// ```
    /// use pipedepth_math::Polynomial;
    /// // (x - 1)(x - 2) = x² - 3x + 2
    /// let p = Polynomial::linear_root(1.0) * Polynomial::linear_root(2.0);
    /// assert_eq!(p.coeffs(), &[2.0, -3.0, 1.0]);
    /// ```
    pub fn linear_root(root: f64) -> Self {
        Self::new(vec![-root, 1.0])
    }

    fn trim(&mut self) {
        while matches!(self.coeffs.last(), Some(&c) if c == 0.0) {
            self.coeffs.pop();
        }
    }

    /// Coefficients in ascending order; empty for the zero polynomial.
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// Degree, or `None` for the zero polynomial.
    pub fn degree(&self) -> Option<usize> {
        self.coeffs.len().checked_sub(1)
    }

    /// Returns `true` if this is the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Leading coefficient, or 0 for the zero polynomial.
    pub fn leading(&self) -> f64 {
        self.coeffs.last().copied().unwrap_or(0.0)
    }

    /// Coefficient of `x^k` (0 beyond the degree).
    pub fn coeff(&self, k: usize) -> f64 {
        self.coeffs.get(k).copied().unwrap_or(0.0)
    }

    /// Evaluates the polynomial at `x` with Horner's rule.
    pub fn eval(&self, x: f64) -> f64 {
        self.coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c)
    }

    /// Evaluates the polynomial at a complex argument.
    pub fn eval_complex(&self, z: Complex) -> Complex {
        self.coeffs
            .iter()
            .rev()
            .fold(Complex::zero(), |acc, &c| acc * z + Complex::real(c))
    }

    /// First derivative.
    pub fn derivative(&self) -> Polynomial {
        if self.coeffs.len() <= 1 {
            return Polynomial::zero();
        }
        let coeffs = self
            .coeffs
            .iter()
            .enumerate()
            .skip(1)
            .map(|(k, &c)| c * k as f64)
            .collect();
        Polynomial::new(coeffs)
    }

    /// Multiplies every coefficient by `s`.
    pub fn scale(&self, s: f64) -> Polynomial {
        Polynomial::new(self.coeffs.iter().map(|&c| c * s).collect())
    }

    /// Normalises so the leading coefficient is 1.
    ///
    /// # Panics
    ///
    /// Panics if the polynomial is zero.
    pub fn monic(&self) -> Polynomial {
        assert!(!self.is_zero(), "cannot normalise the zero polynomial");
        self.scale(1.0 / self.leading())
    }

    /// Synthetic division by the linear factor `(x - root)`.
    ///
    /// Returns the quotient and the remainder (which is `self.eval(root)`).
    ///
    /// # Examples
    ///
    /// ```
    /// use pipedepth_math::Polynomial;
    /// // x² - 3x + 2 = (x - 1)(x - 2)
    /// let p = Polynomial::new(vec![2.0, -3.0, 1.0]);
    /// let (q, r) = p.deflate(1.0);
    /// assert_eq!(q.coeffs(), &[-2.0, 1.0]);
    /// assert!(r.abs() < 1e-12);
    /// ```
    pub fn deflate(&self, root: f64) -> (Polynomial, f64) {
        if self.coeffs.is_empty() {
            return (Polynomial::zero(), 0.0);
        }
        let n = self.coeffs.len();
        let mut q = vec![0.0; n - 1];
        let mut acc = 0.0;
        for k in (0..n).rev() {
            acc = acc * root + self.coeffs[k];
            if k > 0 {
                q[k - 1] = acc;
            }
        }
        (Polynomial::new(q), acc)
    }
}

impl fmt::Display for Polynomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut first = true;
        for (k, &c) in self.coeffs.iter().enumerate().rev() {
            if c == 0.0 {
                continue;
            }
            if first {
                first = false;
                if c < 0.0 {
                    write!(f, "-")?;
                }
            } else if c < 0.0 {
                write!(f, " - ")?;
            } else {
                write!(f, " + ")?;
            }
            let a = c.abs();
            match k {
                0 => write!(f, "{a}")?,
                1 => {
                    if a != 1.0 {
                        write!(f, "{a}")?;
                    }
                    write!(f, "x")?;
                }
                _ => {
                    if a != 1.0 {
                        write!(f, "{a}")?;
                    }
                    write!(f, "x^{k}")?;
                }
            }
        }
        Ok(())
    }
}

impl Add for &Polynomial {
    type Output = Polynomial;
    fn add(self, rhs: &Polynomial) -> Polynomial {
        let n = self.coeffs.len().max(rhs.coeffs.len());
        let coeffs = (0..n).map(|k| self.coeff(k) + rhs.coeff(k)).collect();
        Polynomial::new(coeffs)
    }
}

impl Add for Polynomial {
    type Output = Polynomial;
    fn add(self, rhs: Polynomial) -> Polynomial {
        &self + &rhs
    }
}

impl Sub for &Polynomial {
    type Output = Polynomial;
    fn sub(self, rhs: &Polynomial) -> Polynomial {
        let n = self.coeffs.len().max(rhs.coeffs.len());
        let coeffs = (0..n).map(|k| self.coeff(k) - rhs.coeff(k)).collect();
        Polynomial::new(coeffs)
    }
}

impl Sub for Polynomial {
    type Output = Polynomial;
    fn sub(self, rhs: Polynomial) -> Polynomial {
        &self - &rhs
    }
}

impl Mul for &Polynomial {
    type Output = Polynomial;
    fn mul(self, rhs: &Polynomial) -> Polynomial {
        if self.is_zero() || rhs.is_zero() {
            return Polynomial::zero();
        }
        let mut coeffs = vec![0.0; self.coeffs.len() + rhs.coeffs.len() - 1];
        for (i, &a) in self.coeffs.iter().enumerate() {
            for (j, &b) in rhs.coeffs.iter().enumerate() {
                coeffs[i + j] += a * b;
            }
        }
        Polynomial::new(coeffs)
    }
}

impl Mul for Polynomial {
    type Output = Polynomial;
    fn mul(self, rhs: Polynomial) -> Polynomial {
        &self * &rhs
    }
}

impl Neg for Polynomial {
    type Output = Polynomial;
    fn neg(self) -> Polynomial {
        self.scale(-1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trims_leading_zeros() {
        let p = Polynomial::new(vec![1.0, 2.0, 0.0, 0.0]);
        assert_eq!(p.degree(), Some(1));
        assert_eq!(p.coeffs(), &[1.0, 2.0]);
    }

    #[test]
    fn zero_polynomial_properties() {
        let z = Polynomial::zero();
        assert!(z.is_zero());
        assert_eq!(z.degree(), None);
        assert_eq!(z.eval(5.0), 0.0);
        assert_eq!(z.leading(), 0.0);
        assert!(z.derivative().is_zero());
    }

    #[test]
    fn eval_matches_naive() {
        let p = Polynomial::new(vec![1.0, -4.0, 0.5, 2.0]);
        for x in [-3.0, -1.0, 0.0, 0.5, 2.0, 10.0] {
            let naive = 1.0 - 4.0 * x + 0.5 * x * x + 2.0 * x * x * x;
            assert!((p.eval(x) - naive).abs() < 1e-10);
        }
    }

    #[test]
    fn derivative_of_cubic() {
        // d/dx (2x³ + 0.5x² - 4x + 1) = 6x² + x - 4
        let p = Polynomial::new(vec![1.0, -4.0, 0.5, 2.0]);
        assert_eq!(p.derivative().coeffs(), &[-4.0, 1.0, 6.0]);
    }

    #[test]
    fn multiplication_expands_factors() {
        let p = Polynomial::linear_root(1.0) * Polynomial::linear_root(-2.0);
        // (x-1)(x+2) = x² + x - 2
        assert_eq!(p.coeffs(), &[-2.0, 1.0, 1.0]);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Polynomial::new(vec![1.0, 2.0, 3.0]);
        let b = Polynomial::new(vec![-1.0, 5.0]);
        let s = &a + &b;
        assert_eq!((&s - &b), a);
    }

    #[test]
    fn deflate_removes_root() {
        let p = Polynomial::linear_root(3.0)
            * Polynomial::linear_root(-1.0)
            * Polynomial::linear_root(0.5);
        let (q, r) = p.deflate(3.0);
        assert!(r.abs() < 1e-12);
        assert!(q.eval(-1.0).abs() < 1e-12);
        assert!(q.eval(0.5).abs() < 1e-12);
        assert_eq!(q.degree(), Some(2));
    }

    #[test]
    fn deflate_reports_remainder() {
        let p = Polynomial::new(vec![2.0, -3.0, 1.0]);
        let (_, r) = p.deflate(5.0);
        assert!((r - p.eval(5.0)).abs() < 1e-12);
    }

    #[test]
    fn eval_complex_consistent_with_real() {
        let p = Polynomial::new(vec![1.0, -4.0, 0.5, 2.0]);
        let z = p.eval_complex(Complex::real(1.7));
        assert!((z.re - p.eval(1.7)).abs() < 1e-12);
        assert!(z.im.abs() < 1e-12);
    }

    #[test]
    fn monic_normalises() {
        let p = Polynomial::new(vec![2.0, 4.0]).monic();
        assert_eq!(p.coeffs(), &[0.5, 1.0]);
    }

    #[test]
    #[should_panic(expected = "zero polynomial")]
    fn monic_panics_on_zero() {
        let _ = Polynomial::zero().monic();
    }

    #[test]
    fn display_renders_signs_and_powers() {
        let p = Polynomial::new(vec![2.0, 0.0, -3.0, 1.0]);
        assert_eq!(p.to_string(), "x^3 - 3x^2 + 2");
    }

    #[test]
    fn display_zero() {
        assert_eq!(Polynomial::zero().to_string(), "0");
    }

    #[test]
    fn monomial_places_coefficient() {
        let m = Polynomial::monomial(2.5, 3);
        assert_eq!(m.coeffs(), &[0.0, 0.0, 0.0, 2.5]);
    }
}
