//! One-dimensional optimisation.
//!
//! The metric curves of the paper (BIPS^m/W as a function of pipeline depth)
//! are smooth and either unimodal on the physical range or monotone; we
//! locate maxima with a coarse grid scan to bracket the best point followed
//! by golden-section refinement.

/// Result of a 1-D maximisation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Maximum {
    /// Argument of the maximum.
    pub x: f64,
    /// Value of the objective at [`Maximum::x`].
    pub value: f64,
    /// Whether the maximum is interior to the search interval (as opposed to
    /// sitting on one of the endpoints, which the paper interprets as "no
    /// pipelined optimum": the best design is the boundary).
    pub interior: bool,
}

const GOLDEN: f64 = 0.618_033_988_749_894_9;

/// Maximises `f` over `[lo, hi]` by grid bracketing plus golden-section.
///
/// `grid` is the number of initial samples (≥ 3 recommended; the function is
/// evaluated `grid + 1` times in the scan). The reported maximum is flagged
/// `interior = false` when it lies within one grid cell of an endpoint and
/// the endpoint value dominates.
///
/// # Panics
///
/// Panics if `hi <= lo` or `grid < 2`.
///
/// # Examples
///
/// ```
/// use pipedepth_math::optimize::maximize;
/// let m = maximize(|x| -(x - 3.0) * (x - 3.0), 0.0, 10.0, 100);
/// assert!((m.x - 3.0).abs() < 1e-8);
/// assert!(m.interior);
/// ```
pub fn maximize<F: Fn(f64) -> f64>(f: F, lo: f64, hi: f64, grid: usize) -> Maximum {
    assert!(hi > lo, "interval must be non-empty");
    assert!(grid >= 2, "grid must have at least 2 cells");
    let step = (hi - lo) / grid as f64;
    let mut best_i = 0usize;
    let mut best_v = f64::NEG_INFINITY;
    for i in 0..=grid {
        let x = lo + step * i as f64;
        let v = f(x);
        if v > best_v {
            best_v = v;
            best_i = i;
        }
    }
    // Bracket around the best grid point.
    let a = lo + step * best_i.saturating_sub(1) as f64;
    let b = (lo + step * (best_i + 1) as f64).min(hi);
    let refined = golden_section_max(&f, a, b, 1e-10);
    // Compare against the endpoints to classify interior vs boundary optimum.
    let at_lo = f(lo);
    let at_hi = f(hi);
    let (x, value) = if refined.1 >= at_lo && refined.1 >= at_hi {
        refined
    } else if at_lo >= at_hi {
        (lo, at_lo)
    } else {
        (hi, at_hi)
    };
    let margin = (hi - lo) * 1e-6;
    Maximum {
        x,
        value,
        interior: x > lo + margin && x < hi - margin,
    }
}

/// Golden-section search for the maximum of a unimodal function on `[a, b]`.
///
/// Returns `(x, f(x))`.
pub fn golden_section_max<F: Fn(f64) -> f64>(f: &F, a: f64, b: f64, tol: f64) -> (f64, f64) {
    let (mut a, mut b) = (a, b);
    let mut c = b - GOLDEN * (b - a);
    let mut d = a + GOLDEN * (b - a);
    let mut fc = f(c);
    let mut fd = f(d);
    while (b - a).abs() > tol * (a.abs().max(b.abs()).max(1.0)) {
        if fc > fd {
            b = d;
            d = c;
            fd = fc;
            c = b - GOLDEN * (b - a);
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + GOLDEN * (b - a);
            fd = f(d);
        }
    }
    let x = 0.5 * (a + b);
    (x, f(x))
}

/// Maximises `f` over the integer lattice `lo..=hi`.
///
/// Returns `(argmax, max)`. Ties resolve to the smallest argument, matching
/// the paper's preference for the shallowest equally-good pipeline.
///
/// # Panics
///
/// Panics if `hi < lo`.
pub fn maximize_integer<F: Fn(u32) -> f64>(f: F, lo: u32, hi: u32) -> (u32, f64) {
    assert!(hi >= lo, "interval must be non-empty");
    let mut best = (lo, f(lo));
    for x in (lo + 1)..=hi {
        let v = f(x);
        if v > best.1 {
            best = (x, v);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_parabola_peak() {
        let m = maximize(|x| 5.0 - (x - 7.25) * (x - 7.25), 1.0, 25.0, 64);
        assert!((m.x - 7.25).abs() < 1e-7);
        assert!((m.value - 5.0).abs() < 1e-10);
        assert!(m.interior);
    }

    #[test]
    fn monotone_increasing_reports_boundary() {
        let m = maximize(|x| x, 0.0, 4.0, 16);
        assert!((m.x - 4.0).abs() < 1e-9);
        assert!(!m.interior);
    }

    #[test]
    fn monotone_decreasing_reports_boundary() {
        let m = maximize(|x| -x, 0.0, 4.0, 16);
        assert_eq!(m.x, 0.0);
        assert!(!m.interior);
    }

    #[test]
    fn golden_section_on_cosine() {
        let (x, v) = golden_section_max(&|x: f64| x.cos(), -1.0, 1.0, 1e-12);
        assert!(x.abs() < 1e-6);
        assert!((v - 1.0).abs() < 1e-10);
    }

    #[test]
    fn integer_maximum_prefers_smallest_tie() {
        // f(3) == f(5); ties resolve to 3.
        let (x, _) = maximize_integer(|p| if p == 3 || p == 5 { 1.0 } else { 0.0 }, 1, 10);
        assert_eq!(x, 3);
    }

    #[test]
    fn integer_maximum_of_metric_like_curve() {
        let f = |p: u32| {
            let p = p as f64;
            (1.0 / p + 0.05 * p).recip()
        };
        let (x, _) = maximize_integer(f, 1, 30);
        // Minimum of 1/p + 0.05p at p = sqrt(20) ≈ 4.47 → integer 4 or 5.
        assert!(x == 4 || x == 5);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_interval_panics() {
        let _ = maximize(|x| x, 1.0, 1.0, 8);
    }
}
