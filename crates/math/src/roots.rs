//! Polynomial root finding.
//!
//! The paper's optimality condition (its Eq. 5) is a quartic; the
//! approximation it derives (Eq. 7) is a quadratic; the least-squares peak
//! extraction differentiates a cubic fit into a quadratic. This module
//! provides closed forms for degrees ≤ 3, the Durand–Kerner simultaneous
//! iteration for arbitrary degree (used for the quartic so we keep *all*
//! four roots, matching the paper's Fig. 1 discussion), and Newton polishing.

use crate::{Complex, Polynomial};

/// Maximum iterations for the Durand–Kerner loop.
const DK_MAX_ITER: usize = 500;

/// Solves `a·x + b = 0`.
///
/// Returns `None` when `a == 0`.
pub fn solve_linear(a: f64, b: f64) -> Option<f64> {
    if a == 0.0 {
        None
    } else {
        Some(-b / a)
    }
}

/// Solves `a·x² + b·x + c = 0` over the reals.
///
/// Returns 0, 1 or 2 real roots in ascending order. Degenerates gracefully to
/// the linear case when `a == 0`. Uses the numerically stable citardauq
/// formulation to avoid cancellation.
///
/// # Examples
///
/// ```
/// use pipedepth_math::roots::solve_quadratic;
/// let r = solve_quadratic(1.0, -3.0, 2.0);
/// assert_eq!(r, vec![1.0, 2.0]);
/// ```
pub fn solve_quadratic(a: f64, b: f64, c: f64) -> Vec<f64> {
    if a == 0.0 {
        return solve_linear(b, c).into_iter().collect();
    }
    let disc = b * b - 4.0 * a * c;
    if disc < 0.0 {
        return Vec::new();
    }
    if disc == 0.0 {
        return vec![-b / (2.0 * a)];
    }
    let sq = disc.sqrt();
    // q = -(b + sign(b)·sqrt(disc)) / 2 avoids subtracting nearly equal values.
    let q = -0.5 * (b + b.signum() * sq);
    let (r1, r2) = if b == 0.0 {
        let r = sq / (2.0 * a);
        (-r, r)
    } else {
        (q / a, c / q)
    };
    let mut roots = vec![r1, r2];
    roots.sort_by(|x, y| x.partial_cmp(y).expect("roots are finite"));
    roots
}

/// Solves the cubic `a·x³ + b·x² + c·x + d = 0` over the reals.
///
/// Returns 1–3 real roots in ascending order, using Cardano's method with the
/// trigonometric form in the three-real-root case, each polished with a few
/// Newton steps. Degenerates to [`solve_quadratic`] when `a == 0`.
pub fn solve_cubic(a: f64, b: f64, c: f64, d: f64) -> Vec<f64> {
    if a == 0.0 {
        return solve_quadratic(b, c, d);
    }
    // Depressed cubic t³ + p·t + q with x = t - b/(3a).
    let b_n = b / a;
    let c_n = c / a;
    let d_n = d / a;
    let shift = b_n / 3.0;
    let p = c_n - b_n * b_n / 3.0;
    let q = 2.0 * b_n.powi(3) / 27.0 - b_n * c_n / 3.0 + d_n;
    let disc = (q / 2.0).powi(2) + (p / 3.0).powi(3);

    let poly = Polynomial::new(vec![d, c, b, a]);
    let mut roots = if disc > 0.0 {
        // One real root.
        let sq = disc.sqrt();
        let u = cbrt(-q / 2.0 + sq);
        let v = cbrt(-q / 2.0 - sq);
        vec![u + v - shift]
    } else if disc == 0.0 {
        if q == 0.0 {
            vec![-shift]
        } else {
            let u = cbrt(-q / 2.0);
            vec![2.0 * u - shift, -u - shift]
        }
    } else {
        // Three distinct real roots: trigonometric method.
        let r = (-p / 3.0).sqrt();
        let arg = (3.0 * q / (2.0 * p * r)).clamp(-1.0, 1.0);
        let phi = arg.acos();
        (0..3)
            .map(|k| 2.0 * r * ((phi - 2.0 * std::f64::consts::PI * k as f64) / 3.0).cos() - shift)
            .collect()
    };
    for r in &mut roots {
        *r = newton_polish(&poly, *r, 20);
    }
    roots.sort_by(|x, y| x.partial_cmp(y).expect("roots are finite"));
    roots.dedup_by(|x, y| (*x - *y).abs() < 1e-9 * (x.abs().max(y.abs()).max(1.0)));
    roots
}

fn cbrt(x: f64) -> f64 {
    x.cbrt()
}

/// Solves the quartic `a·x⁴ + b·x³ + c·x² + d·x + e = 0` over the reals in
/// closed form (Ferrari's method via the resolvent cubic).
///
/// Returns the real roots in ascending order, polished by Newton iteration.
/// Degenerates to [`solve_cubic`] when `a == 0`. Cross-checked against
/// [`durand_kerner`] in tests — the paper's optimality quartic (its Eq. 5)
/// can be solved either way.
pub fn solve_quartic(a: f64, b: f64, c: f64, d: f64, e: f64) -> Vec<f64> {
    if a == 0.0 {
        return solve_cubic(b, c, d, e);
    }
    // Depressed quartic y⁴ + p·y² + q·y + r with x = y − b/(4a).
    let b_n = b / a;
    let c_n = c / a;
    let d_n = d / a;
    let e_n = e / a;
    let shift = b_n / 4.0;
    let p = c_n - 3.0 * b_n * b_n / 8.0;
    let q = d_n - b_n * c_n / 2.0 + b_n.powi(3) / 8.0;
    let r = e_n - b_n * d_n / 4.0 + b_n * b_n * c_n / 16.0 - 3.0 * b_n.powi(4) / 256.0;

    let poly = Polynomial::new(vec![e, d, c, b, a]);
    let mut roots: Vec<f64> = if q.abs() < 1e-12 * (1.0 + p.abs() + r.abs()) {
        // Biquadratic: y⁴ + p·y² + r = 0.
        solve_quadratic(1.0, p, r)
            .into_iter()
            .filter(|&z| z >= 0.0)
            .flat_map(|z| {
                let y = z.sqrt();
                [y - shift, -y - shift]
            })
            .collect()
    } else {
        // Resolvent cubic: z³ + 2p·z² + (p² − 4r)·z − q² = 0 has a positive
        // real root z, giving the factorisation into two quadratics.
        let z = solve_cubic(1.0, 2.0 * p, p * p - 4.0 * r, -q * q)
            .into_iter()
            .rev()
            .find(|&z| z > 0.0);
        let Some(z) = z else {
            return Vec::new();
        };
        let w = z.sqrt();
        // y⁴ + p·y² + q·y + r = (y² + w·y + s₁)(y² − w·y + s₂)
        let s1 = (p + z - q / w) / 2.0;
        let s2 = (p + z + q / w) / 2.0;
        let mut out = solve_quadratic(1.0, w, s1);
        out.extend(solve_quadratic(1.0, -w, s2));
        out.into_iter().map(|y| y - shift).collect()
    };
    for root in &mut roots {
        *root = newton_polish(&poly, *root, 30);
    }
    roots.sort_by(|x, y| x.partial_cmp(y).expect("roots are finite"));
    roots.dedup_by(|x, y| (*x - *y).abs() < 1e-8 * (x.abs().max(y.abs()).max(1.0)));
    // Reject polished values that fail to annihilate the quartic (spurious
    // quadratic roots can appear when the resolvent is ill-conditioned).
    let scale = poly
        .coeffs()
        .iter()
        .fold(0.0f64, |m, &c| m.max(c.abs()))
        .max(1.0);
    roots.retain(|&x| poly.eval(x).abs() <= 1e-5 * scale * (1.0 + x.abs().powi(4)));
    roots
}

/// Finds all (complex) roots of `poly` with the Durand–Kerner method.
///
/// The result has exactly `degree` entries. Constant and zero polynomials
/// return an empty vector.
///
/// # Examples
///
/// ```
/// use pipedepth_math::Polynomial;
/// use pipedepth_math::roots::durand_kerner;
///
/// // (x-1)(x-2)(x-3)(x-4)
/// let p = Polynomial::new(vec![24.0, -50.0, 35.0, -10.0, 1.0]);
/// let mut roots: Vec<f64> = durand_kerner(&p).iter().map(|z| z.re).collect();
/// roots.sort_by(|a, b| a.partial_cmp(b).unwrap());
/// assert!((roots[0] - 1.0).abs() < 1e-8 && (roots[3] - 4.0).abs() < 1e-8);
/// ```
pub fn durand_kerner(poly: &Polynomial) -> Vec<Complex> {
    let Some(degree) = poly.degree() else {
        return Vec::new();
    };
    if degree == 0 {
        return Vec::new();
    }
    let monic = poly.monic();
    // Initial guesses on a circle of radius related to the Cauchy bound,
    // at a non-real angle so no iterate starts on a symmetry axis.
    let radius = 1.0
        + monic
            .coeffs()
            .iter()
            .take(degree)
            .fold(0.0f64, |m, &c| m.max(c.abs()));
    let mut zs: Vec<Complex> = (0..degree)
        .map(|k| {
            let theta = 0.4 + 2.0 * std::f64::consts::PI * k as f64 / degree as f64;
            Complex::new(radius * theta.cos(), radius * theta.sin())
        })
        .collect();

    for _ in 0..DK_MAX_ITER {
        let mut max_step = 0.0f64;
        for i in 0..degree {
            let mut denom = Complex::one();
            for j in 0..degree {
                if i != j {
                    denom = denom * (zs[i] - zs[j]);
                }
            }
            if denom.norm_sqr() == 0.0 {
                // Perturb coincident iterates.
                zs[i] += Complex::new(1e-6, 1e-6);
                continue;
            }
            let step = monic.eval_complex(zs[i]) / denom;
            zs[i] -= step;
            max_step = max_step.max(step.abs());
        }
        if max_step < 1e-14 * radius.max(1.0) {
            break;
        }
    }
    zs
}

/// Real roots of `poly` (any degree), sorted ascending.
///
/// Uses closed forms for degree ≤ 3 and [`durand_kerner`] above that, keeping
/// roots whose imaginary part is negligible and polishing them with Newton's
/// method on the real axis.
pub fn real_roots(poly: &Polynomial) -> Vec<f64> {
    match poly.degree() {
        None | Some(0) => Vec::new(),
        Some(1) => solve_linear(poly.coeff(1), poly.coeff(0))
            .into_iter()
            .collect(),
        Some(2) => solve_quadratic(poly.coeff(2), poly.coeff(1), poly.coeff(0)),
        Some(3) => solve_cubic(poly.coeff(3), poly.coeff(2), poly.coeff(1), poly.coeff(0)),
        Some(4) => solve_quartic(
            poly.coeff(4),
            poly.coeff(3),
            poly.coeff(2),
            poly.coeff(1),
            poly.coeff(0),
        ),
        Some(_) => {
            let mut roots: Vec<f64> = durand_kerner(poly)
                .into_iter()
                .filter(|z| z.is_approx_real(1e-7))
                .map(|z| newton_polish(poly, z.re, 50))
                .filter(|r| {
                    // Accept only if the polished value actually annihilates
                    // the polynomial to within scale.
                    let scale = poly
                        .coeffs()
                        .iter()
                        .fold(0.0f64, |m, &c| m.max(c.abs()))
                        .max(1.0);
                    poly.eval(*r).abs()
                        <= 1e-6 * scale * (1.0 + r.abs().powi(poly.degree().unwrap_or(0) as i32))
                })
                .collect();
            roots.sort_by(|a, b| a.partial_cmp(b).expect("roots are finite"));
            roots.dedup_by(|a, b| (*a - *b).abs() < 1e-7 * (a.abs().max(b.abs()).max(1.0)));
            roots
        }
    }
}

/// Refines an approximate root with damped Newton iteration.
///
/// Falls back to returning the best iterate seen if the derivative vanishes.
pub fn newton_polish(poly: &Polynomial, x0: f64, max_iter: usize) -> f64 {
    let deriv = poly.derivative();
    let mut x = x0;
    let mut best = x0;
    let mut best_val = poly.eval(x0).abs();
    for _ in 0..max_iter {
        let f = poly.eval(x);
        let fp = deriv.eval(x);
        if fp == 0.0 {
            break;
        }
        let step = f / fp;
        x -= step;
        let v = poly.eval(x).abs();
        if v < best_val {
            best_val = v;
            best = x;
        }
        if step.abs() < 1e-15 * x.abs().max(1.0) {
            break;
        }
    }
    best
}

/// Finds a root of `f` inside `[lo, hi]` by bisection.
///
/// Returns `None` if `f(lo)` and `f(hi)` do not bracket a sign change.
///
/// # Examples
///
/// ```
/// use pipedepth_math::roots::bisect;
/// let r = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-12).unwrap();
/// assert!((r - 2f64.sqrt()).abs() < 1e-10);
/// ```
pub fn bisect<F: Fn(f64) -> f64>(f: F, lo: f64, hi: f64, tol: f64) -> Option<f64> {
    let (mut lo, mut hi) = (lo, hi);
    let (mut flo, fhi) = (f(lo), f(hi));
    if flo == 0.0 {
        return Some(lo);
    }
    if fhi == 0.0 {
        return Some(hi);
    }
    if flo.signum() == fhi.signum() {
        return None;
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        let fm = f(mid);
        if fm == 0.0 || (hi - lo) < tol {
            return Some(mid);
        }
        if fm.signum() == flo.signum() {
            lo = mid;
            flo = fm;
        } else {
            hi = mid;
        }
    }
    Some(0.5 * (lo + hi))
}

/// Real roots of `f` on `[lo, hi]` found by scanning `n` subintervals for
/// sign changes and bisecting each bracket.
///
/// Roots that fall exactly on grid points or even-multiplicity roots that do
/// not change sign may be missed; callers that need completeness should use
/// [`real_roots`] on a polynomial form instead.
pub fn scan_roots<F: Fn(f64) -> f64 + Copy>(f: F, lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(n >= 1, "need at least one subinterval");
    assert!(hi > lo, "interval must be non-empty");
    let mut out = Vec::new();
    let step = (hi - lo) / n as f64;
    let mut x0 = lo;
    let mut f0 = f(x0);
    for i in 1..=n {
        let x1 = lo + step * i as f64;
        let f1 = f(x1);
        if f0 == 0.0 {
            out.push(x0);
        } else if f0.signum() != f1.signum() {
            if let Some(r) = bisect(f, x0, x1, 1e-12) {
                out.push(r);
            }
        }
        x0 = x1;
        f0 = f1;
    }
    if f0 == 0.0 {
        out.push(x0);
    }
    out.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn poly_from_roots(roots: &[f64]) -> Polynomial {
        roots.iter().fold(Polynomial::constant(1.0), |acc, &r| {
            acc * Polynomial::linear_root(r)
        })
    }

    #[test]
    fn linear() {
        assert_eq!(solve_linear(2.0, -4.0), Some(2.0));
        assert_eq!(solve_linear(0.0, 1.0), None);
    }

    #[test]
    fn quadratic_two_roots() {
        let r = solve_quadratic(2.0, -6.0, 4.0);
        assert_eq!(r.len(), 2);
        assert!((r[0] - 1.0).abs() < 1e-12 && (r[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn quadratic_no_real_roots() {
        assert!(solve_quadratic(1.0, 0.0, 1.0).is_empty());
    }

    #[test]
    fn quadratic_double_root() {
        let r = solve_quadratic(1.0, -2.0, 1.0);
        assert_eq!(r, vec![1.0]);
    }

    #[test]
    fn quadratic_degenerates_to_linear() {
        assert_eq!(solve_quadratic(0.0, 2.0, -6.0), vec![3.0]);
    }

    #[test]
    fn quadratic_catastrophic_cancellation() {
        // x² - 1e8·x + 1 has roots ~1e8 and ~1e-8.
        let r = solve_quadratic(1.0, -1e8, 1.0);
        assert_eq!(r.len(), 2);
        assert!((r[0] - 1e-8).abs() < 1e-16);
        assert!((r[1] - 1e8).abs() < 1.0);
    }

    #[test]
    fn cubic_three_real_roots() {
        let p = [-3.0, 0.5, 4.0];
        let poly = poly_from_roots(&p);
        let c = poly.coeffs();
        let r = solve_cubic(c[3], c[2], c[1], c[0]);
        assert_eq!(r.len(), 3);
        assert!((r[0] + 3.0).abs() < 1e-9);
        assert!((r[1] - 0.5).abs() < 1e-9);
        assert!((r[2] - 4.0).abs() < 1e-9);
    }

    #[test]
    fn cubic_one_real_root() {
        // (x - 2)(x² + 1)
        let r = solve_cubic(1.0, -2.0, 1.0, -2.0);
        assert_eq!(r.len(), 1);
        assert!((r[0] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn cubic_triple_root() {
        // (x - 1)³ = x³ - 3x² + 3x - 1
        let r = solve_cubic(1.0, -3.0, 3.0, -1.0);
        assert!(!r.is_empty());
        for root in r {
            assert!((root - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn cubic_degenerates_to_quadratic() {
        let r = solve_cubic(0.0, 1.0, -3.0, 2.0);
        assert_eq!(r, vec![1.0, 2.0]);
    }

    #[test]
    fn durand_kerner_quartic_real_roots() {
        let poly = poly_from_roots(&[-56.0, -0.5, -3.0, 8.0]);
        let roots = durand_kerner(&poly);
        assert_eq!(roots.len(), 4);
        let mut reals: Vec<f64> = roots.iter().map(|z| z.re).collect();
        reals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (got, want) in reals.iter().zip([-56.0, -3.0, -0.5, 8.0]) {
            assert!((got - want).abs() < 1e-6, "got {got}, want {want}");
        }
    }

    #[test]
    fn durand_kerner_complex_pair() {
        // (x² + 1)(x - 5)
        let p = Polynomial::new(vec![-5.0, 1.0, -5.0, 1.0]);
        let roots = durand_kerner(&p);
        let real_count = roots.iter().filter(|z| z.is_approx_real(1e-8)).count();
        assert_eq!(real_count, 1);
    }

    #[test]
    fn real_roots_filters_complex() {
        // (x² + 4)(x - 1)(x + 2): real roots 1, -2
        let p = Polynomial::new(vec![4.0, 0.0, 1.0])
            * Polynomial::linear_root(1.0)
            * Polynomial::linear_root(-2.0);
        let r = real_roots(&p);
        assert_eq!(r.len(), 2);
        assert!((r[0] + 2.0).abs() < 1e-8 && (r[1] - 1.0).abs() < 1e-8);
    }

    #[test]
    fn real_roots_wide_scale_quartic() {
        // Scales mimicking the paper's quartic: roots at -56, -0.5, -6, 9.
        let p = poly_from_roots(&[-56.0, -0.5, -6.0, 9.0]).scale(3.7e-4);
        let r = real_roots(&p);
        assert_eq!(r.len(), 4, "roots found: {r:?}");
        assert!((r[0] + 56.0).abs() < 1e-5);
        assert!((r[3] - 9.0).abs() < 1e-6);
    }

    #[test]
    fn quartic_closed_form_four_roots() {
        let p = poly_from_roots(&[-56.0, -3.0, -0.5, 8.0]);
        let c = p.coeffs();
        let r = solve_quartic(c[4], c[3], c[2], c[1], c[0]);
        assert_eq!(r.len(), 4, "roots {r:?}");
        for (got, want) in r.iter().zip([-56.0, -3.0, -0.5, 8.0]) {
            assert!(
                (got - want).abs() < 1e-6 * want.abs().max(1.0),
                "got {got}, want {want}"
            );
        }
    }

    #[test]
    fn quartic_closed_form_two_real_roots() {
        // (x² + 1)(x − 1)(x + 2)
        let p = Polynomial::new(vec![1.0, 0.0, 1.0])
            * Polynomial::linear_root(1.0)
            * Polynomial::linear_root(-2.0);
        let c = p.coeffs();
        let r = solve_quartic(c[4], c[3], c[2], c[1], c[0]);
        assert_eq!(r.len(), 2, "roots {r:?}");
        assert!((r[0] + 2.0).abs() < 1e-8);
        assert!((r[1] - 1.0).abs() < 1e-8);
    }

    #[test]
    fn quartic_closed_form_no_real_roots() {
        // (x² + 1)(x² + 4)
        let r = solve_quartic(1.0, 0.0, 5.0, 0.0, 4.0);
        assert!(r.is_empty(), "roots {r:?}");
    }

    #[test]
    fn quartic_biquadratic_case() {
        // x⁴ − 5x² + 4 = (x²−1)(x²−4)
        let r = solve_quartic(1.0, 0.0, -5.0, 0.0, 4.0);
        assert_eq!(r, vec![-2.0, -1.0, 1.0, 2.0]);
    }

    #[test]
    fn quartic_degenerates_to_cubic() {
        let r = solve_quartic(0.0, 1.0, -6.0, 11.0, -6.0);
        assert_eq!(r.len(), 3);
        assert!((r[0] - 1.0).abs() < 1e-9);
        assert!((r[2] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn quartic_matches_durand_kerner() {
        for roots in [
            [-10.0, -1.0, 2.0, 30.0],
            [-0.01, 0.5, 7.0, 100.0],
            [-56.0, -35.3, -2.3, 3.7],
        ] {
            let p = poly_from_roots(&roots);
            let c = p.coeffs();
            let ferrari = solve_quartic(c[4], c[3], c[2], c[1], c[0]);
            let dk = real_roots(&p);
            assert_eq!(ferrari.len(), dk.len(), "{roots:?}");
            for (a, b) in ferrari.iter().zip(&dk) {
                assert!((a - b).abs() < 1e-5 * a.abs().max(1.0), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn bisect_finds_sqrt2() {
        let r = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-13).unwrap();
        assert!((r - std::f64::consts::SQRT_2).abs() < 1e-10);
    }

    #[test]
    fn bisect_requires_bracket() {
        assert!(bisect(|x| x * x + 1.0, -1.0, 1.0, 1e-12).is_none());
    }

    #[test]
    fn scan_roots_finds_all_crossings() {
        let roots = scan_roots(|x| (x - 1.0) * (x - 4.0) * (x + 2.0), -10.0, 10.0, 1000);
        assert_eq!(roots.len(), 3);
        assert!((roots[0] + 2.0).abs() < 1e-9);
        assert!((roots[1] - 1.0).abs() < 1e-9);
        assert!((roots[2] - 4.0).abs() < 1e-9);
    }

    #[test]
    fn newton_polish_improves() {
        let p = poly_from_roots(&[2.0, 7.0]);
        let r = newton_polish(&p, 6.6, 30);
        assert!((r - 7.0).abs() < 1e-12);
    }
}
