//! Summary statistics over `f64` samples.

/// Summary statistics of a sample.
///
/// # Examples
///
/// ```
/// use pipedepth_math::stats::Summary;
/// let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]).unwrap();
/// assert_eq!(s.mean, 2.5);
/// assert_eq!(s.min, 1.0);
/// assert_eq!(s.max, 4.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for a single sample).
    pub std_dev: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Median (midpoint average for even counts).
    pub median: f64,
}

impl Summary {
    /// Computes summary statistics, or `None` for an empty slice.
    pub fn of(samples: &[f64]) -> Option<Summary> {
        if samples.is_empty() {
            return None;
        }
        let count = samples.len();
        let mean = samples.iter().sum::<f64>() / count as f64;
        let var = if count > 1 {
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (count - 1) as f64
        } else {
            0.0
        };
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        let median = if count % 2 == 1 {
            sorted[count / 2]
        } else {
            0.5 * (sorted[count / 2 - 1] + sorted[count / 2])
        };
        Some(Summary {
            count,
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            max: sorted[count - 1],
            median,
        })
    }
}

/// Linear-interpolated percentile (`q` in `[0, 1]`) of a sample.
///
/// Returns `None` for an empty slice or when `q` is outside `[0, 1]`.
pub fn percentile(samples: &[f64], q: f64) -> Option<f64> {
    if !(0.0..=1.0).contains(&q) || samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Weighted arithmetic mean. Returns `None` when weights sum to zero or
/// inputs are empty/mismatched.
pub fn weighted_mean(values: &[f64], weights: &[f64]) -> Option<f64> {
    if values.is_empty() || values.len() != weights.len() {
        return None;
    }
    let wsum: f64 = weights.iter().sum();
    if wsum == 0.0 {
        return None;
    }
    Some(values.iter().zip(weights).map(|(v, w)| v * w).sum::<f64>() / wsum)
}

/// Pearson correlation coefficient of two equal-length samples.
///
/// Returns `None` for empty/mismatched inputs or when either sample has no
/// variance.
///
/// # Examples
///
/// ```
/// use pipedepth_math::stats::correlation;
/// let x = [1.0, 2.0, 3.0];
/// let y = [2.0, 4.0, 6.0];
/// assert!((correlation(&x, &y).unwrap() - 1.0).abs() < 1e-12);
/// ```
pub fn correlation(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.is_empty() || xs.len() != ys.len() {
        return None;
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx == 0.0 || vy == 0.0 {
        return None;
    }
    Some(cov / (vx.sqrt() * vy.sqrt()))
}

/// Geometric mean of strictly positive samples; `None` otherwise.
pub fn geometric_mean(samples: &[f64]) -> Option<f64> {
    if samples.is_empty() || samples.iter().any(|&x| x <= 0.0) {
        return None;
    }
    let log_sum: f64 = samples.iter().map(|x| x.ln()).sum();
    Some((log_sum / samples.len() as f64).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert_eq!(s.count, 8);
        assert_eq!(s.mean, 5.0);
        assert!((s.std_dev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.median, 4.5);
    }

    #[test]
    fn summary_single_sample() {
        let s = Summary::of(&[3.0]).unwrap();
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.median, 3.0);
    }

    #[test]
    fn summary_empty() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn summary_odd_median() {
        let s = Summary::of(&[5.0, 1.0, 3.0]).unwrap();
        assert_eq!(s.median, 3.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&xs, 0.0), Some(10.0));
        assert_eq!(percentile(&xs, 1.0), Some(40.0));
        assert_eq!(percentile(&xs, 0.5), Some(25.0));
    }

    #[test]
    fn percentile_empty() {
        assert_eq!(percentile(&[], 0.5), None);
    }

    #[test]
    fn percentile_out_of_range_is_none() {
        assert_eq!(percentile(&[1.0], 1.5), None);
        assert_eq!(percentile(&[1.0], -0.1), None);
        assert_eq!(percentile(&[1.0], f64::NAN), None);
    }

    #[test]
    fn weighted_mean_weights_dominate() {
        let m = weighted_mean(&[1.0, 100.0], &[0.0, 1.0]).unwrap();
        assert_eq!(m, 100.0);
    }

    #[test]
    fn weighted_mean_zero_weights() {
        assert!(weighted_mean(&[1.0], &[0.0]).is_none());
    }

    #[test]
    fn correlation_signs() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let up: Vec<f64> = x.iter().map(|v| 3.0 * v + 1.0).collect();
        let down: Vec<f64> = x.iter().map(|v| -2.0 * v).collect();
        assert!((correlation(&x, &up).unwrap() - 1.0).abs() < 1e-12);
        assert!((correlation(&x, &down).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn correlation_degenerate_cases() {
        assert!(correlation(&[], &[]).is_none());
        assert!(correlation(&[1.0], &[1.0, 2.0]).is_none());
        assert!(correlation(&[1.0, 1.0], &[1.0, 2.0]).is_none());
    }

    #[test]
    fn geometric_mean_of_powers() {
        let g = geometric_mean(&[1.0, 4.0, 16.0]).unwrap();
        assert!((g - 4.0).abs() < 1e-12);
    }

    #[test]
    fn geometric_mean_rejects_nonpositive() {
        assert!(geometric_mean(&[1.0, -1.0]).is_none());
        assert!(geometric_mean(&[]).is_none());
    }
}
