//! Fixed-bin histograms with ASCII rendering.
//!
//! Used to reproduce the distributions of optimum pipeline depths in the
//! paper's Figs. 6 and 7.

use std::fmt;

/// A histogram over equal-width bins covering `[lo, hi)`.
///
/// Samples below `lo` land in the first bin and samples at or above `hi` in
/// the last, so no observation is ever silently dropped (the experiment
/// drivers care about every workload).
///
/// # Examples
///
/// ```
/// use pipedepth_math::histogram::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 5);
/// for x in [1.0, 1.5, 3.0, 9.9] {
///     h.add(x);
/// }
/// assert_eq!(h.counts(), &[2, 1, 0, 0, 1]);
/// assert_eq!(h.total(), 4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins spanning `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `hi <= lo` or `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(hi > lo, "histogram range must be non-empty");
        assert!(bins > 0, "histogram needs at least one bin");
        Self {
            lo,
            hi,
            counts: vec![0; bins],
        }
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        let idx = self.bin_index(x);
        self.counts[idx] += 1;
    }

    /// The bin an observation falls into (clamped at the ends).
    pub fn bin_index(&self, x: f64) -> usize {
        let n = self.counts.len();
        let w = (self.hi - self.lo) / n as f64;
        let raw = ((x - self.lo) / w).floor();
        if raw < 0.0 {
            0
        } else {
            (raw as usize).min(n - 1)
        }
    }

    /// Lower edge of bin `i`.
    pub fn bin_lo(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + w * i as f64
    }

    /// Centre of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.bin_lo(i) + 0.5 * w
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Centre of the most populated bin (ties resolve to the lowest bin), or
    /// `None` if the histogram is empty.
    pub fn mode_center(&self) -> Option<f64> {
        if self.total() == 0 {
            return None;
        }
        let (idx, _) = self
            .counts
            .iter()
            .enumerate()
            .max_by_key(|&(i, &c)| (c, std::cmp::Reverse(i)))
            .expect("bins is non-empty");
        Some(self.bin_center(idx))
    }

    /// Mean of the binned distribution (using bin centres), or `None` if
    /// empty.
    pub fn binned_mean(&self) -> Option<f64> {
        let total = self.total();
        if total == 0 {
            return None;
        }
        let sum: f64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(i, &c)| self.bin_center(i) * c as f64)
            .sum();
        Some(sum / total as f64)
    }

    /// Renders the histogram as ASCII bars, one bin per line, scaled so the
    /// largest bar is `width` characters.
    pub fn render_ascii(&self, width: usize) -> String {
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &c) in self.counts.iter().enumerate() {
            let bar_len = (c as usize * width) / max as usize;
            let bar: String = std::iter::repeat_n('#', bar_len).collect();
            out.push_str(&format!(
                "{:>6.1} | {:<width$} {}\n",
                self.bin_center(i),
                bar,
                c,
                width = width
            ));
        }
        out
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render_ascii(40))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_partition_range() {
        let h = Histogram::new(0.0, 10.0, 10);
        assert_eq!(h.bin_index(0.0), 0);
        assert_eq!(h.bin_index(0.999), 0);
        assert_eq!(h.bin_index(1.0), 1);
        assert_eq!(h.bin_index(9.999), 9);
    }

    #[test]
    fn out_of_range_clamps() {
        let h = Histogram::new(0.0, 10.0, 10);
        assert_eq!(h.bin_index(-5.0), 0);
        assert_eq!(h.bin_index(10.0), 9);
        assert_eq!(h.bin_index(100.0), 9);
    }

    #[test]
    fn mode_and_mean() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for x in [4.2, 4.5, 4.9, 7.1] {
            h.add(x);
        }
        assert_eq!(h.mode_center(), Some(4.5));
        let mean = h.binned_mean().unwrap();
        assert!((mean - (4.5 * 3.0 + 7.5) / 4.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_has_no_mode() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert_eq!(h.mode_center(), None);
        assert_eq!(h.binned_mean(), None);
    }

    #[test]
    fn mode_tie_resolves_low() {
        let mut h = Histogram::new(0.0, 2.0, 2);
        h.add(0.5);
        h.add(1.5);
        assert_eq!(h.mode_center(), Some(0.5));
    }

    #[test]
    fn ascii_render_contains_counts() {
        let mut h = Histogram::new(0.0, 4.0, 2);
        h.add(1.0);
        h.add(1.2);
        h.add(3.0);
        let s = h.render_ascii(10);
        assert!(s.contains("##########"), "longest bar full width: {s}");
        assert!(s.lines().count() == 2);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_range_panics() {
        let _ = Histogram::new(1.0, 1.0, 4);
    }
}
