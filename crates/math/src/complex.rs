//! A minimal complex-number type.
//!
//! Only the operations the polynomial root finders in [`crate::roots`] need
//! are implemented; this is deliberately not a general-purpose complex
//! arithmetic library.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// # Examples
///
/// ```
/// use pipedepth_math::Complex;
///
/// let i = Complex::new(0.0, 1.0);
/// assert_eq!(i * i, Complex::new(-1.0, 0.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real component.
    pub re: f64,
    /// Imaginary component.
    pub im: f64,
}

impl Complex {
    /// Creates a complex number from real and imaginary parts.
    pub fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Creates a purely real complex number.
    ///
    /// # Examples
    ///
    /// ```
    /// use pipedepth_math::Complex;
    /// assert_eq!(Complex::real(2.0).im, 0.0);
    /// ```
    pub fn real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// The additive identity.
    pub fn zero() -> Self {
        Self { re: 0.0, im: 0.0 }
    }

    /// The multiplicative identity.
    pub fn one() -> Self {
        Self { re: 1.0, im: 0.0 }
    }

    /// Squared modulus `re² + im²`.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    ///
    /// Uses `hypot` to avoid intermediate overflow.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// Returns `true` when the imaginary part is negligible relative to the
    /// modulus (or absolutely, for tiny numbers).
    ///
    /// # Examples
    ///
    /// ```
    /// use pipedepth_math::Complex;
    /// assert!(Complex::new(3.0, 1e-12).is_approx_real(1e-9));
    /// assert!(!Complex::new(3.0, 0.1).is_approx_real(1e-9));
    /// ```
    pub fn is_approx_real(self, tol: f64) -> bool {
        self.im.abs() <= tol * self.abs().max(1.0)
    }

    /// Principal square root.
    pub fn sqrt(self) -> Self {
        let r = self.abs();
        if r == 0.0 {
            return Self::zero();
        }
        // sqrt in polar form, using half-angle identities for stability.
        let re = ((r + self.re) * 0.5).max(0.0).sqrt();
        let im_mag = ((r - self.re) * 0.5).max(0.0).sqrt();
        Self::new(re, if self.im >= 0.0 { im_mag } else { -im_mag })
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Self::real(re)
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        *self = *self + rhs;
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex {
    fn sub_assign(&mut self, rhs: Complex) {
        *self = *self - rhs;
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    fn mul(self, rhs: f64) -> Complex {
        Complex::new(self.re * rhs, self.im * rhs)
    }
}

impl Div for Complex {
    type Output = Complex;
    fn div(self, rhs: Complex) -> Complex {
        let d = rhs.norm_sqr();
        Complex::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex, b: Complex) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn arithmetic_identities() {
        let z = Complex::new(2.0, -3.0);
        assert!(close(z + Complex::zero(), z));
        assert!(close(z * Complex::one(), z));
        assert!(close(z - z, Complex::zero()));
        assert!(close(z / z, Complex::one()));
    }

    #[test]
    fn multiplication_is_commutative() {
        let a = Complex::new(1.5, 2.5);
        let b = Complex::new(-0.5, 4.0);
        assert!(close(a * b, b * a));
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex::new(1.5, 2.5);
        let b = Complex::new(-0.5, 4.0);
        assert!(close(a * b / b, a));
    }

    #[test]
    fn sqrt_of_negative_real() {
        let z = Complex::real(-4.0).sqrt();
        assert!(close(z, Complex::new(0.0, 2.0)));
    }

    #[test]
    fn sqrt_squares_back() {
        for &(re, im) in &[
            (3.0, 4.0),
            (-3.0, 4.0),
            (3.0, -4.0),
            (-3.0, -4.0),
            (0.0, 1.0),
        ] {
            let z = Complex::new(re, im);
            let s = z.sqrt();
            assert!(close(s * s, z), "sqrt({z}) = {s}");
        }
    }

    #[test]
    fn conj_and_norm() {
        let z = Complex::new(3.0, 4.0);
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.norm_sqr(), 25.0);
        assert!(close(z * z.conj(), Complex::real(25.0)));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1-2i");
    }
}
