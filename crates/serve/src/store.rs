//! The persistent outcome store behind `--store`: warm restarts for the
//! evaluation service.
//!
//! [`OutcomeStore`](crate::store::OutcomeStore) owns one
//! `pipedepth-store` namespace, `outcomes`, holding every simulation
//! outcome the service has published as a
//! ([`CellSpec`](pipedepth_core::eval::CellSpec),
//! [`EvalOutcome`](pipedepth_core::eval::EvalOutcome)) record. At
//! startup the decoded image
//! becomes the *warm tier* of the service's simulation
//! [`TieredCache`](pipedepth_core::eval::TieredCache): a restarted
//! server answers previously computed cells from disk, promoting them
//! back into memory, instead of re-simulating.
//!
//! The snapshot is keyed by the record codec version
//! ([`OUTCOMES_SCHEMA`](crate::store::OUTCOMES_SCHEMA)), the crate
//! version, and the digest of the service's template
//! [`RunConfig`](pipedepth_experiments::sweep::RunConfig) — a snapshot
//! from a different build
//! or service configuration degrades to a cold start, never to a wrong
//! answer. Records carry the full spec, so a warm hit still resolves by
//! `PartialEq` exactly as an in-memory hit does.
//!
//! Publishing is write-behind and periodic: the dispatch loop snapshots
//! the memory tier every [`crate::service`]-chosen insert threshold and
//! hands encoding plus the atomic temp-file-and-rename publish to the
//! store's [`Flusher`](pipedepth_store::Flusher) worker. At graceful
//! shutdown the server takes one final snapshot and
//! [`OutcomeStore::sync`](crate::store::OutcomeStore::sync)s the
//! backlog to disk before
//! printing its stats line, so a drained server is always restartable
//! from its last answered state.

use pipedepth_core::eval::{CacheStats, CellSpec, EvalOutcome, ShardedCache};
use pipedepth_experiments::manifest::config_digest;
use pipedepth_experiments::sweep::RunConfig;
use pipedepth_store::{
    load_records, publish_records, Blob, ByteReader, ByteWriter, DecodeError, Flusher, LoadOutcome,
    NamespaceSpec,
};
use pipedepth_telemetry::{Stopwatch, Telemetry, DEFAULT_TIME_BUCKETS_US};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Record-codec version of the `outcomes` namespace. Bump whenever the
/// [`CellSpec`] or [`EvalOutcome`] field lists change shape.
pub const OUTCOMES_SCHEMA: u32 = 1;

/// Code-version key stamped into every snapshot header; snapshots from a
/// different build degrade to a cold start.
const CODE_VERSION: &str = env!("CARGO_PKG_VERSION");

fn outcome_record(spec: &CellSpec, outcome: &EvalOutcome) -> Vec<u8> {
    let mut w = ByteWriter::new();
    spec.encode(&mut w);
    outcome.encode(&mut w);
    w.into_bytes()
}

fn decode_outcome_record(bytes: &[u8]) -> Result<(CellSpec, EvalOutcome), DecodeError> {
    let mut r = ByteReader::new(bytes);
    let spec = CellSpec::decode(&mut r)?;
    let outcome = EvalOutcome::decode(&mut r)?;
    r.finish()?;
    Ok((spec, outcome))
}

/// The service's persistent outcome store: loads a snapshot at startup,
/// publishes snapshots write-behind while the server runs.
pub struct OutcomeStore {
    dir: PathBuf,
    digest: u64,
    telemetry: Telemetry,
    flusher: Flusher,
    loaded: u64,
    invalid: u64,
    // Flush-side counters live behind `Arc`s because they are incremented
    // on the flusher thread; readers see them after a `sync`.
    flushes: Arc<AtomicU64>,
    records_flushed: Arc<AtomicU64>,
}

impl std::fmt::Debug for OutcomeStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OutcomeStore")
            .field("dir", &self.dir)
            .field("digest", &self.digest)
            .field("loaded", &self.loaded)
            .field("invalid", &self.invalid)
            .finish_non_exhaustive()
    }
}

impl OutcomeStore {
    /// Opens the store rooted at `dir` for a service templated on `run`.
    /// Registers every `store.*` metric the service emits immediately, so
    /// cold and warm servers expose the same `/metrics` name set.
    pub fn open(dir: &Path, run: &RunConfig, telemetry: &Telemetry) -> Self {
        for name in [
            "store.hits",
            "store.misses",
            "store.outcomes_loaded",
            "store.invalid",
            "store.flushes",
            "store.records_flushed",
        ] {
            telemetry.counter(name).add(0);
        }
        OutcomeStore {
            dir: dir.to_path_buf(),
            digest: config_digest(run),
            telemetry: telemetry.clone(),
            flusher: Flusher::new(),
            loaded: 0,
            invalid: 0,
            flushes: Arc::new(AtomicU64::new(0)),
            records_flushed: Arc::new(AtomicU64::new(0)),
        }
    }

    fn spec(&self) -> NamespaceSpec<'_> {
        NamespaceSpec {
            name: "outcomes",
            schema_version: OUTCOMES_SCHEMA,
            code_version: CODE_VERSION,
            config_digest: self.digest,
        }
    }

    /// Loads the `outcomes` snapshot into a warm-tier image. A missing
    /// file, a rejected header or checksum, or any undecodable record
    /// yields an empty image — a cold start, never a partial or wrong
    /// one.
    pub fn load(&mut self) -> ShardedCache<CellSpec, EvalOutcome> {
        let start = Stopwatch::start();
        let warm = ShardedCache::new();
        match load_records(&self.dir, &self.spec()) {
            LoadOutcome::Warm(records) => {
                match records
                    .iter()
                    .map(|r| decode_outcome_record(r))
                    .collect::<Result<Vec<_>, _>>()
                {
                    Ok(entries) => {
                        self.loaded = entries.len() as u64;
                        self.telemetry
                            .counter("store.outcomes_loaded")
                            .add(self.loaded);
                        for (spec, outcome) in entries {
                            warm.insert(spec.key(), spec, Arc::new(outcome));
                        }
                    }
                    // A record that passed every checksum but fails the
                    // codec is version skew the header keys missed.
                    Err(_) => {
                        self.invalid += 1;
                        self.telemetry.counter("store.invalid").inc();
                    }
                }
            }
            LoadOutcome::Cold(reason) => {
                if !reason.is_missing() {
                    self.invalid += 1;
                    self.telemetry.counter("store.invalid").inc();
                }
            }
        }
        self.telemetry
            .histogram("store.load_us", &DEFAULT_TIME_BUCKETS_US)
            .record(start.elapsed_us());
        warm
    }

    /// Outcome records decoded from a valid snapshot at startup.
    pub fn loaded(&self) -> u64 {
        self.loaded
    }

    /// Namespaces rejected at startup (corruption or version skew; a
    /// simply missing file does not count).
    pub fn invalid(&self) -> u64 {
        self.invalid
    }

    /// Snapshots published so far (reliable only after [`sync`](Self::sync)).
    pub fn flushes(&self) -> u64 {
        self.flushes.load(Ordering::Relaxed)
    }

    /// Publishes a snapshot of answered cells, write-behind. The entries
    /// were already snapshotted by the caller (the cache's `entries()`
    /// drops its shard guards before returning); encoding and the atomic
    /// publish happen on the flusher thread.
    pub fn flush(&self, entries: Vec<(CellSpec, Arc<EvalOutcome>)>) {
        let dir = self.dir.clone();
        let digest = self.digest;
        let telemetry = self.telemetry.clone();
        let flushes = Arc::clone(&self.flushes);
        let records_flushed = Arc::clone(&self.records_flushed);
        self.flusher.submit(move || {
            let start = Stopwatch::start();
            let records: Vec<Vec<u8>> = entries
                .iter()
                .map(|(spec, outcome)| outcome_record(spec, outcome))
                .collect();
            let spec = NamespaceSpec {
                name: "outcomes",
                schema_version: OUTCOMES_SCHEMA,
                code_version: CODE_VERSION,
                config_digest: digest,
            };
            if publish_records(&dir, &spec, &records).is_ok() {
                flushes.fetch_add(1, Ordering::Relaxed);
                records_flushed.fetch_add(records.len() as u64, Ordering::Relaxed);
                telemetry.counter("store.flushes").inc();
                telemetry
                    .counter("store.records_flushed")
                    .add(records.len() as u64);
            }
            telemetry
                .histogram("store.flush_us", &DEFAULT_TIME_BUCKETS_US)
                .record(start.elapsed_us());
        });
    }

    /// Records the warm-tier probe counters of the server's lifetime
    /// (from the tiered cache, at drain time).
    pub fn record_warm(&self, stats: CacheStats) {
        self.telemetry.counter("store.hits").add(stats.hits);
        self.telemetry.counter("store.misses").add(stats.misses);
    }

    /// Waits until every snapshot submitted so far is durably published.
    /// Needs only `&self`, so the `Arc`'d service can force durability at
    /// drain time without exclusive access; the store keeps accepting
    /// flushes afterwards.
    pub fn sync(&self) {
        self.flusher.sync();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipedepth_core::eval::WorkloadProfile;
    use std::sync::atomic::AtomicU32;

    /// A fresh scratch directory per test (std-only; no tempdir crate).
    fn scratch(tag: &str) -> PathBuf {
        static NEXT: AtomicU32 = AtomicU32::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "pipedepth-serve-store-{}-{tag}-{n}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        dir
    }

    fn cell(depth: u32) -> CellSpec {
        CellSpec {
            workload: "unit".to_string(),
            profile: WorkloadProfile {
                alpha: 0.5,
                gamma: 1.1,
                hazard_rate: 0.02,
                kappa: 3.0,
                memory_time_fo4: 500.0,
            },
            depth,
            warmup: 100,
            instructions: 400,
            leakage_fraction: 0.3,
            ref_depth: 14.0,
            latch_growth: 1.1,
        }
    }

    fn outcome(depth: u32) -> EvalOutcome {
        EvalOutcome {
            depth,
            cpi: 1.4,
            frequency: 0.05,
            time_per_instruction_fo4: 28.0,
            throughput: 1.0 / 28.0,
            power_gated: 30.0,
            power_ungated: 55.0,
            metric_gated: [0.05, 0.002_5, 0.000_125],
            metric_ungated: [0.027, 0.000_75, 0.000_02],
            profile: cell(depth).profile,
        }
    }

    #[test]
    fn outcomes_round_trip_through_the_store() {
        let dir = scratch("roundtrip");
        let run = RunConfig::quick();
        let telemetry = Telemetry::disabled();
        let store = OutcomeStore::open(&dir, &run, &telemetry);
        let entries: Vec<_> = (2..10).map(|d| (cell(d), Arc::new(outcome(d)))).collect();
        store.flush(entries.clone());
        store.sync();
        assert_eq!(store.flushes(), 1);

        let mut store = OutcomeStore::open(&dir, &run, &telemetry);
        let warm = store.load();
        assert_eq!(store.loaded(), entries.len() as u64);
        assert_eq!(store.invalid(), 0);
        for (spec, out) in &entries {
            let hit = warm.get(spec.key(), spec).expect("warm hit");
            assert_eq!(*hit, **out);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn config_skew_and_corruption_degrade_to_cold_start() {
        let dir = scratch("skew");
        let run = RunConfig::quick();
        let telemetry = Telemetry::disabled();
        let store = OutcomeStore::open(&dir, &run, &telemetry);
        store.flush(vec![(cell(8), Arc::new(outcome(8)))]);
        store.sync();

        // A different template config must not read the snapshot.
        let other = RunConfig {
            instructions: run.instructions + 1,
            ..run.clone()
        };
        let mut skewed = OutcomeStore::open(&dir, &other, &telemetry);
        assert!(skewed.load().is_empty());
        assert_eq!(skewed.loaded(), 0);
        assert_eq!(skewed.invalid(), 1, "digest skew is a counted rejection");

        // A bit-flipped payload fails its checksum: cold, counted, no panic.
        let file = dir.join("outcomes.pds");
        let mut bytes = std::fs::read(&file).expect("snapshot exists");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&file, &bytes).expect("rewrite");
        let mut corrupt = OutcomeStore::open(&dir, &run, &telemetry);
        assert!(corrupt.load().is_empty());
        assert_eq!(corrupt.invalid(), 1, "corruption is a counted rejection");

        // A missing store is a quiet cold start.
        let missing = scratch("missing");
        let mut fresh = OutcomeStore::open(&missing, &run, &telemetry);
        assert!(fresh.load().is_empty());
        assert_eq!(fresh.invalid(), 0, "a missing file is not a rejection");

        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&missing);
    }
}
