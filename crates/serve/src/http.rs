//! A minimal, bounded HTTP/1.1 layer over `std::net`.
//!
//! The workspace is dependency-free beyond `std`, so the service speaks
//! just enough HTTP/1.1 for its JSON API: one request per connection
//! (`Connection: close` on every response), request line + headers +
//! `Content-Length` body, all size-bounded so a misbehaving client cannot
//! balloon memory. No chunked encoding, no keep-alive, no TLS — this is
//! an experiment-control endpoint, not an internet-facing server.

use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Longest accepted request line, in bytes.
const MAX_REQUEST_LINE: usize = 8 * 1024;
/// Most accepted header lines.
const MAX_HEADERS: usize = 64;
/// Longest accepted header line, in bytes.
const MAX_HEADER_LINE: usize = 8 * 1024;
/// Largest accepted request body, in bytes.
pub const MAX_BODY: usize = 1024 * 1024;

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The method verb, uppercased by the client (`GET`, `POST`, ...).
    pub method: String,
    /// The path component, percent-decoded (`/v1/evaluate`).
    pub path: String,
    /// Decoded query parameters, in order of appearance.
    pub query: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: String,
}

impl Request {
    /// First value of a query parameter.
    pub fn param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a connection could not be served; carries the status the client
/// should see.
#[derive(Debug)]
pub struct HttpError {
    /// The HTTP status to answer with.
    pub status: u16,
    /// A short human-readable reason.
    pub message: String,
}

impl HttpError {
    fn bad_request(message: impl Into<String>) -> Self {
        HttpError {
            status: 400,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}", self.status, self.message)
    }
}

impl std::error::Error for HttpError {}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError {
            status: 400,
            message: format!("read failed: {e}"),
        }
    }
}

/// Reads one bounded CRLF- (or LF-) terminated line.
fn read_line(reader: &mut impl BufRead, cap: usize) -> Result<String, HttpError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte)? {
            0 => break,
            _ => {
                if byte[0] == b'\n' {
                    break;
                }
                if line.len() >= cap {
                    return Err(HttpError {
                        status: 431,
                        message: "line too long".to_string(),
                    });
                }
                line.push(byte[0]);
            }
        }
    }
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line).map_err(|_| HttpError::bad_request("non-UTF-8 header data"))
}

/// Reads and parses one request from the stream.
///
/// # Errors
///
/// [`HttpError`] with a client-appropriate status: 400 for malformed
/// syntax, 413 for oversized bodies, 431 for oversized header lines.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, HttpError> {
    let mut reader = BufReader::new(stream);
    let request_line = read_line(&mut reader, MAX_REQUEST_LINE)?;
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| HttpError::bad_request("empty request line"))?
        .to_string();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::bad_request("missing request target"))?;
    let version = parts
        .next()
        .ok_or_else(|| HttpError::bad_request("missing HTTP version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError {
            status: 505,
            message: format!("unsupported version {version:?}"),
        });
    }
    let mut content_length = 0usize;
    for _ in 0..MAX_HEADERS {
        let line = read_line(&mut reader, MAX_HEADER_LINE)?;
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::bad_request(format!("malformed header {line:?}")));
        };
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| HttpError::bad_request("invalid Content-Length"))?;
        }
    }
    if content_length > MAX_BODY {
        return Err(HttpError {
            status: 413,
            message: format!("body of {content_length} bytes exceeds the {MAX_BODY} limit"),
        });
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let body =
        String::from_utf8(body).map_err(|_| HttpError::bad_request("non-UTF-8 request body"))?;
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    Ok(Request {
        method,
        path: percent_decode(path),
        query: parse_query(query),
        body,
    })
}

/// Decodes `%XX` escapes and `+` (as space); malformed escapes pass
/// through literally.
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' if i + 3 <= bytes.len() => {
                let hex = std::str::from_utf8(&bytes[i + 1..i + 3])
                    .ok()
                    .and_then(|h| u8::from_str_radix(h, 16).ok());
                match hex {
                    Some(byte) => {
                        out.push(byte);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Splits a query string into decoded key/value pairs.
fn parse_query(query: &str) -> Vec<(String, String)> {
    query
        .split('&')
        .filter(|pair| !pair.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(pair), String::new()),
        })
        .collect()
}

/// The reason phrase for the statuses this server emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Internal Server Error",
    }
}

/// Writes one complete response and flags the connection for closing.
/// Write failures are swallowed: the client hung up, and the server has
/// nothing better to do with the error.
pub fn respond(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &str,
) {
    let mut head = String::with_capacity(128);
    let _ = write!(
        head,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        reason(status),
        body.len(),
    );
    for (name, value) in extra_headers {
        let _ = write!(head, "{name}: {value}\r\n");
    }
    head.push_str("\r\n");
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};
    use std::thread;

    /// Round-trips raw request bytes through a real socket pair.
    fn parse_over_socket(raw: &[u8]) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").expect("ephemeral port");
        let addr = listener.local_addr().expect("bound");
        let raw = raw.to_vec();
        let writer = thread::spawn(move || {
            let mut client = TcpStream::connect(addr).expect("connect");
            client.write_all(&raw).expect("send");
        });
        let (mut conn, _) = listener.accept().expect("accept");
        let parsed = read_request(&mut conn);
        writer.join().expect("writer");
        parsed
    }

    #[test]
    fn parses_a_post_with_body_and_query() {
        let req = parse_over_socket(
            b"POST /v1/evaluate?mode=a+b&x=%2F HTTP/1.1\r\n\
              Host: localhost\r\n\
              Content-Length: 4\r\n\
              \r\n\
              {\"a\"",
        )
        .expect("valid request");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/evaluate");
        assert_eq!(req.param("mode"), Some("a b"));
        assert_eq!(req.param("x"), Some("/"));
        assert_eq!(req.param("missing"), None);
        assert_eq!(req.body, "{\"a\"");
    }

    #[test]
    fn parses_a_bodyless_get_with_lf_only_lines() {
        let req = parse_over_socket(b"GET /healthz HTTP/1.1\nHost: x\n\n").expect("lenient CRLF");
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert_eq!(req.body, "");
        assert!(req.query.is_empty());
    }

    #[test]
    fn rejects_oversized_and_malformed_requests() {
        let err = parse_over_socket(b"GET /x HTTP/2\r\n\r\n").expect_err("wrong version");
        assert_eq!(err.status, 505);
        let err = parse_over_socket(b"GET\r\n\r\n").expect_err("no target");
        assert_eq!(err.status, 400);
        let huge = format!(
            "POST /v1/evaluate HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        let err = parse_over_socket(huge.as_bytes()).expect_err("body too large");
        assert_eq!(err.status, 413);
        let err = parse_over_socket(b"GET /x HTTP/1.1\r\nbroken header line\r\n\r\n")
            .expect_err("bad header");
        assert_eq!(err.status, 400);
    }

    #[test]
    fn responses_are_well_formed() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("ephemeral port");
        let addr = listener.local_addr().expect("bound");
        let reader = thread::spawn(move || {
            let mut client = TcpStream::connect(addr).expect("connect");
            let mut out = String::new();
            client.read_to_string(&mut out).expect("read");
            out
        });
        let (mut conn, _) = listener.accept().expect("accept");
        respond(
            &mut conn,
            429,
            "application/json",
            &[("Retry-After", "1".to_string())],
            "{\"ok\": false}",
        );
        drop(conn);
        let raw = reader.join().expect("reader");
        assert!(
            raw.starts_with("HTTP/1.1 429 Too Many Requests\r\n"),
            "{raw}"
        );
        assert!(raw.contains("Retry-After: 1\r\n"), "{raw}");
        assert!(raw.contains("Connection: close\r\n"), "{raw}");
        assert!(raw.contains("Content-Length: 13\r\n"), "{raw}");
        assert!(raw.ends_with("{\"ok\": false}"), "{raw}");
    }
}
