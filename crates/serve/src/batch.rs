//! Request batching, coalescing and admission control.
//!
//! Simulation requests do not go straight to the backend: they pass
//! through a [`BatchQueue`](crate::batch::BatchQueue) that
//!
//! * **coalesces** — identical cells (same [`CellSpec::key`](pipedepth_core::eval::CellSpec::key) and spec)
//!   submitted by concurrent requests share one [`Slot`](crate::batch::Slot), so the backend
//!   sees each distinct cell once per flight no matter how many clients
//!   ask for it;
//! * **batches** — dispatch workers drain up to `batch_max` queued cells
//!   at a time and answer them with a single
//!   [`Evaluator::evaluate_batch`](pipedepth_core::eval::Evaluator::evaluate_batch)
//!   call, amortising the runner's fan-out cost;
//! * **sheds** — admission is checked atomically per request against a
//!   bounded queue: if a request's new cells do not fit, *none* of them
//!   are enqueued and the caller gets a [`Shed`](crate::batch::Shed) to turn into a 429.
//!
//! The queue knows nothing about HTTP or backends; the service layer
//! owns a queue, spawns workers that loop on [`BatchQueue::next_batch`](crate::batch::BatchQueue::next_batch),
//! and completes batches with [`BatchQueue::finish`](crate::batch::BatchQueue::finish).

use pipedepth_core::eval::CellSpec;
use pipedepth_core::eval::EvalOutcome;
use pipedepth_core::EvalError;
use pipedepth_telemetry::Stopwatch;
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Duration;

/// One cell's completion slot, shared by every request waiting on it.
#[derive(Debug, Default)]
pub struct Slot {
    state: Mutex<Option<Result<EvalOutcome, EvalError>>>,
    done: Condvar,
}

impl Slot {
    /// Fills the slot and wakes every waiter. Later fills are ignored
    /// (first result wins; results are deterministic anyway).
    pub fn fill(&self, result: Result<EvalOutcome, EvalError>) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if state.is_none() {
            *state = Some(result);
            self.done.notify_all();
        }
    }

    /// True when the slot has been filled.
    pub fn is_done(&self) -> bool {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .is_some()
    }

    /// Blocks until the slot is filled.
    pub fn wait(&self) -> Result<EvalOutcome, EvalError> {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(result) = state.as_ref() {
                return result.clone();
            }
            state = self
                .done
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Blocks until the slot is filled or `budget` elapses; `None` on
    /// timeout.
    pub fn wait_for(&self, budget: Duration) -> Option<Result<EvalOutcome, EvalError>> {
        let started = Stopwatch::start();
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(result) = state.as_ref() {
                return Some(result.clone());
            }
            let elapsed = Duration::from_micros(started.elapsed_us() as u64);
            let remaining = budget.checked_sub(elapsed)?;
            let (next, _timed_out) = self
                .done
                .wait_timeout(state, remaining)
                .unwrap_or_else(PoisonError::into_inner);
            state = next;
        }
    }
}

/// Why a request was refused admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shed {
    /// The bounded queue cannot hold the request's new cells. Carries the
    /// seconds a client should wait before retrying.
    Overloaded {
        /// Suggested client back-off, in seconds (`Retry-After`).
        retry_after_s: u64,
    },
    /// The queue is draining for shutdown; no new work is admitted.
    Closing,
}

/// What one admitted request got back: its slots, in request order, plus
/// how much of it was coalesced onto work already queued or in flight.
#[derive(Debug)]
pub struct Admitted {
    /// One slot per submitted cell, in order. Coalesced cells share slots.
    pub slots: Vec<Arc<Slot>>,
    /// Cells that attached to an existing slot instead of enqueuing.
    pub coalesced: u64,
    /// Cells that enqueued new work.
    pub enqueued: u64,
    /// Cells answered from the caller's probe with a pre-filled slot.
    pub cached: u64,
}

/// One queued unit of work.
#[derive(Debug)]
pub struct QueuedCell {
    /// The cell's content key (cached to avoid re-hashing).
    pub key: u64,
    /// The cell to evaluate.
    pub spec: CellSpec,
    /// Where the result goes.
    pub slot: Arc<Slot>,
}

#[derive(Debug, Default)]
struct QueueInner {
    /// Unique cells awaiting dispatch, FIFO.
    pending: VecDeque<QueuedCell>,
    /// Every live (queued or dispatched, not yet completed) cell by key —
    /// the coalescing index. Buckets resolve key collisions by spec
    /// equality.
    live: BTreeMap<u64, Vec<(CellSpec, Arc<Slot>)>>,
    closed: bool,
}

/// The bounded, coalescing dispatch queue. See the module docs.
#[derive(Debug)]
pub struct BatchQueue {
    inner: Mutex<QueueInner>,
    ready: Condvar,
    /// Most cells allowed in `pending` at once.
    cap: usize,
    /// Most cells a worker drains per dispatch.
    batch_max: usize,
}

impl BatchQueue {
    /// A queue admitting at most `cap` pending cells and dispatching at
    /// most `batch_max` (clamped to ≥ 1) per batch.
    pub fn new(cap: usize, batch_max: usize) -> Self {
        BatchQueue {
            inner: Mutex::default(),
            ready: Condvar::new(),
            cap,
            batch_max: batch_max.max(1),
        }
    }

    /// Admits a request's cells atomically: either every new cell fits in
    /// the queue (and the request gets one slot per cell, coalesced where
    /// an identical cell is already live) or nothing is enqueued.
    ///
    /// # Errors
    ///
    /// [`Shed::Overloaded`] when the new cells would overflow the queue,
    /// [`Shed::Closing`] once [`close`](BatchQueue::close) was called.
    pub fn submit(&self, cells: &[CellSpec]) -> Result<Admitted, Shed> {
        self.submit_with(cells, |_| None)
    }

    /// Like [`submit`](BatchQueue::submit), but consults `probe` under the
    /// queue lock for cells missing from the live index: a probe hit
    /// answers the cell with a pre-filled slot instead of enqueuing it.
    ///
    /// The service passes its outcome cache as the probe. That closes the
    /// window where a dispatch retires a cell from the live index just
    /// after a caller's pre-submit cache check missed: workers publish
    /// outcomes to the cache *before* [`finish`](BatchQueue::finish)
    /// retires the cells (which happens under this same lock), so a
    /// live-index miss here guarantees the probe sees the result.
    ///
    /// # Errors
    ///
    /// [`Shed::Overloaded`] when the new cells would overflow the queue,
    /// [`Shed::Closing`] once [`close`](BatchQueue::close) was called.
    pub fn submit_with(
        &self,
        cells: &[CellSpec],
        probe: impl Fn(&CellSpec) -> Option<EvalOutcome>,
    ) -> Result<Admitted, Shed> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if inner.closed {
            return Err(Shed::Closing);
        }
        // Pass 1: resolve against the live index without mutating it, so
        // an overloaded request leaves no trace.
        let mut resolved: Vec<Option<Arc<Slot>>> = Vec::with_capacity(cells.len());
        let mut fresh: Vec<(usize, u64)> = Vec::new();
        let mut cached = 0u64;
        for (i, cell) in cells.iter().enumerate() {
            let key = cell.key();
            let existing = inner
                .live
                .get(&key)
                .and_then(|bucket| bucket.iter().find(|(s, _)| s == cell))
                .map(|(_, slot)| Arc::clone(slot));
            // In-request duplicates of a fresh cell coalesce too.
            let in_request = existing.is_none().then(|| {
                fresh
                    .iter()
                    .find(|&&(j, k)| k == key && &cells[j] == cell)
                    .map(|&(j, _)| j)
            });
            match (existing, in_request.flatten()) {
                (Some(slot), _) => resolved.push(Some(slot)),
                (None, Some(_)) => resolved.push(None), // patched in pass 2
                (None, None) => match probe(cell) {
                    Some(out) => {
                        let slot = Arc::new(Slot::default());
                        slot.fill(Ok(out));
                        cached += 1;
                        resolved.push(Some(slot));
                    }
                    None => {
                        fresh.push((i, key));
                        resolved.push(None);
                    }
                },
            }
        }
        if inner.pending.len() + fresh.len() > self.cap {
            return Err(Shed::Overloaded { retry_after_s: 1 });
        }
        // Pass 2: commit the fresh cells.
        for &(i, key) in &fresh {
            let slot = Arc::new(Slot::default());
            inner
                .live
                .entry(key)
                .or_default()
                .push((cells[i].clone(), Arc::clone(&slot)));
            inner.pending.push_back(QueuedCell {
                key,
                spec: cells[i].clone(),
                slot,
            });
        }
        let slots: Vec<Arc<Slot>> = cells
            .iter()
            .zip(&resolved)
            .map(|(cell, slot)| match slot {
                Some(slot) => Arc::clone(slot),
                None => {
                    let key = cell.key();
                    inner
                        .live
                        .get(&key)
                        .and_then(|bucket| bucket.iter().find(|(s, _)| s == cell))
                        .map(|(_, slot)| Arc::clone(slot))
                        // The cell was either live already or committed in
                        // pass 2; a miss here is unreachable, but fail soft
                        // with a pre-filled error slot rather than panic.
                        .unwrap_or_else(|| {
                            let slot = Arc::new(Slot::default());
                            slot.fill(Err(EvalError::Backend {
                                backend: "serve".to_string(),
                                message: "queue admission lost a cell".to_string(),
                            }));
                            slot
                        })
                }
            })
            .collect();
        let coalesced = cells.len() as u64 - fresh.len() as u64 - cached;
        if !fresh.is_empty() {
            self.ready.notify_all();
        }
        Ok(Admitted {
            slots,
            coalesced,
            enqueued: fresh.len() as u64,
            cached,
        })
    }

    /// Blocks until work is queued (returning up to `batch_max` cells) or
    /// the queue is closed *and* drained (returning `None`). Dispatch
    /// workers loop on this.
    pub fn next_batch(&self) -> Option<Vec<QueuedCell>> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if !inner.pending.is_empty() {
                let take = self.batch_max.min(inner.pending.len());
                return Some(inner.pending.drain(..take).collect());
            }
            if inner.closed {
                return None;
            }
            inner = self
                .ready
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Completes a dispatched batch: fills every slot and retires the
    /// cells from the coalescing index.
    pub fn finish(&self, batch: Vec<QueuedCell>, results: Vec<Result<EvalOutcome, EvalError>>) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let mut results = results.into_iter();
        for cell in batch {
            let result = results.next().unwrap_or_else(|| {
                Err(EvalError::Backend {
                    backend: "serve".to_string(),
                    message: "backend returned too few results for the batch".to_string(),
                })
            });
            cell.slot.fill(result);
            if let Some(bucket) = inner.live.get_mut(&cell.key) {
                bucket.retain(|(s, _)| s != &cell.spec);
                if bucket.is_empty() {
                    inner.live.remove(&cell.key);
                }
            }
        }
    }

    /// Cells currently awaiting dispatch.
    pub fn depth(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pending
            .len()
    }

    /// Stops admitting work and wakes every worker. Workers drain what is
    /// already queued (so no admitted request loses its response), then
    /// [`next_batch`](BatchQueue::next_batch) returns `None` and they
    /// exit.
    pub fn close(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.closed = true;
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipedepth_core::eval::WorkloadProfile;

    fn cell(depth: u32) -> CellSpec {
        CellSpec::new(
            "w",
            WorkloadProfile {
                alpha: 2.0,
                gamma: 0.4,
                hazard_rate: 0.1,
                kappa: 0.2,
                memory_time_fo4: 10.0,
            },
            depth,
        )
    }

    fn outcome(depth: u32) -> EvalOutcome {
        EvalOutcome {
            depth,
            cpi: 1.0,
            frequency: 0.1,
            time_per_instruction_fo4: 10.0,
            throughput: 0.1,
            power_gated: 1.0,
            power_ungated: 2.0,
            metric_gated: [0.1; 3],
            metric_ungated: [0.05; 3],
            profile: cell(depth).profile,
        }
    }

    #[test]
    fn identical_cells_share_one_slot() {
        let queue = BatchQueue::new(8, 4);
        let a = queue
            .submit(&[cell(4), cell(4), cell(6)])
            .expect("admitted");
        assert_eq!(a.enqueued, 2, "in-request duplicate coalesces");
        assert_eq!(a.coalesced, 1);
        assert!(Arc::ptr_eq(&a.slots[0], &a.slots[1]));
        let b = queue.submit(&[cell(4)]).expect("admitted");
        assert_eq!((b.enqueued, b.coalesced), (0, 1), "cross-request coalesce");
        assert!(Arc::ptr_eq(&a.slots[0], &b.slots[0]));
        assert_eq!(queue.depth(), 2, "two unique cells pending");
    }

    #[test]
    fn admission_is_atomic_and_bounded() {
        let queue = BatchQueue::new(2, 4);
        queue.submit(&[cell(2), cell(3)]).expect("fills the queue");
        // One coalescing cell + one fresh cell: the fresh one does not fit.
        let shed = queue.submit(&[cell(2), cell(9)]).expect_err("over cap");
        assert!(matches!(shed, Shed::Overloaded { retry_after_s: 1 }));
        assert_eq!(queue.depth(), 2, "rejected request left no residue");
        // Pure coalescing still admits at capacity.
        let a = queue.submit(&[cell(2)]).expect("no new cells needed");
        assert_eq!(a.coalesced, 1);
    }

    #[test]
    fn batches_drain_in_order_and_fill_waiters() {
        let queue = BatchQueue::new(16, 2);
        let a = queue
            .submit(&[cell(2), cell(3), cell(4)])
            .expect("admitted");
        let batch = queue.next_batch().expect("work available");
        assert_eq!(batch.len(), 2, "batch_max bounds the drain");
        assert_eq!(batch[0].spec.depth, 2);
        let results = batch.iter().map(|c| Ok(outcome(c.spec.depth))).collect();
        queue.finish(batch, results);
        assert_eq!(a.slots[0].wait().expect("filled").depth, 2);
        assert!(a.slots[0].is_done());
        assert!(!a.slots[2].is_done(), "third cell still pending");
        assert_eq!(queue.depth(), 1);
    }

    #[test]
    fn wait_for_times_out_then_sees_late_results() {
        let queue = BatchQueue::new(4, 4);
        let a = queue.submit(&[cell(5)]).expect("admitted");
        assert_eq!(a.slots[0].wait_for(Duration::from_millis(5)), None);
        let batch = queue.next_batch().expect("work");
        queue.finish(batch, vec![Ok(outcome(5))]);
        let result = a.slots[0]
            .wait_for(Duration::from_millis(5))
            .expect("already done");
        assert_eq!(result.expect("ok").depth, 5);
    }

    #[test]
    fn close_drains_then_stops_admitting() {
        let queue = Arc::new(BatchQueue::new(8, 8));
        let a = queue.submit(&[cell(2)]).expect("admitted");
        queue.close();
        assert_eq!(
            queue.submit(&[cell(3)]).expect_err("closing"),
            Shed::Closing
        );
        // A worker still drains the admitted cell…
        let batch = queue.next_batch().expect("drain continues after close");
        queue.finish(batch, vec![Ok(outcome(2))]);
        assert!(a.slots[0].wait().is_ok());
        // …and only then sees the end of the queue.
        assert!(queue.next_batch().is_none());
    }

    #[test]
    fn probe_hits_answer_without_enqueuing() {
        let queue = BatchQueue::new(4, 4);
        let a = queue
            .submit_with(&[cell(3), cell(4)], |spec| {
                (spec.depth == 3).then(|| outcome(3))
            })
            .expect("admitted");
        assert_eq!((a.enqueued, a.coalesced, a.cached), (1, 0, 1));
        assert_eq!(a.slots[0].wait().expect("pre-filled").depth, 3);
        assert!(!a.slots[1].is_done(), "probe miss still queues");
        assert_eq!(queue.depth(), 1, "only the probe miss enqueued");
        // A live cell is never probed: coalescing takes precedence.
        let b = queue
            .submit_with(&[cell(4)], |_| panic!("live cells must not probe"))
            .expect("admitted");
        assert_eq!((b.enqueued, b.coalesced, b.cached), (0, 1, 0));
    }

    #[test]
    fn concurrent_submitters_coalesce_to_one_dispatch() {
        let queue = Arc::new(BatchQueue::new(64, 64));
        let slots: Vec<Arc<Slot>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let queue = Arc::clone(&queue);
                    scope.spawn(move || queue.submit(&[cell(7)]).expect("admitted").slots.remove(0))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("no panic"))
                .collect()
        });
        assert_eq!(queue.depth(), 1, "eight submitters, one queued cell");
        let batch = queue.next_batch().expect("work");
        assert_eq!(batch.len(), 1);
        queue.finish(batch, vec![Ok(outcome(7))]);
        for slot in slots {
            assert_eq!(slot.wait().expect("shared result").depth, 7);
        }
    }
}
