//! Hand-rolled JSON reader for the wire protocol.
//!
//! The workspace is offline — no serde — so the service parses request
//! bodies with this small recursive-descent reader and renders responses
//! through [`pipedepth_telemetry::json`]'s escaping/number helpers (the
//! same ones the manifest writer uses). Objects keep their fields as an
//! ordered pair list, which makes unknown-field tolerance trivial: the
//! wire decoder looks up the fields it knows and ignores the rest.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, as an `f64`.
    Number(f64),
    /// A string, unescaped.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, as its fields in source order. Duplicate keys keep the
    /// first occurrence on lookup.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Looks up an object field by name; `None` for missing fields and
    /// non-objects.
    pub fn get(&self, field: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == field).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a whole number in
    /// `u64` range.
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64 {
            Some(n as u64)
        } else {
            None
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Why a body failed to parse, with a byte offset for diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// What was expected or found.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON document, rejecting trailing non-whitespace.
///
/// # Errors
///
/// Returns a [`ParseError`] locating the first offending byte.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(value)
}

/// Nesting bound: the service's wire types are at most a few levels deep,
/// so anything deeper is a malformed (or adversarial) body, rejected
/// before it can exhaust the stack.
const MAX_DEPTH: usize = 32;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", byte as char)))
        }
    }

    fn eat_keyword(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected \"{word}\"")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.eat_keyword("true", Json::Bool(true)),
            Some(b'f') => self.eat_keyword("false", Json::Bool(false)),
            Some(b'n') => self.eat_keyword("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.eat(b'{')?;
        self.depth += 1;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Object(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.eat(b'[')?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|b| std::str::from_utf8(b).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogates and other invalid scalars degrade to
                            // the replacement character; the wire types never
                            // round-trip them.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => {
                            return Err(self.err(format!("invalid escape {:?}", other as char)))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let ch = s
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("empty string tail"))?;
                    if ch.is_control() {
                        return Err(self.err("unescaped control character"));
                    }
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        let n: f64 = text.parse().map_err(|_| ParseError {
            offset: start,
            message: format!("invalid number {text:?}"),
        })?;
        if !n.is_finite() {
            return Err(ParseError {
                offset: start,
                message: format!("number {text:?} out of range"),
            });
        }
        Ok(Json::Number(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("-2.5e2").unwrap(), Json::Number(-250.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Json::String("a\nb".into()));
        assert_eq!(parse("\"\\u0041\"").unwrap(), Json::String("A".into()));
    }

    #[test]
    fn parses_nested_structures_and_lookup() {
        let doc = parse(r#"{"a": [1, 2, {"b": "c"}], "d": null, "a": 9}"#).unwrap();
        let a = doc.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0].as_u64(), Some(1));
        assert_eq!(a[2].get("b").and_then(Json::as_str), Some("c"));
        assert_eq!(doc.get("d"), Some(&Json::Null));
        assert_eq!(doc.get("missing"), None);
        assert_eq!(
            doc.get("a").unwrap().as_array().unwrap().len(),
            3,
            "duplicate keys keep the first occurrence"
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "1 2",
            "\"unterminated",
            "{\"a\":}",
            "nan",
            "1e999",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn rejects_pathological_nesting() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        let err = parse(&deep).unwrap_err();
        assert!(err.message.contains("nesting"), "{err}");
    }

    #[test]
    fn round_trips_through_the_telemetry_writer() {
        let escaped = pipedepth_telemetry::json::escape("say \"hi\"\n");
        let doc = parse(&format!("{{\"msg\": \"{escaped}\"}}")).unwrap();
        assert_eq!(doc.get("msg").and_then(Json::as_str), Some("say \"hi\"\n"));
    }
}
