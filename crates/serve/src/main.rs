//! The `pipedepth-serve` binary: flags in, blocking server out.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p pipedepth-serve -- \
//!     [--port N] [--addr HOST] [--threads N] [--workers N] \
//!     [--queue-cap N] [--batch-max N] [--deadline-ms N] \
//!     [--backend sim|model|auto] [--no-cache] [--store DIR] [--full]
//! ```
//!
//! The process serves until `POST /v1/shutdown`, drains, prints the final
//! stats line, and exits 0.

use pipedepth_experiments::sweep::RunConfig;
use pipedepth_serve::service::ServiceConfig;
use pipedepth_serve::Server;
use pipedepth_telemetry::Telemetry;
use std::process::exit;

struct Options {
    addr: String,
    port: u16,
    config: ServiceConfig,
}

fn usage() -> ! {
    eprintln!(
        "usage: pipedepth-serve [--port N] [--addr HOST] [--threads N] [--workers N]\n\
         \u{20}                      [--queue-cap N] [--batch-max N] [--deadline-ms N]\n\
         \u{20}                      [--backend sim|model|auto] [--no-cache] [--store DIR]\n\
         \u{20}                      [--full]\n\
         \n\
         \u{20} --port N           listen port (default 8471; 0 picks an ephemeral port)\n\
         \u{20} --addr HOST        listen address (default 127.0.0.1)\n\
         \u{20} --threads N        simulation worker threads (default 2)\n\
         \u{20} --workers N        dispatch workers draining the batch queue (default 1)\n\
         \u{20} --queue-cap N      cells admitted before shedding 429s (default 1024)\n\
         \u{20} --batch-max N      cells per backend dispatch (default 32)\n\
         \u{20} --deadline-ms N    default per-request deadline; 0 = none (default 0)\n\
         \u{20} --backend B        pin every request to one backend (default: per-request)\n\
         \u{20} --no-cache         disable the outcome and report caches\n\
         \u{20} --store DIR        persistent outcome store: warm-start the simulation\n\
         \u{20}                    cache from DIR's snapshot and snapshot back into it\n\
         \u{20}                    (periodically and at drain); ignored with --no-cache\n\
         \u{20} --full             full-length run configuration for template cells\n\
         \u{20}                    (default: the quick configuration)"
    );
    exit(2)
}

fn parse_args() -> Options {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = Options {
        addr: "127.0.0.1".to_string(),
        port: 8471,
        config: ServiceConfig::default(),
    };
    let value = |args: &[String], i: usize, flag: &str| -> String {
        args.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("{flag} needs a value");
            exit(2)
        })
    };
    let parse = |text: String, flag: &str| -> u64 {
        text.parse().unwrap_or_else(|_| {
            eprintln!("{flag} needs an unsigned integer, got {text:?}");
            exit(2)
        })
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--port" => {
                opts.port = parse(value(&args, i, "--port"), "--port") as u16;
                i += 1;
            }
            "--addr" => {
                opts.addr = value(&args, i, "--addr");
                i += 1;
            }
            "--threads" => {
                opts.config.threads = parse(value(&args, i, "--threads"), "--threads") as usize;
                i += 1;
            }
            "--workers" => {
                opts.config.workers = parse(value(&args, i, "--workers"), "--workers") as usize;
                i += 1;
            }
            "--queue-cap" => {
                opts.config.queue_cap =
                    parse(value(&args, i, "--queue-cap"), "--queue-cap") as usize;
                i += 1;
            }
            "--batch-max" => {
                opts.config.batch_max =
                    parse(value(&args, i, "--batch-max"), "--batch-max") as usize;
                i += 1;
            }
            "--deadline-ms" => {
                opts.config.deadline_ms = parse(value(&args, i, "--deadline-ms"), "--deadline-ms");
                i += 1;
            }
            "--backend" => {
                let text = value(&args, i, "--backend");
                opts.config.backend = Some(text.parse().unwrap_or_else(|e| {
                    eprintln!("{e}");
                    exit(2)
                }));
                i += 1;
            }
            "--no-cache" => opts.config.cache = false,
            "--store" => {
                opts.config.store = Some(std::path::PathBuf::from(value(&args, i, "--store")));
                i += 1;
            }
            "--full" => opts.config.run = RunConfig::default(),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage()
            }
        }
        i += 1;
    }
    opts
}

fn main() {
    let opts = parse_args();
    let addr = format!("{}:{}", opts.addr, opts.port);
    let server = Server::bind(&addr, opts.config, Telemetry::new()).unwrap_or_else(|e| {
        eprintln!("failed to bind {addr}: {e}");
        exit(1)
    });
    match server.local_addr() {
        Ok(bound) => println!("pipedepth-serve listening on http://{bound}"),
        Err(_) => println!("pipedepth-serve listening on http://{addr}"),
    }
    let stats = server.run();
    println!("{stats}");
}
