//! `pipedepth-serve`: a batched, backpressured evaluation service over
//! the `pipedepth` [`Evaluator`](pipedepth_core::eval::Evaluator) layer.
//!
//! The workspace's experiment drivers answer depth-evaluation questions
//! in-process. This crate puts the same evaluation layer behind a small
//! HTTP/1.1 JSON API — built entirely on `std::net`, no new dependencies
//! — so sweeps, notebooks and other tools can share one warm simulator
//! and one result cache:
//!
//! | Endpoint | What it does |
//! |---|---|
//! | `POST /v1/evaluate` | Evaluate a batch of `(workload, depth)` cells on `sim`, `model`, or `auto` |
//! | `GET /v1/optimum?workload=…&m=…` | The analytic optimum depth for `BIPS^m/W` |
//! | `GET /healthz` | Liveness |
//! | `GET /metrics` | Full telemetry snapshot (`serve.*`, `runner.*`, `sim.*`) as JSON |
//! | `POST /v1/shutdown` | Graceful drain: in-flight requests finish, queue empties, stats line prints |
//!
//! The interesting parts live in the layers:
//!
//! * [`wire`] — versioned request/response types with a hand-rolled,
//!   unknown-field-tolerant JSON codec ([`json`]);
//! * [`batch`] — single-flight coalescing of identical cells, bounded
//!   admission (429 + `Retry-After` on overload), batch dispatch;
//! * [`service`] — backend selection, the per-backend sharded outcome
//!   cache (the same [`ShardedCache`](pipedepth_core::eval::ShardedCache)
//!   the repro driver's runner uses), and deadline handling: `auto`
//!   requests degrade to the closed-form model when the budget rules
//!   simulation out;
//! * [`store`] — the persistent outcome store behind `--store`: a
//!   restarted server warm-starts its simulation cache from the snapshot
//!   the previous process published at drain;
//! * [`http`] + [`server`] — a minimal bounded HTTP/1.1 front end with
//!   ordered graceful shutdown.
//!
//! # Examples
//!
//! ```no_run
//! use pipedepth_serve::server::Server;
//! use pipedepth_serve::service::ServiceConfig;
//! use pipedepth_telemetry::Telemetry;
//!
//! let server = Server::bind("127.0.0.1:0", ServiceConfig::default(), Telemetry::new())?;
//! println!("listening on {}", server.local_addr()?);
//! let stats = server.run(); // blocks until POST /v1/shutdown
//! println!("{stats}");
//! # Ok::<(), std::io::Error>(())
//! ```

/// Request coalescing, batching and admission control.
pub mod batch;
/// The bounded `std::net` HTTP/1.1 layer.
pub mod http;
/// The hand-rolled JSON reader behind the wire codec.
pub mod json;
/// Socket lifecycle, routing and graceful shutdown.
pub mod server;
/// Backends, caching, deadlines and dispatch.
pub mod service;
/// The persistent outcome store behind `--store` (warm restarts).
pub mod store;
/// Versioned wire request/response types.
pub mod wire;

/// The HTTP server (see [`server`]).
pub use server::Server;
/// The HTTP-free service core and its configuration (see [`service`]).
pub use service::{EvalService, ServiceConfig};
