//! Versioned wire types for the evaluation service.
//!
//! Everything the service reads or writes over HTTP lives here, under a
//! version module ([`v1`](crate::wire::v1)) so a future `v2` can coexist behind the same
//! server. Decoding is tolerant: unknown fields are ignored (pinned by
//! tests), missing optional fields take the service's defaults, and every
//! response carries a `schema_version` field so clients can dispatch.
//! Encoding reuses the telemetry crate's JSON escaping and
//! shortest-roundtrip number rendering — the same helpers the run manifest
//! is written with — so numbers survive a decode/encode round trip bit for
//! bit.

/// Version 1 of the wire protocol.
pub mod v1 {
    use crate::json::{parse, Json, ParseError};
    use pipedepth_core::eval::{CellSpec, EvalOutcome, WorkloadProfile};
    use pipedepth_core::EvalError;
    use pipedepth_telemetry::json::{escape, number};
    use std::fmt;
    use std::fmt::Write as _;
    use std::str::FromStr;

    /// The protocol version stamped on every v1 request and response.
    pub const SCHEMA_VERSION: u64 = 1;

    /// Which backend a request asks for.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
    pub enum WireBackend {
        /// Cycle-accurate simulation; a missed deadline is an error.
        Sim,
        /// Closed-form analytic model; answers in microseconds.
        Model,
        /// Simulation when the deadline allows, analytic degradation
        /// (flagged `degraded: true`) when it does not.
        #[default]
        Auto,
    }

    impl WireBackend {
        /// The stable wire name.
        pub fn as_str(self) -> &'static str {
            match self {
                WireBackend::Sim => "sim",
                WireBackend::Model => "model",
                WireBackend::Auto => "auto",
            }
        }
    }

    impl fmt::Display for WireBackend {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(self.as_str())
        }
    }

    impl FromStr for WireBackend {
        type Err = DecodeError;

        fn from_str(s: &str) -> Result<Self, Self::Err> {
            match s {
                "sim" => Ok(WireBackend::Sim),
                "model" => Ok(WireBackend::Model),
                "auto" => Ok(WireBackend::Auto),
                other => Err(DecodeError::field(
                    "backend",
                    format!("unknown backend {other:?} (valid: sim, model, auto)"),
                )),
            }
        }
    }

    /// Why a request body was rejected.
    #[derive(Debug, Clone, PartialEq)]
    pub enum DecodeError {
        /// The body is not valid JSON.
        Syntax(ParseError),
        /// The body is JSON but a field is missing, mistyped or invalid.
        Field {
            /// The offending field.
            field: &'static str,
            /// What was wrong.
            message: String,
        },
        /// The body declares a schema version this module does not speak.
        Version {
            /// The declared version.
            declared: u64,
        },
    }

    impl DecodeError {
        fn field(field: &'static str, message: impl Into<String>) -> Self {
            DecodeError::Field {
                field,
                message: message.into(),
            }
        }
    }

    impl fmt::Display for DecodeError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                DecodeError::Syntax(e) => write!(f, "{e}"),
                DecodeError::Field { field, message } => {
                    write!(f, "field \"{field}\": {message}")
                }
                DecodeError::Version { declared } => write!(
                    f,
                    "unsupported schema_version {declared} (this server speaks {SCHEMA_VERSION})"
                ),
            }
        }
    }

    impl std::error::Error for DecodeError {}

    impl From<ParseError> for DecodeError {
        fn from(e: ParseError) -> Self {
            DecodeError::Syntax(e)
        }
    }

    /// One requested cell, before the service fills defaults.
    ///
    /// Only `workload` and `depth` are required; the profile defaults to
    /// the service's fitted profile for the workload, and the sizing and
    /// power-calibration fields default to the service configuration.
    #[derive(Debug, Clone, PartialEq)]
    pub struct WireCell {
        /// Stable workload id (e.g. `"specint-03"`).
        pub workload: String,
        /// Pipeline depth, in stages.
        pub depth: u32,
        /// Optional explicit profile; `None` asks the service to use the
        /// workload's fitted profile.
        pub profile: Option<WorkloadProfile>,
        /// Optional warmup-instruction override.
        pub warmup: Option<u64>,
        /// Optional measured-instruction override.
        pub instructions: Option<u64>,
        /// Optional leakage-fraction override.
        pub leakage_fraction: Option<f64>,
        /// Optional reference-depth override.
        pub ref_depth: Option<f64>,
        /// Optional latch-growth override.
        pub latch_growth: Option<f64>,
    }

    impl WireCell {
        /// A cell naming only the required fields.
        pub fn new(workload: impl Into<String>, depth: u32) -> Self {
            WireCell {
                workload: workload.into(),
                depth,
                profile: None,
                warmup: None,
                instructions: None,
                leakage_fraction: None,
                ref_depth: None,
                latch_growth: None,
            }
        }

        /// Resolves the wire cell into an evaluation [`CellSpec`], taking
        /// defaults from a template cell (the service builds the template
        /// from its configuration and the workload's fitted profile).
        pub fn resolve(&self, template: &CellSpec) -> CellSpec {
            CellSpec {
                workload: self.workload.clone(),
                profile: self.profile.unwrap_or(template.profile),
                depth: self.depth,
                warmup: self.warmup.unwrap_or(template.warmup),
                instructions: self.instructions.unwrap_or(template.instructions),
                leakage_fraction: self.leakage_fraction.unwrap_or(template.leakage_fraction),
                ref_depth: self.ref_depth.unwrap_or(template.ref_depth),
                latch_growth: self.latch_growth.unwrap_or(template.latch_growth),
            }
        }
    }

    /// A `POST /v1/evaluate` request body.
    #[derive(Debug, Clone, PartialEq)]
    pub struct EvaluateRequest {
        /// Requested backend (`auto` when omitted).
        pub backend: WireBackend,
        /// Per-request deadline in milliseconds; `None` uses the server's
        /// default. `Some(0)` means "no simulation time at all": `auto`
        /// degrades to the analytic model, `sim` misses the deadline.
        pub deadline_ms: Option<u64>,
        /// The cells to evaluate, answered in order.
        pub cells: Vec<WireCell>,
    }

    impl EvaluateRequest {
        /// Decodes a request body.
        ///
        /// Unknown fields anywhere in the document are ignored, so newer
        /// clients can talk to this server. A declared `schema_version`
        /// other than [`SCHEMA_VERSION`] is rejected; an omitted one is
        /// accepted as v1.
        ///
        /// # Errors
        ///
        /// Returns a [`DecodeError`] naming the first offending field.
        pub fn decode(body: &str) -> Result<Self, DecodeError> {
            let doc = parse(body)?;
            if let Some(version) = doc.get("schema_version") {
                let declared = version
                    .as_u64()
                    .ok_or_else(|| DecodeError::field("schema_version", "must be an integer"))?;
                if declared != SCHEMA_VERSION {
                    return Err(DecodeError::Version { declared });
                }
            }
            let backend = match doc.get("backend") {
                None => WireBackend::default(),
                Some(v) => v
                    .as_str()
                    .ok_or_else(|| DecodeError::field("backend", "must be a string"))?
                    .parse()?,
            };
            let deadline_ms = match doc.get("deadline_ms") {
                None | Some(Json::Null) => None,
                Some(v) => Some(v.as_u64().ok_or_else(|| {
                    DecodeError::field("deadline_ms", "must be a non-negative integer")
                })?),
            };
            let cells = doc
                .get("cells")
                .ok_or_else(|| DecodeError::field("cells", "required"))?
                .as_array()
                .ok_or_else(|| DecodeError::field("cells", "must be an array"))?
                .iter()
                .map(decode_cell)
                .collect::<Result<Vec<WireCell>, DecodeError>>()?;
            if cells.is_empty() {
                return Err(DecodeError::field("cells", "must not be empty"));
            }
            Ok(EvaluateRequest {
                backend,
                deadline_ms,
                cells,
            })
        }

        /// Encodes the request as a v1 body (client side; also used by the
        /// round-trip tests).
        pub fn encode(&self) -> String {
            let mut out = String::new();
            let _ = write!(
                out,
                "{{\"schema_version\": {SCHEMA_VERSION}, \"backend\": \"{}\"",
                self.backend
            );
            if let Some(deadline) = self.deadline_ms {
                let _ = write!(out, ", \"deadline_ms\": {deadline}");
            }
            out.push_str(", \"cells\": [");
            for (i, cell) in self.cells.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                encode_cell(&mut out, cell);
            }
            out.push_str("]}");
            out
        }
    }

    fn opt_f64(doc: &Json, field: &'static str) -> Result<Option<f64>, DecodeError> {
        match doc.get(field) {
            None | Some(Json::Null) => Ok(None),
            Some(v) => v
                .as_f64()
                .map(Some)
                .ok_or_else(|| DecodeError::field(field, "must be a number")),
        }
    }

    fn opt_u64(doc: &Json, field: &'static str) -> Result<Option<u64>, DecodeError> {
        match doc.get(field) {
            None | Some(Json::Null) => Ok(None),
            Some(v) => v
                .as_u64()
                .map(Some)
                .ok_or_else(|| DecodeError::field(field, "must be a non-negative integer")),
        }
    }

    fn decode_cell(doc: &Json) -> Result<WireCell, DecodeError> {
        let workload = doc
            .get("workload")
            .and_then(Json::as_str)
            .ok_or_else(|| DecodeError::field("workload", "required string"))?
            .to_string();
        let depth =
            doc.get("depth")
                .and_then(Json::as_u64)
                .filter(|&d| d <= u64::from(u32::MAX))
                .ok_or_else(|| DecodeError::field("depth", "required integer"))? as u32;
        let profile = match doc.get("profile") {
            None | Some(Json::Null) => None,
            Some(p) => Some(decode_profile(p)?),
        };
        Ok(WireCell {
            workload,
            depth,
            profile,
            warmup: opt_u64(doc, "warmup")?,
            instructions: opt_u64(doc, "instructions")?,
            leakage_fraction: opt_f64(doc, "leakage_fraction")?,
            ref_depth: opt_f64(doc, "ref_depth")?,
            latch_growth: opt_f64(doc, "latch_growth")?,
        })
    }

    fn decode_profile(doc: &Json) -> Result<WorkloadProfile, DecodeError> {
        let req = |field: &'static str| -> Result<f64, DecodeError> {
            doc.get(field)
                .and_then(Json::as_f64)
                .ok_or_else(|| DecodeError::field("profile", format!("{field} must be a number")))
        };
        Ok(WorkloadProfile {
            alpha: req("alpha")?,
            gamma: req("gamma")?,
            hazard_rate: req("hazard_rate")?,
            kappa: req("kappa")?,
            memory_time_fo4: req("memory_time_fo4")?,
        })
    }

    fn encode_profile(out: &mut String, p: &WorkloadProfile) {
        let _ = write!(
            out,
            "{{\"alpha\": {}, \"gamma\": {}, \"hazard_rate\": {}, \"kappa\": {}, \
             \"memory_time_fo4\": {}}}",
            number(p.alpha),
            number(p.gamma),
            number(p.hazard_rate),
            number(p.kappa),
            number(p.memory_time_fo4),
        );
    }

    fn encode_cell(out: &mut String, cell: &WireCell) {
        let _ = write!(
            out,
            "{{\"workload\": \"{}\", \"depth\": {}",
            escape(&cell.workload),
            cell.depth
        );
        if let Some(p) = &cell.profile {
            out.push_str(", \"profile\": ");
            encode_profile(out, p);
        }
        if let Some(v) = cell.warmup {
            let _ = write!(out, ", \"warmup\": {v}");
        }
        if let Some(v) = cell.instructions {
            let _ = write!(out, ", \"instructions\": {v}");
        }
        if let Some(v) = cell.leakage_fraction {
            let _ = write!(out, ", \"leakage_fraction\": {}", number(v));
        }
        if let Some(v) = cell.ref_depth {
            let _ = write!(out, ", \"ref_depth\": {}", number(v));
        }
        if let Some(v) = cell.latch_growth {
            let _ = write!(out, ", \"latch_growth\": {}", number(v));
        }
        out.push('}');
    }

    /// One cell's answer inside an [`EvaluateResponse`].
    #[derive(Debug, Clone, PartialEq)]
    pub struct CellResult {
        /// The evaluation outcome, or why it failed.
        pub outcome: Result<EvalOutcome, EvalError>,
        /// The backend that actually answered (`"sim"` or `"model"`).
        pub backend: &'static str,
        /// True when an `auto` request fell back to the analytic model
        /// because the deadline ruled simulation out.
        pub degraded: bool,
    }

    /// A `POST /v1/evaluate` response body.
    #[derive(Debug, Clone, PartialEq)]
    pub struct EvaluateResponse {
        /// One result per requested cell, in request order.
        pub results: Vec<CellResult>,
    }

    impl EvaluateResponse {
        /// Encodes the response as a v1 body.
        pub fn encode(&self) -> String {
            let mut out = String::new();
            let _ = write!(
                out,
                "{{\"schema_version\": {SCHEMA_VERSION}, \"results\": ["
            );
            for (i, result) in self.results.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                encode_result(&mut out, result);
            }
            out.push_str("]}");
            out
        }
    }

    fn encode_result(out: &mut String, result: &CellResult) {
        match &result.outcome {
            Ok(outcome) => {
                let _ = write!(
                    out,
                    "{{\"backend\": \"{}\", \"degraded\": {}, \"outcome\": ",
                    result.backend, result.degraded
                );
                encode_outcome(out, outcome);
                out.push('}');
            }
            Err(err) => {
                let _ = write!(
                    out,
                    "{{\"backend\": \"{}\", \"degraded\": {}, \"error\": \
                     {{\"code\": \"{}\", \"message\": \"{}\"}}}}",
                    result.backend,
                    result.degraded,
                    err.code(),
                    escape(&err.to_string()),
                );
            }
        }
    }

    fn encode_metric_triple(out: &mut String, name: &str, m: &[f64; 3]) {
        let _ = write!(
            out,
            "\"{name}\": [{}, {}, {}]",
            number(m[0]),
            number(m[1]),
            number(m[2])
        );
    }

    /// Renders one [`EvalOutcome`] as its wire object.
    pub fn encode_outcome(out: &mut String, o: &EvalOutcome) {
        let _ = write!(
            out,
            "{{\"depth\": {}, \"cpi\": {}, \"frequency\": {}, \
             \"time_per_instruction_fo4\": {}, \"throughput\": {}, \
             \"power_gated\": {}, \"power_ungated\": {}, ",
            o.depth,
            number(o.cpi),
            number(o.frequency),
            number(o.time_per_instruction_fo4),
            number(o.throughput),
            number(o.power_gated),
            number(o.power_ungated),
        );
        encode_metric_triple(out, "metric_gated", &o.metric_gated);
        out.push_str(", ");
        encode_metric_triple(out, "metric_ungated", &o.metric_ungated);
        out.push_str(", \"profile\": ");
        encode_profile(out, &o.profile);
        out.push('}');
    }

    /// A `GET /v1/optimum` response body.
    #[derive(Debug, Clone, PartialEq)]
    pub struct OptimumResponse {
        /// The workload the optimum was computed for.
        pub workload: String,
        /// The metric exponent `m` of `BIPS^m/W`.
        pub m: u32,
        /// The depth maximising the metric over the searched range.
        pub optimum_depth: u32,
        /// The metric value at the optimum.
        pub metric: f64,
        /// Throughput at the optimum, instructions per FO4.
        pub throughput: f64,
        /// The depth maximising raw performance, for contrast.
        pub perf_only_depth: u32,
    }

    impl OptimumResponse {
        /// Encodes the response as a v1 body.
        pub fn encode(&self) -> String {
            format!(
                "{{\"schema_version\": {SCHEMA_VERSION}, \"workload\": \"{}\", \"m\": {}, \
                 \"optimum_depth\": {}, \"metric\": {}, \"throughput\": {}, \
                 \"perf_only_depth\": {}}}",
                escape(&self.workload),
                self.m,
                self.optimum_depth,
                number(self.metric),
                number(self.throughput),
                self.perf_only_depth,
            )
        }
    }

    /// Renders a wire error object (non-2xx bodies share this shape).
    pub fn encode_error(code: &str, message: &str) -> String {
        format!(
            "{{\"schema_version\": {SCHEMA_VERSION}, \"error\": {{\"code\": \"{}\", \
             \"message\": \"{}\"}}}}",
            escape(code),
            escape(message)
        )
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        fn profile() -> WorkloadProfile {
            WorkloadProfile {
                alpha: 2.0,
                gamma: 0.4,
                hazard_rate: 0.15,
                kappa: 0.22,
                memory_time_fo4: 12.5,
            }
        }

        #[test]
        fn request_round_trips() {
            let req = EvaluateRequest {
                backend: WireBackend::Sim,
                deadline_ms: Some(250),
                cells: vec![
                    WireCell {
                        profile: Some(profile()),
                        warmup: Some(1000),
                        instructions: Some(2000),
                        leakage_fraction: Some(0.2),
                        ref_depth: Some(10.0),
                        latch_growth: Some(1.1),
                        ..WireCell::new("specint-00", 12)
                    },
                    WireCell::new("fp-01", 8),
                ],
            };
            let decoded = EvaluateRequest::decode(&req.encode()).expect("round trip");
            assert_eq!(decoded, req);
        }

        #[test]
        fn unknown_fields_are_tolerated_everywhere() {
            let body = r#"{
                "schema_version": 1,
                "backend": "model",
                "future_flag": {"nested": [1, 2, 3]},
                "cells": [
                    {"workload": "legacy-00", "depth": 9, "annotation": "ignore me",
                     "profile": {"alpha": 2, "gamma": 0.4, "hazard_rate": 0.1,
                                 "kappa": 0.2, "memory_time_fo4": 10, "extra": true}}
                ]
            }"#;
            let req = EvaluateRequest::decode(body).expect("unknown fields ignored");
            assert_eq!(req.backend, WireBackend::Model);
            assert_eq!(req.cells[0].workload, "legacy-00");
            assert_eq!(req.cells[0].depth, 9);
            assert_eq!(req.cells[0].profile.expect("profile decoded").alpha, 2.0);
        }

        #[test]
        fn omitted_optionals_default() {
            let req = EvaluateRequest::decode(
                r#"{"cells": [{"workload": "w", "depth": 4}], "deadline_ms": null}"#,
            )
            .expect("minimal body");
            assert_eq!(req.backend, WireBackend::Auto);
            assert_eq!(req.deadline_ms, None);
            assert_eq!(req.cells[0].profile, None);
            assert_eq!(req.cells[0].warmup, None);
        }

        #[test]
        fn wrong_schema_version_is_rejected() {
            let err = EvaluateRequest::decode(
                r#"{"schema_version": 2, "cells": [{"workload": "w", "depth": 4}]}"#,
            )
            .expect_err("v2 is not spoken here");
            assert!(matches!(err, DecodeError::Version { declared: 2 }), "{err}");
            assert!(err.to_string().contains("schema_version 2"));
        }

        #[test]
        fn missing_and_mistyped_fields_are_named() {
            let err = EvaluateRequest::decode(r#"{"backend": "sim"}"#).expect_err("no cells");
            assert!(err.to_string().contains("cells"));
            let err = EvaluateRequest::decode(r#"{"cells": []}"#).expect_err("empty cells");
            assert!(err.to_string().contains("must not be empty"));
            let err =
                EvaluateRequest::decode(r#"{"cells": [{"workload": "w"}]}"#).expect_err("no depth");
            assert!(err.to_string().contains("depth"));
            let err = EvaluateRequest::decode(
                r#"{"backend": "gpu", "cells": [{"workload": "w", "depth": 4}]}"#,
            )
            .expect_err("unknown backend");
            assert!(err.to_string().contains("gpu"));
        }

        #[test]
        fn responses_carry_schema_version_and_error_codes() {
            let response = EvaluateResponse {
                results: vec![CellResult {
                    outcome: Err(EvalError::invalid("bad \"cell\"")),
                    backend: "sim",
                    degraded: false,
                }],
            };
            let body = response.encode();
            assert!(body.starts_with("{\"schema_version\": 1, "), "{body}");
            assert!(body.contains("\"code\": \"invalid_cell\""), "{body}");
            assert!(body.contains("bad \\\"cell\\\""), "escaped: {body}");
            let doc = parse(&body).expect("responses are valid JSON");
            assert_eq!(doc.get("schema_version").and_then(Json::as_u64), Some(1));
        }

        #[test]
        fn outcome_numbers_survive_a_parse() {
            let outcome = EvalOutcome {
                depth: 11,
                cpi: 1.25,
                frequency: 0.0625,
                time_per_instruction_fo4: 20.0,
                throughput: 0.05,
                power_gated: 3.5,
                power_ungated: 7.25,
                metric_gated: [0.1, 0.2, 0.3],
                metric_ungated: [0.05, 0.1, 0.15],
                profile: profile(),
            };
            let mut body = String::new();
            encode_outcome(&mut body, &outcome);
            let doc = parse(&body).expect("valid JSON");
            assert_eq!(doc.get("depth").and_then(Json::as_u64), Some(11));
            assert_eq!(doc.get("cpi").and_then(Json::as_f64), Some(1.25));
            let gated = doc
                .get("metric_gated")
                .and_then(Json::as_array)
                .expect("array");
            assert_eq!(gated[2].as_f64(), Some(0.3));
            assert_eq!(
                doc.get("profile")
                    .and_then(|p| p.get("memory_time_fo4"))
                    .and_then(Json::as_f64),
                Some(12.5)
            );
        }

        #[test]
        fn optimum_response_shape() {
            let body = OptimumResponse {
                workload: "fp-00".into(),
                m: 3,
                optimum_depth: 9,
                metric: 0.125,
                throughput: 0.04,
                perf_only_depth: 22,
            }
            .encode();
            let doc = parse(&body).expect("valid JSON");
            assert_eq!(doc.get("optimum_depth").and_then(Json::as_u64), Some(9));
            assert_eq!(doc.get("perf_only_depth").and_then(Json::as_u64), Some(22));
        }
    }
}
