//! The HTTP server: socket lifecycle, routing, graceful shutdown.
//!
//! [`Server::bind`] opens the listener and builds the [`EvalService`];
//! [`Server::run`] blocks serving requests until `POST /v1/shutdown`,
//! then drains in the only safe order: stop accepting, join in-flight
//! connection handlers (so every admitted request gets its response),
//! close the batch queue (dispatch workers finish what was queued and
//! exit), join the workers, and return a final stats line for the
//! operator.
//!
//! Connections are thread-per-request with `Connection: close` — the
//! service's concurrency ceiling is the batch queue, not the socket
//! layer, so a simple threading model is plenty.

use crate::batch::Shed;
use crate::http::{read_request, respond, Request};
use crate::service::{EvalService, ServiceConfig};
use crate::wire::v1::{encode_error, DecodeError, EvaluateRequest};
use pipedepth_telemetry::{json::number, MetricValue, Telemetry};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// How long a connection may idle before its handler gives up on it.
/// Bounds how long shutdown can wait on a silent client.
const READ_TIMEOUT: Duration = Duration::from_secs(30);

/// A bound evaluation server. Dropping it without [`Server::run`] simply
/// closes the socket.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    service: Arc<EvalService>,
    workers: usize,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:8080`, or port 0 for an ephemeral
    /// port) and builds the service behind it.
    ///
    /// # Errors
    ///
    /// Propagates the socket `bind` failure.
    pub fn bind(addr: &str, config: ServiceConfig, telemetry: Telemetry) -> io::Result<Server> {
        let workers = config.workers.max(1);
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            service: Arc::new(EvalService::new(config, telemetry)),
            workers,
        })
    }

    /// The bound address (useful with port 0).
    ///
    /// # Errors
    ///
    /// Propagates the socket introspection failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The service behind the server (tests reach its telemetry here).
    pub fn service(&self) -> &Arc<EvalService> {
        &self.service
    }

    /// Serves until a `POST /v1/shutdown` arrives, drains, and returns
    /// the final stats line.
    pub fn run(self) -> String {
        let addr = self.local_addr().ok();
        let shutdown = Arc::new(AtomicBool::new(false));
        let dispatchers: Vec<thread::JoinHandle<()>> = (0..self.workers)
            .map(|_| {
                let service = Arc::clone(&self.service);
                thread::spawn(move || service.dispatch_loop())
            })
            .collect();
        let mut connections: Vec<thread::JoinHandle<()>> = Vec::new();
        for stream in self.listener.incoming() {
            if shutdown.load(Ordering::SeqCst) {
                // The waking connection (or a late client) — drop it
                // unanswered and stop accepting.
                break;
            }
            let Ok(stream) = stream else { continue };
            let service = Arc::clone(&self.service);
            let shutdown = Arc::clone(&shutdown);
            connections.push(thread::spawn(move || {
                handle_connection(stream, &service, &shutdown, addr);
            }));
            connections.retain(|handle| !handle.is_finished());
        }
        // Drain: every accepted connection answers before the queue closes,
        // so no admitted request is dropped.
        for handle in connections {
            let _ = handle.join();
        }
        self.service.close();
        for handle in dispatchers {
            let _ = handle.join();
        }
        // With the dispatchers joined no new outcomes can appear, so the
        // store's final snapshot is complete; sync it to disk before
        // reporting, so a drained server is restartable from this state.
        self.service.finish_store();
        self.service.stats_line()
    }
}

/// Serves one connection: parse, route, respond, close.
fn handle_connection(
    mut stream: TcpStream,
    service: &EvalService,
    shutdown: &AtomicBool,
    addr: Option<SocketAddr>,
) {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let request = match read_request(&mut stream) {
        Ok(request) => request,
        Err(e) => {
            respond(
                &mut stream,
                e.status,
                "application/json",
                &[],
                &encode_error("bad_request", &e.message),
            );
            return;
        }
    };
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/v1/evaluate") => evaluate(&mut stream, service, &request),
        ("GET", "/v1/optimum") => optimum(&mut stream, service, &request),
        ("GET", "/healthz") => respond(
            &mut stream,
            200,
            "application/json",
            &[],
            "{\"status\": \"ok\"}",
        ),
        ("GET", "/metrics") => {
            let body = render_metrics(service.telemetry());
            respond(&mut stream, 200, "application/json", &[], &body);
        }
        ("POST", "/v1/shutdown") => {
            respond(
                &mut stream,
                200,
                "application/json",
                &[],
                "{\"status\": \"shutting down\"}",
            );
            shutdown.store(true, Ordering::SeqCst);
            // Wake the accept loop so it notices the flag.
            if let Some(addr) = addr {
                let _ = TcpStream::connect(addr);
            }
        }
        (_, "/v1/evaluate" | "/v1/optimum" | "/v1/shutdown" | "/healthz" | "/metrics") => respond(
            &mut stream,
            405,
            "application/json",
            &[],
            &encode_error("method_not_allowed", "wrong method for this path"),
        ),
        (_, path) => respond(
            &mut stream,
            404,
            "application/json",
            &[],
            &encode_error("not_found", &format!("no route for {path}")),
        ),
    }
}

/// `POST /v1/evaluate`: decode, evaluate, encode — or shed.
fn evaluate(stream: &mut TcpStream, service: &EvalService, request: &Request) {
    let parsed = match EvaluateRequest::decode(&request.body) {
        Ok(parsed) => parsed,
        Err(e) => {
            let code = match e {
                DecodeError::Version { .. } => "unsupported_version",
                _ => "invalid_request",
            };
            respond(
                stream,
                400,
                "application/json",
                &[],
                &encode_error(code, &e.to_string()),
            );
            return;
        }
    };
    match service.evaluate(&parsed) {
        Ok(response) => respond(stream, 200, "application/json", &[], &response.encode()),
        Err(Shed::Overloaded { retry_after_s }) => respond(
            stream,
            429,
            "application/json",
            &[("Retry-After", retry_after_s.to_string())],
            &encode_error("overloaded", "evaluation queue is full; retry later"),
        ),
        Err(Shed::Closing) => respond(
            stream,
            503,
            "application/json",
            &[],
            &encode_error("shutting_down", "server is draining"),
        ),
    }
}

/// `GET /v1/optimum?workload=...&m=...`.
fn optimum(stream: &mut TcpStream, service: &EvalService, request: &Request) {
    let Some(workload) = request.param("workload") else {
        respond(
            stream,
            400,
            "application/json",
            &[],
            &encode_error("invalid_request", "missing required parameter \"workload\""),
        );
        return;
    };
    let m = match request.param("m").map(str::parse::<u32>) {
        None => 3,
        Some(Ok(m)) => m,
        Some(Err(_)) => {
            respond(
                stream,
                400,
                "application/json",
                &[],
                &encode_error("invalid_request", "parameter \"m\" must be an integer"),
            );
            return;
        }
    };
    match service.optimum(workload, m) {
        Ok(response) => respond(stream, 200, "application/json", &[], &response.encode()),
        Err(e) => respond(
            stream,
            400,
            "application/json",
            &[],
            &encode_error(e.code(), &e.to_string()),
        ),
    }
}

/// Renders the full telemetry snapshot as one JSON object, with p50/p99
/// estimates spliced into each histogram. Sorted by metric name, so the
/// body is deterministic for a given history.
fn render_metrics(telemetry: &Telemetry) -> String {
    let snapshot = telemetry.snapshot();
    let mut out = String::from("{");
    for (i, metric) in snapshot.metrics.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let rendered = match &metric.value {
            MetricValue::Histogram(h) => {
                let mut j = h.to_json();
                if let (Some(p50), Some(p99)) = (h.quantile(0.5), h.quantile(0.99)) {
                    j.pop();
                    j.push_str(&format!(
                        ", \"p50\": {}, \"p99\": {}}}",
                        number(p50),
                        number(p99)
                    ));
                }
                j
            }
            other => other.to_json(),
        };
        out.push('"');
        out.push_str(&pipedepth_telemetry::json::escape(&metric.name));
        out.push_str("\": ");
        out.push_str(&rendered);
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_render_as_json_with_quantiles() {
        let telemetry = Telemetry::new();
        telemetry.counter("serve.requests").add(3);
        telemetry
            .histogram("serve.request_us", &[10.0, 100.0])
            .record(7.0);
        let body = render_metrics(&telemetry);
        let doc = crate::json::parse(&body).expect("valid JSON");
        #[cfg(feature = "telemetry")]
        {
            use crate::json::Json;
            assert_eq!(
                doc.get("serve.requests")
                    .and_then(|m| m.get("value"))
                    .and_then(Json::as_u64),
                Some(3)
            );
            let hist = doc.get("serve.request_us").expect("histogram present");
            assert_eq!(hist.get("p50").and_then(Json::as_f64), Some(7.0));
            assert_eq!(hist.get("p99").and_then(Json::as_f64), Some(7.0));
        }
        #[cfg(not(feature = "telemetry"))]
        assert_eq!(doc, crate::json::Json::Object(Vec::new()));
    }
}
