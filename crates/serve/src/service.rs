//! The evaluation service: backends, caching, deadlines, dispatch.
//!
//! [`EvalService`] is the HTTP-free core of `pipedepth-serve`. It owns
//!
//! * a **simulation backend** — a [`SimBackend`](pipedepth_experiments::eval::SimBackend) over an owned
//!   [`Runner`](pipedepth_experiments::runner::Runner) (worker pool, trace arena, report cache), reached through
//!   the [`BatchQueue`](crate::batch::BatchQueue) so concurrent requests coalesce and batch;
//! * an **analytic backend** — the closed-form [`AnalyticModel`](pipedepth_core::eval::AnalyticModel), answered
//!   inline (microseconds, no queue);
//! * an **outcome cache** — two [`ShardedCache`](pipedepth_core::eval::ShardedCache)s (one per backend, so a
//!   degraded analytic answer can never shadow a simulation result) keyed
//!   by [`CellSpec::key`](pipedepth_core::eval::CellSpec::key), the same cache type the repro driver's runner
//!   uses for simulation reports;
//! * **deadline handling** — a per-request budget; `auto` requests degrade
//!   to the analytic model when the budget rules simulation out (either up
//!   front, via a running instructions-per-microsecond estimate, or after
//!   a timed-out wait), while `sim` requests fail with
//!   `deadline_exceeded`.
//!
//! The server layer (`server.rs`) wraps this in HTTP and owns the worker
//! threads that loop on [`EvalService::dispatch_loop`].

use crate::batch::{BatchQueue, Shed};
use crate::store::OutcomeStore;
use crate::wire::v1::{
    CellResult, EvaluateRequest, EvaluateResponse, OptimumResponse, WireBackend,
};
use pipedepth_core::eval::{
    AnalyticModel, CellSpec, EvalOutcome, Evaluator, ShardedCache, TieredCache,
};
use pipedepth_core::EvalError;
use pipedepth_experiments::eval::{cell_for, fitted_profile, SimBackend};
use pipedepth_experiments::runner::Runner;
use pipedepth_experiments::sweep::RunConfig;
use pipedepth_telemetry::{Stopwatch, Telemetry, DEFAULT_TIME_BUCKETS_US};
use pipedepth_workloads::{suite, Workload};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Depth range `GET /v1/optimum` searches (the machine model's full valid
/// range).
pub const OPTIMUM_DEPTHS: std::ops::RangeInclusive<u32> = 2..=64;

/// Bucket bounds for the `serve.batch_size` histogram.
const BATCH_SIZE_BOUNDS: [f64; 7] = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0];

/// How the service is sized and defaulted. The `pipedepth-serve` binary
/// fills this from its flags.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Simulation worker threads inside the runner's pool.
    pub threads: usize,
    /// Dispatch workers draining the batch queue. One is usually right:
    /// it maximises batching, and parallelism comes from the runner pool.
    pub workers: usize,
    /// Most cells the queue admits before shedding (429).
    pub queue_cap: usize,
    /// Most cells one dispatch sends to the backend at once.
    pub batch_max: usize,
    /// Default per-request deadline in milliseconds; 0 means none.
    pub deadline_ms: u64,
    /// When set, pins every request to this backend regardless of what
    /// the request asked for (the `--backend` flag).
    pub backend: Option<WireBackend>,
    /// Whether the outcome cache (and the runner's report cache) are on.
    pub cache: bool,
    /// When set, the directory of the persistent outcome store: the
    /// simulation cache warm-starts from its snapshot and the service
    /// snapshots back into it (periodically and at drain). Ignored when
    /// `cache` is off — the store is a tier below the cache, not a
    /// replacement for it.
    pub store: Option<std::path::PathBuf>,
    /// Template run configuration: sizing and power calibration for cells
    /// that do not override them.
    pub run: RunConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            threads: 2,
            workers: 1,
            queue_cap: 1024,
            batch_max: 32,
            deadline_ms: 0,
            backend: None,
            cache: true,
            store: None,
            run: RunConfig::quick(),
        }
    }
}

/// How many simulation-outcome inserts accumulate between periodic store
/// snapshots. Deterministic (a count, not a timer) so tests can force a
/// snapshot by answering exactly this many distinct cells.
pub const STORE_FLUSH_EVERY: u64 = 64;

/// Per-backend outcome caches. Split by backend so an `auto` request that
/// degraded to the model can never satisfy a later `sim` request. The
/// simulation side is tiered: its optional warm tier is the persistent
/// store's decoded snapshot, probed on memory misses with promote-on-hit.
/// The model side stays purely in-memory — analytic answers cost
/// microseconds and are never persisted.
#[derive(Debug)]
struct OutcomeCache {
    sim: TieredCache<CellSpec, EvalOutcome>,
    model: ShardedCache<CellSpec, EvalOutcome>,
}

/// The evaluation service. See the module docs for the architecture.
pub struct EvalService {
    sim: SimBackend,
    model: AnalyticModel,
    cache: Option<OutcomeCache>,
    queue: BatchQueue,
    telemetry: Telemetry,
    by_name: BTreeMap<String, Workload>,
    run: RunConfig,
    default_deadline_ms: u64,
    backend_override: Option<WireBackend>,
    /// Observed simulation throughput in instructions per microsecond,
    /// stored as `f64` bits; 0 until the first dispatch completes.
    rate_bits: AtomicU64,
    /// The persistent outcome store (`--store`), when configured with the
    /// cache on. All its runtime methods take `&self`, so the `Arc`'d
    /// service snapshots and syncs without extra locking.
    store: Option<OutcomeStore>,
    /// Simulation-outcome inserts since the last periodic store snapshot.
    store_pending: AtomicU64,
}

impl std::fmt::Debug for EvalService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EvalService")
            .field("workloads", &self.by_name.len())
            .field("cache", &self.cache.is_some())
            .field("queue_depth", &self.queue.depth())
            .finish()
    }
}

impl EvalService {
    /// Builds the service: runner pool, backends, caches and queue. The
    /// telemetry handle is shared with the runner, so `/metrics` exposes
    /// `runner.*` and `sim.*` alongside `serve.*`.
    pub fn new(config: ServiceConfig, telemetry: Telemetry) -> Self {
        let mut runner = Runner::new(config.threads.max(1)).with_telemetry(telemetry.clone());
        if !config.cache {
            runner = runner.without_cache();
        }
        let workloads = suite();
        // The persistent store is a tier below the outcome cache: open it
        // (and warm-start the simulation tier from its snapshot) only when
        // the cache exists to sit on top of it.
        let mut store = None;
        let mut sim_cache = TieredCache::new();
        if config.cache {
            if let Some(dir) = config.store.as_deref() {
                let mut s = OutcomeStore::open(dir, &config.run, &telemetry);
                sim_cache.attach_warm(s.load());
                store = Some(s);
            }
        }
        EvalService {
            sim: SimBackend::new(Arc::new(runner)),
            model: AnalyticModel::paper(),
            cache: config.cache.then(|| OutcomeCache {
                sim: sim_cache,
                model: ShardedCache::new(),
            }),
            queue: BatchQueue::new(config.queue_cap, config.batch_max),
            telemetry,
            by_name: workloads
                .iter()
                .map(|w| (w.name.clone(), w.clone()))
                .collect(),
            run: config.run,
            default_deadline_ms: config.deadline_ms,
            backend_override: config.backend,
            rate_bits: AtomicU64::new(0),
            store,
            store_pending: AtomicU64::new(0),
        }
    }

    /// The service's telemetry handle.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Answers one decoded request.
    ///
    /// # Errors
    ///
    /// [`Shed`] when admission control refuses the request's simulation
    /// cells — the HTTP layer turns that into a 429 with `Retry-After`
    /// (or a 503 while shutting down).
    pub fn evaluate(&self, request: &EvaluateRequest) -> Result<EvaluateResponse, Shed> {
        let started = Stopwatch::start();
        self.telemetry.counter("serve.requests").inc();
        self.telemetry
            .counter("serve.cells_requested")
            .add(request.cells.len() as u64);
        let backend = self.backend_override.unwrap_or(request.backend);
        let deadline_ms = match request.deadline_ms {
            Some(d) => Some(d),
            None if self.default_deadline_ms == 0 => None,
            None => Some(self.default_deadline_ms),
        };
        let cells: Vec<Result<CellSpec, EvalError>> =
            request.cells.iter().map(|c| self.resolve(c)).collect();
        let results = match backend {
            WireBackend::Model => cells
                .iter()
                .map(|cell| match cell {
                    Ok(spec) => self.model_result(spec, false),
                    Err(e) => error_result(e.clone(), "model"),
                })
                .collect(),
            WireBackend::Sim => self.answer_queued(&cells, deadline_ms, started, false)?,
            WireBackend::Auto => self.answer_queued(&cells, deadline_ms, started, true)?,
        };
        self.telemetry
            .histogram("serve.request_us", &DEFAULT_TIME_BUCKETS_US)
            .record(started.elapsed_us());
        Ok(EvaluateResponse { results })
    }

    /// Resolves a wire cell against the service's defaults: the
    /// workload's fitted analytic profile plus the run configuration's
    /// sizing and power calibration, unless the cell overrides them.
    /// Unknown workloads are accepted only with an explicit profile (the
    /// analytic model can evaluate any profile; the simulation backend
    /// will still reject them as values).
    fn resolve(&self, cell: &crate::wire::v1::WireCell) -> Result<CellSpec, EvalError> {
        let template = match self.by_name.get(&cell.workload) {
            Some(w) => cell_for(w, fitted_profile(w), cell.depth, &self.run),
            None => match cell.profile {
                Some(profile) => {
                    let mut t = CellSpec::new(cell.workload.clone(), profile, cell.depth);
                    t.warmup = self.run.warmup;
                    t.instructions = self.run.instructions;
                    t.leakage_fraction = self.run.leakage_fraction;
                    t.ref_depth = self.run.ref_depth as f64;
                    t
                }
                None => {
                    return Err(EvalError::invalid(format!(
                        "unknown workload \"{}\" (and no explicit profile given)",
                        cell.workload
                    )))
                }
            },
        };
        let spec = cell.resolve(&template);
        spec.validate()?;
        Ok(spec)
    }

    /// Answers a request through the analytic model, inline.
    fn model_result(&self, spec: &CellSpec, degraded: bool) -> CellResult {
        if degraded {
            self.telemetry.counter("serve.degraded").inc();
        }
        let cached = self
            .cache
            .as_ref()
            .and_then(|c| c.model.get(spec.key(), spec));
        let outcome = match cached {
            Some(hit) => {
                self.telemetry.counter("serve.cache_hits").inc();
                if let Some(cache) = &self.cache {
                    cache.model.count_hits(1);
                }
                Ok(*hit)
            }
            None => {
                if let Some(cache) = &self.cache {
                    cache.model.count_misses(1);
                }
                let result = self.model.evaluate(spec);
                if let (Some(cache), Ok(out)) = (&self.cache, &result) {
                    cache.model.insert(spec.key(), spec.clone(), Arc::new(*out));
                }
                result
            }
        };
        CellResult {
            outcome,
            backend: "model",
            degraded,
        }
    }

    /// The sim/auto path: outcome cache, then the coalescing queue, then
    /// a deadline-bounded wait. `auto` degrades to the model instead of
    /// failing when the deadline rules simulation out.
    fn answer_queued(
        &self,
        cells: &[Result<CellSpec, EvalError>],
        deadline_ms: Option<u64>,
        started: Stopwatch,
        auto: bool,
    ) -> Result<Vec<CellResult>, Shed> {
        let mut results: Vec<Option<CellResult>> = vec![None; cells.len()];
        let mut submit_idx: Vec<usize> = Vec::new();
        let mut submit_specs: Vec<CellSpec> = Vec::new();
        for (i, cell) in cells.iter().enumerate() {
            match cell {
                Err(e) => results[i] = Some(error_result(e.clone(), "sim")),
                Ok(spec) => {
                    let cached = self
                        .cache
                        .as_ref()
                        .and_then(|c| c.sim.get(spec.key(), spec));
                    match cached {
                        Some(hit) => {
                            self.telemetry.counter("serve.cache_hits").inc();
                            if let Some(cache) = &self.cache {
                                cache.sim.count_hits(1);
                            }
                            results[i] = Some(CellResult {
                                outcome: Ok(*hit),
                                backend: "sim",
                                degraded: false,
                            });
                        }
                        None => {
                            if let Some(cache) = &self.cache {
                                cache.sim.count_misses(1);
                            }
                            submit_idx.push(i);
                            submit_specs.push(spec.clone());
                        }
                    }
                }
            }
        }
        if submit_specs.is_empty() {
            return Ok(finish_results(results));
        }
        // Pre-dispatch degradation: when the budget cannot possibly cover
        // the simulation (by the observed throughput estimate), an `auto`
        // request skips the queue entirely.
        if auto {
            if let Some(d) = deadline_ms {
                let budget_us = (d as f64) * 1_000.0 - started.elapsed_us();
                if self.estimated_us(&submit_specs) > budget_us {
                    for (&i, spec) in submit_idx.iter().zip(&submit_specs) {
                        results[i] = Some(self.model_result(spec, true));
                    }
                    return Ok(finish_results(results));
                }
            }
        }
        // The probe re-checks the outcome cache under the queue lock, so a
        // dispatch completing between the pre-check above and admission
        // still answers from cache instead of re-enqueuing its cells.
        let admitted = self
            .queue
            .submit_with(&submit_specs, |spec| {
                self.cache
                    .as_ref()
                    .and_then(|c| c.sim.get(spec.key(), spec))
                    .map(|hit| *hit)
            })
            .inspect_err(|_| {
                self.telemetry.counter("serve.shed").inc();
            })?;
        if admitted.cached > 0 {
            self.telemetry
                .counter("serve.cache_hits")
                .add(admitted.cached);
            if let Some(cache) = &self.cache {
                cache.sim.count_hits(admitted.cached);
            }
        }
        self.telemetry
            .counter("serve.coalesced")
            .add(admitted.coalesced);
        self.telemetry
            .counter("serve.enqueued")
            .add(admitted.enqueued);
        self.telemetry
            .gauge("serve.queue_depth")
            .set(self.queue.depth() as f64);
        for ((&i, spec), slot) in submit_idx.iter().zip(&submit_specs).zip(&admitted.slots) {
            let waited = match deadline_ms {
                None => Some(slot.wait()),
                Some(d) => {
                    let remaining_us = (d as f64) * 1_000.0 - started.elapsed_us();
                    // An already-exhausted budget times out deterministically
                    // — even a racing just-finished dispatch is not consulted,
                    // so `deadline_ms: 0` always answers the same way.
                    if remaining_us <= 0.0 {
                        None
                    } else {
                        slot.wait_for(Duration::from_micros(remaining_us as u64))
                    }
                }
            };
            results[i] = Some(match waited {
                // The dispatch worker already published the outcome to the
                // cache before filling the slot.
                Some(Ok(out)) => CellResult {
                    outcome: Ok(out),
                    backend: "sim",
                    degraded: false,
                },
                Some(Err(e)) => error_result(e, "sim"),
                // Timed out. The dispatch keeps running and will warm the
                // cache; this request degrades (auto) or fails (sim).
                None if auto => self.model_result(spec, true),
                None => error_result(
                    EvalError::DeadlineExceeded {
                        budget_ms: deadline_ms.unwrap_or(0),
                    },
                    "sim",
                ),
            });
        }
        Ok(finish_results(results))
    }

    /// Computes the optimum depth for a workload under `BIPS^m/W` with
    /// the analytic model across [`OPTIMUM_DEPTHS`].
    ///
    /// # Errors
    ///
    /// `invalid_cell` for unknown workloads or `m` outside `1..=3`, and
    /// `backend_error` if no depth evaluates (cannot happen for fitted
    /// profiles).
    pub fn optimum(&self, workload: &str, m: u32) -> Result<OptimumResponse, EvalError> {
        if !(1..=3).contains(&m) {
            return Err(EvalError::invalid(format!("m must be 1, 2 or 3 (got {m})")));
        }
        let w = self
            .by_name
            .get(workload)
            .ok_or_else(|| EvalError::invalid(format!("unknown workload \"{workload}\"")))?;
        let profile = fitted_profile(w);
        let cells: Vec<CellSpec> = OPTIMUM_DEPTHS
            .map(|depth| cell_for(w, profile, depth, &self.run))
            .collect();
        let mut best: Option<(u32, f64, f64)> = None;
        let mut best_perf: Option<(u32, f64)> = None;
        for result in self.model.evaluate_batch(&cells) {
            let out = result?;
            let metric = out.metric_gated[(m - 1) as usize];
            if best.is_none_or(|(_, m0, _)| metric > m0) {
                best = Some((out.depth, metric, out.throughput));
            }
            if best_perf.is_none_or(|(_, t0)| out.throughput > t0) {
                best_perf = Some((out.depth, out.throughput));
            }
        }
        let ((optimum_depth, metric, throughput), (perf_only_depth, _)) =
            best.zip(best_perf).ok_or_else(|| EvalError::Backend {
                backend: "model".to_string(),
                message: "no depth evaluated".to_string(),
            })?;
        Ok(OptimumResponse {
            workload: workload.to_string(),
            m,
            optimum_depth,
            metric,
            throughput,
            perf_only_depth,
        })
    }

    /// The dispatch-worker body: drains batches from the queue into
    /// single [`Evaluator::evaluate_batch`] calls until the queue closes
    /// and empties. The server runs this on `workers` threads.
    pub fn dispatch_loop(&self) {
        while let Some(batch) = self.queue.next_batch() {
            let watch = Stopwatch::start();
            self.telemetry.counter("serve.dispatches").inc();
            self.telemetry
                .counter("serve.dispatch_cells")
                .add(batch.len() as u64);
            self.telemetry
                .histogram("serve.batch_size", &BATCH_SIZE_BOUNDS)
                .record(batch.len() as f64);
            let specs: Vec<CellSpec> = batch.iter().map(|c| c.spec.clone()).collect();
            let results = self.dispatch_specs(&specs);
            // Publish outcomes BEFORE `finish` retires the cells from the
            // coalescing index: `submit_with` probes the cache under the
            // queue lock, so a live-index miss there must already see
            // these results.
            let mut inserted = 0u64;
            if let Some(cache) = &self.cache {
                for (spec, result) in specs.iter().zip(&results) {
                    if let Ok(out) = result {
                        if cache.sim.insert(spec.key(), spec.clone(), Arc::new(*out)) {
                            inserted += 1;
                        }
                    }
                }
            }
            if inserted > 0 && self.store.is_some() {
                // Deterministic periodic snapshotting: every
                // `STORE_FLUSH_EVERY` distinct new outcomes, publish the
                // memory tier write-behind. Racing dispatchers may both
                // cross the threshold — an extra snapshot is harmless
                // (last-writer-wins on one file), a missed one is caught
                // by the drain-time snapshot.
                let pending = self.store_pending.fetch_add(inserted, Ordering::Relaxed) + inserted;
                if pending >= STORE_FLUSH_EVERY {
                    self.store_pending.store(0, Ordering::Relaxed);
                    self.snapshot_store();
                }
            }
            let work: f64 = specs
                .iter()
                .map(|c| (c.warmup + c.instructions) as f64)
                .sum();
            self.observe_rate(work, watch.elapsed_us());
            self.queue.finish(batch, results);
            self.telemetry
                .gauge("serve.queue_depth")
                .set(self.queue.depth() as f64);
        }
    }

    /// Evaluates one drained batch, routing same-workload depth groups
    /// through [`Evaluator::evaluate_sweep`] — the simulation backend's
    /// annotate-once / replay-per-depth kernel — so a coalesced sweep
    /// request costs one annotation and one batched trace pass. Cells
    /// with no sweep mates in the batch go through one ordinary
    /// [`Evaluator::evaluate_batch`] dispatch, as before.
    fn dispatch_specs(&self, specs: &[CellSpec]) -> Vec<Result<EvalOutcome, EvalError>> {
        // Two cells are sweep mates when they differ only in depth.
        let mates = |a: &CellSpec, b: &CellSpec| {
            a.workload == b.workload
                && a.profile == b.profile
                && a.warmup == b.warmup
                && a.instructions == b.instructions
                && a.leakage_fraction == b.leakage_fraction
                && a.ref_depth == b.ref_depth
                && a.latch_growth == b.latch_growth
        };
        let mut results: Vec<Option<Result<EvalOutcome, EvalError>>> = vec![None; specs.len()];
        let mut assigned = vec![false; specs.len()];
        let mut loners: Vec<usize> = Vec::new();
        for i in 0..specs.len() {
            if assigned[i] {
                continue;
            }
            assigned[i] = true;
            let mut members = vec![i];
            for j in (i + 1)..specs.len() {
                if !assigned[j] && mates(&specs[i], &specs[j]) {
                    assigned[j] = true;
                    members.push(j);
                }
            }
            if members.len() < 2 {
                loners.push(i);
                continue;
            }
            let depths: Vec<u32> = members.iter().map(|&j| specs[j].depth).collect();
            self.telemetry.counter("serve.sweep_kernel.groups").inc();
            self.telemetry
                .counter("serve.sweep_kernel.cells")
                .add(members.len() as u64);
            for (&j, outcome) in members
                .iter()
                .zip(self.sim.evaluate_sweep(&specs[i], &depths))
            {
                results[j] = Some(outcome);
            }
        }
        if !loners.is_empty() {
            let cells: Vec<CellSpec> = loners.iter().map(|&i| specs[i].clone()).collect();
            for (&i, outcome) in loners.iter().zip(self.sim.evaluate_batch(&cells)) {
                results[i] = Some(outcome);
            }
        }
        results
            .into_iter()
            .map(|r| {
                r.unwrap_or_else(|| {
                    Err(EvalError::Backend {
                        backend: "sim".to_string(),
                        message: "internal: cell left undispatched".to_string(),
                    })
                })
            })
            .collect()
    }

    /// Stops admitting work; dispatch workers drain and exit.
    pub fn close(&self) {
        self.queue.close();
    }

    /// Publishes one write-behind snapshot of the simulation cache's
    /// memory tier. The entries are snapshotted here, on the calling
    /// thread, with every shard guard already dropped — the flusher job
    /// owns its data outright (lock-order discipline).
    fn snapshot_store(&self) {
        if let (Some(store), Some(cache)) = (&self.store, &self.cache) {
            store.flush(cache.sim.entries());
        }
    }

    /// Drain-time store finalisation: one last snapshot of everything the
    /// server answered, the lifetime warm-tier probe counters, and a sync
    /// that blocks until the backlog is durably published. The server
    /// calls this after the dispatch workers have joined and before the
    /// stats line, so a drained process is always restartable from its
    /// final state and the line reports true flush counts. A no-op
    /// without `--store`.
    pub fn finish_store(&self) {
        let Some(store) = &self.store else {
            return;
        };
        // Only publish if outcomes arrived since the last periodic
        // snapshot — a fully warm session (every answer from the loaded
        // tier) re-encodes nothing and leaves the superset snapshot on
        // disk untouched.
        if self.store_pending.swap(0, Ordering::Relaxed) > 0 {
            self.snapshot_store();
        }
        if let Some(cache) = &self.cache {
            if let Some(stats) = cache.sim.warm_stats() {
                store.record_warm(stats);
            }
        }
        store.sync();
    }

    /// Current instructions-per-microsecond estimate (0 before the first
    /// dispatch).
    fn rate(&self) -> f64 {
        f64::from_bits(self.rate_bits.load(Ordering::Relaxed))
    }

    /// Folds a finished dispatch into the throughput estimate (EMA, 30%
    /// weight on the new sample).
    fn observe_rate(&self, instructions: f64, elapsed_us: f64) {
        if instructions <= 0.0 || elapsed_us <= 0.0 {
            return;
        }
        let sample = instructions / elapsed_us;
        let old = self.rate();
        let next = if old > 0.0 {
            0.7 * old + 0.3 * sample
        } else {
            sample
        };
        self.rate_bits.store(next.to_bits(), Ordering::Relaxed);
    }

    /// Estimated microseconds to simulate `cells`, from the observed
    /// rate; at least 1µs per cell, so a zero budget always degrades.
    fn estimated_us(&self, cells: &[CellSpec]) -> f64 {
        let rate = self.rate();
        cells
            .iter()
            .map(|c| {
                let work = (c.warmup + c.instructions) as f64;
                if rate > 0.0 {
                    (work / rate).max(1.0)
                } else {
                    // No observation yet: assume 1 instruction/µs.
                    work.max(1.0)
                }
            })
            .sum()
    }

    /// One line summarising the service's lifetime counters, printed at
    /// shutdown.
    pub fn stats_line(&self) -> String {
        let snap = self.telemetry.snapshot();
        let mut line = format!(
            "serve: {} requests, {} cells ({} cache hits, {} coalesced, {} degraded, {} shed) \
             over {} dispatches",
            snap.counter("serve.requests"),
            snap.counter("serve.cells_requested"),
            snap.counter("serve.cache_hits"),
            snap.counter("serve.coalesced"),
            snap.counter("serve.degraded"),
            snap.counter("serve.shed"),
            snap.counter("serve.dispatches"),
        );
        if let Some(store) = &self.store {
            line.push_str(&format!(
                "; store: {} outcome(s) loaded, {} warm hit(s), {} snapshot(s) published",
                store.loaded(),
                snap.counter("store.hits"),
                store.flushes(),
            ));
        }
        line
    }
}

/// A cell answered by an error value.
fn error_result(e: EvalError, backend: &'static str) -> CellResult {
    CellResult {
        outcome: Err(e),
        backend,
        degraded: false,
    }
}

/// Unwraps the per-index result slots; an unfilled slot (unreachable)
/// fails soft as a backend error rather than panicking.
fn finish_results(results: Vec<Option<CellResult>>) -> Vec<CellResult> {
    results
        .into_iter()
        .map(|r| {
            r.unwrap_or_else(|| {
                error_result(
                    EvalError::Backend {
                        backend: "serve".to_string(),
                        message: "internal: cell left unanswered".to_string(),
                    },
                    "sim",
                )
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::v1::WireCell;
    use std::thread;

    fn quick_config() -> ServiceConfig {
        ServiceConfig {
            threads: 1,
            run: RunConfig {
                warmup: 1_000,
                instructions: 2_000,
                ..RunConfig::quick()
            },
            ..ServiceConfig::default()
        }
    }

    fn service(config: ServiceConfig) -> Arc<EvalService> {
        Arc::new(EvalService::new(config, Telemetry::new()))
    }

    fn request(
        backend: WireBackend,
        deadline_ms: Option<u64>,
        cells: Vec<WireCell>,
    ) -> EvaluateRequest {
        EvaluateRequest {
            backend,
            deadline_ms,
            cells,
        }
    }

    /// Runs a closure with dispatch workers alive, closing the queue (and
    /// joining the workers) afterwards.
    fn with_workers<T>(svc: &Arc<EvalService>, f: impl FnOnce() -> T) -> T {
        let worker = {
            let svc = Arc::clone(svc);
            thread::spawn(move || svc.dispatch_loop())
        };
        let out = f();
        svc.close();
        worker.join().expect("worker exits cleanly");
        out
    }

    #[test]
    fn model_requests_answer_inline_and_cache() {
        let svc = service(quick_config());
        let req = request(
            WireBackend::Model,
            None,
            vec![
                WireCell::new("specint-00", 10),
                WireCell::new("specint-00", 10),
            ],
        );
        let resp = svc.evaluate(&req).expect("model path never sheds");
        assert_eq!(resp.results.len(), 2);
        for r in &resp.results {
            assert_eq!(r.backend, "model");
            assert!(!r.degraded);
            assert!(r.outcome.as_ref().expect("valid cell").throughput > 0.0);
        }
        let snap = svc.telemetry().snapshot();
        assert_eq!(snap.counter("serve.cache_hits"), 1, "second cell hits");
        assert_eq!(snap.counter("serve.dispatches"), 0, "no sim dispatch");
    }

    #[test]
    fn sim_requests_coalesce_and_match_the_backend() {
        let svc = service(quick_config());
        let cells = vec![
            WireCell::new("legacy-00", 8),
            WireCell::new("legacy-00", 8),
            WireCell::new("legacy-00", 12),
        ];
        let resp = with_workers(&svc, || {
            svc.evaluate(&request(WireBackend::Sim, None, cells))
                .expect("admitted")
        });
        assert_eq!(resp.results[0].outcome, resp.results[1].outcome);
        assert_eq!(resp.results[0].backend, "sim");
        let snap = svc.telemetry().snapshot();
        assert_eq!(snap.counter("serve.cells_requested"), 3);
        assert!(
            snap.counter("serve.dispatch_cells") <= 2,
            "duplicates never reach the backend"
        );
        // A repeat of the whole request is pure cache.
        let again = svc
            .evaluate(&request(
                WireBackend::Sim,
                None,
                vec![
                    WireCell::new("legacy-00", 8),
                    WireCell::new("legacy-00", 12),
                ],
            ))
            .expect("cache path never queues");
        assert_eq!(again.results[0].outcome, resp.results[0].outcome);
        let snap = svc.telemetry().snapshot();
        assert!(snap.counter("serve.cache_hits") >= 2);
    }

    #[test]
    fn depth_sweeps_route_through_the_sweep_kernel_seam() {
        let svc = service(quick_config());
        let cells = vec![
            WireCell::new("modern-01", 6),
            WireCell::new("modern-01", 10),
            WireCell::new("modern-01", 14),
            WireCell::new("legacy-02", 9), // a loner: no sweep mates
        ];
        let resp = with_workers(&svc, || {
            svc.evaluate(&request(WireBackend::Sim, None, cells))
                .expect("admitted")
        });
        for r in &resp.results {
            assert_eq!(r.backend, "sim");
            assert!(r.outcome.is_ok());
        }
        let snap = svc.telemetry().snapshot();
        assert_eq!(snap.counter("serve.sweep_kernel.groups"), 1);
        assert_eq!(snap.counter("serve.sweep_kernel.cells"), 3);
        // The seam changes routing, not results: a fresh service answers
        // the same cells identically through the per-cell path.
        let reference = service(quick_config());
        let again = with_workers(&reference, || {
            reference
                .evaluate(&request(
                    WireBackend::Sim,
                    None,
                    vec![WireCell::new("modern-01", 10)],
                ))
                .expect("admitted")
        });
        assert_eq!(again.results[0].outcome, resp.results[1].outcome);
    }

    #[test]
    fn zero_deadline_degrades_auto_to_the_model() {
        let svc = service(quick_config());
        let resp = svc
            .evaluate(&request(
                WireBackend::Auto,
                Some(0),
                vec![WireCell::new("fp-00", 9)],
            ))
            .expect("degraded requests do not queue");
        let r = &resp.results[0];
        assert_eq!(r.backend, "model");
        assert!(r.degraded, "zero budget rules simulation out");
        assert!(r.outcome.is_ok());
        assert_eq!(svc.telemetry().snapshot().counter("serve.degraded"), 1);
        // The same cell with `sim` misses its deadline instead.
        let resp = svc
            .evaluate(&request(
                WireBackend::Sim,
                Some(0),
                vec![WireCell::new("fp-00", 9)],
            ))
            .expect("admitted");
        let err = resp.results[0].outcome.as_ref().expect_err("deadline");
        assert_eq!(err.code(), "deadline_exceeded");
        // Drain the queued cell so the test leaves nothing running.
        with_workers(&svc, || {});
    }

    #[test]
    fn invalid_cells_fail_as_values_next_to_valid_ones() {
        let svc = service(quick_config());
        let resp = with_workers(&svc, || {
            svc.evaluate(&request(
                WireBackend::Sim,
                None,
                vec![
                    WireCell::new("no-such-workload", 8),
                    WireCell::new("modern-00", 8),
                ],
            ))
            .expect("admitted")
        });
        let err = resp.results[0]
            .outcome
            .as_ref()
            .expect_err("unknown workload");
        assert_eq!(err.code(), "invalid_cell");
        assert!(resp.results[1].outcome.is_ok(), "neighbour unaffected");
    }

    #[test]
    fn unknown_workload_with_explicit_profile_is_model_evaluable() {
        let svc = service(quick_config());
        let cell = WireCell {
            profile: Some(pipedepth_core::eval::WorkloadProfile {
                alpha: 2.0,
                gamma: 0.4,
                hazard_rate: 0.15,
                kappa: 0.22,
                memory_time_fo4: 12.0,
            }),
            ..WireCell::new("custom", 11)
        };
        let resp = svc
            .evaluate(&request(WireBackend::Model, None, vec![cell]))
            .expect("model path");
        assert!(resp.results[0].outcome.is_ok());
    }

    #[test]
    fn shed_when_the_queue_is_full() {
        let svc = service(ServiceConfig {
            queue_cap: 0,
            ..quick_config()
        });
        let shed = svc
            .evaluate(&request(
                WireBackend::Sim,
                None,
                vec![WireCell::new("legacy-01", 8)],
            ))
            .expect_err("zero-capacity queue sheds everything");
        assert!(matches!(shed, Shed::Overloaded { retry_after_s: 1 }));
        assert_eq!(svc.telemetry().snapshot().counter("serve.shed"), 1);
    }

    #[test]
    fn backend_override_pins_requests() {
        let svc = service(ServiceConfig {
            backend: Some(WireBackend::Model),
            ..quick_config()
        });
        let resp = svc
            .evaluate(&request(
                WireBackend::Sim,
                None,
                vec![WireCell::new("specint-01", 10)],
            ))
            .expect("model path");
        assert_eq!(resp.results[0].backend, "model", "--backend wins");
    }

    #[test]
    fn optimum_matches_a_manual_argmax() {
        let svc = service(quick_config());
        let opt = svc.optimum("specint-00", 3).expect("known workload");
        assert_eq!(opt.m, 3);
        assert!(OPTIMUM_DEPTHS.contains(&opt.optimum_depth));
        assert!(
            opt.perf_only_depth > opt.optimum_depth,
            "power-aware optimum is shallower than the raw-performance one"
        );
        // Cross-check against a direct model sweep.
        let w = suite()
            .into_iter()
            .find(|w| w.name == "specint-00")
            .expect("suite workload");
        let profile = fitted_profile(&w);
        let model = AnalyticModel::paper();
        let best = OPTIMUM_DEPTHS
            .map(|d| {
                let out = model
                    .evaluate(&cell_for(&w, profile, d, &quick_config().run))
                    .expect("valid");
                (out.metric_gated[2], d)
            })
            .fold((f64::MIN, 0), |acc, x| if x.0 > acc.0 { x } else { acc });
        assert_eq!(opt.optimum_depth, best.1);
        assert!(svc.optimum("nope", 3).is_err());
        assert!(svc.optimum("specint-00", 9).is_err());
    }

    #[test]
    fn stats_line_reflects_counters() {
        let svc = service(quick_config());
        let _ = svc.evaluate(&request(
            WireBackend::Model,
            None,
            vec![WireCell::new("fp-01", 7)],
        ));
        let line = svc.stats_line();
        assert!(line.contains("1 requests"), "{line}");
        assert!(line.contains("1 cells"), "{line}");
    }

    /// A fresh scratch directory per test (std-only; no tempdir crate).
    fn scratch(tag: &str) -> std::path::PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "pipedepth-serve-svc-{}-{tag}-{n}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        dir
    }

    #[test]
    fn store_restart_answers_from_disk_without_dispatch() {
        let dir = scratch("warm");
        let mut config = quick_config();
        config.store = Some(dir.clone());
        let cells = vec![
            WireCell::new("legacy-00", 8),
            WireCell::new("legacy-00", 12),
            WireCell::new("specint-00", 10),
        ];

        // First server: simulate, then drain (final snapshot + sync).
        let svc = service(config.clone());
        let first = with_workers(&svc, || {
            svc.evaluate(&request(WireBackend::Sim, None, cells.clone()))
                .expect("admitted")
        });
        svc.finish_store();
        assert!(
            svc.stats_line().contains("snapshot(s) published"),
            "stats line reports the store"
        );

        // Restarted server: every cell answers from the warm tier, with
        // no dispatch worker running at all.
        let warm = service(config);
        let resp = warm
            .evaluate(&request(WireBackend::Sim, None, cells))
            .expect("pure warm-cache answers need no queue");
        for (a, b) in resp.results.iter().zip(&first.results) {
            assert_eq!(a.outcome, b.outcome, "warm answers are bit-identical");
            assert_eq!(a.backend, "sim");
        }
        let snap = warm.telemetry().snapshot();
        assert_eq!(snap.counter("serve.dispatches"), 0, "nothing re-simulated");
        assert_eq!(snap.counter("store.outcomes_loaded"), 3);
        assert_eq!(snap.counter("serve.cache_hits"), 3);
        warm.finish_store();
        let snap = warm.telemetry().snapshot();
        assert_eq!(
            snap.counter("store.hits"),
            3,
            "all three from the warm tier"
        );
        assert_eq!(snap.counter("store.invalid"), 0);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn no_cache_disables_the_store_entirely() {
        let dir = scratch("nocache");
        let mut config = quick_config();
        config.store = Some(dir.clone());
        config.cache = false;
        let svc = service(config);
        let resp = with_workers(&svc, || {
            svc.evaluate(&request(
                WireBackend::Sim,
                None,
                vec![WireCell::new("fp-01", 9)],
            ))
            .expect("admitted")
        });
        assert!(resp.results[0].outcome.is_ok());
        svc.finish_store();
        assert!(
            !svc.stats_line().contains("store:"),
            "no store section without a cache to warm"
        );
        assert!(
            !dir.join("outcomes.pds").exists(),
            "nothing published without a cache"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
