//! Loopback integration tests: a real server on an ephemeral port, real
//! sockets, concurrent clients.
//!
//! These pin the service-level guarantees the unit tests cannot:
//! coalescing observed end to end through `/metrics`, deterministic
//! response bodies under concurrency, deadline degradation over the wire,
//! backpressure as a real 429, and a graceful shutdown that drains
//! in-flight work and yields the final stats line.

use pipedepth_experiments::sweep::RunConfig;
use pipedepth_serve::json::{parse, Json};
use pipedepth_serve::service::ServiceConfig;
use pipedepth_serve::Server;
use pipedepth_telemetry::Telemetry;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread;

/// A fast-simulating service configuration for tests.
fn quick() -> ServiceConfig {
    ServiceConfig {
        threads: 1,
        run: RunConfig {
            warmup: 1_000,
            instructions: 2_000,
            ..RunConfig::quick()
        },
        ..ServiceConfig::default()
    }
}

/// Binds an ephemeral-port server and runs it on a background thread.
fn start(config: ServiceConfig) -> (SocketAddr, thread::JoinHandle<String>) {
    let server = Server::bind("127.0.0.1:0", config, Telemetry::new()).expect("bind :0");
    let addr = server.local_addr().expect("bound address");
    (addr, thread::spawn(move || server.run()))
}

/// Shuts the server down and returns its final stats line.
fn stop(addr: SocketAddr, handle: thread::JoinHandle<String>) -> String {
    let (status, _, _) = request(addr, "POST", "/v1/shutdown", "");
    assert_eq!(status, 200, "shutdown acknowledged");
    handle.join().expect("server thread exits")
}

/// One HTTP exchange: returns (status, raw headers, body).
fn request(addr: SocketAddr, method: &str, target: &str, body: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let raw = format!(
        "{method} {target} HTTP/1.1\r\nHost: loopback\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(raw.as_bytes()).expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("header/body separator");
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    (status, head.to_string(), body.to_string())
}

/// A counter's value out of the `/metrics` JSON body.
fn metric_counter(addr: SocketAddr, name: &str) -> u64 {
    let (status, _, body) = request(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    parse(&body)
        .expect("metrics are valid JSON")
        .get(name)
        .and_then(|m| m.get("value"))
        .and_then(Json::as_u64)
        .unwrap_or(0)
}

#[test]
fn concurrent_identical_requests_coalesce_and_agree() {
    let (addr, handle) = start(quick());
    let body = r#"{"schema_version": 1, "backend": "sim", "cells": [
        {"workload": "legacy-00", "depth": 8},
        {"workload": "legacy-00", "depth": 10},
        {"workload": "legacy-00", "depth": 12}
    ]}"#;
    let clients = 6;
    let responses: Vec<String> = thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                scope.spawn(move || {
                    let (status, _, body) = request(addr, "POST", "/v1/evaluate", body);
                    assert_eq!(status, 200);
                    body
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });
    // Determinism over the wire: every client saw the same bytes.
    for r in &responses[1..] {
        assert_eq!(r, &responses[0], "responses must be byte-identical");
    }
    let doc = parse(&responses[0]).expect("valid JSON");
    let results = doc
        .get("results")
        .and_then(Json::as_array)
        .expect("results");
    assert_eq!(results.len(), 3);
    for r in results {
        assert_eq!(r.get("backend").and_then(Json::as_str), Some("sim"));
        assert_eq!(r.get("degraded").and_then(Json::as_bool), Some(false));
        let throughput = r
            .get("outcome")
            .and_then(|o| o.get("throughput"))
            .and_then(Json::as_f64)
            .expect("outcome present");
        assert!(throughput > 0.0);
    }
    // Coalescing observed end to end: 6 clients × 3 cells = 18 requested,
    // but the backend saw each distinct cell at most once per flight.
    let requested = metric_counter(addr, "serve.cells_requested");
    let dispatched = metric_counter(addr, "serve.dispatch_cells");
    assert_eq!(requested, (clients * 3) as u64);
    assert!(
        dispatched <= 3,
        "only 3 distinct cells exist, backend saw {dispatched}"
    );
    assert!(
        dispatched < requested,
        "coalescing must shrink the dispatch"
    );
    let stats = stop(addr, handle);
    assert!(stats.contains("coalesced"), "stats line: {stats}");
}

#[test]
fn zero_deadline_degrades_auto_over_the_wire() {
    let (addr, handle) = start(quick());
    let body = r#"{"backend": "auto", "deadline_ms": 0, "cells": [
        {"workload": "fp-00", "depth": 9}
    ]}"#;
    let (status, _, response) = request(addr, "POST", "/v1/evaluate", body);
    assert_eq!(status, 200);
    let doc = parse(&response).expect("valid JSON");
    let result = &doc
        .get("results")
        .and_then(Json::as_array)
        .expect("results")[0];
    assert_eq!(result.get("backend").and_then(Json::as_str), Some("model"));
    assert_eq!(
        result.get("degraded").and_then(Json::as_bool),
        Some(true),
        "a zero budget must degrade auto to the analytic model"
    );
    assert!(
        result.get("outcome").is_some(),
        "degraded is still answered"
    );
    // The same request on `sim` misses its deadline instead of degrading.
    let body = r#"{"backend": "sim", "deadline_ms": 0, "cells": [
        {"workload": "fp-00", "depth": 17}
    ]}"#;
    let (status, _, response) = request(addr, "POST", "/v1/evaluate", body);
    assert_eq!(status, 200);
    let doc = parse(&response).expect("valid JSON");
    let result = &doc
        .get("results")
        .and_then(Json::as_array)
        .expect("results")[0];
    assert_eq!(
        result
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("deadline_exceeded")
    );
    // Shutdown drains the cell that missed its deadline — run() must not
    // hang on it.
    let stats = stop(addr, handle);
    assert!(stats.contains("requests"), "stats line: {stats}");
}

#[test]
fn full_queue_sheds_with_retry_after() {
    let (addr, handle) = start(ServiceConfig {
        queue_cap: 0,
        ..quick()
    });
    let body = r#"{"backend": "sim", "cells": [{"workload": "modern-00", "depth": 8}]}"#;
    let (status, head, response) = request(addr, "POST", "/v1/evaluate", body);
    assert_eq!(status, 429);
    assert!(head.contains("Retry-After: 1"), "headers: {head}");
    let doc = parse(&response).expect("valid JSON");
    assert_eq!(
        doc.get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("overloaded")
    );
    // The model path does not queue, so it still answers under overload.
    let body = r#"{"backend": "model", "cells": [{"workload": "modern-00", "depth": 8}]}"#;
    let (status, _, _) = request(addr, "POST", "/v1/evaluate", body);
    assert_eq!(status, 200, "analytic requests bypass admission control");
    stop(addr, handle);
}

#[test]
fn health_metrics_optimum_and_errors() {
    let (addr, handle) = start(quick());
    let (status, _, body) = request(addr, "GET", "/healthz", "");
    assert_eq!((status, body.as_str()), (200, "{\"status\": \"ok\"}"));
    let (status, _, body) = request(addr, "GET", "/v1/optimum?workload=specint-00&m=3", "");
    assert_eq!(status, 200);
    let doc = parse(&body).expect("valid JSON");
    let optimum = doc
        .get("optimum_depth")
        .and_then(Json::as_u64)
        .expect("depth");
    let perf = doc
        .get("perf_only_depth")
        .and_then(Json::as_u64)
        .expect("perf depth");
    assert!(
        optimum >= 2 && optimum < perf,
        "optimum {optimum}, perf {perf}"
    );
    // Error surface: bad routes, methods, bodies and versions.
    let (status, _, _) = request(addr, "GET", "/v1/nope", "");
    assert_eq!(status, 404);
    let (status, _, _) = request(addr, "GET", "/v1/evaluate", "");
    assert_eq!(status, 405);
    let (status, _, _) = request(addr, "GET", "/v1/optimum", "");
    assert_eq!(status, 400, "missing workload parameter");
    let (status, _, body) = request(addr, "POST", "/v1/evaluate", "{not json");
    assert_eq!(status, 400);
    assert!(body.contains("invalid_request"), "{body}");
    let (status, _, body) = request(
        addr,
        "POST",
        "/v1/evaluate",
        r#"{"schema_version": 7, "cells": [{"workload": "w", "depth": 4}]}"#,
    );
    assert_eq!(status, 400);
    assert!(body.contains("unsupported_version"), "{body}");
    stop(addr, handle);
}

#[test]
fn shutdown_drains_in_flight_requests() {
    let (addr, handle) = start(quick());
    // A request that takes real simulation time…
    let client = thread::spawn(move || {
        let body = r#"{"backend": "sim", "cells": [
            {"workload": "specint-02", "depth": 14},
            {"workload": "specint-02", "depth": 18}
        ]}"#;
        request(addr, "POST", "/v1/evaluate", body)
    });
    // …known to be in flight (its `serve.requests` tick is visible) when
    // shutdown arrives: the drain must still answer it with real outcomes.
    for _ in 0..400 {
        if metric_counter(addr, "serve.requests") >= 1 {
            break;
        }
        thread::sleep(std::time::Duration::from_millis(5));
    }
    let stats = stop(addr, handle);
    let (status, _, body) = client.join().expect("client thread");
    assert_eq!(status, 200, "in-flight request answered during drain");
    let doc = parse(&body).expect("valid JSON");
    let results = doc
        .get("results")
        .and_then(Json::as_array)
        .expect("results");
    assert_eq!(results.len(), 2);
    for r in results {
        assert!(r.get("outcome").is_some(), "drained, not dropped: {body}");
    }
    assert!(stats.starts_with("serve: "), "stats line: {stats}");
}
