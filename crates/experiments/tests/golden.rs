//! Golden-artifact regression test for the `repro` binary.
//!
//! A serial and a 2-worker `--quick` run into separate directories must
//! produce CSV artifacts with the expected headers and row counts,
//! byte-identical across the two runs — the determinism guarantee the cell
//! runner makes for any thread count — and `manifest.json` must be
//! byte-identical after masking its wall-clock-dependent lines.

use std::fs;
use std::path::Path;
use std::process::Command;

fn run_repro(out: &Path, threads: &str) {
    let status = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["--quick", "--threads", threads, "--out"])
        .arg(out)
        .status()
        .expect("repro binary runs");
    assert!(status.success(), "repro exited with {status}");
}

fn read(dir: &Path, name: &str) -> String {
    fs::read_to_string(dir.join(name)).unwrap_or_else(|e| panic!("{name}: {e}"))
}

/// The manifest with every wall-clock-dependent line replaced by a
/// placeholder. The manifest's layout contract keeps timing confined to
/// lines containing `_us` (phase timings, timing histograms and counters),
/// the `"threads"` line and gauge lines (worker utilization).
fn masked_manifest(dir: &Path) -> String {
    read(dir, "manifest.json")
        .lines()
        .map(|line| {
            if line.contains("_us") || line.contains("\"threads\"") || line.contains("\"gauge\"") {
                "<masked>"
            } else {
                line
            }
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn quick_artifacts_are_deterministic_and_well_formed() {
    let base = std::env::temp_dir().join(format!("pipedepth-golden-{}", std::process::id()));
    let (dir_a, dir_b) = (base.join("a"), base.join("b"));
    run_repro(&dir_a, "1");
    run_repro(&dir_b, "2");

    // The quick config sweeps depths 2, 4, …, 24 → 12 rows per depth table;
    // Figs. 8/9 sample the analytic curves at depths 1–28.
    let panel_header = "depth,sim_gated,sim_ungated,theory_gated,theory_ungated";
    let expectations: &[(&str, &str, usize)] = &[
        ("fig1.csv", "p,d_metric_dp", 321),
        ("fig3.csv", "depth,latches", 24),
        ("fig4a.csv", panel_header, 12),
        ("fig4b.csv", panel_header, 12),
        ("fig4c.csv", panel_header, 12),
        ("fig5.csv", "depth,BIPS,BIPS^3/W,BIPS^2/W,BIPS/W", 12),
        (
            "workloads.csv",
            "workload,class,alpha,gamma,hazard_rate,kappa,memory_time_fo4,serial_fraction",
            55,
        ),
        (
            "fig6.csv",
            "workload,class,cubic_fit_depth,grid_depth,r_squared",
            55,
        ),
        (
            "fig8.csv",
            "depth,leak_0pct,leak_15pct,leak_30pct,leak_50pct,leak_90pct",
            28,
        ),
        (
            "fig9.csv",
            "depth,beta_1,beta_1.1,beta_1.3,beta_1.5,beta_1.8",
            28,
        ),
    ];
    for (name, header, rows) in expectations {
        let a = read(&dir_a, name);
        assert_eq!(a.lines().next(), Some(*header), "{name} header");
        assert_eq!(a.lines().count(), rows + 1, "{name} row count");
        assert_eq!(
            a,
            read(&dir_b, name),
            "{name} must be byte-identical across runs"
        );
    }

    // The report carries verdicts plus the runner's own metrics (these are
    // timing-dependent, so report.md is excluded from the byte comparison).
    let report = read(&dir_a, "report.md");
    assert!(
        report.contains("within tolerance"),
        "verdict table missing:\n{report}"
    );
    assert!(
        report.contains("simulation cache:"),
        "cache statistics missing:\n{report}"
    );
    assert!(report.contains("## Run metrics"), "phase table missing");
    assert!(report.contains("## Telemetry"), "telemetry section missing");

    // The manifest must be identical for 1 vs 2 workers once wall-clock
    // lines are masked: counters aggregate commutatively, snapshots are
    // name-sorted, and the JSON layout keeps timing on maskable lines.
    let masked = masked_manifest(&dir_a);
    assert_eq!(
        masked,
        masked_manifest(&dir_b),
        "masked manifest must not depend on the thread count"
    );
    assert!(masked.contains("\"schema_version\": 4"));
    assert!(masked.contains("\"sweep_kernel\": {\"enabled\": true"));
    assert!(
        masked.contains("\"store\": null"),
        "a run without --store must record a null store section"
    );
    assert!(masked.contains("\"digest\": "));
    assert!(masked.contains("\"hit_rate\": "));
    #[cfg(feature = "telemetry")]
    for metric in [
        "\"sim.instructions\"",
        "\"sim.stage.hazard.control.events\"",
        "\"sim.stage.frontend.fetch_stall_cycles\"",
        "\"sim.stage.issue.distinct_cycles\"",
        "\"sim.stage.exec.memory_wait_cycles\"",
        "\"sim.predictor.misses\"",
        "\"sim.cache.l1d.hits\"",
        "\"trace.instructions_generated\"",
        "\"trace.arena.hits\"",
        "\"trace.arena.misses\"",
        "\"runner.cells_simulated\"",
        "\"runner.cache_hits\"",
        "\"runner.sweep_kernel.groups\"",
        "\"runner.sweep_kernel.cells\"",
        "\"trace.annotate.misses\"",
        "\"trace.annotate.instructions_annotated\"",
        "\"trace.arena.fingerprint_memo_hits\"",
    ] {
        assert!(masked.contains(metric), "{metric} missing from manifest");
    }

    // The arena section: shared traces must serve ≥ 90% of requests, the
    // counters must be deterministic (unmasked lines already compared
    // above), and the hit counter must be nonzero.
    let manifest_a = read(&dir_a, "manifest.json");
    assert!(manifest_a.contains("\"arena\": {"), "arena section missing");
    let arena_hits: u64 = manifest_a
        .lines()
        .skip_while(|l| !l.contains("\"arena\": {"))
        .find(|l| l.contains("\"hits\": "))
        .and_then(|l| {
            l.trim()
                .trim_start_matches("\"hits\": ")
                .trim_end_matches(',')
                .parse()
                .ok()
        })
        .expect("arena hits counter present");
    assert!(arena_hits > 0, "arena must serve shared traces");

    let _ = fs::remove_dir_all(&base);
}
