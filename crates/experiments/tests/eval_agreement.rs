//! Property test for the backend-agnostic `Evaluator` layer: the analytic
//! model, fed the profile the simulation backend extracts at the reference
//! depth, must agree with the simulator on CPI *shape* across a
//! workload × depth grid.
//!
//! The extraction carries a per-workload scale offset (the reason the
//! paper's Fig. 4 overlays are scale-only fits), so the property is not
//! absolute equality: for each workload the model/sim CPI ratio must stay
//! inside a band around its own mean across depths, and inside loose
//! absolute bounds. The band is fitted per workload class — floating-point
//! traces carry a large depth-independent latency component the closed
//! forms flatten out, so their ratio legitimately drifts more with depth
//! than the integer classes'.

use pipedepth_core::eval::{AnalyticModel, CellSpec, Evaluator};
use pipedepth_experiments::eval::{cell_for, SimBackend};
use pipedepth_experiments::runner::Runner;
use pipedepth_experiments::sweep::RunConfig;
use pipedepth_workloads::suite;
use std::sync::OnceLock;

const DEPTHS: [u32; 5] = [4, 8, 12, 16, 20];
/// The grid workloads with their fitted shape-tolerance bands: maximum
/// allowed deviation of the model/sim CPI ratio from its own depth-mean.
const WORKLOADS: [(&str, f64); 3] = [("specint-00", 0.10), ("legacy-00", 0.10), ("fp-00", 0.45)];

/// One grid cell: CPI from both backends at (workload, depth).
struct GridRow {
    workload: &'static str,
    depth: u32,
    cpi_sim: f64,
    cpi_model: f64,
}

fn config() -> RunConfig {
    RunConfig {
        warmup: 4_000,
        instructions: 8_000,
        depths: DEPTHS.to_vec(),
        ..RunConfig::default()
    }
}

fn cell(workload: &str, depth: u32) -> CellSpec {
    let config = config();
    let w = suite()
        .into_iter()
        .find(|w| w.name == workload)
        .expect("grid workload is in the suite");
    // The profile slot is filled by the backend for simulation cells; the
    // analytic cells below get the sim-extracted one instead.
    let placeholder = pipedepth_core::WorkloadProfile {
        alpha: 1.0,
        gamma: 0.5,
        hazard_rate: 0.1,
        kappa: 0.2,
        memory_time_fo4: 10.0,
    };
    cell_for(&w, placeholder, depth, &config)
}

fn grid() -> &'static Vec<GridRow> {
    static GRID: OnceLock<Vec<GridRow>> = OnceLock::new();
    GRID.get_or_init(|| {
        let runner = Runner::serial();
        let backend = SimBackend::new(&runner);
        let model = AnalyticModel::paper();
        let config = config();
        let mut rows = Vec::new();
        for (workload, _) in WORKLOADS {
            // Fit the analytic profile where the harness fits it: one
            // simulation at the reference depth.
            let fitted = backend
                .evaluate(&cell(workload, config.ref_depth))
                .expect("reference cell is valid")
                .profile;
            for depth in DEPTHS {
                let sim_cell = cell(workload, depth);
                let model_cell = CellSpec {
                    profile: fitted,
                    ..sim_cell.clone()
                };
                rows.push(GridRow {
                    workload,
                    depth,
                    cpi_sim: backend.evaluate(&sim_cell).expect("valid cell").cpi,
                    cpi_model: model.evaluate(&model_cell).expect("valid cell").cpi,
                });
            }
        }
        rows
    })
}

#[test]
fn grid_is_fully_populated_with_sane_cpi() {
    let grid = grid();
    assert_eq!(grid.len(), WORKLOADS.len() * DEPTHS.len());
    for row in grid {
        assert!(
            row.cpi_sim > 0.1 && row.cpi_sim.is_finite(),
            "{} d={}: sim CPI {}",
            row.workload,
            row.depth,
            row.cpi_sim
        );
        assert!(
            row.cpi_model > 0.0 && row.cpi_model.is_finite(),
            "{} d={}: model CPI {}",
            row.workload,
            row.depth,
            row.cpi_model
        );
    }
}

#[test]
fn backends_agree_on_cpi_within_the_fitted_band() {
    let grid = grid();
    for (workload, band) in WORKLOADS {
        let ratios: Vec<f64> = grid
            .iter()
            .filter(|r| r.workload == workload)
            .map(|r| r.cpi_model / r.cpi_sim)
            .collect();
        let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
        for (depth, ratio) in DEPTHS.iter().zip(&ratios) {
            // Absolute band: the model must be in the simulator's ballpark
            // even before the scale fit.
            assert!(
                (0.4..=2.5).contains(ratio),
                "{workload} d={depth}: model/sim CPI ratio {ratio:.3} out of absolute band"
            );
            // Shape band: the ratio must be stable across depths, i.e. the
            // model tracks the simulated depth dependence.
            assert!(
                (ratio / mean - 1.0).abs() < band,
                "{workload} d={depth}: ratio {ratio:.3} strays >{:.0}% from workload mean {mean:.3}",
                100.0 * band
            );
        }
    }
}

#[test]
fn both_backends_are_deterministic() {
    let runner = Runner::serial();
    let backend = SimBackend::new(&runner);
    let model = AnalyticModel::paper();
    let sim_cell = cell("specint-00", 12);
    let fitted = backend.evaluate(&sim_cell).expect("valid cell").profile;
    let model_cell = CellSpec {
        profile: fitted,
        ..sim_cell.clone()
    };
    assert_eq!(backend.evaluate(&sim_cell), backend.evaluate(&sim_cell));
    assert_eq!(model.evaluate(&model_cell), model.evaluate(&model_cell));
}
