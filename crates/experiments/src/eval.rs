//! Backend selection and the simulation [`Evaluator`] backend.
//!
//! [`pipedepth_core::eval`] defines the backend-agnostic evaluation layer:
//! [`CellSpec`] requests, [`EvalOutcome`] rows, the [`Evaluator`] trait and
//! the closed-form [`AnalyticModel`]. This module supplies the other half:
//!
//! * [`SimBackend`] — the cycle-accurate backend, adapting the cell
//!   [`Runner`] (and its simulation cache) to the [`Evaluator`] trait;
//! * [`Backend`] — the `--backend {sim,model,both}` selector shared by the
//!   `repro` and `sweep` binaries;
//! * [`fitted_profile`] / [`model_curves`] — per-workload analytic
//!   profiles (class means fitted from reference simulations, spread by a
//!   deterministic per-workload perturbation, mirroring how the suite
//!   itself perturbs the class trace models) and full analytic
//!   [`WorkloadCurve`] sweeps built from them, so every figure can be
//!   regenerated without instantiating a single simulator type.

use crate::extract::{extract_from_report, ExtractedParams};
use crate::runner::{CellSpec as SimCell, Runner};
use crate::sweep::{DepthPoint, RunConfig, WorkloadCurve};
use pipedepth_core::eval::{AnalyticModel, CellSpec, EvalOutcome, Evaluator, WorkloadProfile};
use pipedepth_power::{measure, metric, Gating, PowerConfig};
use pipedepth_sim::{SimConfig, SimReport};
use pipedepth_workloads::{suite, Workload, WorkloadClass};
use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;

/// Which evaluation backend a run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// Cycle-accurate simulation only (the historical behaviour).
    #[default]
    Sim,
    /// Closed-form analytic model only: no simulator in the call path.
    Model,
    /// Simulation as the primary source, with the analytic backend
    /// available for cross-validation experiments.
    Both,
}

impl Backend {
    /// Every backend, in documentation order.
    pub const ALL: [Backend; 3] = [Backend::Sim, Backend::Model, Backend::Both];

    /// The stable CLI name.
    pub fn as_str(self) -> &'static str {
        match self {
            Backend::Sim => "sim",
            Backend::Model => "model",
            Backend::Both => "both",
        }
    }

    /// Whether this backend runs the simulator.
    pub fn uses_sim(self) -> bool {
        matches!(self, Backend::Sim | Backend::Both)
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Error for an unrecognised `--backend` value, listing the valid names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownBackend(pub String);

impl fmt::Display for UnknownBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown backend \"{}\" (valid backends: sim, model, both)",
            self.0
        )
    }
}

impl std::error::Error for UnknownBackend {}

impl FromStr for Backend {
    type Err = UnknownBackend;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Backend::ALL
            .into_iter()
            .find(|b| b.as_str() == s)
            .ok_or_else(|| UnknownBackend(s.to_string()))
    }
}

/// Per-class analytic base profiles: suite means of the reference-depth
/// extractions (quick configuration, depth 10), fitted once and pinned.
/// Each field's half-span mirrors the spread observed across that class's
/// suite members, so analytic distributions (Figs. 6/7) stay
/// non-degenerate.
fn class_base(class: WorkloadClass) -> (WorkloadProfile, WorkloadProfile) {
    let (base, span) = match class {
        WorkloadClass::Legacy => (
            [1.173, 0.579, 0.233, 0.2218, 22.0],
            [0.08, 0.10, 0.09, 0.002, 0.38],
        ),
        WorkloadClass::SpecInt => (
            [2.631, 0.337, 0.175, 0.2185, 4.04],
            [0.11, 0.09, 0.20, 0.0015, 0.90],
        ),
        WorkloadClass::Modern => (
            [1.785, 0.417, 0.199, 0.2206, 16.9],
            [0.12, 0.10, 0.20, 0.002, 0.36],
        ),
        WorkloadClass::FloatingPoint => (
            [2.272, 1.048, 0.057, 0.219, 45.2],
            [0.17, 0.30, 0.51, 0.023, 0.28],
        ),
    };
    (
        WorkloadProfile {
            alpha: base[0],
            gamma: base[1],
            hazard_rate: base[2],
            kappa: base[3],
            memory_time_fo4: base[4],
        },
        WorkloadProfile {
            alpha: span[0],
            gamma: span[1],
            hazard_rate: span[2],
            kappa: span[3],
            memory_time_fo4: span[4],
        },
    )
}

/// A deterministic value in `[-1, 1]` from a workload's trace seed and a
/// per-field lane, via splitmix-style mixing. No RNG state: the same
/// workload always perturbs the same way.
fn unit_jitter(seed: u64, lane: u64) -> f64 {
    let mut z = seed
        .wrapping_add(lane.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 52) as f64 * 2.0 - 1.0
}

/// The fitted analytic profile of one suite workload: its class base
/// perturbed deterministically within the class's observed spread.
pub fn fitted_profile(workload: &Workload) -> WorkloadProfile {
    let (base, span) = class_base(workload.class);
    let s = workload.trace_seed;
    let vary = |b: f64, rel: f64, lane: u64| b * (1.0 + rel * unit_jitter(s, lane));
    WorkloadProfile {
        alpha: vary(base.alpha, span.alpha, 1).max(1.0),
        gamma: vary(base.gamma, span.gamma, 2).clamp(1e-3, 1.5),
        hazard_rate: vary(base.hazard_rate, span.hazard_rate, 3).max(1e-4),
        kappa: vary(base.kappa, span.kappa, 4).max(1e-6),
        memory_time_fo4: vary(base.memory_time_fo4, span.memory_time_fo4, 5).max(0.0),
    }
}

/// The evaluation request for one `(workload, depth)` cell under a run
/// configuration's power calibration.
pub fn cell_for(
    workload: &Workload,
    profile: WorkloadProfile,
    depth: u32,
    config: &RunConfig,
) -> CellSpec {
    CellSpec {
        workload: workload.name.clone(),
        profile,
        depth,
        warmup: config.warmup,
        instructions: config.instructions,
        leakage_fraction: config.leakage_fraction,
        ref_depth: config.ref_depth as f64,
        latch_growth: 1.3,
    }
}

/// Full analytic depth sweeps for a set of workloads — the model-backend
/// replacement for [`Runner::sweep_all`]. No simulator type is touched:
/// each curve is the closed-form evaluation of the workload's
/// [`fitted_profile`] across the configured depths.
pub fn model_curves(workloads: &[Workload], config: &RunConfig) -> Vec<WorkloadCurve> {
    let model = AnalyticModel::paper();
    workloads
        .iter()
        .map(|w| {
            let profile = fitted_profile(w);
            let points = config
                .depths
                .iter()
                .map(|&depth| {
                    let out = model.evaluate(&cell_for(w, profile, depth, config));
                    DepthPoint {
                        depth,
                        throughput: out.throughput,
                        metric_gated: out.metric_gated,
                        metric_ungated: out.metric_ungated,
                        cpi: out.cpi,
                    }
                })
                .collect();
            WorkloadCurve {
                workload: w.clone(),
                points,
                extracted: ExtractedParams::from_profile(&profile, config.ref_depth),
            }
        })
        .collect()
}

/// The cycle-accurate [`Evaluator`] backend: adapts the cell [`Runner`]
/// (worker pool, simulation cache, trace arena) to the backend-agnostic
/// trait. Outcomes are derived from the [`SimReport`] exactly as the sweep
/// layer derives its [`DepthPoint`]s, so a `SimBackend` evaluation of a
/// swept cell reproduces the curve's numbers bit for bit (and hits the
/// runner's cache instead of re-simulating).
pub struct SimBackend<'a> {
    runner: &'a Runner,
    by_name: BTreeMap<String, Workload>,
}

impl<'a> SimBackend<'a> {
    /// A simulation backend resolving workload ids against the full suite.
    pub fn new(runner: &'a Runner) -> Self {
        Self::with_workloads(runner, &suite())
    }

    /// A simulation backend resolving workload ids against an explicit
    /// workload set (tests and custom sweeps).
    pub fn with_workloads(runner: &'a Runner, workloads: &[Workload]) -> Self {
        SimBackend {
            runner,
            by_name: workloads
                .iter()
                .map(|w| (w.name.clone(), w.clone()))
                .collect(),
        }
    }
}

impl fmt::Debug for SimBackend<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimBackend")
            .field("workloads", &self.by_name.len())
            .finish()
    }
}

impl Evaluator for SimBackend<'_> {
    fn name(&self) -> &'static str {
        "sim"
    }

    /// Simulates the cell (or retrieves it from the runner's cache) and
    /// reduces the report to the common outcome row.
    ///
    /// # Panics
    ///
    /// Panics when the cell names a workload the backend does not know.
    fn evaluate(&self, cell: &CellSpec) -> EvalOutcome {
        let workload = self
            .by_name
            .get(&cell.workload)
            // analysis: allow(panic-path) — `Evaluator::evaluate` has no error
            // channel; an unknown workload id is a caller bug, documented above.
            .unwrap_or_else(|| panic!("unknown workload \"{}\"", cell.workload));
        let sim_cell = SimCell::new(
            workload,
            SimConfig::paper(cell.depth),
            cell.warmup,
            cell.instructions,
        );
        let report = &self.runner.run_cells(std::slice::from_ref(&sim_cell))[0];
        outcome_from_report(report, cell)
    }
}

/// Reduces a finished simulation report to the common outcome row, using
/// the cell's power calibration.
pub fn outcome_from_report(report: &SimReport, cell: &CellSpec) -> EvalOutcome {
    let ref_depth = cell.ref_depth.round().max(2.0) as u32;
    let gated = PowerConfig::paper(Gating::Gated, cell.leakage_fraction, ref_depth);
    let ungated = PowerConfig::paper(Gating::Ungated, cell.leakage_fraction, ref_depth);
    let tau = report.time_per_instruction_fo4();
    EvalOutcome {
        depth: cell.depth,
        cpi: report.cpi(),
        frequency: 1.0 / report.config.cycle_time_fo4(),
        time_per_instruction_fo4: tau,
        throughput: report.throughput(),
        power_gated: measure(report, &gated).total(),
        power_ungated: measure(report, &ungated).total(),
        metric_gated: [
            metric(report, &gated, 1.0),
            metric(report, &gated, 2.0),
            metric(report, &gated, 3.0),
        ],
        metric_ungated: [
            metric(report, &ungated, 1.0),
            metric(report, &ungated, 2.0),
            metric(report, &ungated, 3.0),
        ],
        profile: extract_from_report(report, &gated).profile(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipedepth_workloads::representatives;

    fn tiny() -> RunConfig {
        RunConfig {
            warmup: 2_000,
            instructions: 4_000,
            depths: vec![4, 8, 12],
            ..RunConfig::default()
        }
    }

    #[test]
    fn backend_parses_and_rejects() {
        assert_eq!("sim".parse::<Backend>().unwrap(), Backend::Sim);
        assert_eq!("model".parse::<Backend>().unwrap(), Backend::Model);
        assert_eq!("both".parse::<Backend>().unwrap(), Backend::Both);
        let err = "cuda".parse::<Backend>().unwrap_err();
        assert!(err.to_string().contains("valid backends: sim, model, both"));
    }

    #[test]
    fn fitted_profiles_are_deterministic_and_distinct() {
        let ws = suite();
        let profiles: Vec<WorkloadProfile> = ws.iter().map(fitted_profile).collect();
        let again: Vec<WorkloadProfile> = ws.iter().map(fitted_profile).collect();
        assert_eq!(profiles, again, "profiles are pure functions of the suite");
        // Members of the same class must not collapse onto one point, or
        // the analytic optimum distribution (Fig. 6) degenerates.
        let alphas: Vec<f64> = ws
            .iter()
            .zip(&profiles)
            .filter(|(w, _)| w.class == WorkloadClass::SpecInt)
            .map(|(_, p)| p.alpha)
            .collect();
        let spread = alphas.iter().cloned().fold(f64::MIN, f64::max)
            - alphas.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread > 1e-3, "specint α spread {spread} is degenerate");
    }

    #[test]
    fn model_curves_cover_every_depth_and_respect_gating() {
        let ws = representatives();
        let curves = model_curves(&ws, &tiny());
        assert_eq!(curves.len(), ws.len());
        for curve in &curves {
            assert_eq!(curve.depths(), vec![4.0, 8.0, 12.0]);
            for p in &curve.points {
                assert!(p.throughput > 0.0);
                for k in 0..3 {
                    assert!(p.metric_gated[k] > p.metric_ungated[k]);
                }
            }
            assert_eq!(curve.extracted.ref_depth, tiny().ref_depth);
        }
    }

    #[test]
    fn sim_backend_matches_the_sweep_layer_exactly() {
        let runner = Runner::serial();
        let cfg = tiny();
        let w = &representatives()[1];
        let curve = runner.sweep_workload(w, &cfg);
        let backend = SimBackend::with_workloads(&runner, std::slice::from_ref(w));
        for point in &curve.points {
            let out = backend.evaluate(&cell_for(w, fitted_profile(w), point.depth, &cfg));
            assert_eq!(out.cpi, point.cpi, "depth {}", point.depth);
            assert_eq!(out.throughput, point.throughput);
            assert_eq!(out.metric_gated, point.metric_gated);
            assert_eq!(out.metric_ungated, point.metric_ungated);
        }
    }

    #[test]
    #[should_panic(expected = "unknown workload")]
    fn sim_backend_rejects_unknown_workloads() {
        let runner = Runner::serial();
        let backend = SimBackend::with_workloads(&runner, &[]);
        let w = &representatives()[0];
        backend.evaluate(&cell_for(w, fitted_profile(w), 8, &tiny()));
    }
}
