//! Backend selection and the simulation [`Evaluator`] backend.
//!
//! [`pipedepth_core::eval`] defines the backend-agnostic evaluation layer:
//! [`CellSpec`] requests, [`EvalOutcome`] rows, the [`Evaluator`] trait and
//! the closed-form [`AnalyticModel`]. This module supplies the other half:
//!
//! * [`SimBackend`] — the cycle-accurate backend, adapting the cell
//!   [`Runner`] (and its simulation cache) to the [`Evaluator`] trait;
//! * [`Backend`] — the `--backend {sim,model,both}` selector shared by the
//!   `repro` and `sweep` binaries;
//! * [`fitted_profile`] / [`model_curves`] — per-workload analytic
//!   profiles (class means fitted from reference simulations, spread by a
//!   deterministic per-workload perturbation, mirroring how the suite
//!   itself perturbs the class trace models) and full analytic
//!   [`WorkloadCurve`] sweeps built from them, so every figure can be
//!   regenerated without instantiating a single simulator type.

use crate::extract::{extract_from_report, ExtractedParams};
use crate::runner::{CellSpec as SimCell, Runner};
use crate::sweep::{DepthPoint, RunConfig, WorkloadCurve};
use pipedepth_core::eval::{
    AnalyticModel, CellSpec, EvalError, EvalOutcome, Evaluator, WorkloadProfile,
};
use pipedepth_power::{measure, metric, Gating, PowerConfig};
use pipedepth_sim::{SimConfig, SimReport};
use pipedepth_workloads::{suite, Workload, WorkloadClass};
use std::borrow::Borrow;
use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

/// Which evaluation backend a run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// Cycle-accurate simulation only (the historical behaviour).
    #[default]
    Sim,
    /// Closed-form analytic model only: no simulator in the call path.
    Model,
    /// Simulation as the primary source, with the analytic backend
    /// available for cross-validation experiments.
    Both,
}

impl Backend {
    /// Every backend, in documentation order.
    pub const ALL: [Backend; 3] = [Backend::Sim, Backend::Model, Backend::Both];

    /// The stable CLI name.
    pub fn as_str(self) -> &'static str {
        match self {
            Backend::Sim => "sim",
            Backend::Model => "model",
            Backend::Both => "both",
        }
    }

    /// Whether this backend runs the simulator.
    pub fn uses_sim(self) -> bool {
        matches!(self, Backend::Sim | Backend::Both)
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Error for an unrecognised `--backend` value, listing the valid names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownBackend(pub String);

impl fmt::Display for UnknownBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown backend \"{}\" (valid backends: sim, model, both)",
            self.0
        )
    }
}

impl std::error::Error for UnknownBackend {}

impl FromStr for Backend {
    type Err = UnknownBackend;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Backend::ALL
            .into_iter()
            .find(|b| b.as_str() == s)
            .ok_or_else(|| UnknownBackend(s.to_string()))
    }
}

/// Per-class analytic base profiles: suite means of the reference-depth
/// extractions (quick configuration, depth 10), fitted once and pinned.
/// Each field's half-span mirrors the spread observed across that class's
/// suite members, so analytic distributions (Figs. 6/7) stay
/// non-degenerate.
fn class_base(class: WorkloadClass) -> (WorkloadProfile, WorkloadProfile) {
    let (base, span) = match class {
        WorkloadClass::Legacy => (
            [1.173, 0.579, 0.233, 0.2218, 22.0],
            [0.08, 0.10, 0.09, 0.002, 0.38],
        ),
        WorkloadClass::SpecInt => (
            [2.631, 0.337, 0.175, 0.2185, 4.04],
            [0.11, 0.09, 0.20, 0.0015, 0.90],
        ),
        WorkloadClass::Modern => (
            [1.785, 0.417, 0.199, 0.2206, 16.9],
            [0.12, 0.10, 0.20, 0.002, 0.36],
        ),
        WorkloadClass::FloatingPoint => (
            [2.272, 1.048, 0.057, 0.219, 45.2],
            [0.17, 0.30, 0.51, 0.023, 0.28],
        ),
    };
    (
        WorkloadProfile {
            alpha: base[0],
            gamma: base[1],
            hazard_rate: base[2],
            kappa: base[3],
            memory_time_fo4: base[4],
        },
        WorkloadProfile {
            alpha: span[0],
            gamma: span[1],
            hazard_rate: span[2],
            kappa: span[3],
            memory_time_fo4: span[4],
        },
    )
}

/// A deterministic value in `[-1, 1]` from a workload's trace seed and a
/// per-field lane, via splitmix-style mixing. No RNG state: the same
/// workload always perturbs the same way.
fn unit_jitter(seed: u64, lane: u64) -> f64 {
    let mut z = seed
        .wrapping_add(lane.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 52) as f64 * 2.0 - 1.0
}

/// The fitted analytic profile of one suite workload: its class base
/// perturbed deterministically within the class's observed spread.
pub fn fitted_profile(workload: &Workload) -> WorkloadProfile {
    let (base, span) = class_base(workload.class);
    let s = workload.trace_seed;
    let vary = |b: f64, rel: f64, lane: u64| b * (1.0 + rel * unit_jitter(s, lane));
    WorkloadProfile {
        alpha: vary(base.alpha, span.alpha, 1).max(1.0),
        gamma: vary(base.gamma, span.gamma, 2).clamp(1e-3, 1.5),
        hazard_rate: vary(base.hazard_rate, span.hazard_rate, 3).max(1e-4),
        kappa: vary(base.kappa, span.kappa, 4).max(1e-6),
        memory_time_fo4: vary(base.memory_time_fo4, span.memory_time_fo4, 5).max(0.0),
    }
}

/// The evaluation request for one `(workload, depth)` cell under a run
/// configuration's power calibration.
pub fn cell_for(
    workload: &Workload,
    profile: WorkloadProfile,
    depth: u32,
    config: &RunConfig,
) -> CellSpec {
    CellSpec {
        workload: workload.name.clone(),
        profile,
        depth,
        warmup: config.warmup,
        instructions: config.instructions,
        leakage_fraction: config.leakage_fraction,
        ref_depth: config.ref_depth as f64,
        latch_growth: 1.3,
    }
}

/// Full analytic depth sweeps for a set of workloads — the model-backend
/// replacement for [`Runner::sweep_all`]. No simulator type is touched:
/// each curve is the closed-form evaluation of the workload's
/// [`fitted_profile`] across the configured depths.
pub fn model_curves(workloads: &[Workload], config: &RunConfig) -> Vec<WorkloadCurve> {
    let model = AnalyticModel::paper();
    workloads
        .iter()
        .map(|w| {
            let profile = fitted_profile(w);
            let points = config
                .depths
                .iter()
                .map(|&depth| {
                    let out = model
                        .evaluate(&cell_for(w, profile, depth, config))
                        // analysis: allow(panic-path) — fitted profiles are
                        // finite and clamped, so these cells never fail
                        .expect("fitted cells are valid by construction");
                    DepthPoint {
                        depth,
                        throughput: out.throughput,
                        metric_gated: out.metric_gated,
                        metric_ungated: out.metric_ungated,
                        cpi: out.cpi,
                    }
                })
                .collect();
            WorkloadCurve {
                workload: w.clone(),
                points,
                extracted: ExtractedParams::from_profile(&profile, config.ref_depth),
            }
        })
        .collect()
}

/// The cycle-accurate [`Evaluator`] backend: adapts the cell [`Runner`]
/// (worker pool, simulation cache, trace arena) to the backend-agnostic
/// trait. Outcomes are derived from the [`SimReport`] exactly as the sweep
/// layer derives its [`DepthPoint`]s, so a `SimBackend` evaluation of a
/// swept cell reproduces the curve's numbers bit for bit (and hits the
/// runner's cache instead of re-simulating).
///
/// Generic over how the runner is held — a borrow for experiment code
/// (`SimBackend::new(&runner)`), an owning [`Arc`] for long-lived
/// consumers like the `pipedepth-serve` service (`SimBackend::new(arc)`).
/// The default parameter makes `SimBackend` (unannotated) the owning form.
pub struct SimBackend<R: Borrow<Runner> = Arc<Runner>> {
    runner: R,
    by_name: BTreeMap<String, Workload>,
}

impl<R: Borrow<Runner>> SimBackend<R> {
    /// A simulation backend resolving workload ids against the full suite.
    pub fn new(runner: R) -> Self {
        Self::with_workloads(runner, &suite())
    }

    /// A simulation backend resolving workload ids against an explicit
    /// workload set (tests and custom sweeps).
    pub fn with_workloads(runner: R, workloads: &[Workload]) -> Self {
        SimBackend {
            runner,
            by_name: workloads
                .iter()
                .map(|w| (w.name.clone(), w.clone()))
                .collect(),
        }
    }

    /// The underlying cell runner.
    pub fn runner(&self) -> &Runner {
        self.runner.borrow()
    }

    /// Resolves one evaluation cell into a runnable simulation cell,
    /// rejecting unknown workloads and out-of-range machines as values.
    fn prepare(&self, cell: &CellSpec) -> Result<SimCell, EvalError> {
        cell.validate()?;
        let workload = self
            .by_name
            .get(&cell.workload)
            .ok_or_else(|| EvalError::invalid(format!("unknown workload \"{}\"", cell.workload)))?;
        let config =
            SimConfig::try_paper(cell.depth).map_err(|e| EvalError::invalid(e.to_string()))?;
        Ok(SimCell::new(
            workload,
            config,
            cell.warmup,
            cell.instructions,
        ))
    }
}

impl<R: Borrow<Runner>> fmt::Debug for SimBackend<R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimBackend")
            .field("workloads", &self.by_name.len())
            .finish()
    }
}

impl<R: Borrow<Runner> + Send + Sync> Evaluator for SimBackend<R> {
    fn name(&self) -> &'static str {
        "sim"
    }

    /// Simulates the cell (or retrieves it from the runner's cache) and
    /// reduces the report to the common outcome row.
    fn evaluate(&self, cell: &CellSpec) -> Result<EvalOutcome, EvalError> {
        let sim_cell = self.prepare(cell)?;
        let report = &self.runner().run_cells(std::slice::from_ref(&sim_cell))[0];
        Ok(outcome_from_report(report, cell))
    }

    /// Answers the whole batch in **one** runner dispatch: invalid cells
    /// fail fast as values, every runnable cell joins a single
    /// [`Runner::run_cells`] call (which coalesces duplicates and fans out
    /// over the worker pool once), and outcomes are mapped back in order.
    fn evaluate_batch(&self, cells: &[CellSpec]) -> Vec<Result<EvalOutcome, EvalError>> {
        let prepared: Vec<Result<SimCell, EvalError>> =
            cells.iter().map(|cell| self.prepare(cell)).collect();
        let runnable: Vec<SimCell> = prepared
            .iter()
            .filter_map(|r| r.as_ref().ok())
            .copied()
            .collect();
        let reports = self.runner().run_cells(&runnable);
        let mut reports = reports.iter();
        prepared
            .into_iter()
            .zip(cells)
            .map(|(prep, cell)| {
                prep.map(|_| {
                    // analysis: allow(panic-path) — run_cells returns one
                    // report per runnable cell, in order, by contract
                    let report = reports.next().expect("one report per runnable cell");
                    outcome_from_report(report, cell)
                })
            })
            .collect()
    }

    /// Answers a depth sweep in one runner dispatch. The runner recognises
    /// the resulting cells — identical in everything but depth — and
    /// routes them through the annotate-once / replay-per-depth sweep
    /// kernel: one trace pass advances every depth lane.
    fn evaluate_sweep(
        &self,
        base: &CellSpec,
        depths: &[u32],
    ) -> Vec<Result<EvalOutcome, EvalError>> {
        let cells: Vec<CellSpec> = depths
            .iter()
            .map(|&depth| CellSpec {
                depth,
                ..base.clone()
            })
            .collect();
        self.evaluate_batch(&cells)
    }
}

/// Reduces a finished simulation report to the common outcome row, using
/// the cell's power calibration.
pub fn outcome_from_report(report: &SimReport, cell: &CellSpec) -> EvalOutcome {
    let ref_depth = cell.ref_depth.round().max(2.0) as u32;
    let gated = PowerConfig::paper(Gating::Gated, cell.leakage_fraction, ref_depth);
    let ungated = PowerConfig::paper(Gating::Ungated, cell.leakage_fraction, ref_depth);
    let tau = report.time_per_instruction_fo4();
    EvalOutcome {
        depth: cell.depth,
        cpi: report.cpi(),
        frequency: 1.0 / report.config.cycle_time_fo4(),
        time_per_instruction_fo4: tau,
        throughput: report.throughput(),
        power_gated: measure(report, &gated).total(),
        power_ungated: measure(report, &ungated).total(),
        metric_gated: [
            metric(report, &gated, 1.0),
            metric(report, &gated, 2.0),
            metric(report, &gated, 3.0),
        ],
        metric_ungated: [
            metric(report, &ungated, 1.0),
            metric(report, &ungated, 2.0),
            metric(report, &ungated, 3.0),
        ],
        profile: extract_from_report(report, &gated).profile(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipedepth_workloads::representatives;

    fn tiny() -> RunConfig {
        RunConfig {
            warmup: 2_000,
            instructions: 4_000,
            depths: vec![4, 8, 12],
            ..RunConfig::default()
        }
    }

    #[test]
    fn backend_parses_and_rejects() {
        assert_eq!("sim".parse::<Backend>().unwrap(), Backend::Sim);
        assert_eq!("model".parse::<Backend>().unwrap(), Backend::Model);
        assert_eq!("both".parse::<Backend>().unwrap(), Backend::Both);
        let err = "cuda".parse::<Backend>().unwrap_err();
        assert!(err.to_string().contains("valid backends: sim, model, both"));
    }

    #[test]
    fn fitted_profiles_are_deterministic_and_distinct() {
        let ws = suite();
        let profiles: Vec<WorkloadProfile> = ws.iter().map(fitted_profile).collect();
        let again: Vec<WorkloadProfile> = ws.iter().map(fitted_profile).collect();
        assert_eq!(profiles, again, "profiles are pure functions of the suite");
        // Members of the same class must not collapse onto one point, or
        // the analytic optimum distribution (Fig. 6) degenerates.
        let alphas: Vec<f64> = ws
            .iter()
            .zip(&profiles)
            .filter(|(w, _)| w.class == WorkloadClass::SpecInt)
            .map(|(_, p)| p.alpha)
            .collect();
        let spread = alphas.iter().cloned().fold(f64::MIN, f64::max)
            - alphas.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread > 1e-3, "specint α spread {spread} is degenerate");
    }

    #[test]
    fn model_curves_cover_every_depth_and_respect_gating() {
        let ws = representatives();
        let curves = model_curves(&ws, &tiny());
        assert_eq!(curves.len(), ws.len());
        for curve in &curves {
            assert_eq!(curve.depths(), vec![4.0, 8.0, 12.0]);
            for p in &curve.points {
                assert!(p.throughput > 0.0);
                for k in 0..3 {
                    assert!(p.metric_gated[k] > p.metric_ungated[k]);
                }
            }
            assert_eq!(curve.extracted.ref_depth, tiny().ref_depth);
        }
    }

    #[test]
    fn sim_backend_matches_the_sweep_layer_exactly() {
        let runner = Runner::serial();
        let cfg = tiny();
        let w = &representatives()[1];
        let curve = runner.sweep_workload(w, &cfg);
        let backend = SimBackend::with_workloads(&runner, std::slice::from_ref(w));
        for point in &curve.points {
            let out = backend
                .evaluate(&cell_for(w, fitted_profile(w), point.depth, &cfg))
                .expect("swept cells are valid");
            assert_eq!(out.cpi, point.cpi, "depth {}", point.depth);
            assert_eq!(out.throughput, point.throughput);
            assert_eq!(out.metric_gated, point.metric_gated);
            assert_eq!(out.metric_ungated, point.metric_ungated);
        }
    }

    #[test]
    fn sim_backend_rejects_unknown_workloads_as_values() {
        let runner = Runner::serial();
        let backend = SimBackend::with_workloads(&runner, &[]);
        let w = &representatives()[0];
        let err = backend
            .evaluate(&cell_for(w, fitted_profile(w), 8, &tiny()))
            .expect_err("no workloads registered");
        assert_eq!(err.code(), "invalid_cell");
        assert!(err.to_string().contains("unknown workload"));
    }

    #[test]
    fn sim_backend_rejects_out_of_range_depths_as_values() {
        let runner = Runner::serial();
        let w = &representatives()[0];
        let backend = SimBackend::with_workloads(&runner, std::slice::from_ref(w));
        let err = backend
            .evaluate(&cell_for(w, fitted_profile(w), 99, &tiny()))
            .expect_err("depth 99 is outside the machine's range");
        assert_eq!(err.code(), "invalid_cell");
    }

    #[test]
    fn batch_evaluation_is_one_dispatch_and_matches_single_cells() {
        let runner = Runner::serial();
        let cfg = tiny();
        let w = &representatives()[0];
        let backend = SimBackend::with_workloads(&runner, std::slice::from_ref(w));
        let mut cells: Vec<CellSpec> = cfg
            .depths
            .iter()
            .map(|&d| cell_for(w, fitted_profile(w), d, &cfg))
            .collect();
        // An invalid cell in the middle must not poison its neighbours.
        cells.insert(1, cell_for(w, fitted_profile(w), 99, &cfg));
        let batch = backend.evaluate_batch(&cells);
        assert_eq!(batch.len(), cells.len());
        assert!(batch[1].is_err(), "invalid cell fails as a value");
        // One dispatch: the runner saw exactly the runnable cells, once.
        let stats = runner.cache_stats().expect("cache enabled by default");
        assert_eq!(stats.requested(), cfg.depths.len() as u64);
        for (i, result) in batch.iter().enumerate() {
            if i == 1 {
                continue;
            }
            let single = backend.evaluate(&cells[i]).expect("valid cell");
            assert_eq!(result.as_ref().expect("valid cell"), &single);
        }
    }

    #[test]
    fn sweep_evaluation_is_one_dispatch_and_matches_single_cells() {
        let runner = Runner::serial();
        let cfg = tiny();
        let w = &representatives()[2];
        let backend = SimBackend::with_workloads(&runner, std::slice::from_ref(w));
        let base = cell_for(w, fitted_profile(w), cfg.depths[0], &cfg);
        let depths = [4u32, 99, 8, 12];
        let sweep = backend.evaluate_sweep(&base, &depths);
        assert_eq!(sweep.len(), depths.len());
        assert!(sweep[1].is_err(), "out-of-range depth fails as a value");
        // One dispatch: the runner saw exactly the runnable depths, once.
        let stats = runner.cache_stats().expect("cache enabled by default");
        assert_eq!(stats.requested(), 3);
        // And the kernel-backed sweep matches per-cell evaluation exactly.
        let reference = Runner::serial().without_sweep_kernel();
        let ref_backend = SimBackend::with_workloads(&reference, std::slice::from_ref(w));
        for (&depth, result) in depths.iter().zip(&sweep) {
            if depth == 99 {
                continue;
            }
            let cell = CellSpec {
                depth,
                ..base.clone()
            };
            let single = ref_backend.evaluate(&cell).expect("valid cell");
            assert_eq!(result.as_ref().expect("valid cell"), &single);
        }
    }

    #[test]
    fn sim_backend_works_behind_an_owning_arc() {
        use std::sync::Arc;
        let runner = Arc::new(Runner::serial());
        let cfg = tiny();
        let w = &representatives()[0];
        let backend: SimBackend =
            SimBackend::with_workloads(Arc::clone(&runner), std::slice::from_ref(w));
        let out = backend
            .evaluate(&cell_for(w, fitted_profile(w), 8, &cfg))
            .expect("valid cell");
        assert!(out.throughput > 0.0);
        // The borrow-based and Arc-based forms drive the same runner type.
        let borrowed = SimBackend::with_workloads(&*runner, std::slice::from_ref(w));
        assert_eq!(
            borrowed
                .evaluate(&cell_for(w, fitted_profile(w), 8, &cfg))
                .expect("valid cell"),
            out
        );
    }

    #[test]
    fn crate_error_wraps_sim_config_rejections_with_source() {
        use std::error::Error as _;
        let rejection = SimConfig::try_paper(99).expect_err("depth 99 invalid");
        let err = pipedepth_core::Error::config(rejection);
        assert!(err.to_string().contains("configuration rejected"));
        let source = err.source().expect("source preserved");
        assert!(source.to_string().contains("99"), "source: {source}");
    }
}
