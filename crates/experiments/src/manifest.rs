//! The machine-readable run manifest written by the `repro` binary.
//!
//! `results/manifest.json` captures everything a downstream consumer needs
//! to audit a reproduction run without scraping `report.md`: a schema
//! version, the run configuration plus a content digest of it, per-phase
//! wall times, the simulation-cache counters and a snapshot of every
//! telemetry metric. The JSON is hand-rendered (the workspace is offline,
//! no serialisation dependency) with one phase and one metric per line, and
//! every wall-clock-dependent field confined to lines containing `_us`,
//! `"threads"` or `"type": "gauge"` — line-oriented consumers, including
//! the golden-manifest test, mask exactly those lines and byte-compare the
//! rest across thread counts.

use crate::runner::CacheStats;
use crate::store::StoreStats;
use crate::sweep::RunConfig;
use pipedepth_sim::AnnotateStats;
use pipedepth_telemetry::{json, Snapshot};
use pipedepth_trace::ArenaStats;
use std::fmt::Write as _;
use std::time::Duration;

/// Version of the manifest layout; bumped on breaking changes so consumers
/// can reject manifests they do not understand. Version 2 added the
/// `arena` section (trace-arena service counters, or `null` when the arena
/// is disabled via `--no-arena`). Version 3 added the single-line
/// `sweep_kernel` section (annotation-store counters, or `null` when the
/// kernel is disabled via `--no-sweep-kernel`) — kept to one line so
/// kernel-A/B consumers can drop it wholesale. Version 4 added the
/// single-line `store` section (persistent-store counters of a `--store`
/// run, or `null` without one), one line for the same reason: warm-vs-cold
/// manifest comparisons drop it with a line filter.
pub const SCHEMA_VERSION: u32 = 4;

/// Wall time of one named phase of a run.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseTiming {
    /// Phase name (`suite sweep` or an experiment name).
    pub name: String,
    /// Wall-clock duration of the phase.
    pub wall: Duration,
}

/// Everything `manifest.json` records about one `repro` run.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// Worker threads the runner scheduled onto.
    pub threads: usize,
    /// The run configuration (sizing, depths, power calibration).
    pub config: RunConfig,
    /// Per-phase wall times, in execution order.
    pub phases: Vec<PhaseTiming>,
    /// Simulation-cache counters at the end of the run; `None` when the
    /// cache was disabled (`--no-cache`).
    pub cache: Option<CacheStats>,
    /// Trace-arena counters at the end of the run; `None` when the arena
    /// was disabled (`--no-arena`).
    pub arena: Option<ArenaStats>,
    /// Annotation-store counters of the sweep kernel; `None` when the
    /// kernel was disabled (`--no-sweep-kernel`).
    pub sweep_kernel: Option<AnnotateStats>,
    /// Persistent-store counters; `None` when the run had no `--store`.
    pub store: Option<StoreStats>,
    /// Snapshot of every telemetry metric (empty when telemetry is
    /// disabled or compiled out).
    pub metrics: Snapshot,
    /// Total wall time of the run.
    pub total_wall: Duration,
}

/// FNV-1a content digest of a run configuration. `Debug` round-trips every
/// `f64` exactly, so equal digests mean equal configurations.
pub fn config_digest(config: &RunConfig) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in format!("{config:?}").bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn us(d: Duration) -> String {
    json::number(d.as_secs_f64() * 1e6)
}

impl Manifest {
    /// Renders the manifest as JSON (see the module docs for the layout
    /// contract relied on by line-oriented consumers).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"schema_version\": {SCHEMA_VERSION},");
        let _ = writeln!(out, "  \"generator\": \"pipedepth repro\",");
        let _ = writeln!(out, "  \"threads\": {},", self.threads);
        let _ = writeln!(out, "  \"total_wall_us\": {},", us(self.total_wall));
        out.push_str("  \"config\": {\n");
        let _ = writeln!(
            out,
            "    \"digest\": \"{:016x}\",",
            config_digest(&self.config)
        );
        let _ = writeln!(out, "    \"warmup\": {},", self.config.warmup);
        let _ = writeln!(out, "    \"instructions\": {},", self.config.instructions);
        let _ = writeln!(out, "    \"ref_depth\": {},", self.config.ref_depth);
        let _ = writeln!(
            out,
            "    \"leakage_fraction\": {},",
            json::number(self.config.leakage_fraction)
        );
        let depths: Vec<String> = self.config.depths.iter().map(|d| d.to_string()).collect();
        let _ = writeln!(out, "    \"depths\": [{}]", depths.join(", "));
        out.push_str("  },\n");
        out.push_str("  \"phases\": [\n");
        for (i, phase) in self.phases.iter().enumerate() {
            let comma = if i + 1 == self.phases.len() { "" } else { "," };
            let _ = writeln!(
                out,
                "    {{\"name\": \"{}\", \"wall_us\": {}}}{comma}",
                json::escape(&phase.name),
                us(phase.wall)
            );
        }
        out.push_str("  ],\n");
        match &self.cache {
            Some(cache) => {
                out.push_str("  \"cache\": {\n");
                let _ = writeln!(out, "    \"hits\": {},", cache.hits);
                let _ = writeln!(out, "    \"misses\": {},", cache.misses);
                let _ = writeln!(out, "    \"inserts\": {},", cache.inserts);
                let _ = writeln!(out, "    \"requested\": {},", cache.requested());
                let _ = writeln!(out, "    \"hit_rate\": {}", json::number(cache.hit_rate()));
                out.push_str("  },\n");
            }
            None => out.push_str("  \"cache\": null,\n"),
        }
        match &self.arena {
            Some(arena) => {
                out.push_str("  \"arena\": {\n");
                let _ = writeln!(out, "    \"hits\": {},", arena.hits);
                let _ = writeln!(out, "    \"misses\": {},", arena.misses);
                let _ = writeln!(
                    out,
                    "    \"instructions_materialized\": {},",
                    arena.instructions_materialized
                );
                let _ = writeln!(out, "    \"requested\": {},", arena.requested());
                let _ = writeln!(out, "    \"hit_rate\": {}", json::number(arena.hit_rate()));
                out.push_str("  },\n");
            }
            None => out.push_str("  \"arena\": null,\n"),
        }
        // The whole section stays on ONE line containing `sweep_kernel`,
        // enabled or not, so the kernel-A/B manifest comparison can delete
        // it (and nothing else) with a single line filter.
        match &self.sweep_kernel {
            Some(stats) => {
                let _ = writeln!(
                    out,
                    "  \"sweep_kernel\": {{\"enabled\": true, \"annotation_hits\": {}, \
                     \"annotation_misses\": {}, \"instructions_annotated\": {}}},",
                    stats.hits, stats.misses, stats.instructions_annotated
                );
            }
            None => out.push_str("  \"sweep_kernel\": null,\n"),
        }
        // Same one-line contract as `sweep_kernel`: warm-vs-cold manifest
        // comparisons delete every line containing `store` and nothing
        // else, so the section must never span lines.
        match &self.store {
            Some(stats) => {
                let _ = writeln!(
                    out,
                    "  \"store\": {{\"enabled\": true, \"hits\": {}, \"misses\": {}, \
                     \"reports_loaded\": {}, \"annotations_loaded\": {}, \"invalid\": {}, \
                     \"flushes\": {}, \"records_flushed\": {}}},",
                    stats.hits,
                    stats.misses,
                    stats.reports_loaded,
                    stats.annotations_loaded,
                    stats.invalid,
                    stats.flushes,
                    stats.records_flushed
                );
            }
            None => out.push_str("  \"store\": null,\n"),
        }
        out.push_str("  \"metrics\": {\n");
        for (i, metric) in self.metrics.metrics.iter().enumerate() {
            let comma = if i + 1 == self.metrics.metrics.len() {
                ""
            } else {
                ","
            };
            let _ = writeln!(
                out,
                "    \"{}\": {}{comma}",
                json::escape(&metric.name),
                metric.value.to_json()
            );
        }
        out.push_str("  }\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest() -> Manifest {
        Manifest {
            threads: 2,
            config: RunConfig::quick(),
            phases: vec![
                PhaseTiming {
                    name: "suite sweep".into(),
                    wall: Duration::from_micros(1500),
                },
                PhaseTiming {
                    name: "fig4".into(),
                    wall: Duration::from_micros(250),
                },
            ],
            cache: Some(CacheStats {
                hits: 1,
                misses: 3,
                inserts: 3,
            }),
            arena: Some(ArenaStats {
                hits: 9,
                misses: 1,
                instructions_materialized: 30_000,
            }),
            sweep_kernel: Some(AnnotateStats {
                hits: 8,
                misses: 2,
                instructions_annotated: 12_000,
            }),
            store: Some(StoreStats {
                hits: 5,
                misses: 7,
                reports_loaded: 5,
                annotations_loaded: 2,
                invalid: 0,
                flushes: 3,
                records_flushed: 21,
            }),
            metrics: Snapshot::default(),
            total_wall: Duration::from_micros(2000),
        }
    }

    #[test]
    fn digest_tracks_config_content() {
        let quick = RunConfig::quick();
        assert_eq!(config_digest(&quick), config_digest(&RunConfig::quick()));
        assert_ne!(config_digest(&quick), config_digest(&RunConfig::default()));
    }

    #[test]
    fn renders_schema_version_and_sections() {
        let rendered = manifest().to_json();
        assert!(rendered.starts_with("{\n  \"schema_version\": 4,\n"));
        for needle in [
            "\"config\": {",
            "\"digest\": ",
            "\"phases\": [",
            "\"cache\": {",
            "\"arena\": {",
            "\"instructions_materialized\": 30000",
            "\"sweep_kernel\": {\"enabled\": true",
            "\"instructions_annotated\": 12000",
            "\"store\": {\"enabled\": true",
            "\"records_flushed\": 21",
            "\"metrics\": {",
            "\"hit_rate\": 0.25",
            "\"hit_rate\": 0.9",
        ] {
            assert!(rendered.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn disabled_arena_renders_null() {
        let mut m = manifest();
        m.arena = None;
        let rendered = m.to_json();
        assert!(rendered.contains("\"arena\": null,"));
        assert!(!rendered.contains("\"arena\": {"));
    }

    #[test]
    fn sweep_kernel_section_stays_on_one_line() {
        // The kernel-A/B comparison deletes every line containing
        // `sweep_kernel`; the section must therefore never span lines,
        // enabled or disabled.
        let enabled = manifest().to_json();
        let mut m = manifest();
        m.sweep_kernel = None;
        let disabled = m.to_json();
        for rendered in [&enabled, &disabled] {
            assert_eq!(
                rendered
                    .lines()
                    .filter(|l| l.contains("sweep_kernel"))
                    .count(),
                1,
                "sweep_kernel must occupy exactly one line"
            );
        }
        assert!(disabled.contains("\"sweep_kernel\": null,"));
        // Dropping that one line makes the two manifests identical.
        let strip = |s: &str| {
            s.lines()
                .filter(|l| !l.contains("sweep_kernel"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(strip(&enabled), strip(&disabled));
    }

    #[test]
    fn store_section_stays_on_one_line() {
        // Warm-vs-cold manifest comparisons delete every line containing
        // `store`; the section must therefore never span lines, enabled
        // or disabled.
        let enabled = manifest().to_json();
        let mut m = manifest();
        m.store = None;
        let disabled = m.to_json();
        for rendered in [&enabled, &disabled] {
            assert_eq!(
                rendered.lines().filter(|l| l.contains("\"store\"")).count(),
                1,
                "store must occupy exactly one line"
            );
        }
        assert!(disabled.contains("\"store\": null,"));
        // Dropping that one line makes the two manifests identical.
        let strip = |s: &str| {
            s.lines()
                .filter(|l| !l.contains("\"store\""))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(strip(&enabled), strip(&disabled));
    }

    #[test]
    fn timing_fields_stay_on_maskable_lines() {
        // The golden-manifest test masks lines containing these markers;
        // everything else must be deterministic. Guard the layout contract:
        // no line mixes a wall-clock field with a non-timing field other
        // than the phase name.
        let rendered = manifest().to_json();
        for line in rendered.lines() {
            if line.contains("wall_us") {
                assert!(
                    line.trim_start().starts_with("{\"name\": ") || line.contains("total_wall_us"),
                    "unexpected timing line {line:?}"
                );
            }
        }
        assert_eq!(
            rendered.lines().filter(|l| l.contains("wall_us")).count(),
            3,
            "two phases plus the total"
        );
    }

    #[test]
    fn phase_names_are_escaped() {
        let mut m = manifest();
        m.phases[0].name = "we\"ird".into();
        assert!(m.to_json().contains("we\\\"ird"));
    }
}
