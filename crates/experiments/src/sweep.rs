//! Depth sweeps: run workloads across the paper's 2–25 stage range.
//!
//! Every simulation follows the paper's methodology: replay the same trace
//! (same seed) against every pipeline depth, after a warmup window that
//! fills the caches and trains the predictor.

use crate::extract::{extract_from_report, ExtractedParams};
use pipedepth_power::{metric, Gating, PowerConfig};
use pipedepth_sim::{Engine, SimConfig};
use pipedepth_trace::TraceGenerator;
use pipedepth_workloads::Workload;

/// Simulation sizing for a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct RunConfig {
    /// Warmup instructions (statistics discarded).
    pub warmup: u64,
    /// Measured instructions.
    pub instructions: u64,
    /// Depths to simulate.
    pub depths: Vec<u32>,
    /// Leakage fraction of total (non-gated) power at the reference depth.
    pub leakage_fraction: f64,
    /// Reference depth for leakage calibration and parameter extraction.
    pub ref_depth: u32,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            warmup: 30_000,
            instructions: 60_000,
            depths: (2..=25).collect(),
            leakage_fraction: 0.15,
            ref_depth: 10,
        }
    }
}

impl RunConfig {
    /// A faster configuration for tests and examples.
    pub fn quick() -> Self {
        RunConfig {
            warmup: 10_000,
            instructions: 20_000,
            depths: (2..=25).step_by(2).collect(),
            ..RunConfig::default()
        }
    }

    /// The gated power configuration this run measures with.
    pub fn power_gated(&self) -> PowerConfig {
        PowerConfig::paper(Gating::Gated, self.leakage_fraction, self.ref_depth)
    }

    /// The ungated power configuration this run measures with.
    pub fn power_ungated(&self) -> PowerConfig {
        PowerConfig::paper(Gating::Ungated, self.leakage_fraction, self.ref_depth)
    }
}

/// One depth's measurements for one workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DepthPoint {
    /// Pipeline depth (stages).
    pub depth: u32,
    /// Throughput in instructions per FO4 (∝ BIPS).
    pub throughput: f64,
    /// `BIPS^m/W` under clock gating for m = 1, 2, 3.
    pub metric_gated: [f64; 3],
    /// `BIPS^m/W` without gating for m = 1, 2, 3.
    pub metric_ungated: [f64; 3],
    /// Cycles per instruction.
    pub cpi: f64,
}

/// A complete depth sweep of one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadCurve {
    /// The workload swept.
    pub workload: Workload,
    /// Measurements, one per configured depth (ascending).
    pub points: Vec<DepthPoint>,
    /// Theory parameters extracted from the reference-depth run.
    pub extracted: ExtractedParams,
}

impl WorkloadCurve {
    /// The depths of this curve.
    pub fn depths(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.depth as f64).collect()
    }

    /// The gated `BIPS^m/W` series for a metric exponent (1, 2 or 3).
    ///
    /// # Panics
    ///
    /// Panics unless `m ∈ {1, 2, 3}`.
    pub fn gated_series(&self, m: u32) -> Vec<f64> {
        assert!((1..=3).contains(&m), "m must be 1, 2 or 3");
        self.points
            .iter()
            .map(|p| p.metric_gated[(m - 1) as usize])
            .collect()
    }

    /// The ungated `BIPS^m/W` series for a metric exponent (1, 2 or 3).
    ///
    /// # Panics
    ///
    /// Panics unless `m ∈ {1, 2, 3}`.
    pub fn ungated_series(&self, m: u32) -> Vec<f64> {
        assert!((1..=3).contains(&m), "m must be 1, 2 or 3");
        self.points
            .iter()
            .map(|p| p.metric_ungated[(m - 1) as usize])
            .collect()
    }

    /// The throughput (∝ BIPS) series.
    pub fn throughput_series(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.throughput).collect()
    }

    /// The depth whose gated BIPS³/W is highest (integer grid argmax).
    pub fn best_gated_m3_depth(&self) -> u32 {
        self.points
            .iter()
            .max_by(|a, b| {
                a.metric_gated[2]
                    .partial_cmp(&b.metric_gated[2])
                    .expect("metrics are finite")
            })
            .expect("sweeps are non-empty")
            .depth
    }
}

/// Sweeps one workload over the configured depths.
pub fn sweep_workload(workload: &Workload, config: &RunConfig) -> WorkloadCurve {
    sweep_workload_with(workload, config, SimConfig::paper)
}

/// Sweeps one workload with a custom machine builder (used by the ablation
/// and issue-policy studies to vary the microarchitecture per depth).
pub fn sweep_workload_with(
    workload: &Workload,
    config: &RunConfig,
    make_sim: impl Fn(u32) -> SimConfig,
) -> WorkloadCurve {
    let gated = config.power_gated();
    let ungated = config.power_ungated();
    let mut points = Vec::with_capacity(config.depths.len());
    let mut extracted = None;
    for &depth in &config.depths {
        let mut engine = Engine::new(make_sim(depth));
        let mut gen = TraceGenerator::new(workload.model, workload.trace_seed);
        engine.warm_up(&mut gen, config.warmup);
        let report = engine.run(&mut gen, config.instructions);
        if depth == config.ref_depth
            || (extracted.is_none() && Some(&depth) == config.depths.last())
        {
            extracted = Some(extract_from_report(&report, &gated));
        }
        points.push(DepthPoint {
            depth,
            throughput: report.throughput(),
            metric_gated: [
                metric(&report, &gated, 1.0),
                metric(&report, &gated, 2.0),
                metric(&report, &gated, 3.0),
            ],
            metric_ungated: [
                metric(&report, &ungated, 1.0),
                metric(&report, &ungated, 2.0),
                metric(&report, &ungated, 3.0),
            ],
            cpi: report.cpi(),
        });
    }
    WorkloadCurve {
        workload: workload.clone(),
        points,
        extracted: extracted.expect("sweep covered at least one depth"),
    }
}

/// Sweeps many workloads in parallel (scoped threads, one chunk per CPU).
pub fn sweep_all(workloads: &[Workload], config: &RunConfig) -> Vec<WorkloadCurve> {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(workloads.len().max(1));
    let mut results: Vec<Option<WorkloadCurve>> = vec![None; workloads.len()];
    let chunk = workloads.len().div_ceil(threads);
    crossbeam::thread::scope(|scope| {
        for (slot_chunk, work_chunk) in results.chunks_mut(chunk).zip(workloads.chunks(chunk)) {
            scope.spawn(move |_| {
                for (slot, w) in slot_chunk.iter_mut().zip(work_chunk) {
                    *slot = Some(sweep_workload(w, config));
                }
            });
        }
    })
    .expect("sweep worker panicked");
    results
        .into_iter()
        .map(|r| r.expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipedepth_workloads::representatives;

    fn tiny_config() -> RunConfig {
        RunConfig {
            warmup: 3_000,
            instructions: 6_000,
            depths: vec![4, 8, 12, 16],
            ..RunConfig::default()
        }
    }

    #[test]
    fn sweep_produces_point_per_depth() {
        let w = &representatives()[1]; // a SPECint workload
        let curve = sweep_workload(w, &tiny_config());
        assert_eq!(curve.points.len(), 4);
        assert_eq!(curve.depths(), vec![4.0, 8.0, 12.0, 16.0]);
    }

    #[test]
    fn metrics_positive_and_gating_helps() {
        let w = &representatives()[1];
        let curve = sweep_workload(w, &tiny_config());
        for p in &curve.points {
            assert!(p.throughput > 0.0);
            for k in 0..3 {
                assert!(p.metric_gated[k] > 0.0);
                assert!(
                    p.metric_gated[k] > p.metric_ungated[k],
                    "gating reduces power, so BIPS^m/W must rise"
                );
            }
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let ws = representatives();
        let cfg = tiny_config();
        let serial: Vec<_> = ws.iter().map(|w| sweep_workload(w, &cfg)).collect();
        let parallel = sweep_all(&ws, &cfg);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn best_depth_within_range() {
        let w = &representatives()[0];
        let curve = sweep_workload(w, &tiny_config());
        let best = curve.best_gated_m3_depth();
        assert!(curve.points.iter().any(|p| p.depth == best));
    }

    #[test]
    #[should_panic(expected = "m must be 1, 2 or 3")]
    fn bad_metric_exponent_rejected() {
        let w = &representatives()[0];
        let curve = sweep_workload(w, &tiny_config());
        let _ = curve.gated_series(4);
    }
}
