//! Depth sweeps: run workloads across the paper's 2–25 stage range.
//!
//! Every simulation follows the paper's methodology: replay the same trace
//! (same seed) against every pipeline depth, after a warmup window that
//! fills the caches and trains the predictor.
//!
//! The free functions here are convenience wrappers over the cell-level
//! [`Runner`]: each call builds a private runner, so
//! nothing is shared between calls. Experiments that want cross-figure
//! cell reuse (the `repro` binary, the [`Experiment`](crate::experiment)
//! registry) hold one runner and use its methods directly.

use crate::extract::ExtractedParams;
use crate::runner::Runner;
use crate::series;
use pipedepth_power::{Gating, PowerConfig};
use pipedepth_sim::SimConfig;
use pipedepth_workloads::Workload;

/// Simulation sizing for a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct RunConfig {
    /// Warmup instructions (statistics discarded).
    pub warmup: u64,
    /// Measured instructions.
    pub instructions: u64,
    /// Depths to simulate.
    pub depths: Vec<u32>,
    /// Leakage fraction of total (non-gated) power at the reference depth.
    pub leakage_fraction: f64,
    /// Reference depth for leakage calibration and parameter extraction.
    pub ref_depth: u32,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            warmup: 30_000,
            instructions: 60_000,
            depths: (2..=25).collect(),
            leakage_fraction: 0.15,
            ref_depth: 10,
        }
    }
}

impl RunConfig {
    /// A faster configuration for tests and examples.
    pub fn quick() -> Self {
        RunConfig {
            warmup: 10_000,
            instructions: 20_000,
            depths: (2..=25).step_by(2).collect(),
            ..RunConfig::default()
        }
    }

    /// The gated power configuration this run measures with.
    pub fn power_gated(&self) -> PowerConfig {
        PowerConfig::paper(Gating::Gated, self.leakage_fraction, self.ref_depth)
    }

    /// The ungated power configuration this run measures with.
    pub fn power_ungated(&self) -> PowerConfig {
        PowerConfig::paper(Gating::Ungated, self.leakage_fraction, self.ref_depth)
    }
}

/// One depth's measurements for one workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DepthPoint {
    /// Pipeline depth (stages).
    pub depth: u32,
    /// Throughput in instructions per FO4 (∝ BIPS).
    pub throughput: f64,
    /// `BIPS^m/W` under clock gating for m = 1, 2, 3.
    pub metric_gated: [f64; 3],
    /// `BIPS^m/W` without gating for m = 1, 2, 3.
    pub metric_ungated: [f64; 3],
    /// Cycles per instruction.
    pub cpi: f64,
}

/// A complete depth sweep of one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadCurve {
    /// The workload swept.
    pub workload: Workload,
    /// Measurements, one per configured depth (ascending).
    pub points: Vec<DepthPoint>,
    /// Theory parameters extracted from the reference-depth run.
    pub extracted: ExtractedParams,
}

impl WorkloadCurve {
    /// The depths of this curve.
    pub fn depths(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.depth as f64).collect()
    }

    /// The gated `BIPS^m/W` series for a metric exponent (1, 2 or 3).
    ///
    /// # Panics
    ///
    /// Panics unless `m ∈ {1, 2, 3}`.
    pub fn gated_series(&self, m: u32) -> Vec<f64> {
        assert!((1..=3).contains(&m), "m must be 1, 2 or 3");
        self.points
            .iter()
            .map(|p| p.metric_gated[(m - 1) as usize])
            .collect()
    }

    /// The ungated `BIPS^m/W` series for a metric exponent (1, 2 or 3).
    ///
    /// # Panics
    ///
    /// Panics unless `m ∈ {1, 2, 3}`.
    pub fn ungated_series(&self, m: u32) -> Vec<f64> {
        assert!((1..=3).contains(&m), "m must be 1, 2 or 3");
        self.points
            .iter()
            .map(|p| p.metric_ungated[(m - 1) as usize])
            .collect()
    }

    /// The throughput (∝ BIPS) series.
    pub fn throughput_series(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.throughput).collect()
    }

    /// The depth whose gated BIPS³/W is highest (integer grid argmax,
    /// ignoring non-finite samples).
    ///
    /// # Panics
    ///
    /// Panics when the curve has no finite gated BIPS³/W value at all.
    pub fn best_gated_m3_depth(&self) -> u32 {
        let m3 = self.gated_series(3);
        let i = series::argmax(&m3).expect("curve has a finite gated BIPS³/W value");
        self.points[i].depth
    }
}

/// Sweeps one workload over the configured depths.
pub fn sweep_workload(workload: &Workload, config: &RunConfig) -> WorkloadCurve {
    Runner::serial().sweep_workload(workload, config)
}

/// Sweeps one workload with a custom machine builder (used by the ablation
/// and issue-policy studies to vary the microarchitecture per depth).
pub fn sweep_workload_with(
    workload: &Workload,
    config: &RunConfig,
    make_sim: impl Fn(u32) -> SimConfig,
) -> WorkloadCurve {
    Runner::serial().sweep_workload_with(workload, config, make_sim)
}

/// Sweeps many workloads in parallel: the cell scheduler distributes
/// individual (workload, depth) simulations across the worker pool.
pub fn sweep_all(workloads: &[Workload], config: &RunConfig) -> Vec<WorkloadCurve> {
    Runner::default().sweep_all(workloads, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipedepth_workloads::representatives;

    fn tiny_config() -> RunConfig {
        RunConfig {
            warmup: 3_000,
            instructions: 6_000,
            depths: vec![4, 8, 12, 16],
            ..RunConfig::default()
        }
    }

    #[test]
    fn sweep_produces_point_per_depth() {
        let w = &representatives()[1]; // a SPECint workload
        let curve = sweep_workload(w, &tiny_config());
        assert_eq!(curve.points.len(), 4);
        assert_eq!(curve.depths(), vec![4.0, 8.0, 12.0, 16.0]);
    }

    #[test]
    fn metrics_positive_and_gating_helps() {
        let w = &representatives()[1];
        let curve = sweep_workload(w, &tiny_config());
        for p in &curve.points {
            assert!(p.throughput > 0.0);
            for k in 0..3 {
                assert!(p.metric_gated[k] > 0.0);
                assert!(
                    p.metric_gated[k] > p.metric_ungated[k],
                    "gating reduces power, so BIPS^m/W must rise"
                );
            }
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let ws = representatives();
        let cfg = tiny_config();
        let serial: Vec<_> = ws.iter().map(|w| sweep_workload(w, &cfg)).collect();
        let parallel = sweep_all(&ws, &cfg);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn best_depth_within_range() {
        let w = &representatives()[0];
        let curve = sweep_workload(w, &tiny_config());
        let best = curve.best_gated_m3_depth();
        assert!(curve.points.iter().any(|p| p.depth == best));
    }

    #[test]
    #[should_panic(expected = "m must be 1, 2 or 3")]
    fn bad_metric_exponent_rejected() {
        let w = &representatives()[0];
        let curve = sweep_workload(w, &tiny_config());
        let _ = curve.gated_series(4);
    }
}
