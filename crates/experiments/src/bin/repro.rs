//! Regenerates the paper's figures and writes the comparison report.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p pipedepth-experiments --bin repro -- \
//!     [--quick] [--out DIR] [--only fig4,fig6] [--list] [--threads N] \
//!     [--backend sim|model|both] [--timing-details] [--store DIR]
//! ```
//!
//! The binary is a thin driver over the experiment registry: it selects
//! specs, times each phase, prints their summaries, writes their CSV
//! artifacts, and assembles `report.md` (paper-vs-measured verdicts, run
//! metrics, telemetry counters) plus the machine-readable
//! `manifest.json` ([`pipedepth_experiments::manifest`]).

use pipedepth_experiments::eval::Backend;
use pipedepth_experiments::experiment::{registry, select_experiments, Context, Experiment};
use pipedepth_experiments::manifest::{Manifest, PhaseTiming};
use pipedepth_experiments::paper;
use pipedepth_experiments::runner::Runner;
use pipedepth_experiments::store::RunStore;
use pipedepth_experiments::sweep::RunConfig;
use pipedepth_telemetry::{MetricValue, Snapshot, Telemetry};
use pipedepth_workloads::suite;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::process::exit;
use std::time::Instant;
use std::{fs, io};

struct Options {
    quick: bool,
    list: bool,
    threads: usize,
    timing_details: bool,
    no_arena: bool,
    no_cache: bool,
    no_sweep_kernel: bool,
    out_dir: PathBuf,
    only: Option<Vec<String>>,
    backend: Backend,
    store: Option<PathBuf>,
}

fn parse_args() -> Options {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = Options {
        quick: false,
        list: false,
        threads: 0,
        timing_details: false,
        no_arena: false,
        no_cache: false,
        no_sweep_kernel: false,
        out_dir: PathBuf::from("results"),
        only: None,
        backend: Backend::Sim,
        store: None,
    };
    let mut i = 0;
    let value = |args: &[String], i: usize, flag: &str| -> String {
        args.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("{flag} needs a value");
            exit(2);
        })
    };
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => opts.quick = true,
            "--list" => opts.list = true,
            "--timing-details" => opts.timing_details = true,
            "--no-arena" => opts.no_arena = true,
            "--no-cache" => opts.no_cache = true,
            "--no-sweep-kernel" => opts.no_sweep_kernel = true,
            "--out" => {
                opts.out_dir = PathBuf::from(value(&args, i, "--out"));
                i += 1;
            }
            "--threads" => {
                let v = value(&args, i, "--threads");
                opts.threads = v.parse().unwrap_or_else(|_| {
                    eprintln!("--threads needs a number, got {v:?}");
                    exit(2);
                });
                i += 1;
            }
            "--only" => {
                let v = value(&args, i, "--only");
                opts.only = Some(v.split(',').map(|s| s.trim().to_string()).collect());
                i += 1;
            }
            "--backend" => {
                let v = value(&args, i, "--backend");
                opts.backend = v.parse().unwrap_or_else(|e| {
                    eprintln!("{e}");
                    exit(2);
                });
                i += 1;
            }
            "--store" => {
                opts.store = Some(PathBuf::from(value(&args, i, "--store")));
                i += 1;
            }
            "--no-store" => opts.store = None,
            other => {
                eprintln!("unknown argument {other:?}");
                eprintln!(
                    "usage: repro [--quick] [--out DIR] [--only a,b] [--list] [--threads N] \
                     [--backend sim|model|both] [--timing-details] [--no-arena] [--no-cache] \
                     [--no-sweep-kernel] [--store DIR] [--no-store]"
                );
                exit(2);
            }
        }
        i += 1;
    }
    opts
}

fn select<'a>(
    specs: &'a [Box<dyn Experiment>],
    only: &Option<Vec<String>>,
) -> Vec<&'a dyn Experiment> {
    let names = only.clone().unwrap_or_default();
    select_experiments(specs, &names).unwrap_or_else(|e| {
        eprintln!("{e}");
        exit(2);
    })
}

fn main() -> io::Result<()> {
    let opts = parse_args();
    let specs = registry();

    if opts.list {
        for e in &specs {
            println!("{:<12} {}", e.name(), e.title());
        }
        return Ok(());
    }

    let selected = select(&specs, &opts.only);
    // Under the pure analytic backend, specs that drive the simulator
    // directly cannot run; they are skipped with a note rather than
    // silently dropped from the report.
    let (selected, skipped): (Vec<&dyn Experiment>, Vec<&dyn Experiment>) = selected
        .into_iter()
        .partition(|e| opts.backend.uses_sim() || !e.requires_sim());
    let config = if opts.quick {
        RunConfig::quick()
    } else {
        RunConfig::default()
    };
    fs::create_dir_all(&opts.out_dir)?;
    let telemetry = Telemetry::new();
    let mut runner = Runner::new(opts.threads).with_telemetry(telemetry.clone());
    if opts.no_arena {
        runner = runner.without_arena();
    }
    if opts.no_cache {
        runner = runner.without_cache();
    }
    if opts.no_sweep_kernel {
        runner = runner.without_sweep_kernel();
    }
    // The persistent store warm-starts the run: previously computed cells
    // become the warm tier of the runner's cache, previously computed
    // annotations seed the sweep kernel — both before any fan-out.
    let mut store = None;
    if let Some(dir) = opts.store.as_deref() {
        let mut s = RunStore::open(dir, &config, &telemetry);
        let warm = s.load_reports();
        println!(
            "store: {} report(s) loaded from {}",
            warm.len(),
            dir.display()
        );
        runner = runner.with_warm_reports(warm);
        store = Some(s);
    }
    let ctx = Context::with_backend(config, runner, opts.backend);
    if let Some(store) = store.as_mut() {
        let seeded = ctx.runner.seed_annotations(store.load_annotations());
        println!("store: {seeded} annotation(s) seeded");
    }
    println!(
        "pipedepth repro — {} instructions/depth after {} warmup, depths {:?}, {} worker(s), \
         {} backend",
        ctx.config.instructions,
        ctx.config.warmup,
        ctx.config.depths,
        ctx.runner.threads(),
        ctx.backend()
    );
    for e in &skipped {
        println!(
            "skipping {} ({}): needs the simulation backend",
            e.name(),
            e.title()
        );
    }
    let t0 = Instant::now();
    let mut phases: Vec<PhaseTiming> = Vec::new();

    // The shared suite sweep is the dominant cost: materialise it up front
    // so it is timed as its own phase instead of inflating the first
    // curve-consuming experiment.
    if selected.iter().any(|e| e.needs_curves()) {
        println!(
            "\nsweeping {} workloads × {} depths …",
            suite().len(),
            ctx.config.depths.len()
        );
        let t = Instant::now();
        ctx.curves();
        let elapsed = t.elapsed();
        println!("sweep finished in {elapsed:.1?}");
        phases.push(PhaseTiming {
            name: "suite sweep".to_string(),
            wall: elapsed,
        });
        // Snapshot after the dominant phase: a crash mid-run still leaves
        // the suite sweep warm for the next start. Write-behind, so the
        // next phase starts immediately.
        if let Some(store) = store.as_mut() {
            store.flush_reports_if_grown(ctx.runner.export_reports());
            store.flush_annotations_if_grown(ctx.runner.export_annotations());
        }
    }

    for exp in &selected {
        let t = Instant::now();
        let out = exp.run(&ctx);
        phases.push(PhaseTiming {
            name: exp.name().to_string(),
            wall: t.elapsed(),
        });
        println!();
        print!("{}", out.summary);
        for artifact in &out.artifacts {
            fs::write(opts.out_dir.join(&artifact.filename), &artifact.contents)?;
        }
        if let Some(store) = store.as_mut() {
            store.flush_reports_if_grown(ctx.runner.export_reports());
            store.flush_annotations_if_grown(ctx.runner.export_annotations());
        }
    }

    let mut report = String::from("# Reproduction report\n\n");
    let o = &ctx.outcomes;
    match (
        o.fig1.get(),
        o.fig3.get(),
        o.fig6.get(),
        o.fig7.get(),
        o.fig8.get(),
        o.fig9.get(),
        o.headline.get(),
    ) {
        (Some(f1), Some(f3), Some(f6), Some(f7), Some(f8), Some(f9), Some(h)) => {
            let verdicts = paper::render_markdown(&paper::compare(f1, f3, f6, f7, f8, f9, h));
            println!("\nPaper-vs-measured verdicts:\n{verdicts}");
            report.push_str("## Paper-vs-measured verdicts\n\n");
            report.push_str(&verdicts);
        }
        _ => {
            report.push_str(
                "Verdicts skipped: this was a partial run (`--only`) without every \
                 figure the comparison needs.\n",
            );
        }
    }

    report.push_str("\n## Run metrics\n\n| phase | wall time |\n|---|---|\n");
    for phase in &phases {
        let _ = writeln!(report, "| {} | {:.1?} |", phase.name, phase.wall);
    }
    let stats = ctx.runner.cache_stats();
    let cache_line = match &stats {
        Some(stats) => format!(
            "simulation cache: {} cells simulated, {} served from cache, {} requested \
             (hit rate {:.1}%)",
            stats.misses,
            stats.hits,
            stats.requested(),
            100.0 * stats.hit_rate()
        ),
        None => "simulation cache: disabled (--no-cache); every batch re-simulated".to_string(),
    };
    let _ = writeln!(report, "\n{cache_line}");
    let arena = ctx.runner.arena_stats();
    let arena_line = match &arena {
        Some(a) => format!(
            "trace arena: {} streams materialized ({} instructions), {} shared lookups \
             (hit rate {:.1}%)",
            a.misses,
            a.instructions_materialized,
            a.hits,
            100.0 * a.hit_rate()
        ),
        None => "trace arena: disabled (--no-arena); every cell regenerated its trace".to_string(),
    };
    let _ = writeln!(report, "\n{arena_line}");
    let kernel = ctx
        .runner
        .sweep_kernel_enabled()
        .then(|| ctx.runner.annotation_stats());
    let kernel_line = match &kernel {
        Some(k) => format!(
            "sweep kernel: {} streams annotated ({} instructions), {} annotation reuses",
            k.misses, k.instructions_annotated, k.hits
        ),
        None => "sweep kernel: disabled (--no-sweep-kernel); every cell ran the stage engine"
            .to_string(),
    };
    let _ = writeln!(report, "\n{kernel_line}");
    // Drain the store's write-behind worker *before* the telemetry
    // snapshot, so the manifest records the final flush counters.
    let store_stats = store.map(|mut s| {
        s.record_warm(ctx.runner.warm_report_stats());
        s.finish()
    });
    let store_line = match &store_stats {
        Some(s) => format!(
            "persistent store: {} report(s) + {} annotation(s) loaded, {} cell(s) served warm, \
             {} snapshot(s) published ({} records), {} rejected namespace(s)",
            s.reports_loaded, s.annotations_loaded, s.hits, s.flushes, s.records_flushed, s.invalid
        ),
        None => "persistent store: disabled; run started cold and left no snapshot".to_string(),
    };
    let _ = writeln!(report, "\n{store_line}");

    let snapshot = telemetry.snapshot();
    report.push_str(&telemetry_section(&snapshot));

    let manifest = Manifest {
        threads: ctx.runner.threads(),
        config: ctx.config.clone(),
        phases,
        cache: stats,
        arena,
        sweep_kernel: kernel,
        store: store_stats,
        metrics: snapshot,
        total_wall: t0.elapsed(),
    };
    fs::write(opts.out_dir.join("manifest.json"), manifest.to_json())?;
    fs::write(opts.out_dir.join("report.md"), &report)?;

    if opts.timing_details {
        print_timing_details(&manifest);
    }

    println!("\n{cache_line}");
    println!("{arena_line}");
    println!("{kernel_line}");
    println!("{store_line}");
    println!("data written to {}", opts.out_dir.display());
    println!("total time: {:.1?}", manifest.total_wall);
    Ok(())
}

/// Renders the report's Telemetry section from the metric snapshot.
fn telemetry_section(snapshot: &Snapshot) -> String {
    let mut s = String::from("\n## Telemetry\n\n");
    if snapshot.is_empty() {
        s.push_str("No metrics captured (telemetry compiled out via `--no-default-features`).\n");
        return s;
    }
    s.push_str("Full machine-readable snapshot in `manifest.json`.\n\n");
    s.push_str("| metric | value |\n|---|---|\n");
    for metric in &snapshot.metrics {
        let rendered = match &metric.value {
            MetricValue::Counter(v) => format!("{v}"),
            MetricValue::Gauge(v) => format!("{v:.3}"),
            MetricValue::Histogram(h) => format!(
                "{} samples, mean {:.0} µs, max {:.0} µs",
                h.count,
                h.mean(),
                h.max.unwrap_or(0.0)
            ),
        };
        let _ = writeln!(s, "| {} | {rendered} |", metric.name);
    }
    s
}

/// Prints the per-experiment timing breakdown (`--timing-details`).
fn print_timing_details(manifest: &Manifest) {
    println!("\nTiming details ({} worker(s)):", manifest.threads);
    let total = manifest.total_wall.as_secs_f64();
    for phase in &manifest.phases {
        let pct = if total > 0.0 {
            100.0 * phase.wall.as_secs_f64() / total
        } else {
            0.0
        };
        println!("  {:<14} {:>10.1?}  {pct:>5.1}%", phase.name, phase.wall);
    }
    if let Some(h) = manifest.metrics.histogram("runner.cell_time_us") {
        println!(
            "  per-cell simulation time: {} cells, mean {:.0} µs, min {:.0} µs, max {:.0} µs",
            h.count,
            h.mean(),
            h.min.unwrap_or(0.0),
            h.max.unwrap_or(0.0)
        );
    }
    if let Some(h) = manifest.metrics.histogram("runner.queue_wait_us") {
        println!(
            "  queue wait: mean {:.0} µs, max {:.0} µs",
            h.mean(),
            h.max.unwrap_or(0.0)
        );
    }
    if let Some(u) = manifest.metrics.gauge("runner.worker_utilization") {
        println!("  worker utilization (last batch): {:.0}%", 100.0 * u);
    }
    if let Some(mips) = manifest.metrics.gauge("runner.sim_mips") {
        println!("  engine throughput (last batch): {mips:.2} MIPS");
    }
}
