//! Regenerates every figure of the paper and writes the comparison report.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p pipedepth-experiments --bin repro [-- --quick] [--out DIR]
//! ```
//!
//! Prints each figure's summary to stdout and writes the underlying data
//! series as CSV files under the output directory (default `results/`).

use pipedepth_experiments::figures::{
    ext_gating, fig1, fig2, fig3, fig4, fig5, fig6, fig7, fig8, fig9, headline,
};
use pipedepth_experiments::plot::Chart;
use pipedepth_experiments::report::csv;
use pipedepth_experiments::sweep::{sweep_all, RunConfig};
use pipedepth_experiments::{ablation, issue_policy, paper};
use pipedepth_workloads::suite;
use std::fs;
use std::path::PathBuf;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_dir = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"));
    fs::create_dir_all(&out_dir).expect("create output directory");

    let config = if quick {
        RunConfig::quick()
    } else {
        RunConfig::default()
    };
    println!(
        "pipedepth repro — {} instructions/depth after {} warmup, depths {:?}",
        config.instructions, config.warmup, config.depths
    );
    let t0 = Instant::now();

    // ---- Analytic-only figures ------------------------------------------
    let f1 = fig1::run();
    print!("{f1}");
    let _ = fs::write(
        out_dir.join("fig1.csv"),
        csv("p", &f1.ps, &[("d_metric_dp", &f1.values)]),
    );

    // Fig. 2 is structural: print the expansion summary compactly.
    let f2 = fig2::run(25);
    println!("Fig. 2 — pipeline structure (8-stage machine):");
    for line in fig2::render_pipeline(&f2.plans[6].1).lines() {
        println!("  {line}");
    }

    let f3 = fig3::run();
    print!("{f3}");
    let _ = fs::write(
        out_dir.join("fig3.csv"),
        csv("depth", &f3.depths, &[("latches", &f3.latches)]),
    );

    // ---- Simulation sweep over the full suite ---------------------------
    println!(
        "\nsweeping {} workloads × {} depths …",
        suite().len(),
        config.depths.len()
    );
    let curves = sweep_all(&suite(), &config);
    println!("sweep finished in {:.1?}\n", t0.elapsed());

    // Fig. 4: three panels built from the already-swept representative
    // curves (first workload of each panel class).
    let panel_for = |class| {
        curves
            .iter()
            .find(|c| c.workload.class == class)
            .expect("class present")
    };
    let f4 = fig4::Fig4 {
        panels: [
            pipedepth_workloads::WorkloadClass::Modern,
            pipedepth_workloads::WorkloadClass::SpecInt,
            pipedepth_workloads::WorkloadClass::FloatingPoint,
        ]
        .iter()
        .map(|&c| fig4::panel_from_curve(panel_for(c), &config))
        .collect(),
    };
    print!("{f4}");
    {
        // Render panel 4a: g = sim gated, u = sim ungated, t/~ = theory.
        let p = &f4.panels[0];
        println!(
            "  [4a {}] g=sim gated  u=sim ungated  t=theory gated",
            p.workload.name
        );
        let art = Chart::new(&p.depths)
            .series('t', &p.theory_gated)
            .series('g', &p.sim_gated)
            .series('u', &p.sim_ungated)
            .size(64, 14)
            .render();
        println!("{art}");
    }
    for (tag, p) in ["4a", "4b", "4c"].iter().zip(&f4.panels) {
        let _ = fs::write(
            out_dir.join(format!("fig{tag}.csv")),
            csv(
                "depth",
                &p.depths,
                &[
                    ("sim_gated", &p.sim_gated),
                    ("sim_ungated", &p.sim_ungated),
                    ("theory_gated", &p.theory_gated),
                    ("theory_ungated", &p.theory_ungated),
                ],
            ),
        );
    }

    let f5 = fig5::from_curve(panel_for(pipedepth_workloads::WorkloadClass::Modern));
    print!("{f5}");
    {
        println!("  B=BIPS  3=BIPS³/W  2=BIPS²/W  1=BIPS/W (normalised)");
        let art = Chart::new(&f5.depths)
            .series('B', &f5.series[0].values)
            .series('3', &f5.series[1].values)
            .series('2', &f5.series[2].values)
            .series('1', &f5.series[3].values)
            .size(64, 14)
            .render();
        println!("{art}");
    }
    {
        let series: Vec<(&str, &[f64])> = f5
            .series
            .iter()
            .map(|s| (s.label.as_str(), s.values.as_slice()))
            .collect();
        let _ = fs::write(out_dir.join("fig5.csv"), csv("depth", &f5.depths, &series));
    }

    // Per-workload extraction table.
    {
        let mut rows = String::from(
            "workload,class,alpha,gamma,hazard_rate,kappa,memory_time_fo4,serial_fraction\n",
        );
        for c in &curves {
            let x = &c.extracted;
            rows.push_str(&format!(
                "{},{},{},{},{},{},{},{}\n",
                c.workload.name,
                c.workload.class.tag(),
                x.alpha,
                x.gamma,
                x.hazard_rate,
                x.kappa,
                x.memory_time_fo4,
                c.workload.model.serial_fraction,
            ));
        }
        let _ = fs::write(out_dir.join("workloads.csv"), rows);
    }

    let f6 = fig6::from_curves(&curves);
    print!("{f6}");
    {
        let mut rows = String::from("workload,class,cubic_fit_depth,grid_depth,r_squared\n");
        for o in &f6.optima {
            rows.push_str(&format!(
                "{},{},{},{},{}\n",
                o.name,
                o.class.tag(),
                o.cubic_fit_depth,
                o.grid_depth,
                o.r_squared
            ));
        }
        let _ = fs::write(out_dir.join("fig6.csv"), rows);
    }

    let f7 = fig7::from_curves(&curves);
    print!("{f7}");

    // Figs. 8/9 parameterised from the first SPECint workload's extraction.
    let spec_curve = panel_for(pipedepth_workloads::WorkloadClass::SpecInt);
    let f8 = fig8::run_with_params(&spec_curve.extracted, &config);
    print!("{f8}");
    {
        let series: Vec<(String, Vec<f64>)> = f8
            .curves
            .iter()
            .map(|(frac, ys)| (format!("leak_{:.0}pct", frac * 100.0), ys.clone()))
            .collect();
        let refs: Vec<(&str, &[f64])> = series
            .iter()
            .map(|(n, ys)| (n.as_str(), ys.as_slice()))
            .collect();
        let _ = fs::write(out_dir.join("fig8.csv"), csv("depth", &f8.depths, &refs));
    }

    let f9 = fig9::run_with_params(&spec_curve.extracted, &config);
    print!("{f9}");
    {
        let series: Vec<(String, Vec<f64>)> = f9
            .curves
            .iter()
            .map(|(beta, ys)| (format!("beta_{beta}"), ys.clone()))
            .collect();
        let refs: Vec<(&str, &[f64])> = series
            .iter()
            .map(|(n, ys)| (n.as_str(), ys.as_slice()))
            .collect();
        let _ = fs::write(out_dir.join("fig9.csv"), csv("depth", &f9.depths, &refs));
    }

    let h = headline::from_curves(&curves, &config);
    println!();
    print!("{h}");

    // Microarchitectural ablations on the representative modern workload.
    let modern = suite()
        .into_iter()
        .find(|w| w.class == pipedepth_workloads::WorkloadClass::Modern)
        .expect("modern class present");
    println!();
    print!("{}", ablation::run(&modern, &config));

    // Issue-policy study (in-order vs out-of-order).
    println!();
    print!("{}", issue_policy::run(&config));

    // Extension: optimum vs gating degree.
    let modern_curve = panel_for(pipedepth_workloads::WorkloadClass::Modern);
    println!();
    print!(
        "{}",
        ext_gating::run_for(&modern, &modern_curve.extracted, &config)
    );

    // Paper-vs-measured verdict table (also written as markdown).
    let comparisons = paper::compare(&f1, &f3, &f6, &f7, &f8, &f9, &h);
    let verdicts = paper::render_markdown(&comparisons);
    println!("\nPaper-vs-measured verdicts:\n{verdicts}");
    let _ = fs::write(out_dir.join("report.md"), &verdicts);

    println!("\ndata written to {}", out_dir.display());
    println!("total time: {:.1?}", t0.elapsed());
}
