//! Regenerates the paper's figures and writes the comparison report.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p pipedepth-experiments --bin repro -- \
//!     [--quick] [--out DIR] [--only fig4,fig6] [--list] [--threads N]
//! ```
//!
//! The binary is a thin driver over the experiment registry: it selects
//! specs, times each phase, prints their summaries, writes their CSV
//! artifacts, and assembles `report.md` (paper-vs-measured verdicts plus
//! run metrics: per-phase wall time and simulation-cache statistics).

use pipedepth_experiments::experiment::{registry, Context, Experiment};
use pipedepth_experiments::paper;
use pipedepth_experiments::runner::Runner;
use pipedepth_experiments::sweep::RunConfig;
use pipedepth_workloads::suite;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::process::exit;
use std::time::{Duration, Instant};
use std::{fs, io};

struct Options {
    quick: bool,
    list: bool,
    threads: usize,
    out_dir: PathBuf,
    only: Option<Vec<String>>,
}

fn parse_args() -> Options {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = Options {
        quick: false,
        list: false,
        threads: 0,
        out_dir: PathBuf::from("results"),
        only: None,
    };
    let mut i = 0;
    let value = |args: &[String], i: usize, flag: &str| -> String {
        args.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("{flag} needs a value");
            exit(2);
        })
    };
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => opts.quick = true,
            "--list" => opts.list = true,
            "--out" => {
                opts.out_dir = PathBuf::from(value(&args, i, "--out"));
                i += 1;
            }
            "--threads" => {
                let v = value(&args, i, "--threads");
                opts.threads = v.parse().unwrap_or_else(|_| {
                    eprintln!("--threads needs a number, got {v:?}");
                    exit(2);
                });
                i += 1;
            }
            "--only" => {
                let v = value(&args, i, "--only");
                opts.only = Some(v.split(',').map(|s| s.trim().to_string()).collect());
                i += 1;
            }
            other => {
                eprintln!("unknown argument {other:?}");
                eprintln!("usage: repro [--quick] [--out DIR] [--only a,b] [--list] [--threads N]");
                exit(2);
            }
        }
        i += 1;
    }
    opts
}

fn select<'a>(
    specs: &'a [Box<dyn Experiment>],
    only: &Option<Vec<String>>,
) -> Vec<&'a dyn Experiment> {
    match only {
        None => specs.iter().map(|b| b.as_ref()).collect(),
        Some(names) => names
            .iter()
            .map(|name| {
                specs
                    .iter()
                    .find(|e| e.name() == name)
                    .map(|b| b.as_ref())
                    .unwrap_or_else(|| {
                        let known: Vec<&str> = specs.iter().map(|e| e.name()).collect();
                        eprintln!("unknown experiment {name:?}; known: {}", known.join(", "));
                        exit(2);
                    })
            })
            .collect(),
    }
}

fn main() -> io::Result<()> {
    let opts = parse_args();
    let specs = registry();

    if opts.list {
        for e in &specs {
            println!("{:<12} {}", e.name(), e.title());
        }
        return Ok(());
    }

    let selected = select(&specs, &opts.only);
    let config = if opts.quick {
        RunConfig::quick()
    } else {
        RunConfig::default()
    };
    fs::create_dir_all(&opts.out_dir)?;
    let ctx = Context::new(config, Runner::new(opts.threads));
    println!(
        "pipedepth repro — {} instructions/depth after {} warmup, depths {:?}, {} worker(s)",
        ctx.config.instructions,
        ctx.config.warmup,
        ctx.config.depths,
        ctx.runner.threads()
    );
    let t0 = Instant::now();
    let mut phases: Vec<(String, Duration)> = Vec::new();

    // The shared suite sweep is the dominant cost: materialise it up front
    // so it is timed as its own phase instead of inflating the first
    // curve-consuming experiment.
    if selected.iter().any(|e| e.needs_curves()) {
        println!(
            "\nsweeping {} workloads × {} depths …",
            suite().len(),
            ctx.config.depths.len()
        );
        let t = Instant::now();
        ctx.curves();
        let elapsed = t.elapsed();
        println!("sweep finished in {elapsed:.1?}");
        phases.push(("suite sweep".to_string(), elapsed));
    }

    for exp in &selected {
        let t = Instant::now();
        let out = exp.run(&ctx);
        phases.push((exp.name().to_string(), t.elapsed()));
        println!();
        print!("{}", out.summary);
        for artifact in &out.artifacts {
            fs::write(opts.out_dir.join(&artifact.filename), &artifact.contents)?;
        }
    }

    let mut report = String::from("# Reproduction report\n\n");
    let o = &ctx.outcomes;
    match (
        o.fig1.get(),
        o.fig3.get(),
        o.fig6.get(),
        o.fig7.get(),
        o.fig8.get(),
        o.fig9.get(),
        o.headline.get(),
    ) {
        (Some(f1), Some(f3), Some(f6), Some(f7), Some(f8), Some(f9), Some(h)) => {
            let verdicts = paper::render_markdown(&paper::compare(f1, f3, f6, f7, f8, f9, h));
            println!("\nPaper-vs-measured verdicts:\n{verdicts}");
            report.push_str("## Paper-vs-measured verdicts\n\n");
            report.push_str(&verdicts);
        }
        _ => {
            report.push_str(
                "Verdicts skipped: this was a partial run (`--only`) without every \
                 figure the comparison needs.\n",
            );
        }
    }

    report.push_str("\n## Run metrics\n\n| phase | wall time |\n|---|---|\n");
    for (name, elapsed) in &phases {
        let _ = writeln!(report, "| {name} | {elapsed:.1?} |");
    }
    let stats = ctx.runner.cache_stats();
    let cache_line = format!(
        "simulation cache: {} cells simulated, {} served from cache, {} requested \
         (hit rate {:.1}%)",
        stats.misses,
        stats.hits,
        stats.requested(),
        100.0 * stats.hit_rate()
    );
    let _ = writeln!(report, "\n{cache_line}");
    fs::write(opts.out_dir.join("report.md"), &report)?;

    println!("\n{cache_line}");
    println!("data written to {}", opts.out_dir.display());
    println!("total time: {:.1?}", t0.elapsed());
    Ok(())
}
