//! Evaluate the analytic theory from the command line — the paper's
//! intended use: "predict the correct design point when new technologies,
//! new workloads, or just changed microarchitectures are involved … without
//! the need for the detailed simulations".
//!
//! Usage (all arguments optional; defaults are the paper's parameters):
//!
//! ```text
//! cargo run --release -p pipedepth-experiments --bin theory -- \
//!     [--alpha A] [--gamma G] [--hazard-rate H] \
//!     [--tp FO4] [--to FO4] [--beta B] [--leakage FRAC] \
//!     [--m EXP] [--gated [KAPPA]]
//! ```

use pipedepth_core::{
    crossover_exponent, gated_quadratic_optimum, power_capped_design, report, BudgetedDesign,
    ClockGating, MetricExponent, PipelineModel, PowerParams, TechParams, WorkloadParams,
};

fn value(args: &[String], key: &str) -> Option<f64> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1).and_then(|v| v.parse().ok()))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let alpha = value(&args, "--alpha").unwrap_or(2.0);
    let gamma = value(&args, "--gamma").unwrap_or(0.30);
    let hazard_rate = value(&args, "--hazard-rate").unwrap_or(0.18);
    let tp = value(&args, "--tp").unwrap_or(140.0);
    let to = value(&args, "--to").unwrap_or(2.5);
    let beta = value(&args, "--beta").unwrap_or(1.3);
    let leakage = value(&args, "--leakage").unwrap_or(0.15);
    let m = value(&args, "--m").unwrap_or(3.0);
    let gated = args.iter().any(|a| a == "--gated");
    let kappa = value(&args, "--gated").unwrap_or(1.0);

    let tech = TechParams::new(tp, to);
    let workload = WorkloadParams::new(alpha, gamma, hazard_rate);
    let mut power =
        PowerParams::with_leakage_fraction(leakage, &tech, 10.0).with_latch_growth(beta);
    if gated {
        power = power.with_gating(ClockGating::Complete { kappa });
    }
    let model = PipelineModel::new(tech, workload, power);

    println!("model: t_p={tp} FO4, t_o={to} FO4, α={alpha}, γ={gamma}, N_H/N_I={hazard_rate},");
    println!(
        "       β={beta}, leakage={:.0}%{}\n",
        leakage * 100.0,
        if gated {
            format!(", complete gating (κ={kappa})")
        } else {
            ", no gating".to_string()
        }
    );

    print!("{}", report(&model, MetricExponent::new(m)));
    if gated {
        if let Some(d) = gated_quadratic_optimum(&model, MetricExponent::new(m), 8.0) {
            println!("  gated quadratic : {d:.2} stages (frozen-w closed form)");
        }
    }

    match crossover_exponent(&model, 2.0) {
        Some(c) => println!(
            "\npipelining starts to pay at m ≈ {:.2} (onset depth {:.1} stages)",
            c.exponent, c.onset_depth
        ),
        None => println!("\nno crossover inside the searchable exponent range"),
    }

    // The frontier view at a few budgets.
    let perf_opt = model.perf().optimum_depth().clamp(1.0, 60.0);
    let full_power = model.power().total_power(perf_opt);
    println!("\npower-capped designs (budget relative to the perf-optimum's draw):");
    for frac in [0.75, 0.5, 0.25] {
        match power_capped_design(&model, full_power * frac) {
            BudgetedDesign::Feasible(p) => println!(
                "  {:>3.0}% budget → {:.1} stages, {:.1}% of peak BIPS",
                frac * 100.0,
                p.depth,
                p.throughput / model.perf().throughput(perf_opt) * 100.0
            ),
            BudgetedDesign::Unconstrained(p) => {
                println!(
                    "  {:>3.0}% budget → unconstrained ({:.1} stages)",
                    frac * 100.0,
                    p.depth
                )
            }
            BudgetedDesign::Infeasible { .. } => {
                println!("  {:>3.0}% budget → infeasible", frac * 100.0)
            }
        }
    }
}
