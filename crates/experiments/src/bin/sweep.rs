//! Sweep one workload of the suite across pipeline depths and print the
//! full measurement table.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p pipedepth-experiments --bin sweep -- \
//!     [--workload NAME] [--instructions N] [--warmup N] [--max-depth D] [--list]
//! ```
//!
//! `--list` prints the 55 workload names and exits. The default workload is
//! `specint-00`.

use pipedepth_experiments::report::{fmt_sig, table};
use pipedepth_experiments::sweep::{sweep_workload, RunConfig};
use pipedepth_math::fit::cubic_peak_fit;
use pipedepth_workloads::suite;

fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let workloads = suite();

    if args.iter().any(|a| a == "--list") {
        for w in &workloads {
            println!(
                "{:<12} {:<20} serial {:>4.0}%  ws {:>6} KiB",
                w.name,
                w.class.to_string(),
                w.model.serial_fraction * 100.0,
                w.model.memory.working_set / 1024
            );
        }
        return;
    }

    let name = arg_value(&args, "--workload").unwrap_or_else(|| "specint-00".to_string());
    let Some(workload) = workloads.iter().find(|w| w.name == name) else {
        eprintln!("unknown workload {name:?}; use --list to see the suite");
        std::process::exit(1);
    };
    let instructions = arg_value(&args, "--instructions")
        .map(|v| v.parse().expect("--instructions takes a number"))
        .unwrap_or(60_000);
    let warmup = arg_value(&args, "--warmup")
        .map(|v| v.parse().expect("--warmup takes a number"))
        .unwrap_or(30_000);
    let max_depth: u32 = arg_value(&args, "--max-depth")
        .map(|v| v.parse().expect("--max-depth takes a number"))
        .unwrap_or(25);

    let config = RunConfig {
        warmup,
        instructions,
        depths: (2..=max_depth).collect(),
        ..RunConfig::default()
    };
    println!(
        "sweeping {} ({}), {} instructions per depth …\n",
        workload.name, workload.class, instructions
    );
    let curve = sweep_workload(workload, &config);

    let rows: Vec<Vec<String>> = curve
        .points
        .iter()
        .map(|p| {
            vec![
                p.depth.to_string(),
                format!("{:.1}", 2.5 + 140.0 / p.depth as f64),
                format!("{:.2}", p.cpi),
                fmt_sig(p.throughput),
                fmt_sig(p.metric_gated[2]),
                fmt_sig(p.metric_ungated[2]),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &[
                "depth",
                "FO4",
                "CPI",
                "BIPS",
                "BIPS³/W gated",
                "BIPS³/W ungated"
            ],
            &rows
        )
    );

    let xs = curve.depths();
    let m3 = cubic_peak_fit(&xs, &curve.gated_series(3)).expect("cubic fit");
    let bips = cubic_peak_fit(&xs, &curve.throughput_series()).expect("cubic fit");
    println!(
        "cubic-fit optima: BIPS³/W @ {:.1} stages, BIPS @ {:.1} stages",
        m3.peak_x, bips.peak_x
    );
    let x = &curve.extracted;
    println!(
        "extracted at depth {}: α = {:.2}, γ = {:.2}, N_H/N_I = {:.3}, κ = {:.3}, t_mem = {:.1} FO4",
        x.ref_depth, x.alpha, x.gamma, x.hazard_rate, x.kappa, x.memory_time_fo4
    );
}
