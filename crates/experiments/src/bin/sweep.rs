//! Sweep one workload of the suite across pipeline depths and print the
//! full measurement table.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p pipedepth-experiments --bin sweep -- \
//!     [--workload NAME] [--instructions N] [--warmup N] [--max-depth D] \
//!     [--backend sim|model] [--list]
//! ```
//!
//! `--list` prints the 55 workload names and exits. The default workload is
//! `specint-00`. `--backend model` skips the simulator entirely and sweeps
//! the workload's fitted analytic profile through the paper's closed forms.

use pipedepth_core::eval::{AnalyticModel, Evaluator};
use pipedepth_experiments::eval::{cell_for, fitted_profile, Backend};
use pipedepth_experiments::report::{fmt_sig, table};
use pipedepth_experiments::sweep::{sweep_workload, RunConfig};
use pipedepth_math::fit::cubic_peak_fit;
use pipedepth_workloads::suite;

fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let workloads = suite();

    if args.iter().any(|a| a == "--list") {
        for w in &workloads {
            println!(
                "{:<12} {:<20} serial {:>4.0}%  ws {:>6} KiB",
                w.name,
                w.class.to_string(),
                w.model.serial_fraction * 100.0,
                w.model.memory.working_set / 1024
            );
        }
        return;
    }

    let name = arg_value(&args, "--workload").unwrap_or_else(|| "specint-00".to_string());
    let Some(workload) = workloads.iter().find(|w| w.name == name) else {
        eprintln!("unknown workload {name:?}; use --list to see the suite");
        std::process::exit(1);
    };
    let instructions = arg_value(&args, "--instructions")
        .map(|v| v.parse().expect("--instructions takes a number"))
        .unwrap_or(60_000);
    let warmup = arg_value(&args, "--warmup")
        .map(|v| v.parse().expect("--warmup takes a number"))
        .unwrap_or(30_000);
    let max_depth: u32 = arg_value(&args, "--max-depth")
        .map(|v| v.parse().expect("--max-depth takes a number"))
        .unwrap_or(25);
    let backend: Backend = arg_value(&args, "--backend")
        .map(|v| {
            v.parse().unwrap_or_else(|e| {
                eprintln!("{e}");
                std::process::exit(2);
            })
        })
        .unwrap_or(Backend::Sim);
    if backend == Backend::Both {
        eprintln!("sweep compares one backend at a time; use --backend sim or --backend model");
        std::process::exit(2);
    }

    let config = RunConfig {
        warmup,
        instructions,
        depths: (2..=max_depth).collect(),
        ..RunConfig::default()
    };
    println!(
        "sweeping {} ({}), {} instructions per depth, {backend} backend …\n",
        workload.name, workload.class, instructions
    );
    // (depth, cpi, bips, gated m=3, ungated m=3) rows, backend-agnostic.
    let points: Vec<(u32, f64, f64, f64, f64)>;
    let extracted_line: String;
    if backend.uses_sim() {
        let curve = sweep_workload(workload, &config);
        points = curve
            .points
            .iter()
            .map(|p| {
                (
                    p.depth,
                    p.cpi,
                    p.throughput,
                    p.metric_gated[2],
                    p.metric_ungated[2],
                )
            })
            .collect();
        let x = &curve.extracted;
        extracted_line = format!(
            "extracted at depth {}: α = {:.2}, γ = {:.2}, N_H/N_I = {:.3}, κ = {:.3}, \
             t_mem = {:.1} FO4",
            x.ref_depth, x.alpha, x.gamma, x.hazard_rate, x.kappa, x.memory_time_fo4
        );
    } else {
        let profile = fitted_profile(workload);
        let model = AnalyticModel::paper();
        points = config
            .depths
            .iter()
            .map(|&depth| {
                let out = model
                    .evaluate(&cell_for(workload, profile, depth, &config))
                    .expect("fitted cells are valid by construction");
                (
                    depth,
                    out.cpi,
                    out.throughput,
                    out.metric_gated[2],
                    out.metric_ungated[2],
                )
            })
            .collect();
        extracted_line = format!(
            "fitted profile (ref depth {}): α = {:.2}, γ = {:.2}, N_H/N_I = {:.3}, κ = {:.3}, \
             t_mem = {:.1} FO4",
            config.ref_depth,
            profile.alpha,
            profile.gamma,
            profile.hazard_rate,
            profile.kappa,
            profile.memory_time_fo4
        );
    }

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|&(depth, cpi, bips, gated, ungated)| {
            vec![
                depth.to_string(),
                format!("{:.1}", 2.5 + 140.0 / depth as f64),
                format!("{cpi:.2}"),
                fmt_sig(bips),
                fmt_sig(gated),
                fmt_sig(ungated),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &[
                "depth",
                "FO4",
                "CPI",
                "BIPS",
                "BIPS³/W gated",
                "BIPS³/W ungated"
            ],
            &rows
        )
    );

    let xs: Vec<f64> = points.iter().map(|p| p.0 as f64).collect();
    let gated: Vec<f64> = points.iter().map(|p| p.3).collect();
    let bips_series: Vec<f64> = points.iter().map(|p| p.2).collect();
    let m3 = cubic_peak_fit(&xs, &gated).expect("cubic fit");
    let bips = cubic_peak_fit(&xs, &bips_series).expect("cubic fit");
    println!(
        "cubic-fit optima: BIPS³/W @ {:.1} stages, BIPS @ {:.1} stages",
        m3.peak_x, bips.peak_x
    );
    println!("{extracted_line}");
}
