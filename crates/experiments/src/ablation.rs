//! Ablation studies over the simulator's microarchitectural choices.
//!
//! DESIGN.md commits this reproduction to several substrate decisions the
//! paper leaves implicit (forwarding, non-blocking caches, depth-scaled
//! decoupling queues, a sequential prefetcher, in-order issue). Each
//! ablation disables one of them and re-measures the optimum pipeline
//! depth, quantifying how much the headline result depends on the choice.
//!
//! The in-order vs out-of-order comparison also checks the paper's claim
//! that the issue policy changes the optimisation "only through α and γ".

use crate::figures::fig6::optimum_of;
use crate::runner::Runner;
use crate::sweep::{RunConfig, WorkloadCurve};
use pipedepth_sim::{Features, IssuePolicy, SimConfig};
use pipedepth_workloads::{suite_class, Workload, WorkloadClass};
use std::fmt;

/// A named microarchitectural variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// The paper machine (all features on, in-order).
    Baseline,
    /// No ALU-result forwarding (consumers wait for the full E-unit pipe).
    NoForwarding,
    /// Blocking cache (a load miss stalls the load itself at issue).
    BlockingCache,
    /// Fixed 16-entry decoupling queues (do not scale with depth).
    FixedQueues,
    /// No next-line prefetcher.
    NoPrefetch,
    /// Out-of-order issue within the decoupling window.
    OutOfOrder,
}

impl Variant {
    /// All variants, baseline first.
    pub const ALL: [Variant; 6] = [
        Variant::Baseline,
        Variant::NoForwarding,
        Variant::BlockingCache,
        Variant::FixedQueues,
        Variant::NoPrefetch,
        Variant::OutOfOrder,
    ];

    /// The simulator configuration realising this variant at a depth.
    pub fn config(&self, depth: u32) -> SimConfig {
        let mut cfg = SimConfig::paper(depth);
        match self {
            Variant::Baseline => {}
            Variant::NoForwarding => {
                cfg.features = Features {
                    forwarding: false,
                    ..Features::default()
                }
            }
            Variant::BlockingCache => {
                cfg.features = Features {
                    stall_on_use: false,
                    ..Features::default()
                }
            }
            Variant::FixedQueues => {
                cfg.features = Features {
                    scaled_queues: false,
                    ..Features::default()
                }
            }
            Variant::NoPrefetch => cfg.cache.prefetch = false,
            Variant::OutOfOrder => {
                cfg.features = Features {
                    issue: IssuePolicy::OutOfOrder,
                    ..Features::default()
                }
            }
        }
        cfg
    }
}

impl fmt::Display for Variant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Variant::Baseline => "baseline",
            Variant::NoForwarding => "no forwarding",
            Variant::BlockingCache => "blocking cache",
            Variant::FixedQueues => "fixed queues",
            Variant::NoPrefetch => "no prefetch",
            Variant::OutOfOrder => "out of order",
        };
        f.write_str(s)
    }
}

/// One variant's measured outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationPoint {
    /// The variant measured.
    pub variant: Variant,
    /// Cubic-fit BIPS³/W (gated) optimum depth.
    pub optimum_depth: f64,
    /// CPI at the 8-stage design point.
    pub cpi_at_8: f64,
    /// Extracted α at the reference depth.
    pub alpha: f64,
    /// Extracted γ at the reference depth.
    pub gamma: f64,
}

/// Result of an ablation study on one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct Ablation {
    /// The workload studied.
    pub workload_name: String,
    /// One point per variant, in [`Variant::ALL`] order.
    pub points: Vec<AblationPoint>,
}

impl Ablation {
    /// The baseline point.
    pub fn baseline(&self) -> &AblationPoint {
        &self.points[0]
    }

    /// Looks up a variant's point.
    pub fn variant(&self, v: Variant) -> &AblationPoint {
        self.points
            .iter()
            .find(|p| p.variant == v)
            .expect("all variants measured")
    }
}

/// Sweeps one workload under one variant (same methodology as the main
/// sweeps, but on a variant machine).
fn sweep_variant(
    runner: &Runner,
    workload: &Workload,
    variant: Variant,
    config: &RunConfig,
) -> WorkloadCurve {
    runner.sweep_workload_with(workload, config, |depth| variant.config(depth))
}

/// Runs the full ablation study on one workload, on a shared runner so the
/// baseline arm reuses any cached paper-machine cells.
pub fn run_with(runner: &Runner, workload: &Workload, config: &RunConfig) -> Ablation {
    let points = Variant::ALL
        .iter()
        .map(|&variant| {
            let curve = sweep_variant(runner, workload, variant, config);
            let opt = optimum_of(&curve);
            let cpi_at_8 = curve
                .points
                .iter()
                .min_by_key(|p| p.depth.abs_diff(8))
                .expect("non-empty sweep")
                .cpi;
            AblationPoint {
                variant,
                optimum_depth: opt.cubic_fit_depth,
                cpi_at_8,
                alpha: curve.extracted.alpha,
                gamma: curve.extracted.gamma,
            }
        })
        .collect();
    Ablation {
        workload_name: workload.name.clone(),
        points,
    }
}

/// Runs the full ablation study on one workload with a private serial
/// runner.
pub fn run(workload: &Workload, config: &RunConfig) -> Ablation {
    run_with(&Runner::serial(), workload, config)
}

/// Registry spec: ablate the representative modern workload.
#[derive(Debug)]
pub struct Spec;

impl crate::experiment::Experiment for Spec {
    fn name(&self) -> &'static str {
        "ablation"
    }

    fn title(&self) -> &'static str {
        "microarchitectural ablations (modern workload)"
    }

    fn requires_sim(&self) -> bool {
        true
    }

    fn run(&self, ctx: &crate::experiment::Context) -> crate::experiment::ExperimentOutput {
        let w = suite_class(WorkloadClass::Modern)
            .into_iter()
            .next()
            .expect("modern class populated");
        let study = run_with(&ctx.runner, &w, &ctx.config);
        crate::experiment::ExperimentOutput::summary_only(study.to_string())
    }
}

impl fmt::Display for Ablation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Ablation — {} (BIPS³/W gated optimum)",
            self.workload_name
        )?;
        writeln!(
            f,
            "  {:<16} {:>9} {:>9} {:>7} {:>7}",
            "variant", "opt depth", "CPI@8", "α", "γ"
        )?;
        for p in &self.points {
            writeln!(
                f,
                "  {:<16} {:>9.1} {:>9.2} {:>7.2} {:>7.2}",
                p.variant.to_string(),
                p.optimum_depth,
                p.cpi_at_8,
                p.alpha,
                p.gamma
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipedepth_workloads::{suite_class, WorkloadClass};

    fn quick() -> RunConfig {
        RunConfig {
            warmup: 8_000,
            instructions: 16_000,
            depths: (2..=24).step_by(2).collect(),
            ..RunConfig::default()
        }
    }

    fn study() -> Ablation {
        let w = suite_class(WorkloadClass::Modern)
            .into_iter()
            .next()
            .unwrap();
        run(&w, &quick())
    }

    #[test]
    fn all_variants_measured() {
        let a = study();
        assert_eq!(a.points.len(), Variant::ALL.len());
        assert_eq!(a.points[0].variant, Variant::Baseline);
    }

    #[test]
    fn degraded_variants_are_slower() {
        let a = study();
        let base = a.baseline().cpi_at_8;
        for v in [
            Variant::NoForwarding,
            Variant::BlockingCache,
            Variant::NoPrefetch,
        ] {
            assert!(
                a.variant(v).cpi_at_8 >= base - 1e-9,
                "{v}: {} vs baseline {base}",
                a.variant(v).cpi_at_8
            );
        }
    }

    #[test]
    fn out_of_order_is_faster_with_similar_optimum() {
        // The paper: OoO vs in-order changes the optimum only a little,
        // through α and γ.
        let a = study();
        let base = a.baseline();
        let ooo = a.variant(Variant::OutOfOrder);
        assert!(ooo.cpi_at_8 <= base.cpi_at_8 + 1e-9);
        assert!(ooo.alpha >= base.alpha - 0.1, "OoO should not lower α");
        assert!(
            (ooo.optimum_depth - base.optimum_depth).abs() <= 3.0,
            "OoO optimum {} vs in-order {}",
            ooo.optimum_depth,
            base.optimum_depth
        );
    }

    #[test]
    fn optima_stay_physical() {
        let a = study();
        for p in &a.points {
            assert!(
                p.optimum_depth >= 2.0 && p.optimum_depth <= 24.0,
                "{}: {}",
                p.variant,
                p.optimum_depth
            );
        }
    }
}
