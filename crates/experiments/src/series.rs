//! Shared series helpers: NaN-aware argmax, maxima and normalisation.
//!
//! Every figure needs "where does this curve peak" or "scale this curve to
//! its maximum". These used to be re-implemented per figure with
//! `partial_cmp(..).expect(..)`, which turned a single NaN sample into a
//! panic deep inside a sweep. The helpers here skip non-finite samples
//! instead and make the empty/degenerate cases explicit `None`s.

/// Index of the largest finite value (first winner on ties). `None` when
/// the slice is empty or holds no finite value.
pub fn argmax(ys: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &y) in ys.iter().enumerate() {
        if !y.is_finite() {
            continue;
        }
        match best {
            Some((_, b)) if y <= b => {}
            _ => best = Some((i, y)),
        }
    }
    best.map(|(i, _)| i)
}

/// Largest finite value. `None` when the slice holds no finite value.
pub fn max_value(ys: &[f64]) -> Option<f64> {
    argmax(ys).map(|i| ys[i])
}

/// The series divided by its largest finite value. `None` when there is no
/// finite value or the maximum is zero (nothing to normalise against);
/// non-finite samples pass through unchanged.
pub fn normalise_to_max(ys: &[f64]) -> Option<Vec<f64>> {
    let max = max_value(ys)?;
    if max == 0.0 {
        return None;
    }
    Some(ys.iter().map(|&y| y / max).collect())
}

/// The `xs` entry at the series' argmax — "the depth where the metric
/// peaks". `None` on length mismatch or when no finite value exists.
pub fn peak_x(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() {
        return None;
    }
    argmax(ys).map(|i| xs[i])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argmax_picks_first_of_ties() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), Some(1));
    }

    #[test]
    fn argmax_skips_nan_and_infinities() {
        assert_eq!(argmax(&[f64::NAN, 2.0, f64::INFINITY, 5.0]), Some(3));
        assert_eq!(argmax(&[f64::NAN, f64::NAN]), None);
        assert_eq!(argmax(&[]), None);
    }

    #[test]
    fn argmax_handles_all_negative_series() {
        assert_eq!(argmax(&[-3.0, -1.0, -2.0]), Some(1));
    }

    #[test]
    fn max_value_matches_argmax() {
        assert_eq!(max_value(&[0.5, f64::NAN, 4.0, 1.0]), Some(4.0));
        assert_eq!(max_value(&[f64::NEG_INFINITY]), None);
    }

    #[test]
    fn normalise_scales_peak_to_one() {
        let n = normalise_to_max(&[1.0, 4.0, 2.0]).expect("finite max");
        assert_eq!(n, vec![0.25, 1.0, 0.5]);
    }

    #[test]
    fn normalise_passes_nan_through() {
        let n = normalise_to_max(&[2.0, f64::NAN, 4.0]).expect("finite max");
        assert_eq!(n[0], 0.5);
        assert!(n[1].is_nan());
        assert_eq!(n[2], 1.0);
    }

    #[test]
    fn normalise_rejects_degenerate_series() {
        assert_eq!(normalise_to_max(&[]), None);
        assert_eq!(normalise_to_max(&[f64::NAN]), None);
        assert_eq!(normalise_to_max(&[0.0, 0.0]), None);
        assert_eq!(normalise_to_max(&[-1.0, 0.0]), None);
    }

    #[test]
    fn peak_x_maps_into_the_domain() {
        assert_eq!(peak_x(&[2.0, 4.0, 6.0], &[0.1, 0.9, 0.3]), Some(4.0));
        assert_eq!(peak_x(&[2.0, 4.0], &[0.1]), None);
        assert_eq!(peak_x(&[2.0], &[f64::NAN]), None);
    }
}
