//! Rendering helpers: ASCII tables and CSV output for experiment results.

use std::fmt::Write as _;

/// Renders an ASCII table with a header row.
///
/// # Panics
///
/// Panics if any row's width differs from the header's.
///
/// # Examples
///
/// ```
/// use pipedepth_experiments::report::table;
/// let t = table(&["depth", "metric"], &[vec!["7".into(), "0.5".into()]]);
/// assert!(t.contains("depth"));
/// assert!(t.contains("| 7"));
/// ```
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    for row in rows {
        assert_eq!(
            row.len(),
            headers.len(),
            "row width must match header width"
        );
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize], out: &mut String| {
        out.push('|');
        for (cell, w) in cells.iter().zip(widths) {
            let _ = write!(out, " {cell:<w$} |");
        }
        out.push('\n');
    };
    let headers_owned: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    render_row(&headers_owned, &widths, &mut out);
    out.push('|');
    for w in &widths {
        let _ = write!(out, "{}|", "-".repeat(w + 2));
    }
    out.push('\n');
    for row in rows {
        render_row(row, &widths, &mut out);
    }
    out
}

/// Renders series as CSV: first column is `x`, then one column per series.
///
/// # Panics
///
/// Panics if series lengths disagree with `xs`.
pub fn csv(x_name: &str, xs: &[f64], series: &[(&str, &[f64])]) -> String {
    for (name, ys) in series {
        assert_eq!(ys.len(), xs.len(), "series {name} length mismatch");
    }
    let mut out = String::new();
    let _ = write!(out, "{x_name}");
    for (name, _) in series {
        let _ = write!(out, ",{name}");
    }
    out.push('\n');
    for (i, x) in xs.iter().enumerate() {
        let _ = write!(out, "{x}");
        for (_, ys) in series {
            let _ = write!(out, ",{}", ys[i]);
        }
        out.push('\n');
    }
    out
}

/// Formats a float compactly for tables (4 significant digits).
pub fn fmt_sig(v: f64) -> String {
    if v == 0.0 {
        return "0".to_string();
    }
    let mag = v.abs().log10().floor();
    if (-2.0..5.0).contains(&mag) {
        format!("{v:.*}", (3 - mag as i32).max(0) as usize)
    } else {
        format!("{v:.3e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = table(
            &["a", "long-header"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_rows_rejected() {
        let _ = table(&["a"], &[vec!["1".into(), "2".into()]]);
    }

    #[test]
    fn csv_round_numbers() {
        let out = csv("p", &[1.0, 2.0], &[("y", &[0.5, 0.25])]);
        assert_eq!(out, "p,y\n1,0.5\n2,0.25\n");
    }

    #[test]
    fn fmt_sig_ranges() {
        assert_eq!(fmt_sig(0.0), "0");
        assert_eq!(fmt_sig(22.5), "22.50");
        assert!(fmt_sig(1.234e-7).contains('e'));
    }
}
