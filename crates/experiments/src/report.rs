//! Rendering helpers: ASCII tables, typed CSV tables and number formats.

use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

/// A shape error while assembling a [`Table`] or CSV.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReportError {
    /// A row's cell count differs from the header's column count.
    RowWidth {
        /// Columns in the header.
        expected: usize,
        /// Cells in the offending row.
        got: usize,
    },
    /// A named series' length differs from the x column's.
    SeriesLength {
        /// The offending series.
        name: String,
        /// Length of the x column.
        expected: usize,
        /// Length of the series.
        got: usize,
    },
}

impl fmt::Display for ReportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReportError::RowWidth { expected, got } => {
                write!(f, "row has {got} cells, header has {expected} columns")
            }
            ReportError::SeriesLength {
                name,
                expected,
                got,
            } => write!(
                f,
                "series {name:?} has {got} values, x column has {expected}"
            ),
        }
    }
}

impl Error for ReportError {}

/// A typed tabular artifact: a header plus width-checked rows, rendered to
/// CSV. This is the structured replacement for ad-hoc string pasting in
/// the figure drivers.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Table {
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// An empty table with the given column names.
    pub fn new(columns: &[&str]) -> Self {
        Table {
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row, checking its width against the header.
    pub fn push_row(&mut self, cells: Vec<String>) -> Result<(), ReportError> {
        if cells.len() != self.columns.len() {
            return Err(ReportError::RowWidth {
                expected: self.columns.len(),
                got: cells.len(),
            });
        }
        self.rows.push(cells);
        Ok(())
    }

    /// Builds a numeric table: an x column plus one column per series, all
    /// length-checked against `xs`.
    pub fn from_series(
        x_name: &str,
        xs: &[f64],
        series: &[(&str, &[f64])],
    ) -> Result<Self, ReportError> {
        for (name, ys) in series {
            if ys.len() != xs.len() {
                return Err(ReportError::SeriesLength {
                    name: name.to_string(),
                    expected: xs.len(),
                    got: ys.len(),
                });
            }
        }
        let mut columns = vec![x_name];
        columns.extend(series.iter().map(|(name, _)| *name));
        let mut out = Table::new(&columns);
        for (i, x) in xs.iter().enumerate() {
            let mut row = vec![x.to_string()];
            row.extend(series.iter().map(|(_, ys)| ys[i].to_string()));
            out.push_row(row).expect("row built from checked series");
        }
        Ok(out)
    }

    /// Column names.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table holds no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as CSV (header line plus one line per row).
    pub fn to_csv(&self) -> String {
        let mut out = self.columns.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Renders an ASCII table with a header row.
///
/// # Panics
///
/// Panics if any row's width differs from the header's.
///
/// # Examples
///
/// ```
/// use pipedepth_experiments::report::table;
/// let t = table(&["depth", "metric"], &[vec!["7".into(), "0.5".into()]]);
/// assert!(t.contains("depth"));
/// assert!(t.contains("| 7"));
/// ```
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    for row in rows {
        assert_eq!(
            row.len(),
            headers.len(),
            "row width must match header width"
        );
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize], out: &mut String| {
        out.push('|');
        for (cell, w) in cells.iter().zip(widths) {
            let _ = write!(out, " {cell:<w$} |");
        }
        out.push('\n');
    };
    let headers_owned: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    render_row(&headers_owned, &widths, &mut out);
    out.push('|');
    for w in &widths {
        let _ = write!(out, "{}|", "-".repeat(w + 2));
    }
    out.push('\n');
    for row in rows {
        render_row(row, &widths, &mut out);
    }
    out
}

/// Renders series as CSV: first column is `x`, then one column per series.
/// Errors instead of panicking when a series' length disagrees with `xs`.
pub fn csv(x_name: &str, xs: &[f64], series: &[(&str, &[f64])]) -> Result<String, ReportError> {
    Table::from_series(x_name, xs, series).map(|t| t.to_csv())
}

/// Formats a float compactly for tables (4 significant digits).
pub fn fmt_sig(v: f64) -> String {
    if v == 0.0 {
        return "0".to_string();
    }
    let mag = v.abs().log10().floor();
    if (-2.0..5.0).contains(&mag) {
        format!("{v:.*}", (3 - mag as i32).max(0) as usize)
    } else {
        format!("{v:.3e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = table(
            &["a", "long-header"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_rows_rejected() {
        let _ = table(&["a"], &[vec!["1".into(), "2".into()]]);
    }

    #[test]
    fn csv_round_numbers() {
        let out = csv("p", &[1.0, 2.0], &[("y", &[0.5, 0.25])]).expect("lengths match");
        assert_eq!(out, "p,y\n1,0.5\n2,0.25\n");
    }

    #[test]
    fn csv_length_mismatch_is_an_error() {
        let err = csv("p", &[1.0, 2.0], &[("y", &[0.5])]).unwrap_err();
        assert_eq!(
            err,
            ReportError::SeriesLength {
                name: "y".into(),
                expected: 2,
                got: 1,
            }
        );
        assert!(err.to_string().contains("\"y\""));
    }

    #[test]
    fn typed_table_round_trip() {
        let mut t = Table::new(&["workload", "alpha"]);
        t.push_row(vec!["specint-00".into(), "2.1".into()])
            .expect("width matches");
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        assert_eq!(t.columns(), ["workload", "alpha"]);
        assert_eq!(t.to_csv(), "workload,alpha\nspecint-00,2.1\n");
    }

    #[test]
    fn typed_table_rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        let err = t.push_row(vec!["1".into()]).unwrap_err();
        assert_eq!(
            err,
            ReportError::RowWidth {
                expected: 2,
                got: 1
            }
        );
        assert!(t.is_empty(), "failed push must not mutate the table");
    }

    #[test]
    fn fmt_sig_ranges() {
        assert_eq!(fmt_sig(0.0), "0");
        assert_eq!(fmt_sig(22.5), "22.50");
        assert!(fmt_sig(1.234e-7).contains('e'));
    }
}
