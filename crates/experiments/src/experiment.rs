//! The declarative experiment layer.
//!
//! Every regenerated figure or table is an [`Experiment`]: a named spec
//! that runs against a shared [`Context`] — the run configuration, the
//! cell-level [`Runner`] with its simulation cache, and the lazily swept
//! suite curves — and returns a summary plus typed [`Artifact`]s. The
//! `repro` binary is a thin driver over [`registry`]: it selects specs,
//! times them, prints summaries and writes artifacts; it contains no
//! figure logic of its own.

use crate::eval::{model_curves, Backend};
use crate::report::Table;
use crate::runner::Runner;
use crate::sweep::{RunConfig, WorkloadCurve};
use pipedepth_workloads::{suite, WorkloadClass};
use std::fmt;
use std::sync::OnceLock;

/// A file an experiment wants written into the output directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Artifact {
    /// Name relative to the output directory, e.g. `fig6.csv`.
    pub filename: String,
    /// Full file contents.
    pub contents: String,
}

impl Artifact {
    /// Builds an artifact from anything string-like.
    pub fn new(filename: impl Into<String>, contents: impl Into<String>) -> Self {
        Artifact {
            filename: filename.into(),
            contents: contents.into(),
        }
    }
}

/// What one experiment produced: a human-readable summary (printed by the
/// driver) and zero or more artifacts (written by the driver).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExperimentOutput {
    /// Printable summary, newline-terminated.
    pub summary: String,
    /// Files to deposit in the output directory.
    pub artifacts: Vec<Artifact>,
}

impl ExperimentOutput {
    /// An output with no artifacts.
    pub fn summary_only(summary: impl Into<String>) -> Self {
        ExperimentOutput {
            summary: summary.into(),
            artifacts: Vec::new(),
        }
    }
}

/// Typed figure results deposited during a run, so cross-cutting consumers
/// (the paper-verdict table) can read them after the registry loop without
/// re-running anything.
#[derive(Debug, Default)]
pub struct Outcomes {
    /// Figure 1 (optimality quartic), if its spec ran.
    pub fig1: OnceLock<crate::figures::fig1::Fig1>,
    /// Figure 3 (latch growth), if its spec ran.
    pub fig3: OnceLock<crate::figures::fig3::Fig3>,
    /// Figure 6 (optimum distribution), if its spec ran.
    pub fig6: OnceLock<crate::figures::fig6::Fig6>,
    /// Figure 7 (per-class distributions), if its spec ran.
    pub fig7: OnceLock<crate::figures::fig7::Fig7>,
    /// Figure 8 (leakage), if its spec ran.
    pub fig8: OnceLock<crate::figures::fig8::Fig8>,
    /// Figure 9 (latch-growth exponent), if its spec ran.
    pub fig9: OnceLock<crate::figures::fig9::Fig9>,
    /// The headline numbers, if their spec ran.
    pub headline: OnceLock<crate::figures::headline::Headline>,
}

/// Shared state for one experiment run.
#[derive(Debug)]
pub struct Context {
    /// The sweep configuration every experiment uses.
    pub config: RunConfig,
    /// The cell runner (worker pool + simulation cache) every experiment
    /// schedules onto.
    pub runner: Runner,
    /// Results deposited by finished experiments.
    pub outcomes: Outcomes,
    /// The evaluation backend the suite curves come from.
    backend: Backend,
    curves: OnceLock<Vec<WorkloadCurve>>,
}

impl Context {
    /// A fresh context with an empty cache and no curves swept yet, on the
    /// simulation backend.
    pub fn new(config: RunConfig, runner: Runner) -> Self {
        Self::with_backend(config, runner, Backend::Sim)
    }

    /// A fresh context on an explicit evaluation backend.
    pub fn with_backend(config: RunConfig, runner: Runner, backend: Backend) -> Self {
        Context {
            config,
            runner,
            outcomes: Outcomes::default(),
            backend,
            curves: OnceLock::new(),
        }
    }

    /// The evaluation backend this context's curves come from.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// The full-suite sweep, materialised on first use and shared
    /// afterwards: simulated under the `sim`/`both` backends, evaluated in
    /// closed form (no simulator in the call path) under `model`.
    pub fn curves(&self) -> &[WorkloadCurve] {
        self.curves.get_or_init(|| {
            if self.backend.uses_sim() {
                self.runner.sweep_all(&suite(), &self.config)
            } else {
                model_curves(&suite(), &self.config)
            }
        })
    }

    /// Whether the suite sweep has been materialised yet.
    pub fn curves_ready(&self) -> bool {
        self.curves.get().is_some()
    }

    /// The first suite curve of a class (the per-class representative the
    /// figure drivers display).
    pub fn curve_for(&self, class: WorkloadClass) -> &WorkloadCurve {
        self.curves()
            .iter()
            .find(|c| c.workload.class == class)
            .expect("every class is present in the suite")
    }
}

/// One declarative experiment: a named, self-describing unit the driver
/// can list, select and time.
pub trait Experiment {
    /// Stable identifier used by `--only`, e.g. `fig4`.
    fn name(&self) -> &'static str;
    /// One-line description for `--list`.
    fn title(&self) -> &'static str;
    /// Whether this experiment reads [`Context::curves`]; the driver uses
    /// this to time the shared suite sweep as its own phase.
    fn needs_curves(&self) -> bool {
        false
    }
    /// Whether this experiment drives the simulator directly (beyond the
    /// shared curves) and therefore cannot run under the pure `model`
    /// backend. The driver skips such specs, with a note, when no
    /// simulation backend is available.
    fn requires_sim(&self) -> bool {
        false
    }
    /// Runs the experiment against the shared context.
    fn run(&self, ctx: &Context) -> ExperimentOutput;
}

/// Every experiment, in the canonical report order.
pub fn registry() -> Vec<Box<dyn Experiment>> {
    vec![
        Box::new(crate::figures::fig1::Spec),
        Box::new(crate::figures::fig2::Spec),
        Box::new(crate::figures::fig3::Spec),
        Box::new(crate::figures::fig4::Spec),
        Box::new(crate::figures::fig5::Spec),
        Box::new(WorkloadTable),
        Box::new(crate::figures::fig6::Spec),
        Box::new(crate::figures::fig7::Spec),
        Box::new(crate::figures::fig8::Spec),
        Box::new(crate::figures::fig9::Spec),
        Box::new(crate::figures::headline::Spec),
        Box::new(crate::ablation::Spec),
        Box::new(crate::issue_policy::Spec),
        Box::new(crate::figures::ext_gating::Spec),
        Box::new(crate::figures::xval::Spec),
    ]
}

/// Error for `--only` selections naming unknown experiments: carries the
/// unknown names and the full list of valid ones for the message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownExperiment {
    /// The selector names that matched nothing.
    pub unknown: Vec<String>,
    /// Every valid experiment name, in registry order.
    pub valid: Vec<&'static str>,
}

impl fmt::Display for UnknownExperiment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown experiment{} {}; valid names: {}",
            if self.unknown.len() == 1 { "" } else { "s" },
            self.unknown
                .iter()
                .map(|n| format!("\"{n}\""))
                .collect::<Vec<_>>()
                .join(", "),
            self.valid.join(", ")
        )
    }
}

impl std::error::Error for UnknownExperiment {}

/// Filters the registry by a `--only` selection, preserving registry
/// order. An empty selection keeps everything. Selections naming an
/// unknown experiment are an error — silently running nothing has bitten
/// CI scripts before — listing the valid names.
pub fn select_experiments<'a>(
    specs: &'a [Box<dyn Experiment>],
    only: &[String],
) -> Result<Vec<&'a dyn Experiment>, UnknownExperiment> {
    let valid: Vec<&'static str> = specs.iter().map(|e| e.name()).collect();
    let unknown: Vec<String> = only
        .iter()
        .filter(|name| !valid.contains(&name.as_str()))
        .cloned()
        .collect();
    if !unknown.is_empty() {
        return Err(UnknownExperiment { unknown, valid });
    }
    Ok(specs
        .iter()
        .filter(|e| only.is_empty() || only.iter().any(|n| n == e.name()))
        .map(|e| e.as_ref())
        .collect())
}

/// The per-workload extracted-parameter table (`workloads.csv`).
#[derive(Debug)]
pub struct WorkloadTable;

impl Experiment for WorkloadTable {
    fn name(&self) -> &'static str {
        "workloads"
    }

    fn title(&self) -> &'static str {
        "per-workload extracted theory parameters (CSV)"
    }

    fn needs_curves(&self) -> bool {
        true
    }

    fn run(&self, ctx: &Context) -> ExperimentOutput {
        let mut t = Table::new(&[
            "workload",
            "class",
            "alpha",
            "gamma",
            "hazard_rate",
            "kappa",
            "memory_time_fo4",
            "serial_fraction",
        ]);
        for c in ctx.curves() {
            let x = &c.extracted;
            t.push_row(vec![
                c.workload.name.clone(),
                c.workload.class.tag().to_string(),
                x.alpha.to_string(),
                x.gamma.to_string(),
                x.hazard_rate.to_string(),
                x.kappa.to_string(),
                x.memory_time_fo4.to_string(),
                c.workload.model.serial_fraction.to_string(),
            ])
            .expect("row width fixed by construction");
        }
        ExperimentOutput {
            summary: format!("Workload table — {} extracted parameter sets\n", t.len()),
            artifacts: vec![Artifact::new("workloads.csv", t.to_csv())],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_stable() {
        let specs = registry();
        let names: Vec<&str> = specs.iter().map(|e| e.name()).collect();
        assert_eq!(
            names,
            [
                "fig1",
                "fig2",
                "fig3",
                "fig4",
                "fig5",
                "workloads",
                "fig6",
                "fig7",
                "fig8",
                "fig9",
                "headline",
                "ablation",
                "issue_policy",
                "ext_gating",
                "xval",
            ]
        );
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }

    #[test]
    fn every_spec_has_a_title() {
        for e in registry() {
            assert!(!e.title().is_empty(), "{} needs a title", e.name());
        }
    }

    #[test]
    fn context_sweeps_lazily_and_once() {
        let cfg = RunConfig {
            warmup: 500,
            instructions: 1_000,
            depths: vec![4, 8],
            ..RunConfig::default()
        };
        let ctx = Context::new(cfg, Runner::serial());
        assert!(!ctx.curves_ready());
        let first = ctx.curves().as_ptr();
        assert!(ctx.curves_ready());
        assert_eq!(first, ctx.curves().as_ptr(), "curves swept exactly once");
        assert_eq!(ctx.curves().len(), suite().len());
        let modern = ctx.curve_for(WorkloadClass::Modern);
        assert_eq!(modern.workload.class, WorkloadClass::Modern);
    }

    #[test]
    fn model_backend_sweeps_without_simulation() {
        let cfg = RunConfig {
            depths: vec![4, 10, 16],
            ..RunConfig::default()
        };
        let ctx = Context::with_backend(cfg, Runner::serial(), Backend::Model);
        let curves = ctx.curves();
        assert_eq!(curves.len(), suite().len());
        assert!(curves.iter().all(|c| c.points.len() == 3));
        let stats = ctx.runner.cache_stats().expect("cache enabled by default");
        assert_eq!(
            (stats.hits, stats.misses),
            (0, 0),
            "model curves must not touch the simulation runner"
        );
    }

    #[test]
    fn selection_filters_in_registry_order() {
        let specs = registry();
        let picked = select_experiments(&specs, &["fig4".to_string(), "fig1".to_string()])
            .expect("both names are valid");
        let names: Vec<&str> = picked.iter().map(|e| e.name()).collect();
        assert_eq!(
            names,
            ["fig1", "fig4"],
            "registry order, not selection order"
        );
        let all = select_experiments(&specs, &[]).expect("empty selection is valid");
        assert_eq!(all.len(), specs.len());
    }

    #[test]
    fn unknown_selection_is_an_error_listing_valid_names() {
        let specs = registry();
        let err = select_experiments(&specs, &["fig4".to_string(), "fig99".to_string()])
            .err()
            .expect("fig99 does not exist");
        assert_eq!(err.unknown, ["fig99"]);
        let msg = err.to_string();
        assert!(msg.contains("\"fig99\""), "{msg}");
        assert!(msg.contains("fig4") && msg.contains("xval"), "{msg}");
    }

    #[test]
    fn sim_only_specs_are_marked() {
        let requires: Vec<&str> = registry()
            .iter()
            .filter(|e| e.requires_sim())
            .map(|e| e.name())
            .collect();
        assert_eq!(requires, ["ablation", "issue_policy", "ext_gating", "xval"]);
    }
}
