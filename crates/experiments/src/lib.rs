//! Experiment harness regenerating every figure of Hartstein & Puzak,
//! *Optimum Power/Performance Pipeline Depth* (MICRO-36, 2003).
//!
//! * [`sweep`] — depth sweeps of workloads over the simulator (2–25 stages,
//!   warmup + measurement windows, parallel across workloads);
//! * [`extract`] — single-run extraction of the theory's parameters
//!   (`α`, `γ`, `N_H/N_I`, κ) and assembly of the analytic model;
//! * [`eval`] — backend selection (`--backend {sim,model,both}`) and the
//!   simulation side of the backend-agnostic
//!   [`Evaluator`](pipedepth_core::Evaluator) layer;
//! * [`figures`] — one driver per figure: Fig. 1 (optimality quartic),
//!   Fig. 3 (latch growth), Figs. 4a–c (theory vs simulation), Fig. 5
//!   (metric comparison), Fig. 6 (optimum distribution), Fig. 7 (per-class
//!   distributions), Fig. 8 (leakage), Fig. 9 (latch-growth exponent), and
//!   the paper's headline numbers;
//! * [`ablation`] — microarchitectural ablations quantifying how much the
//!   headline result depends on substrate choices (forwarding, caches,
//!   queue sizing, issue policy);
//! * [`manifest`] — the schema-versioned `manifest.json` run manifest
//!   (config digest, phase timings, telemetry snapshot);
//! * [`store`] — the persistent evaluation store behind `--store`,
//!   warm-starting runs from the snapshots a previous run published;
//! * [`report`] — ASCII tables and CSV rendering.
//!
//! The `repro` binary runs everything and emits the full comparison
//! report (`cargo run --release -p pipedepth-experiments --bin repro`).
pub mod ablation;
pub mod convergence;
pub mod eval;
pub mod experiment;
pub mod extract;
pub mod figures;
pub mod issue_policy;
pub mod manifest;
pub mod paper;
pub mod plot;
pub mod report;
pub mod runner;
pub mod series;
pub mod store;
pub mod sweep;

pub use eval::{
    fitted_profile, model_curves, outcome_from_report, Backend, SimBackend, UnknownBackend,
};
pub use experiment::{
    registry, select_experiments, Artifact, Context, Experiment, ExperimentOutput,
    UnknownExperiment,
};
pub use extract::{
    extended_theory_curve, extract_from_report, theory_curve, theory_model, ExtractedParams,
};
pub use manifest::{Manifest, PhaseTiming, SCHEMA_VERSION};
pub use runner::{CacheStats, CellSpec, Runner, SimCache};
pub use store::{RunStore, StoreStats};
pub use sweep::{
    sweep_all, sweep_workload, sweep_workload_with, DepthPoint, RunConfig, WorkloadCurve,
};
