//! The paper's reported numbers, as machine-readable constants, and the
//! automated paper-vs-measured comparison report.
//!
//! Keeping the reference values in code (rather than only in
//! EXPERIMENTS.md) lets integration tests and the `repro` binary check
//! each regenerated figure against the published result and emit a
//! markdown verdict table.

use crate::figures::fig1::Fig1;
use crate::figures::fig3::Fig3;
use crate::figures::fig6::Fig6;
use crate::figures::fig7::Fig7;
use crate::figures::fig8::Fig8;
use crate::figures::fig9::Fig9;
use crate::figures::headline::Headline;
use pipedepth_workloads::WorkloadClass;
use std::fmt::Write as _;

/// Reference values reported by the paper.
pub mod reference {
    /// Performance-only optimum (stages).
    pub const PERF_ONLY_STAGES: f64 = 22.0;
    /// BIPS³/W optimum via cubic fit of simulation (stages).
    pub const M3_CUBIC_STAGES: f64 = 8.0;
    /// BIPS³/W optimum via theory (stages).
    pub const M3_THEORY_STAGES: f64 = 6.25;
    /// Eq. 6a spurious root for the paper technology.
    pub const ROOT_6A: f64 = -56.0;
    /// Overall latch-growth exponent (Fig. 3).
    pub const LATCH_EXPONENT: f64 = 1.1;
    /// Optimum-depth deepening factor from 0% to 90% leakage (Fig. 8:
    /// 7 → 14 stages).
    pub const LEAKAGE_DEEPENING: f64 = 2.0;
    /// Class peaks of Fig. 7 (stages).
    pub const CLASS_PEAKS: [(super::WorkloadClass, f64); 4] = [
        (super::WorkloadClass::Legacy, 9.0),
        (super::WorkloadClass::SpecInt, 7.0),
        (super::WorkloadClass::Modern, 7.5),
        (super::WorkloadClass::FloatingPoint, 11.0), // midpoint of 6–16
    ];
}

/// One row of the comparison report.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// What is being compared.
    pub quantity: String,
    /// The paper's value.
    pub paper: f64,
    /// The measured value.
    pub measured: f64,
    /// Acceptable relative deviation for a ✓ verdict.
    pub tolerance: f64,
}

impl Comparison {
    /// Whether the measurement is within tolerance of the paper.
    pub fn ok(&self) -> bool {
        let denom = self.paper.abs().max(1e-12);
        ((self.measured - self.paper) / denom).abs() <= self.tolerance
    }
}

/// Builds the full comparison set from regenerated figures.
pub fn compare(
    f1: &Fig1,
    f3: &Fig3,
    f6: &Fig6,
    f7: &Fig7,
    f8: &Fig8,
    f9: &Fig9,
    h: &Headline,
) -> Vec<Comparison> {
    let mut rows = vec![
        Comparison {
            quantity: "performance-only optimum (stages)".into(),
            paper: reference::PERF_ONLY_STAGES,
            measured: h.perf_only_mean,
            tolerance: 0.25,
        },
        Comparison {
            quantity: "BIPS³/W cubic-fit optimum (stages)".into(),
            paper: reference::M3_CUBIC_STAGES,
            measured: h.m3_cubic_mean,
            tolerance: 0.20,
        },
        Comparison {
            quantity: "BIPS³/W theory optimum (stages)".into(),
            paper: reference::M3_THEORY_STAGES,
            measured: h.m3_theory_mean,
            tolerance: 0.35,
        },
        Comparison {
            quantity: "Fig. 1 root at −t_p/t_o".into(),
            paper: reference::ROOT_6A,
            measured: f1.roots.first().copied().unwrap_or(f64::NAN),
            tolerance: 0.01,
        },
        Comparison {
            quantity: "Fig. 3 overall latch exponent".into(),
            paper: reference::LATCH_EXPONENT,
            measured: f3.fit.exponent,
            tolerance: 0.08,
        },
        Comparison {
            quantity: "Fig. 6 distribution mean (stages)".into(),
            paper: reference::M3_CUBIC_STAGES,
            measured: f6.summary.mean,
            tolerance: 0.20,
        },
    ];
    // Fig. 8: deepening factor from the first to the last leakage point.
    if let (Some(Some(lo)), Some(Some(hi))) = (f8.optima.first(), f8.optima.last()) {
        rows.push(Comparison {
            quantity: "Fig. 8 leakage deepening factor".into(),
            paper: reference::LEAKAGE_DEEPENING,
            measured: hi / lo,
            tolerance: 0.5,
        });
    }
    // Fig. 9: β monotonically shrinks the optimum — encode as the ratio of
    // the β=1.0 to β=1.8 optima (paper's trend: strongly above 1).
    if let (Some(Some(lo_beta)), Some(Some(hi_beta))) = (f9.optima.first(), f9.optima.last()) {
        rows.push(Comparison {
            quantity: "Fig. 9 β=1.0 / β=1.8 optimum ratio".into(),
            paper: 2.5,
            measured: lo_beta / hi_beta,
            tolerance: 0.5,
        });
    }
    for (class, peak) in reference::CLASS_PEAKS {
        rows.push(Comparison {
            quantity: format!("Fig. 7 {class} mean (stages)"),
            paper: peak,
            measured: f7.class(class).summary.mean,
            tolerance: 0.35,
        });
    }
    rows
}

/// Renders the comparison as a markdown table with per-row verdicts.
pub fn render_markdown(rows: &[Comparison]) -> String {
    let mut out = String::from("| quantity | paper | measured | verdict |\n|---|---|---|---|\n");
    for r in rows {
        let _ = writeln!(
            out,
            "| {} | {:.2} | {:.2} | {} |",
            r.quantity,
            r.paper,
            r.measured,
            if r.ok() {
                "✓"
            } else {
                "✗ (outside tolerance)"
            }
        );
    }
    let ok = rows.iter().filter(|r| r.ok()).count();
    let _ = writeln!(out, "\n{ok}/{} within tolerance", rows.len());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_verdicts() {
        let exact = Comparison {
            quantity: "x".into(),
            paper: 8.0,
            measured: 8.0,
            tolerance: 0.1,
        };
        assert!(exact.ok());
        let close = Comparison {
            measured: 8.7,
            ..exact.clone()
        };
        assert!(close.ok());
        let far = Comparison {
            measured: 12.0,
            ..exact
        };
        assert!(!far.ok());
    }

    #[test]
    fn markdown_contains_verdicts() {
        let rows = vec![Comparison {
            quantity: "demo".into(),
            paper: 1.0,
            measured: 1.05,
            tolerance: 0.1,
        }];
        let md = render_markdown(&rows);
        assert!(md.contains("| demo | 1.00 | 1.05 | ✓ |"));
        assert!(md.contains("1/1 within tolerance"));
    }

    #[test]
    fn class_peaks_cover_all_classes() {
        let classes: Vec<_> = reference::CLASS_PEAKS.iter().map(|(c, _)| *c).collect();
        for c in WorkloadClass::ALL {
            assert!(classes.contains(&c));
        }
    }
}
