//! Extraction of the theory's parameters from simulation.
//!
//! The paper emphasises that "all of the input parameters to the theory can
//! be obtained with … at most the simulation of a single pipeline depth":
//! `N_H/N_I` and the number of instructions are enumerated, `α` and `γ` come
//! from analysing the pipeline's stall structure, and (for the clock-gated
//! theory) the switching constant κ from the power monitor. This module
//! performs exactly that extraction and assembles the corresponding
//! analytic [`PipelineModel`].

use pipedepth_core::{
    ClockGating, MetricExponent, PipelineModel, PowerParams, TechParams, WorkloadParams,
    WorkloadProfile,
};
use pipedepth_power::{extract_kappa, PowerConfig};
use pipedepth_sim::SimReport;

/// Theory parameters extracted from one simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExtractedParams {
    /// Superscalar degree `α`.
    pub alpha: f64,
    /// Hazard pipeline fraction `γ`.
    pub gamma: f64,
    /// Hazards per instruction `N_H/N_I`.
    pub hazard_rate: f64,
    /// Per-instruction switching constant κ (for the gated theory).
    pub kappa: f64,
    /// Absolute-time memory latency per instruction (FO4) — an additive
    /// component of τ the paper's model does not carry; reported so the
    /// comparison can account for it.
    pub memory_time_fo4: f64,
    /// Depth the parameters were extracted at.
    pub ref_depth: u32,
}

impl ExtractedParams {
    /// The theory's workload-parameter triple.
    pub fn workload_params(&self) -> WorkloadParams {
        WorkloadParams::new(
            self.alpha.max(1.0),
            self.gamma.clamp(1e-3, 1.0),
            self.hazard_rate.max(1e-4),
        )
    }

    /// The hazard product `α·γ·N_H/N_I`.
    pub fn hazard_product(&self) -> f64 {
        self.workload_params().hazard_product()
    }

    /// The extraction as a backend-agnostic [`WorkloadProfile`] — the
    /// analytic [`Evaluator`](pipedepth_core::Evaluator) backend's input.
    pub fn profile(&self) -> WorkloadProfile {
        WorkloadProfile {
            alpha: self.alpha,
            gamma: self.gamma,
            hazard_rate: self.hazard_rate,
            kappa: self.kappa,
            memory_time_fo4: self.memory_time_fo4,
        }
    }

    /// The reverse conversion: wraps a profile as extraction output, for
    /// curve assemblies that carry `ExtractedParams` but were produced by
    /// the analytic backend.
    pub fn from_profile(profile: &WorkloadProfile, ref_depth: u32) -> Self {
        ExtractedParams {
            alpha: profile.alpha,
            gamma: profile.gamma,
            hazard_rate: profile.hazard_rate,
            kappa: profile.kappa,
            memory_time_fo4: profile.memory_time_fo4,
            ref_depth,
        }
    }
}

/// Extracts theory parameters from a finished simulation report.
pub fn extract_from_report(report: &SimReport, power: &PowerConfig) -> ExtractedParams {
    ExtractedParams {
        alpha: report.alpha(),
        gamma: report.gamma(),
        hazard_rate: report.hazard_rate(),
        kappa: extract_kappa(report, power),
        memory_time_fo4: report.memory_time_per_instruction_fo4(),
        ref_depth: report.config.depth,
    }
}

/// Builds the analytic model corresponding to an extraction, with the given
/// gating mode and leakage calibration.
///
/// `gated = true` applies the paper's complete-gating substitution with the
/// extracted κ; `false` is the plain non-gated Eq. 3.
pub fn theory_model(
    extracted: &ExtractedParams,
    gated: bool,
    leakage_fraction: f64,
    ref_depth: f64,
    latch_growth: f64,
) -> PipelineModel {
    let tech = TechParams::paper();
    let mut power = PowerParams::with_leakage_fraction(leakage_fraction, &tech, ref_depth)
        .with_latch_growth(latch_growth);
    if gated {
        power = power.with_gating(ClockGating::Complete {
            kappa: extracted.kappa.max(1e-6),
        });
    }
    PipelineModel::new(tech, extracted.workload_params(), power)
}

/// Theory metric curve over the given depths, suitable for a scale-only fit
/// against simulation data (the paper's Figs. 4/5 overlays).
pub fn theory_curve(model: &PipelineModel, depths: &[f64], m: MetricExponent) -> Vec<f64> {
    depths.iter().map(|&p| model.metric(p, m)).collect()
}

/// Extended theory metric curve: the paper's model plus the constant
/// per-instruction memory time `t_mem` our cache-accurate substrate
/// exhibits (`τ_total = τ(p) + t_mem`). The paper's traces kept this small;
/// with real cache misses the extension is needed for faithful overlays,
/// especially on memory- and FP-bound workloads.
pub fn extended_theory_curve(
    model: &PipelineModel,
    t_mem_fo4: f64,
    depths: &[f64],
    m: MetricExponent,
) -> Vec<f64> {
    assert!(t_mem_fo4 >= 0.0, "memory time cannot be negative");
    depths
        .iter()
        .map(|&p| {
            let tau = model.perf().time_per_instruction(p) + t_mem_fo4;
            let power_params = model.power_params();
            let latches = power_params.latch_count(p);
            let switching = match power_params.gating {
                ClockGating::None => model.tech().frequency(p),
                ClockGating::Partial(f_cg) => f_cg * model.tech().frequency(p),
                ClockGating::Complete { kappa } => kappa / tau,
            };
            let power = (switching * power_params.dynamic + power_params.leakage) * latches;
            1.0 / (tau.powf(m.get()) * power)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipedepth_power::Gating;
    use pipedepth_sim::{Engine, SimConfig};
    use pipedepth_trace::{TraceGenerator, WorkloadModel};

    fn report(depth: u32) -> SimReport {
        let mut e = Engine::new(SimConfig::paper(depth));
        let mut gen = TraceGenerator::new(WorkloadModel::spec_int_like(), 42);
        e.warm_up(&mut gen, 10_000);
        e.run(&mut gen, 20_000)
    }

    fn power() -> PowerConfig {
        PowerConfig::paper(Gating::Gated, 0.15, 10)
    }

    #[test]
    fn extraction_is_physical() {
        let x = extract_from_report(&report(10), &power());
        assert!(x.alpha >= 1.0 && x.alpha <= 4.0);
        assert!(x.gamma > 0.0 && x.gamma <= 2.0);
        assert!(x.hazard_rate > 0.0 && x.hazard_rate < 1.0);
        assert!(x.kappa > 0.0);
        assert_eq!(x.ref_depth, 10);
    }

    #[test]
    fn workload_params_clamped_into_model_domain() {
        let x = ExtractedParams {
            alpha: 0.4,
            gamma: 3.0,
            hazard_rate: 0.0,
            kappa: 1.0,
            memory_time_fo4: 0.0,
            ref_depth: 10,
        };
        let w = x.workload_params();
        assert!(w.alpha >= 1.0);
        assert!(w.gamma <= 1.0);
        assert!(w.hazard_rate > 0.0);
    }

    #[test]
    fn theory_model_wires_gating() {
        let x = extract_from_report(&report(10), &power());
        let gated = theory_model(&x, true, 0.15, 10.0, 1.3);
        let ungated = theory_model(&x, false, 0.15, 10.0, 1.3);
        assert!(matches!(
            gated.power_params().gating,
            ClockGating::Complete { .. }
        ));
        assert!(matches!(ungated.power_params().gating, ClockGating::None));
    }

    #[test]
    fn extended_curve_reduces_to_plain_at_zero_tmem() {
        let x = extract_from_report(&report(10), &power());
        for gated in [false, true] {
            let model = theory_model(&x, gated, 0.15, 10.0, 1.3);
            let depths = [3.0, 8.0, 15.0];
            let plain = theory_curve(&model, &depths, MetricExponent::BIPS3_PER_WATT);
            let ext = extended_theory_curve(&model, 0.0, &depths, MetricExponent::BIPS3_PER_WATT);
            for (a, b) in plain.iter().zip(&ext) {
                assert!((a - b).abs() < 1e-12 * a.abs().max(1e-30), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn memory_time_lowers_the_extended_metric() {
        let x = extract_from_report(&report(10), &power());
        let model = theory_model(&x, true, 0.15, 10.0, 1.3);
        let depths = [8.0];
        let plain = extended_theory_curve(&model, 0.0, &depths, MetricExponent::BIPS3_PER_WATT);
        let slow = extended_theory_curve(&model, 20.0, &depths, MetricExponent::BIPS3_PER_WATT);
        assert!(slow[0] < plain[0]);
    }

    #[test]
    fn theory_curve_matches_model_pointwise() {
        let x = extract_from_report(&report(10), &power());
        let model = theory_model(&x, false, 0.15, 10.0, 1.3);
        let depths = [2.0, 7.0, 14.0];
        let ys = theory_curve(&model, &depths, MetricExponent::BIPS3_PER_WATT);
        for (p, y) in depths.iter().zip(&ys) {
            assert_eq!(*y, model.metric(*p, MetricExponent::BIPS3_PER_WATT));
        }
    }

    #[test]
    fn single_depth_extraction_predicts_other_depths_shape() {
        // The paper's claim: parameters from ONE depth give the whole curve.
        // Check the theory's τ tracks the simulated τ within a factor
        // across the range (shape, not absolute).
        let x = extract_from_report(&report(10), &power());
        let model = theory_model(&x, false, 0.15, 10.0, 1.3);
        for depth in [4u32, 8, 16, 22] {
            let sim_tau = report(depth).time_per_instruction_fo4() - x.memory_time_fo4;
            let theory_tau = model.perf().time_per_instruction(depth as f64);
            let ratio = sim_tau / theory_tau;
            assert!(
                ratio > 0.5 && ratio < 2.0,
                "depth {depth}: sim {sim_tau} vs theory {theory_tau}"
            );
        }
    }
}
