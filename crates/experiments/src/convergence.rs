//! Methodology robustness: how many instructions does a sweep need?
//!
//! The paper's results rest on finite trace samples. This study re-runs a
//! workload's sweep at increasing instruction counts and tracks how the
//! cubic-fit optimum settles, justifying the measurement sizes used by the
//! reproduction (and flagging if a future change makes the optima
//! sample-size sensitive).

use crate::figures::fig6::optimum_of;
use crate::sweep::{sweep_workload, RunConfig};
use pipedepth_workloads::Workload;
use std::fmt;

/// One sample-size point of the convergence study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConvergencePoint {
    /// Measured instructions per depth.
    pub instructions: u64,
    /// Cubic-fit BIPS³/W (gated) optimum depth.
    pub optimum_depth: f64,
    /// Extracted hazard product `α·γ·N_H/N_I`.
    pub hazard_product: f64,
}

/// Result of the convergence study.
#[derive(Debug, Clone, PartialEq)]
pub struct Convergence {
    /// Workload studied.
    pub workload_name: String,
    /// Points in ascending instruction count.
    pub points: Vec<ConvergencePoint>,
}

impl Convergence {
    /// Largest optimum-depth difference between consecutive doublings.
    pub fn max_step(&self) -> f64 {
        self.points
            .windows(2)
            .map(|w| (w[1].optimum_depth - w[0].optimum_depth).abs())
            .fold(0.0, f64::max)
    }

    /// Difference between the last two (largest) sample sizes — the
    /// residual error of the second-largest run.
    pub fn final_step(&self) -> f64 {
        self.points
            .windows(2)
            .last()
            .map(|w| (w[1].optimum_depth - w[0].optimum_depth).abs())
            .unwrap_or(0.0)
    }
}

/// Runs the study: sweeps `workload` at each instruction count (warmup
/// scales at half the measurement size).
///
/// # Panics
///
/// Panics if `sizes` is empty or not ascending.
pub fn run(workload: &Workload, base: &RunConfig, sizes: &[u64]) -> Convergence {
    assert!(!sizes.is_empty(), "need at least one sample size");
    assert!(
        sizes.windows(2).all(|w| w[1] > w[0]),
        "sample sizes must ascend"
    );
    let points = sizes
        .iter()
        .map(|&n| {
            let config = RunConfig {
                warmup: n / 2,
                instructions: n,
                ..base.clone()
            };
            let curve = sweep_workload(workload, &config);
            ConvergencePoint {
                instructions: n,
                optimum_depth: optimum_of(&curve).cubic_fit_depth,
                hazard_product: curve.extracted.hazard_product(),
            }
        })
        .collect();
    Convergence {
        workload_name: workload.name.clone(),
        points,
    }
}

impl fmt::Display for Convergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Convergence — {} (BIPS³/W gated optimum)",
            self.workload_name
        )?;
        writeln!(
            f,
            "  {:>12} {:>10} {:>10}",
            "instructions", "opt depth", "α·γ·h"
        )?;
        for p in &self.points {
            writeln!(
                f,
                "  {:>12} {:>10.2} {:>10.3}",
                p.instructions, p.optimum_depth, p.hazard_product
            )?;
        }
        writeln!(
            f,
            "  final doubling moved the optimum by {:.2} stages",
            self.final_step()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipedepth_workloads::{suite_class, WorkloadClass};

    fn study() -> Convergence {
        let w = suite_class(WorkloadClass::SpecInt)
            .into_iter()
            .next()
            .unwrap();
        let base = RunConfig {
            depths: (2..=24).step_by(2).collect(),
            ..RunConfig::default()
        };
        run(&w, &base, &[16_000, 32_000, 64_000])
    }

    #[test]
    fn optimum_settles_with_sample_size() {
        let c = study();
        assert_eq!(c.points.len(), 3);
        // The final doubling should move the optimum by under two stages —
        // the methodology is stable at the sizes the reproduction uses.
        assert!(c.final_step() < 2.0, "final step {}", c.final_step());
    }

    #[test]
    fn optima_physical_at_every_size() {
        for p in study().points {
            assert!(p.optimum_depth >= 2.0 && p.optimum_depth <= 24.0);
            assert!(p.hazard_product > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "ascend")]
    fn unsorted_sizes_rejected() {
        let w = suite_class(WorkloadClass::SpecInt)
            .into_iter()
            .next()
            .unwrap();
        let _ = run(&w, &RunConfig::default(), &[10_000, 5_000]);
    }
}
