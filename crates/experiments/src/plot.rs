//! Terminal line plots, so the regenerated figures are *visible* figures.
//!
//! Renders one or more series over a shared x axis onto a character grid,
//! one glyph per series, with y scaled to the data range. Good enough to
//! eyeball the same shapes the paper prints.

use std::fmt::Write as _;

/// A renderable chart of one or more series over a shared x axis.
///
/// # Examples
///
/// ```
/// use pipedepth_experiments::plot::Chart;
///
/// let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
/// let ys: Vec<f64> = xs.iter().map(|x| (x - 8.0) * (8.0 - x)).collect();
/// let chart = Chart::new(&xs)
///     .series('o', &ys)
///     .size(40, 10);
/// let art = chart.render();
/// assert!(art.contains('o'));
/// ```
#[derive(Debug, Clone)]
pub struct Chart {
    xs: Vec<f64>,
    series: Vec<(char, Vec<f64>)>,
    width: usize,
    height: usize,
}

impl Chart {
    /// Starts a chart over the given x values.
    ///
    /// # Panics
    ///
    /// Panics if `xs` has fewer than two points or is not strictly
    /// increasing.
    pub fn new(xs: &[f64]) -> Self {
        assert!(xs.len() >= 2, "a chart needs at least two points");
        assert!(
            xs.windows(2).all(|w| w[1] > w[0]),
            "x values must be strictly increasing"
        );
        Chart {
            xs: xs.to_vec(),
            series: Vec::new(),
            width: 64,
            height: 16,
        }
    }

    /// Adds a series drawn with the given glyph (builder style).
    ///
    /// # Panics
    ///
    /// Panics if the series length differs from the x axis.
    pub fn series(mut self, glyph: char, ys: &[f64]) -> Self {
        assert_eq!(ys.len(), self.xs.len(), "series length mismatch");
        self.series.push((glyph, ys.to_vec()));
        self
    }

    /// Sets the plot area size in characters (builder style).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is below 8 (nothing readable fits).
    pub fn size(mut self, width: usize, height: usize) -> Self {
        assert!(width >= 8 && height >= 8, "chart too small to read");
        self.width = width;
        self.height = height;
        self
    }

    /// Renders the chart.
    ///
    /// # Panics
    ///
    /// Panics if no series was added.
    pub fn render(&self) -> String {
        assert!(!self.series.is_empty(), "chart has no series");
        let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
        for (_, ys) in &self.series {
            for &y in ys {
                y_min = y_min.min(y);
                y_max = y_max.max(y);
            }
        }
        if y_max == y_min {
            y_max = y_min + 1.0;
        }
        let x_min = self.xs[0];
        let x_max = *self.xs.last().expect("xs non-empty");

        let mut grid = vec![vec![' '; self.width]; self.height];
        for (glyph, ys) in &self.series {
            for (&x, &y) in self.xs.iter().zip(ys) {
                let col =
                    ((x - x_min) / (x_max - x_min) * (self.width - 1) as f64).round() as usize;
                let row_f = (y - y_min) / (y_max - y_min) * (self.height - 1) as f64;
                let row = self.height - 1 - row_f.round() as usize;
                grid[row][col] = *glyph;
            }
        }

        let mut out = String::new();
        for (i, row) in grid.iter().enumerate() {
            let label = if i == 0 {
                format!("{y_max:>9.3e}")
            } else if i == self.height - 1 {
                format!("{y_min:>9.3e}")
            } else {
                " ".repeat(9)
            };
            let _ = writeln!(out, "{label} |{}", row.iter().collect::<String>());
        }
        let _ = writeln!(out, "{} +{}", " ".repeat(9), "-".repeat(self.width));
        let _ = writeln!(
            out,
            "{} {:<10.1}{:>width$.1}",
            " ".repeat(9),
            x_min,
            x_max,
            width = self.width - 10
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xs() -> Vec<f64> {
        (2..=25).map(|i| i as f64).collect()
    }

    #[test]
    fn renders_all_glyphs() {
        let x = xs();
        let a: Vec<f64> = x.iter().map(|v| v * v).collect();
        let b: Vec<f64> = x.iter().map(|v| 600.0 - v * v).collect();
        let art = Chart::new(&x).series('g', &a).series('u', &b).render();
        assert!(art.contains('g'));
        assert!(art.contains('u'));
    }

    #[test]
    fn peak_is_high_on_the_grid() {
        let x = xs();
        let ys: Vec<f64> = x.iter().map(|&v| -(v - 8.0) * (v - 8.0)).collect();
        let art = Chart::new(&x).series('*', &ys).size(48, 12).render();
        // The first body line (max label) must contain the peak glyph.
        let first = art.lines().next().unwrap();
        assert!(first.contains('*'), "peak not at top: {art}");
    }

    #[test]
    fn axis_labels_present() {
        let x = xs();
        let ys = vec![1.0; x.len()];
        let art = Chart::new(&x).series('#', &ys).render();
        assert!(art.contains("2.0"));
        assert!(art.contains("25.0"));
    }

    #[test]
    fn flat_series_does_not_divide_by_zero() {
        let x = xs();
        let ys = vec![5.0; x.len()];
        let art = Chart::new(&x).series('#', &ys).render();
        assert!(art.contains('#'));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_x_rejected() {
        let _ = Chart::new(&[1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn ragged_series_rejected() {
        let _ = Chart::new(&[1.0, 2.0]).series('a', &[1.0]);
    }

    #[test]
    #[should_panic(expected = "no series")]
    fn empty_chart_rejected() {
        let _ = Chart::new(&[1.0, 2.0]).render();
    }
}
