//! Terminal line plots, so the regenerated figures are *visible* figures.
//!
//! Renders one or more series over a shared x axis onto a character grid,
//! one glyph per series, with y scaled to the data range. Good enough to
//! eyeball the same shapes the paper prints.
//!
//! Invalid input (too few points, unsorted x, ragged series) never panics:
//! the chart degrades to a one-line placeholder naming the defect, so a
//! bad series cannot take down a whole report run.

use std::fmt::Write as _;

/// A renderable chart of one or more series over a shared x axis.
///
/// # Examples
///
/// ```
/// use pipedepth_experiments::plot::Chart;
///
/// let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
/// let ys: Vec<f64> = xs.iter().map(|x| (x - 8.0) * (8.0 - x)).collect();
/// let chart = Chart::new(&xs)
///     .series('o', &ys)
///     .size(40, 10);
/// let art = chart.render();
/// assert!(art.contains('o'));
/// ```
#[derive(Debug, Clone)]
pub struct Chart {
    xs: Vec<f64>,
    series: Vec<(char, Vec<f64>)>,
    width: usize,
    height: usize,
    defect: Option<String>,
}

impl Chart {
    /// Starts a chart over the given x values. An empty, single-point or
    /// non-increasing axis is recorded as a defect and surfaces as a
    /// placeholder from [`Chart::render`] instead of panicking.
    pub fn new(xs: &[f64]) -> Self {
        let defect = if xs.len() < 2 {
            Some(format!("need at least two x points, got {}", xs.len()))
        } else if !xs.windows(2).all(|w| w[1] > w[0]) {
            Some("x values must be strictly increasing".to_string())
        } else {
            None
        };
        Chart {
            xs: xs.to_vec(),
            series: Vec::new(),
            width: 64,
            height: 16,
            defect,
        }
    }

    /// True when the chart can be drawn as configured so far.
    pub fn is_renderable(&self) -> bool {
        self.defect.is_none()
    }

    /// Adds a series drawn with the given glyph (builder style). A length
    /// mismatch against the x axis is recorded as a defect.
    pub fn series(mut self, glyph: char, ys: &[f64]) -> Self {
        if ys.len() != self.xs.len() && self.defect.is_none() {
            self.defect = Some(format!(
                "series {glyph:?} length mismatch: {} values over {} x points",
                ys.len(),
                self.xs.len()
            ));
        }
        self.series.push((glyph, ys.to_vec()));
        self
    }

    /// Sets the plot area size in characters (builder style). Dimensions
    /// below 8 are recorded as a defect (nothing readable fits).
    pub fn size(mut self, width: usize, height: usize) -> Self {
        if (width < 8 || height < 8) && self.defect.is_none() {
            self.defect = Some(format!("chart area {width}x{height} too small to read"));
        }
        self.width = width;
        self.height = height;
        self
    }

    /// Renders the chart, or a one-line `[chart unavailable: …]`
    /// placeholder when the input was defective or no series was added.
    pub fn render(&self) -> String {
        if let Some(defect) = &self.defect {
            return format!("[chart unavailable: {defect}]\n");
        }
        if self.series.is_empty() {
            return "[chart unavailable: no series to draw]\n".to_string();
        }
        // f64::min/max skip NaN operands, so scan for non-finite values
        // explicitly before trusting the computed range.
        let mut non_finite = false;
        let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
        for (_, ys) in &self.series {
            for &y in ys {
                non_finite |= !y.is_finite();
                y_min = y_min.min(y);
                y_max = y_max.max(y);
            }
        }
        if non_finite {
            return "[chart unavailable: series has non-finite values]\n".to_string();
        }
        if y_max == y_min {
            y_max = y_min + 1.0;
        }
        let x_min = self.xs[0];
        let x_max = *self.xs.last().expect("xs non-empty");

        let mut grid = vec![vec![' '; self.width]; self.height];
        for (glyph, ys) in &self.series {
            for (&x, &y) in self.xs.iter().zip(ys) {
                let col =
                    ((x - x_min) / (x_max - x_min) * (self.width - 1) as f64).round() as usize;
                let row_f = (y - y_min) / (y_max - y_min) * (self.height - 1) as f64;
                let row = self.height - 1 - row_f.round() as usize;
                grid[row][col] = *glyph;
            }
        }

        let mut out = String::new();
        for (i, row) in grid.iter().enumerate() {
            let label = if i == 0 {
                format!("{y_max:>9.3e}")
            } else if i == self.height - 1 {
                format!("{y_min:>9.3e}")
            } else {
                " ".repeat(9)
            };
            let _ = writeln!(out, "{label} |{}", row.iter().collect::<String>());
        }
        let _ = writeln!(out, "{} +{}", " ".repeat(9), "-".repeat(self.width));
        let _ = writeln!(
            out,
            "{} {:<10.1}{:>width$.1}",
            " ".repeat(9),
            x_min,
            x_max,
            width = self.width - 10
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xs() -> Vec<f64> {
        (2..=25).map(|i| i as f64).collect()
    }

    #[test]
    fn renders_all_glyphs() {
        let x = xs();
        let a: Vec<f64> = x.iter().map(|v| v * v).collect();
        let b: Vec<f64> = x.iter().map(|v| 600.0 - v * v).collect();
        let art = Chart::new(&x).series('g', &a).series('u', &b).render();
        assert!(art.contains('g'));
        assert!(art.contains('u'));
    }

    #[test]
    fn peak_is_high_on_the_grid() {
        let x = xs();
        let ys: Vec<f64> = x.iter().map(|&v| -(v - 8.0) * (v - 8.0)).collect();
        let art = Chart::new(&x).series('*', &ys).size(48, 12).render();
        // The first body line (max label) must contain the peak glyph.
        let first = art.lines().next().unwrap();
        assert!(first.contains('*'), "peak not at top: {art}");
    }

    #[test]
    fn axis_labels_present() {
        let x = xs();
        let ys = vec![1.0; x.len()];
        let art = Chart::new(&x).series('#', &ys).render();
        assert!(art.contains("2.0"));
        assert!(art.contains("25.0"));
    }

    #[test]
    fn flat_series_does_not_divide_by_zero() {
        let x = xs();
        let ys = vec![5.0; x.len()];
        let art = Chart::new(&x).series('#', &ys).render();
        assert!(art.contains('#'));
    }

    #[test]
    fn unsorted_x_degrades_to_placeholder() {
        let chart = Chart::new(&[1.0, 1.0]);
        assert!(!chart.is_renderable());
        let art = chart.series('a', &[1.0, 2.0]).render();
        assert!(
            art.contains("chart unavailable") && art.contains("strictly increasing"),
            "{art}"
        );
    }

    #[test]
    fn short_axis_degrades_to_placeholder() {
        let art = Chart::new(&[1.0]).series('a', &[1.0]).render();
        assert!(art.contains("at least two x points"), "{art}");
    }

    #[test]
    fn ragged_series_degrades_to_placeholder() {
        let chart = Chart::new(&[1.0, 2.0]).series('a', &[1.0]);
        assert!(!chart.is_renderable());
        let art = chart.render();
        assert!(art.contains("length mismatch"), "{art}");
    }

    #[test]
    fn empty_chart_degrades_to_placeholder() {
        let art = Chart::new(&[1.0, 2.0]).render();
        assert!(art.contains("no series to draw"), "{art}");
    }

    #[test]
    fn tiny_size_degrades_to_placeholder() {
        let art = Chart::new(&[1.0, 2.0])
            .series('a', &[1.0, 2.0])
            .size(4, 4)
            .render();
        assert!(art.contains("too small"), "{art}");
    }

    #[test]
    fn non_finite_series_degrades_to_placeholder() {
        let art = Chart::new(&[1.0, 2.0])
            .series('a', &[f64::NAN, 1.0])
            .render();
        assert!(art.contains("non-finite"), "{art}");
    }

    #[test]
    fn valid_charts_stay_renderable() {
        assert!(Chart::new(&[1.0, 2.0])
            .series('a', &[1.0, 2.0])
            .is_renderable());
    }
}
