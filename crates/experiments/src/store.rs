//! The persistent evaluation store behind `--store`: warm-starts a run
//! from the snapshots a previous run published.
//!
//! [`RunStore`] is the experiments-side owner of two `pipedepth-store`
//! namespaces under one directory:
//!
//! * `sim_reports` — every finished simulation cell, as a
//!   ([`CellSpec`], [`SimReport`]) record. Loaded records become the
//!   *warm tier* of the runner's
//!   [`TieredCache`](pipedepth_core::eval::TieredCache): memory misses
//!   probe the decoded image and promote hits, so previously computed
//!   cells skip simulation entirely.
//! * `annotations` — the depth-invariant annotate-once columns, as an
//!   ([`AnnotationKey`], [`AnnotatedTrace`]) record, so warm sweep
//!   groups also skip the annotate pass.
//!
//! Keys follow the store's invalidation discipline: each namespace is
//! versioned by its record codec ([`REPORTS_SCHEMA`],
//! [`ANNOTATIONS_SCHEMA`]), by the crate version, and by the run-config
//! digest ([`crate::manifest::config_digest`]) — a snapshot from a
//! different code version or run configuration degrades to a cold start,
//! never to a wrong answer. Decoded specs are full structs, so even a
//! hash collision inside a valid snapshot resolves by `PartialEq`
//! exactly as in the in-memory cache.
//!
//! Publishing is write-behind: `flush_*` snapshots the entries on the
//! calling thread (no locks held — the cache's `entries()` drops its
//! shard guards before returning) and hands encoding plus the atomic
//! temp-file-and-rename publish to the store's [`Flusher`] worker, so
//! the hot loop never blocks on I/O. [`RunStore::finish`] drains the
//! worker and returns the deterministic [`StoreStats`] the manifest
//! records.

use crate::manifest::config_digest;
use crate::runner::{CacheStats, CellSpec, SimCache};
use crate::sweep::RunConfig;
use pipedepth_sim::{AnnotatedTrace, AnnotationKey, SimReport};
use pipedepth_store::{
    load_records, publish_records, Blob, ByteReader, ByteWriter, DecodeError, Flusher, LoadOutcome,
    NamespaceSpec,
};
use pipedepth_telemetry::{Stopwatch, Telemetry, DEFAULT_TIME_BUCKETS_US};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Record-codec version of the `sim_reports` namespace. Bump whenever the
/// [`CellSpec`] or [`SimReport`] field lists change shape.
pub const REPORTS_SCHEMA: u32 = 1;

/// Record-codec version of the `annotations` namespace. Bump whenever the
/// [`AnnotationKey`] or [`AnnotatedTrace`] field lists change shape.
pub const ANNOTATIONS_SCHEMA: u32 = 1;

/// Code-version key stamped into every snapshot header; snapshots from a
/// different build degrade to a cold start.
const CODE_VERSION: &str = env!("CARGO_PKG_VERSION");

// A cell spec persists as its full field list (model and machine through
// their own codecs), so a decoded spec compares equal to the original
// and reproduces the same `CellSpec::key`.
impl Blob for CellSpec {
    fn encode(&self, w: &mut ByteWriter) {
        self.model.encode(w);
        w.put_u64(self.trace_seed);
        self.sim.encode(w);
        w.put_u64(self.warmup).put_u64(self.instructions);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(CellSpec {
            model: Blob::decode(r)?,
            trace_seed: r.take_u64()?,
            sim: Blob::decode(r)?,
            warmup: r.take_u64()?,
            instructions: r.take_u64()?,
        })
    }
}

fn report_record(spec: &CellSpec, report: &SimReport) -> Vec<u8> {
    let mut w = ByteWriter::new();
    spec.encode(&mut w);
    report.encode(&mut w);
    w.into_bytes()
}

fn decode_report_record(bytes: &[u8]) -> Result<(CellSpec, SimReport), DecodeError> {
    let mut r = ByteReader::new(bytes);
    let spec = CellSpec::decode(&mut r)?;
    let report = SimReport::decode(&mut r)?;
    r.finish()?;
    Ok((spec, report))
}

fn annotation_record(key: &AnnotationKey, notes: &AnnotatedTrace) -> Vec<u8> {
    let mut w = ByteWriter::new();
    key.encode(&mut w);
    notes.encode(&mut w);
    w.into_bytes()
}

fn decode_annotation_record(bytes: &[u8]) -> Result<(AnnotationKey, AnnotatedTrace), DecodeError> {
    let mut r = ByteReader::new(bytes);
    let key = AnnotationKey::decode(&mut r)?;
    let notes = AnnotatedTrace::decode(&mut r)?;
    r.finish()?;
    Ok((key, notes))
}

/// Deterministic end-of-run counters of one [`RunStore`], recorded in the
/// manifest's `store` section.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Cells served from the loaded snapshot instead of simulation
    /// (warm-tier hits).
    pub hits: u64,
    /// Warm-tier probes nothing could serve.
    pub misses: u64,
    /// Report records decoded from a valid snapshot at startup.
    pub reports_loaded: u64,
    /// Annotation records decoded from a valid snapshot at startup.
    pub annotations_loaded: u64,
    /// Namespaces rejected at startup (corruption or version skew; a
    /// simply missing file does not count).
    pub invalid: u64,
    /// Snapshots published.
    pub flushes: u64,
    /// Records across all published snapshots.
    pub records_flushed: u64,
}

/// The persistent store of one run: loads snapshots at startup, publishes
/// them write-behind while the run progresses.
pub struct RunStore {
    dir: PathBuf,
    digest: u64,
    telemetry: Telemetry,
    flusher: Flusher,
    // Flush-side counters live behind `Arc`s because they are incremented
    // on the flusher thread; `finish` reads them only after the drain.
    flushes: Arc<AtomicU64>,
    records_flushed: Arc<AtomicU64>,
    reports_loaded: u64,
    annotations_loaded: u64,
    invalid: u64,
    warm: CacheStats,
    // High-water marks for the growth-gated flush paths: the largest
    // entry count already on disk (seeded by `load_*`, advanced by
    // `flush_*_if_grown`). Republishing an unchanged snapshot costs a
    // full re-encode for zero new durability, so a fully warm run—whose
    // caches only ever re-fill to the loaded size—publishes nothing.
    reports_high: u64,
    annotations_high: u64,
}

impl std::fmt::Debug for RunStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunStore")
            .field("dir", &self.dir)
            .field("digest", &self.digest)
            .field("reports_loaded", &self.reports_loaded)
            .field("annotations_loaded", &self.annotations_loaded)
            .field("invalid", &self.invalid)
            .finish_non_exhaustive()
    }
}

impl RunStore {
    /// Opens the store rooted at `dir` for a run of `config`. Registers
    /// every `store.*` counter immediately, so cold and warm runs emit
    /// the same metric-name set.
    pub fn open(dir: &Path, config: &RunConfig, telemetry: &Telemetry) -> Self {
        for name in [
            "store.hits",
            "store.misses",
            "store.reports_loaded",
            "store.annotations_loaded",
            "store.invalid",
            "store.flushes",
            "store.records_flushed",
        ] {
            telemetry.counter(name).add(0);
        }
        RunStore {
            dir: dir.to_path_buf(),
            digest: config_digest(config),
            telemetry: telemetry.clone(),
            flusher: Flusher::new(),
            flushes: Arc::new(AtomicU64::new(0)),
            records_flushed: Arc::new(AtomicU64::new(0)),
            reports_loaded: 0,
            annotations_loaded: 0,
            invalid: 0,
            warm: CacheStats::default(),
            reports_high: 0,
            annotations_high: 0,
        }
    }

    fn reports_spec(&self) -> NamespaceSpec<'_> {
        NamespaceSpec {
            name: "sim_reports",
            schema_version: REPORTS_SCHEMA,
            code_version: CODE_VERSION,
            config_digest: self.digest,
        }
    }

    fn annotations_spec(&self) -> NamespaceSpec<'_> {
        NamespaceSpec {
            name: "annotations",
            schema_version: ANNOTATIONS_SCHEMA,
            code_version: CODE_VERSION,
            config_digest: self.digest,
        }
    }

    /// Counts one rejected namespace (anything but a plainly missing
    /// file): corruption or version skew, degraded to a cold start.
    fn count_invalid(&mut self, reason: &pipedepth_store::InvalidReason) {
        if !reason.is_missing() {
            self.invalid += 1;
            self.telemetry.counter("store.invalid").inc();
        }
    }

    /// Loads the `sim_reports` snapshot into a warm-tier image. A missing
    /// file, a rejected header or checksum, or any undecodable record
    /// yields an empty image — a cold start, never a partial or wrong one.
    pub fn load_reports(&mut self) -> SimCache {
        let start = Stopwatch::start();
        let warm = SimCache::new();
        match load_records(&self.dir, &self.reports_spec()) {
            LoadOutcome::Warm(records) => {
                match records
                    .iter()
                    .map(|r| decode_report_record(r))
                    .collect::<Result<Vec<_>, _>>()
                {
                    Ok(entries) => {
                        self.reports_loaded = entries.len() as u64;
                        self.reports_high = self.reports_loaded;
                        self.telemetry
                            .counter("store.reports_loaded")
                            .add(self.reports_loaded);
                        for (spec, report) in entries {
                            warm.insert(spec.key(), spec, Arc::new(report));
                        }
                    }
                    // A record that passed every checksum but fails the
                    // codec is version skew the header keys missed.
                    Err(_) => {
                        self.invalid += 1;
                        self.telemetry.counter("store.invalid").inc();
                    }
                }
            }
            LoadOutcome::Cold(reason) => self.count_invalid(&reason),
        }
        self.telemetry
            .histogram("store.load_us", &DEFAULT_TIME_BUCKETS_US)
            .record(start.elapsed_us());
        warm
    }

    /// Loads the `annotations` snapshot; same degradation rules as
    /// [`load_reports`](Self::load_reports).
    pub fn load_annotations(&mut self) -> Vec<(AnnotationKey, Arc<AnnotatedTrace>)> {
        let start = Stopwatch::start();
        let mut seeds = Vec::new();
        match load_records(&self.dir, &self.annotations_spec()) {
            LoadOutcome::Warm(records) => {
                match records
                    .iter()
                    .map(|r| decode_annotation_record(r))
                    .collect::<Result<Vec<_>, _>>()
                {
                    Ok(entries) => {
                        self.annotations_loaded = entries.len() as u64;
                        self.annotations_high = self.annotations_loaded;
                        self.telemetry
                            .counter("store.annotations_loaded")
                            .add(self.annotations_loaded);
                        seeds = entries
                            .into_iter()
                            .map(|(key, notes)| (key, Arc::new(notes)))
                            .collect();
                    }
                    Err(_) => {
                        self.invalid += 1;
                        self.telemetry.counter("store.invalid").inc();
                    }
                }
            }
            LoadOutcome::Cold(reason) => self.count_invalid(&reason),
        }
        self.telemetry
            .histogram("store.load_us", &DEFAULT_TIME_BUCKETS_US)
            .record(start.elapsed_us());
        seeds
    }

    /// Publishes a snapshot of finished cells, write-behind. The entries
    /// were already snapshotted by the caller; encoding and the atomic
    /// publish happen on the flusher thread.
    pub fn flush_reports(&self, entries: Vec<(CellSpec, Arc<SimReport>)>) {
        let dir = self.dir.clone();
        let digest = self.digest;
        let telemetry = self.telemetry.clone();
        let flushes = Arc::clone(&self.flushes);
        let records_flushed = Arc::clone(&self.records_flushed);
        self.flusher.submit(move || {
            let start = Stopwatch::start();
            let records: Vec<Vec<u8>> = entries
                .iter()
                .map(|(spec, report)| report_record(spec, report))
                .collect();
            let spec = NamespaceSpec {
                name: "sim_reports",
                schema_version: REPORTS_SCHEMA,
                code_version: CODE_VERSION,
                config_digest: digest,
            };
            if publish_records(&dir, &spec, &records).is_ok() {
                flushes.fetch_add(1, Ordering::Relaxed);
                records_flushed.fetch_add(records.len() as u64, Ordering::Relaxed);
                telemetry.counter("store.flushes").inc();
                telemetry
                    .counter("store.records_flushed")
                    .add(records.len() as u64);
            }
            telemetry
                .histogram("store.flush_us", &DEFAULT_TIME_BUCKETS_US)
                .record(start.elapsed_us());
        });
    }

    /// [`flush_reports`](Self::flush_reports), gated on growth: publishes
    /// only when `entries` holds more cells than the largest snapshot
    /// already on disk. The per-phase republish discipline then costs
    /// nothing on phases that added no cells — and a fully warm run
    /// publishes nothing at all.
    pub fn flush_reports_if_grown(&mut self, entries: Vec<(CellSpec, Arc<SimReport>)>) {
        if (entries.len() as u64) > self.reports_high {
            self.reports_high = entries.len() as u64;
            self.flush_reports(entries);
        }
    }

    /// Publishes a snapshot of resident annotations, write-behind.
    pub fn flush_annotations(&self, entries: Vec<(AnnotationKey, Arc<AnnotatedTrace>)>) {
        let dir = self.dir.clone();
        let digest = self.digest;
        let telemetry = self.telemetry.clone();
        let flushes = Arc::clone(&self.flushes);
        let records_flushed = Arc::clone(&self.records_flushed);
        self.flusher.submit(move || {
            let start = Stopwatch::start();
            let records: Vec<Vec<u8>> = entries
                .iter()
                .map(|(key, notes)| annotation_record(key, notes))
                .collect();
            let spec = NamespaceSpec {
                name: "annotations",
                schema_version: ANNOTATIONS_SCHEMA,
                code_version: CODE_VERSION,
                config_digest: digest,
            };
            if publish_records(&dir, &spec, &records).is_ok() {
                flushes.fetch_add(1, Ordering::Relaxed);
                records_flushed.fetch_add(records.len() as u64, Ordering::Relaxed);
                telemetry.counter("store.flushes").inc();
                telemetry
                    .counter("store.records_flushed")
                    .add(records.len() as u64);
            }
            telemetry
                .histogram("store.flush_us", &DEFAULT_TIME_BUCKETS_US)
                .record(start.elapsed_us());
        });
    }

    /// [`flush_annotations`](Self::flush_annotations), gated on growth —
    /// same discipline as [`flush_reports_if_grown`](Self::flush_reports_if_grown),
    /// and the bigger win: annotations dominate snapshot bytes by two
    /// orders of magnitude.
    pub fn flush_annotations_if_grown(
        &mut self,
        entries: Vec<(AnnotationKey, Arc<AnnotatedTrace>)>,
    ) {
        if (entries.len() as u64) > self.annotations_high {
            self.annotations_high = entries.len() as u64;
            self.flush_annotations(entries);
        }
    }

    /// Records the warm-tier probe counters of the finished run (from
    /// [`Runner::warm_report_stats`](crate::runner::Runner::warm_report_stats)).
    pub fn record_warm(&mut self, stats: Option<CacheStats>) {
        if let Some(stats) = stats {
            self.warm = stats;
        }
        self.telemetry.counter("store.hits").add(self.warm.hits);
        self.telemetry.counter("store.misses").add(self.warm.misses);
    }

    /// Drains every pending flush and returns the run's store counters.
    /// Call *before* snapshotting telemetry, so the manifest sees the
    /// final flush metrics.
    pub fn finish(mut self) -> StoreStats {
        self.flusher.shutdown();
        StoreStats {
            hits: self.warm.hits,
            misses: self.warm.misses,
            reports_loaded: self.reports_loaded,
            annotations_loaded: self.annotations_loaded,
            invalid: self.invalid,
            flushes: self.flushes.load(Ordering::Relaxed),
            records_flushed: self.records_flushed.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::Runner;
    use pipedepth_sim::{annotate, SimConfig};
    use pipedepth_telemetry::Telemetry;
    use pipedepth_trace::{TraceGenerator, TraceRequest, WorkloadModel};
    use pipedepth_workloads::representatives;
    use std::sync::atomic::AtomicU32;

    /// A fresh scratch directory per test (std-only; no tempdir crate).
    fn scratch(tag: &str) -> PathBuf {
        static NEXT: AtomicU32 = AtomicU32::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "pipedepth-store-test-{}-{tag}-{n}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        dir
    }

    fn tiny() -> RunConfig {
        RunConfig {
            warmup: 1_000,
            instructions: 2_000,
            depths: vec![4, 8, 12],
            ..RunConfig::default()
        }
    }

    #[test]
    fn cell_specs_round_trip_with_keys() {
        let spec = CellSpec::new(&representatives()[0], SimConfig::paper(14), 500, 1_500);
        let decoded = CellSpec::from_record(&spec.to_record()).expect("decodes");
        assert_eq!(decoded, spec);
        assert_eq!(decoded.key(), spec.key());
    }

    #[test]
    fn warm_run_reuses_every_cell_and_annotation() {
        let dir = scratch("warm");
        let cfg = tiny();
        let telemetry = Telemetry::disabled();
        let ws = representatives();

        // Cold run: simulate, then snapshot.
        let cold = Runner::serial();
        let curves = cold.sweep_all(&ws, &cfg);
        let mut store = RunStore::open(&dir, &cfg, &telemetry);
        assert!(store.load_reports().is_empty(), "first run starts cold");
        store.flush_reports(cold.export_reports());
        store.flush_annotations(cold.export_annotations());
        let stats = store.finish();
        assert_eq!(stats.flushes, 2);
        assert_eq!(stats.invalid, 0);
        let cells = (ws.len() * cfg.depths.len()) as u64;
        assert_eq!(stats.records_flushed, cells + ws.len() as u64);

        // Warm run: every cell comes from the store, bit-identically.
        let mut store = RunStore::open(&dir, &cfg, &telemetry);
        let warm_image = store.load_reports();
        let seeds = store.load_annotations();
        assert_eq!(warm_image.len() as u64, cells);
        assert_eq!(seeds.len(), ws.len());
        let warm = Runner::serial().with_warm_reports(warm_image);
        assert_eq!(warm.seed_annotations(seeds), ws.len() as u64);
        let again = warm.sweep_all(&ws, &cfg);
        assert_eq!(curves, again, "warm results must be bit-identical");
        let probes = warm.warm_report_stats().expect("warm tier attached");
        assert_eq!(probes.hits, cells, "every cell served from disk");
        assert_eq!(probes.misses, 0);
        assert_eq!(warm.annotation_stats().misses, 0, "annotations seeded");
        store.record_warm(warm.warm_report_stats());
        let stats = store.finish();
        assert_eq!(stats.hits, cells);
        assert_eq!(stats.reports_loaded, cells);
        assert_eq!(stats.annotations_loaded, ws.len() as u64);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn config_change_degrades_to_cold_start() {
        let dir = scratch("skew");
        let cfg = tiny();
        let telemetry = Telemetry::disabled();
        let runner = Runner::serial();
        runner.sweep_all(&representatives(), &cfg);
        let store = RunStore::open(&dir, &cfg, &telemetry);
        store.flush_reports(runner.export_reports());
        store.finish();

        // A different run configuration must not read the snapshot.
        let other = RunConfig {
            instructions: cfg.instructions + 1,
            ..cfg.clone()
        };
        let mut store = RunStore::open(&dir, &other, &telemetry);
        assert!(store.load_reports().is_empty());
        let stats = store.finish();
        assert_eq!(stats.reports_loaded, 0);
        assert_eq!(stats.invalid, 1, "digest skew is a counted rejection");

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_store_is_a_quiet_cold_start() {
        let dir = scratch("missing");
        let mut store = RunStore::open(&dir, &tiny(), &Telemetry::disabled());
        assert!(store.load_reports().is_empty());
        assert!(store.load_annotations().is_empty());
        let stats = store.finish();
        assert_eq!(stats.invalid, 0, "a missing file is not a rejection");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn annotation_records_round_trip_through_the_store() {
        let dir = scratch("notes");
        let cfg = tiny();
        let telemetry = Telemetry::disabled();
        let sim = SimConfig::paper(8);
        let model = WorkloadModel::spec_int_like();
        let trace = TraceGenerator::new(model, 7).take_vec(3_000);
        let notes = annotate(&trace, sim.cache, sim.predictor).expect("valid config");
        let key = AnnotationKey {
            trace_key: TraceRequest {
                model,
                seed: 7,
                len: 3_000,
            }
            .key(),
            len: 3_000,
            cache: sim.cache,
            predictor: sim.predictor,
        };
        let store = RunStore::open(&dir, &cfg, &telemetry);
        store.flush_annotations(vec![(key, Arc::new(notes.clone()))]);
        store.finish();

        let mut store = RunStore::open(&dir, &cfg, &telemetry);
        let seeds = store.load_annotations();
        store.finish();
        assert_eq!(seeds.len(), 1);
        assert_eq!(seeds[0].0, key);
        assert_eq!(*seeds[0].1, notes);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
