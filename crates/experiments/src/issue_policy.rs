//! The in-order vs out-of-order study.
//!
//! The paper simulates an in-order machine and argues (citing Hartstein &
//! Puzak, ISCA 2002) that "only minor differences in the pipeline depth
//! optimization" separate in-order from out-of-order execution, and that
//! "these differences could be accounted for by changes in the superscaling
//! parameter α and the pipeline hazard parameter γ". This study runs both
//! issue policies over representative workloads and checks exactly that:
//! how far the optima move, and whether the extracted α/γ shifts explain
//! the movement through the theory.

use crate::extract::theory_model;
use crate::figures::fig6::optimum_of;
use crate::runner::Runner;
use crate::sweep::RunConfig;
use pipedepth_core::{numeric_optimum, MetricExponent};
use pipedepth_sim::{Features, IssuePolicy, SimConfig};
use pipedepth_workloads::{representatives, Workload};
use std::fmt;

/// One workload's in-order vs out-of-order comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyComparison {
    /// Workload name.
    pub workload_name: String,
    /// In-order cubic-fit optimum (BIPS³/W, gated).
    pub inorder_optimum: f64,
    /// Out-of-order cubic-fit optimum.
    pub ooo_optimum: f64,
    /// In-order extracted (α, γ).
    pub inorder_params: (f64, f64),
    /// Out-of-order extracted (α, γ).
    pub ooo_params: (f64, f64),
    /// Theory optimum predicted from the in-order extraction.
    pub theory_from_inorder: f64,
    /// Theory optimum predicted from the OoO extraction.
    pub theory_from_ooo: f64,
}

impl PolicyComparison {
    /// Shift of the simulated optimum caused by going out of order.
    pub fn optimum_shift(&self) -> f64 {
        self.ooo_optimum - self.inorder_optimum
    }

    /// Shift of the theory optimum once the OoO α/γ are plugged in — the
    /// paper's claim is that this accounts for the simulated shift.
    pub fn theory_shift(&self) -> f64 {
        self.theory_from_ooo - self.theory_from_inorder
    }
}

/// Result of the issue-policy study.
#[derive(Debug, Clone, PartialEq)]
pub struct IssuePolicyStudy {
    /// Per-workload comparisons.
    pub comparisons: Vec<PolicyComparison>,
}

/// Runs the study over the given workloads on a shared runner: the
/// in-order arm is the paper machine, so it reuses any cached suite cells.
pub fn run_for_with(
    runner: &Runner,
    workloads: &[Workload],
    config: &RunConfig,
) -> IssuePolicyStudy {
    let comparisons = workloads
        .iter()
        .map(|w| {
            let inorder = runner.sweep_workload_with(w, config, SimConfig::paper);
            let ooo = runner.sweep_workload_with(w, config, |depth| {
                SimConfig::paper(depth).with_features(Features {
                    issue: IssuePolicy::OutOfOrder,
                    ..Features::default()
                })
            });
            let theory_opt = |x: &crate::extract::ExtractedParams| {
                numeric_optimum(
                    &theory_model(
                        x,
                        true,
                        config.leakage_fraction,
                        config.ref_depth as f64,
                        1.3,
                    ),
                    MetricExponent::BIPS3_PER_WATT,
                )
                .depth()
                .unwrap_or(1.0)
            };
            PolicyComparison {
                workload_name: w.name.clone(),
                inorder_optimum: optimum_of(&inorder).cubic_fit_depth,
                ooo_optimum: optimum_of(&ooo).cubic_fit_depth,
                inorder_params: (inorder.extracted.alpha, inorder.extracted.gamma),
                ooo_params: (ooo.extracted.alpha, ooo.extracted.gamma),
                theory_from_inorder: theory_opt(&inorder.extracted),
                theory_from_ooo: theory_opt(&ooo.extracted),
            }
        })
        .collect();
    IssuePolicyStudy { comparisons }
}

/// Runs the study over the given workloads with a private serial runner.
pub fn run_for(workloads: &[Workload], config: &RunConfig) -> IssuePolicyStudy {
    run_for_with(&Runner::serial(), workloads, config)
}

/// Runs the study over the four representative workloads.
pub fn run(config: &RunConfig) -> IssuePolicyStudy {
    run_for(&representatives(), config)
}

/// Registry spec: the in-order vs out-of-order comparison over the
/// representative workloads.
#[derive(Debug)]
pub struct Spec;

impl crate::experiment::Experiment for Spec {
    fn name(&self) -> &'static str {
        "issue_policy"
    }

    fn title(&self) -> &'static str {
        "in-order vs out-of-order issue (representatives)"
    }

    fn requires_sim(&self) -> bool {
        true
    }

    fn run(&self, ctx: &crate::experiment::Context) -> crate::experiment::ExperimentOutput {
        let study = run_for_with(&ctx.runner, &representatives(), &ctx.config);
        crate::experiment::ExperimentOutput::summary_only(study.to_string())
    }
}

impl fmt::Display for IssuePolicyStudy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Issue-policy study — in-order vs out-of-order (BIPS³/W gated)"
        )?;
        writeln!(
            f,
            "  {:<12} {:>8} {:>8} {:>11} {:>11} {:>9} {:>9}",
            "workload", "in-order", "OoO", "α in/ooo", "γ in/ooo", "Δsim", "Δtheory"
        )?;
        for c in &self.comparisons {
            writeln!(
                f,
                "  {:<12} {:>8.1} {:>8.1} {:>5.2}/{:<5.2} {:>5.2}/{:<5.2} {:>+9.1} {:>+9.1}",
                c.workload_name,
                c.inorder_optimum,
                c.ooo_optimum,
                c.inorder_params.0,
                c.ooo_params.0,
                c.inorder_params.1,
                c.ooo_params.1,
                c.optimum_shift(),
                c.theory_shift()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_study() -> IssuePolicyStudy {
        run(&RunConfig {
            warmup: 8_000,
            instructions: 16_000,
            depths: (2..=24).step_by(2).collect(),
            ..RunConfig::default()
        })
    }

    #[test]
    fn covers_all_representatives() {
        assert_eq!(quick_study().comparisons.len(), 4);
    }

    #[test]
    fn differences_are_minor() {
        // The paper's claim: only minor optimum differences between the
        // issue policies.
        for c in quick_study().comparisons {
            assert!(
                c.optimum_shift().abs() <= 4.0,
                "{}: in-order {} vs OoO {}",
                c.workload_name,
                c.inorder_optimum,
                c.ooo_optimum
            );
        }
    }

    #[test]
    fn ooo_never_lowers_alpha() {
        for c in quick_study().comparisons {
            assert!(
                c.ooo_params.0 >= c.inorder_params.0 - 0.15,
                "{}: α {} -> {}",
                c.workload_name,
                c.inorder_params.0,
                c.ooo_params.0
            );
        }
    }
}
