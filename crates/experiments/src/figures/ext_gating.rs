//! Extension experiment: optimum depth as a function of the clock-gating
//! *degree*.
//!
//! The paper treats two endpoints — no gating (`f_cg = 1`) and complete
//! fine-grained gating — and notes that "partial clock gating leads to a
//! fractional value for f_cg". This experiment fills in the between: sweep
//! the fraction of latches that remain clocked every cycle and trace how
//! the BIPS³/W optimum migrates from the ungated to the gated design
//! point, in both the theory and the simulation-backed power model.

use crate::extract::ExtractedParams;
use crate::sweep::RunConfig;
use pipedepth_core::{
    numeric_optimum, ClockGating, MetricExponent, PipelineModel, PowerParams, TechParams,
};
use pipedepth_power::{metric, Gating, PowerConfig};
use pipedepth_sim::{Engine, SimConfig};
use pipedepth_trace::TraceGenerator;
use pipedepth_workloads::{suite_class, Workload, WorkloadClass};
use std::fmt;

/// The gating fractions swept (1.0 = ungated).
pub const FRACTIONS: [f64; 5] = [1.0, 0.75, 0.5, 0.25, 0.1];

/// Result of the gating-degree extension experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtGating {
    /// Workload studied.
    pub workload_name: String,
    /// Partial-gating fractions swept.
    pub fractions: Vec<f64>,
    /// Theory optimum at each fraction (None ⇒ unpipelined/boundary).
    pub theory_optima: Vec<Option<f64>>,
    /// Simulated grid optimum (BIPS³/W) at each fraction.
    pub sim_optima: Vec<u32>,
    /// Simulated grid optimum under complete (occupancy) gating, for
    /// reference.
    pub sim_complete_gating: u32,
}

/// Runs the sweep for one workload.
pub fn run_for(workload: &Workload, extracted: &ExtractedParams, config: &RunConfig) -> ExtGating {
    // ---- Theory side -----------------------------------------------------
    let tech = TechParams::paper();
    let theory_optima = FRACTIONS
        .iter()
        .map(|&f| {
            let power = PowerParams::with_leakage_fraction(
                config.leakage_fraction,
                &tech,
                config.ref_depth as f64,
            )
            .with_gating(ClockGating::Partial(f));
            let model = PipelineModel::new(tech, extracted.workload_params(), power);
            numeric_optimum(&model, MetricExponent::BIPS3_PER_WATT).depth()
        })
        .collect();

    // ---- Simulation side ---------------------------------------------------
    let best_depth = |gating: Gating| -> u32 {
        let power = PowerConfig::paper(gating, config.leakage_fraction, config.ref_depth);
        let mut best = (0u32, f64::MIN);
        for &depth in &config.depths {
            let mut engine = Engine::new(SimConfig::paper(depth));
            let mut gen = TraceGenerator::new(workload.model, workload.trace_seed);
            engine.warm_up(&mut gen, config.warmup);
            let report = engine.run(&mut gen, config.instructions);
            let v = metric(&report, &power, 3.0);
            if v > best.1 {
                best = (depth, v);
            }
        }
        best.0
    };
    let sim_optima = FRACTIONS
        .iter()
        .map(|&f| {
            if f >= 1.0 {
                best_depth(Gating::Ungated)
            } else {
                best_depth(Gating::Partial(f))
            }
        })
        .collect();
    ExtGating {
        workload_name: workload.name.clone(),
        fractions: FRACTIONS.to_vec(),
        theory_optima,
        sim_optima,
        sim_complete_gating: best_depth(Gating::Gated),
    }
}

/// Runs the experiment end to end on the first modern workload.
pub fn run(config: &RunConfig) -> ExtGating {
    let w = suite_class(WorkloadClass::Modern)
        .into_iter()
        .next()
        .expect("modern class populated");
    let curve = crate::sweep::sweep_workload(&w, config);
    run_for(&w, &curve.extracted, config)
}

impl fmt::Display for ExtGating {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Extension — optimum vs gating degree ({}, BIPS³/W)",
            self.workload_name
        )?;
        writeln!(f, "  {:>9} {:>12} {:>10}", "f_cg", "theory opt", "sim opt")?;
        for ((frac, th), sim) in self
            .fractions
            .iter()
            .zip(&self.theory_optima)
            .zip(&self.sim_optima)
        {
            let th_s = th.map_or("unpiped".to_string(), |d| format!("{d:.1}"));
            writeln!(f, "  {frac:>9.2} {th_s:>12} {sim:>10}")?;
        }
        writeln!(
            f,
            "  complete occupancy gating: sim opt @{}",
            self.sim_complete_gating
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> RunConfig {
        RunConfig {
            warmup: 6_000,
            instructions: 12_000,
            depths: (2..=20).step_by(2).collect(),
            ..RunConfig::default()
        }
    }

    #[test]
    fn less_clocking_means_deeper_optima() {
        let fig = run(&quick());
        // Simulated optima must not shrink as the gated fraction falls.
        for w in fig.sim_optima.windows(2) {
            assert!(
                w[1] >= w[0],
                "sim optima not monotone: {:?}",
                fig.sim_optima
            );
        }
        // And the theory agrees in direction.
        let th: Vec<f64> = fig.theory_optima.iter().map(|o| o.unwrap_or(1.0)).collect();
        for w in th.windows(2) {
            assert!(w[1] + 1e-9 >= w[0], "theory optima not monotone: {th:?}");
        }
    }

    #[test]
    fn complete_gating_at_least_as_deep_as_partial() {
        let fig = run(&quick());
        assert!(fig.sim_complete_gating >= fig.sim_optima[0]);
    }
}
