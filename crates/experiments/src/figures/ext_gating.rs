//! Extension experiment: optimum depth as a function of the clock-gating
//! *degree*.
//!
//! The paper treats two endpoints — no gating (`f_cg = 1`) and complete
//! fine-grained gating — and notes that "partial clock gating leads to a
//! fractional value for f_cg". This experiment fills in the between: sweep
//! the fraction of latches that remain clocked every cycle and trace how
//! the BIPS³/W optimum migrates from the ungated to the gated design
//! point, in both the theory and the simulation-backed power model.

use crate::extract::ExtractedParams;
use crate::runner::{CellSpec, Runner};
use crate::sweep::RunConfig;
use pipedepth_core::{
    numeric_optimum, ClockGating, MetricExponent, PipelineModel, PowerParams, TechParams,
};
use pipedepth_power::{metric, Gating, PowerConfig};
use pipedepth_sim::SimConfig;
use pipedepth_workloads::{suite_class, Workload, WorkloadClass};
use std::fmt;

/// The gating fractions swept (1.0 = ungated).
pub const FRACTIONS: [f64; 5] = [1.0, 0.75, 0.5, 0.25, 0.1];

/// Result of the gating-degree extension experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtGating {
    /// Workload studied.
    pub workload_name: String,
    /// Partial-gating fractions swept.
    pub fractions: Vec<f64>,
    /// Theory optimum at each fraction (None ⇒ unpipelined/boundary).
    pub theory_optima: Vec<Option<f64>>,
    /// Simulated grid optimum (BIPS³/W) at each fraction.
    pub sim_optima: Vec<u32>,
    /// Simulated grid optimum under complete (occupancy) gating, for
    /// reference.
    pub sim_complete_gating: u32,
}

/// Runs the sweep for one workload on a shared runner. The simulation side
/// needs only one paper-machine run per depth — every gating degree is a
/// power-model post-processing of the same reports — so on a runner that
/// already swept the suite this experiment simulates nothing new.
pub fn run_for_with(
    runner: &Runner,
    workload: &Workload,
    extracted: &ExtractedParams,
    config: &RunConfig,
) -> ExtGating {
    // ---- Theory side -----------------------------------------------------
    let tech = TechParams::paper();
    let theory_optima = FRACTIONS
        .iter()
        .map(|&f| {
            let power = PowerParams::with_leakage_fraction(
                config.leakage_fraction,
                &tech,
                config.ref_depth as f64,
            )
            .with_gating(ClockGating::Partial(f));
            let model = PipelineModel::new(tech, extracted.workload_params(), power);
            numeric_optimum(&model, MetricExponent::BIPS3_PER_WATT).depth()
        })
        .collect();

    // ---- Simulation side -------------------------------------------------
    let cells: Vec<CellSpec> = config
        .depths
        .iter()
        .map(|&depth| {
            CellSpec::new(
                workload,
                SimConfig::paper(depth),
                config.warmup,
                config.instructions,
            )
        })
        .collect();
    let reports = runner.run_cells(&cells);
    let best_depth = |gating: Gating| -> u32 {
        let power = PowerConfig::paper(gating, config.leakage_fraction, config.ref_depth);
        let ys: Vec<f64> = reports.iter().map(|r| metric(r, &power, 3.0)).collect();
        let i = crate::series::argmax(&ys).expect("sweep has a finite metric value");
        config.depths[i]
    };
    let sim_optima = FRACTIONS
        .iter()
        .map(|&f| {
            if f >= 1.0 {
                best_depth(Gating::Ungated)
            } else {
                best_depth(Gating::Partial(f))
            }
        })
        .collect();
    ExtGating {
        workload_name: workload.name.clone(),
        fractions: FRACTIONS.to_vec(),
        theory_optima,
        sim_optima,
        sim_complete_gating: best_depth(Gating::Gated),
    }
}

/// Runs the sweep for one workload with a private serial runner.
pub fn run_for(workload: &Workload, extracted: &ExtractedParams, config: &RunConfig) -> ExtGating {
    run_for_with(&Runner::serial(), workload, extracted, config)
}

/// Runs the experiment end to end on the first modern workload.
pub fn run(config: &RunConfig) -> ExtGating {
    let w = suite_class(WorkloadClass::Modern)
        .into_iter()
        .next()
        .expect("modern class populated");
    let runner = Runner::serial();
    let curve = runner.sweep_workload(&w, config);
    run_for_with(&runner, &w, &curve.extracted, config)
}

/// Registry spec: the gating-degree sweep on the representative modern
/// workload.
#[derive(Debug)]
pub struct Spec;

impl crate::experiment::Experiment for Spec {
    fn name(&self) -> &'static str {
        "ext_gating"
    }

    fn title(&self) -> &'static str {
        "extension: optimum depth vs clock-gating degree"
    }

    fn needs_curves(&self) -> bool {
        true
    }

    fn requires_sim(&self) -> bool {
        true
    }

    fn run(&self, ctx: &crate::experiment::Context) -> crate::experiment::ExperimentOutput {
        let curve = ctx.curve_for(WorkloadClass::Modern);
        let fig = run_for_with(&ctx.runner, &curve.workload, &curve.extracted, &ctx.config);
        crate::experiment::ExperimentOutput::summary_only(fig.to_string())
    }
}

impl fmt::Display for ExtGating {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Extension — optimum vs gating degree ({}, BIPS³/W)",
            self.workload_name
        )?;
        writeln!(f, "  {:>9} {:>12} {:>10}", "f_cg", "theory opt", "sim opt")?;
        for ((frac, th), sim) in self
            .fractions
            .iter()
            .zip(&self.theory_optima)
            .zip(&self.sim_optima)
        {
            let th_s = th.map_or("unpiped".to_string(), |d| format!("{d:.1}"));
            writeln!(f, "  {frac:>9.2} {th_s:>12} {sim:>10}")?;
        }
        writeln!(
            f,
            "  complete occupancy gating: sim opt @{}",
            self.sim_complete_gating
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> RunConfig {
        RunConfig {
            warmup: 6_000,
            instructions: 12_000,
            depths: (2..=20).step_by(2).collect(),
            ..RunConfig::default()
        }
    }

    #[test]
    fn less_clocking_means_deeper_optima() {
        let fig = run(&quick());
        // Simulated optima must not shrink as the gated fraction falls.
        for w in fig.sim_optima.windows(2) {
            assert!(
                w[1] >= w[0],
                "sim optima not monotone: {:?}",
                fig.sim_optima
            );
        }
        // And the theory agrees in direction.
        let th: Vec<f64> = fig.theory_optima.iter().map(|o| o.unwrap_or(1.0)).collect();
        for w in th.windows(2) {
            assert!(w[1] + 1e-9 >= w[0], "theory optima not monotone: {th:?}");
        }
    }

    #[test]
    fn complete_gating_at_least_as_deep_as_partial() {
        let fig = run(&quick());
        assert!(fig.sim_complete_gating >= fig.sim_optima[0]);
    }
}
