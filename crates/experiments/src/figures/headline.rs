//! The paper's headline numbers, recomputed on this substrate.
//!
//! * Performance-only optimisation: ≈22 stages (8.9 FO4) in the paper.
//! * BIPS³/W (clock gated): cubic-fit average 8 stages (20 FO4); theory
//!   average ≈6.25 stages (25 FO4); a particular workload 7 stages
//!   (22.5 FO4).
//! * BIPS/W and BIPS²/W: unpipelined optima.

use crate::extract::theory_model;
use crate::figures::fig6;
use crate::sweep::{sweep_all, RunConfig, WorkloadCurve};
use pipedepth_core::{numeric_optimum, MetricExponent};
use pipedepth_math::fit::cubic_peak_fit;
use pipedepth_math::stats::Summary;
use pipedepth_workloads::suite;
use std::fmt;

/// The recomputed headline numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct Headline {
    /// Mean performance-only optimum over workloads (cubic fit of the
    /// simulated BIPS curve).
    pub perf_only_mean: f64,
    /// Mean BIPS³/W (gated) optimum via cubic fit of simulation.
    pub m3_cubic_mean: f64,
    /// Mean BIPS³/W (gated) optimum from the analytic theory, one model per
    /// workload (parameters extracted from a single depth).
    pub m3_theory_mean: f64,
    /// Number of workloads whose BIPS²/W is effectively unpipelined (grid
    /// optimum at ≤ 4 stages; the paper's 1-stage optimum lies below the
    /// simulated 2-stage floor, and unit merging makes the 2-stage design
    /// itself irregular).
    pub m2_unpipelined: usize,
    /// Number of workloads whose BIPS/W is effectively unpipelined (≤ 4
    /// stages).
    pub m1_unpipelined: usize,
    /// Workload count.
    pub workloads: usize,
    /// Summary of the per-workload m = 3 cubic-fit optima.
    pub m3_summary: Summary,
}

impl Headline {
    /// FO4 per stage at a given depth for the paper's technology.
    pub fn fo4(depth: f64) -> f64 {
        2.5 + 140.0 / depth
    }

    /// Ratio of the performance-only to power/performance optimum — the
    /// paper's central "power shortens pipelines" factor (≈22/8 ≈ 2.75).
    pub fn shortening_factor(&self) -> f64 {
        self.perf_only_mean / self.m3_cubic_mean
    }
}

/// Computes the headline numbers from finished sweeps.
pub fn from_curves(curves: &[WorkloadCurve], config: &RunConfig) -> Headline {
    let mut perf_opts = Vec::new();
    let mut m3_cubic = Vec::new();
    let mut m3_theory = Vec::new();
    let mut m1_unpipelined = 0;
    let mut m2_unpipelined = 0;

    // "Effectively unpipelined": the best design on the grid is at most
    // this deep (the true optimum of these metrics is 1 stage, below the
    // simulable range).
    const UNPIPELINED_BOUND: f64 = 4.0;
    for curve in curves {
        let xs = curve.depths();

        let perf_fit =
            cubic_peak_fit(&xs, &curve.throughput_series()).expect("sweep supports a cubic fit");
        perf_opts.push(perf_fit.peak_x);

        m3_cubic.push(fig6::optimum_of(curve).cubic_fit_depth);

        let model = theory_model(
            &curve.extracted,
            true,
            config.leakage_fraction,
            config.ref_depth as f64,
            1.3,
        );
        let theory = numeric_optimum(&model, MetricExponent::BIPS3_PER_WATT)
            .depth()
            .unwrap_or(1.0);
        m3_theory.push(theory);

        for (m, counter) in [(1u32, &mut m1_unpipelined), (2, &mut m2_unpipelined)] {
            let ys = curve.gated_series(m);
            let best = crate::series::peak_x(&xs, &ys).expect("sweep has a finite metric value");
            if best <= UNPIPELINED_BOUND {
                *counter += 1;
            }
        }
    }

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    Headline {
        perf_only_mean: mean(&perf_opts),
        m3_cubic_mean: mean(&m3_cubic),
        m3_theory_mean: mean(&m3_theory),
        m1_unpipelined,
        m2_unpipelined,
        workloads: curves.len(),
        m3_summary: Summary::of(&m3_cubic).expect("non-empty suite"),
    }
}

/// Runs the headline computation over the full 55-workload suite.
pub fn run(config: &RunConfig) -> Headline {
    let workloads = suite();
    let curves = sweep_all(&workloads, config);
    from_curves(&curves, config)
}

/// Registry spec: the headline numbers from the shared suite sweep.
#[derive(Debug)]
pub struct Spec;

impl crate::experiment::Experiment for Spec {
    fn name(&self) -> &'static str {
        "headline"
    }

    fn title(&self) -> &'static str {
        "the paper's headline optima, recomputed"
    }

    fn needs_curves(&self) -> bool {
        true
    }

    fn run(&self, ctx: &crate::experiment::Context) -> crate::experiment::ExperimentOutput {
        let h = from_curves(ctx.curves(), &ctx.config);
        let out = crate::experiment::ExperimentOutput::summary_only(h.to_string());
        let _ = ctx.outcomes.headline.set(h);
        out
    }
}

impl fmt::Display for Headline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Headline numbers over {} workloads", self.workloads)?;
        writeln!(
            f,
            "  performance-only optimum : {:>5.1} stages ({:>4.1} FO4)   [paper: 22 stages, 8.9 FO4]",
            self.perf_only_mean,
            Headline::fo4(self.perf_only_mean)
        )?;
        writeln!(
            f,
            "  BIPS³/W cubic-fit optimum: {:>5.1} stages ({:>4.1} FO4)   [paper: 8 stages, 20 FO4]",
            self.m3_cubic_mean,
            Headline::fo4(self.m3_cubic_mean)
        )?;
        writeln!(
            f,
            "  BIPS³/W theory optimum   : {:>5.1} stages ({:>4.1} FO4)   [paper: 6.25 stages, 25 FO4]",
            self.m3_theory_mean,
            Headline::fo4(self.m3_theory_mean)
        )?;
        writeln!(
            f,
            "  power shortens pipeline by {:.2}×                    [paper: 22/8 ≈ 2.75×]",
            self.shortening_factor()
        )?;
        writeln!(
            f,
            "  BIPS/W unpipelined: {}/{}; BIPS²/W unpipelined: {}/{}",
            self.m1_unpipelined, self.workloads, self.m2_unpipelined, self.workloads
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::sweep_workload;
    use pipedepth_workloads::representatives;

    fn quick_headline() -> Headline {
        let cfg = RunConfig {
            warmup: 8_000,
            instructions: 16_000,
            depths: (2..=24).step_by(2).collect(),
            ..RunConfig::default()
        };
        let curves: Vec<_> = representatives()
            .iter()
            .map(|w| sweep_workload(w, &cfg))
            .collect();
        from_curves(&curves, &cfg)
    }

    #[test]
    fn power_shortens_the_pipeline() {
        let h = quick_headline();
        assert!(
            h.shortening_factor() > 1.3,
            "perf {} vs m3 {}",
            h.perf_only_mean,
            h.m3_cubic_mean
        );
    }

    #[test]
    fn m1_always_unpipelined() {
        let h = quick_headline();
        assert_eq!(h.m1_unpipelined, h.workloads);
    }

    #[test]
    fn theory_and_simulation_same_ballpark() {
        // The paper's two analyses differ by ≈20%; allow 2× here.
        let h = quick_headline();
        let ratio = h.m3_theory_mean / h.m3_cubic_mean;
        assert!(ratio > 0.4 && ratio < 2.0, "ratio {ratio}");
    }

    #[test]
    fn fo4_helper() {
        assert!((Headline::fo4(7.0) - 22.5).abs() < 1e-12);
        assert!((Headline::fo4(22.0) - 8.863).abs() < 1e-2);
    }
}
