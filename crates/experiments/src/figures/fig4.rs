//! Figures 4a–4c: BIPS³/W vs. pipeline depth, simulation against theory,
//! with and without clock gating, for representative workloads of three
//! classes (modern, SPECint, floating point).
//!
//! The theory curves are parameterised from a single simulation run (the
//! reference depth) and fitted to the simulated points with the overall
//! scale factor as the only adjustable parameter, exactly as the paper
//! describes.

use crate::extract::{theory_curve, theory_model};
use crate::sweep::{sweep_workload, RunConfig, WorkloadCurve};
use pipedepth_core::MetricExponent;
use pipedepth_math::fit::scale_fit;
use pipedepth_workloads::{suite_class, Workload, WorkloadClass};
use std::fmt;

/// One workload's panel of Figure 4.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig4Panel {
    /// Workload displayed.
    pub workload: Workload,
    /// Depths simulated.
    pub depths: Vec<f64>,
    /// Simulated gated BIPS³/W.
    pub sim_gated: Vec<f64>,
    /// Simulated ungated BIPS³/W.
    pub sim_ungated: Vec<f64>,
    /// Scale-fitted theory curve (gated).
    pub theory_gated: Vec<f64>,
    /// Scale-fitted theory curve (ungated).
    pub theory_ungated: Vec<f64>,
    /// R² of the gated theory fit.
    pub r2_gated: f64,
    /// R² of the ungated theory fit.
    pub r2_ungated: f64,
    /// Simulated gated peak depth (grid argmax).
    pub sim_gated_peak: u32,
    /// Simulated ungated peak depth.
    pub sim_ungated_peak: u32,
}

/// The three-panel Figure 4 result (modern, SPECint, floating point).
#[derive(Debug, Clone, PartialEq)]
pub struct Fig4 {
    /// Panels in the paper's order: 4a modern, 4b SPECint, 4c FP.
    pub panels: Vec<Fig4Panel>,
}

/// Builds one panel from a finished sweep.
pub fn panel_from_curve(curve: &WorkloadCurve, config: &RunConfig) -> Fig4Panel {
    let depths = curve.depths();
    let sim_gated = curve.gated_series(3);
    let sim_ungated = curve.ungated_series(3);
    let m3 = MetricExponent::BIPS3_PER_WATT;

    let gated_model = theory_model(
        &curve.extracted,
        true,
        config.leakage_fraction,
        config.ref_depth as f64,
        1.3,
    );
    let ungated_model = theory_model(
        &curve.extracted,
        false,
        config.leakage_fraction,
        config.ref_depth as f64,
        1.3,
    );
    let raw_gated = theory_curve(&gated_model, &depths, m3);
    let raw_ungated = theory_curve(&ungated_model, &depths, m3);
    let fit_g = scale_fit(&sim_gated, &raw_gated).expect("non-degenerate theory curve");
    let fit_u = scale_fit(&sim_ungated, &raw_ungated).expect("non-degenerate theory curve");

    let peak_of = |ys: &[f64]| -> u32 {
        crate::series::peak_x(&depths, ys).expect("sweep has a finite metric value") as u32
    };
    Fig4Panel {
        workload: curve.workload.clone(),
        sim_gated_peak: peak_of(&sim_gated),
        sim_ungated_peak: peak_of(&sim_ungated),
        theory_gated: raw_gated.iter().map(|v| v * fit_g.scale).collect(),
        theory_ungated: raw_ungated.iter().map(|v| v * fit_u.scale).collect(),
        r2_gated: fit_g.r_squared,
        r2_ungated: fit_u.r_squared,
        depths,
        sim_gated,
        sim_ungated,
    }
}

/// Runs Figure 4 on the first workload of each of the paper's three panel
/// classes.
pub fn run(config: &RunConfig) -> Fig4 {
    let classes = [
        WorkloadClass::Modern,
        WorkloadClass::SpecInt,
        WorkloadClass::FloatingPoint,
    ];
    let panels = classes
        .iter()
        .map(|&c| {
            let w = suite_class(c).into_iter().next().expect("class populated");
            let curve = sweep_workload(&w, config);
            panel_from_curve(&curve, config)
        })
        .collect();
    Fig4 { panels }
}

/// Registry spec: build the three panels from the shared suite sweep and
/// emit `fig4a.csv`–`fig4c.csv` plus a terminal chart of panel 4a.
#[derive(Debug)]
pub struct Spec;

impl crate::experiment::Experiment for Spec {
    fn name(&self) -> &'static str {
        "fig4"
    }

    fn title(&self) -> &'static str {
        "BIPS³/W vs depth, theory against simulation (3 panels)"
    }

    fn needs_curves(&self) -> bool {
        true
    }

    fn run(&self, ctx: &crate::experiment::Context) -> crate::experiment::ExperimentOutput {
        let classes = [
            WorkloadClass::Modern,
            WorkloadClass::SpecInt,
            WorkloadClass::FloatingPoint,
        ];
        let fig = Fig4 {
            panels: classes
                .iter()
                .map(|&c| panel_from_curve(ctx.curve_for(c), &ctx.config))
                .collect(),
        };

        let mut summary = fig.to_string();
        let p = &fig.panels[0];
        summary.push_str(&format!(
            "  [4a {}] g=sim gated  u=sim ungated  t=theory gated\n",
            p.workload.name
        ));
        summary.push_str(
            &crate::plot::Chart::new(&p.depths)
                .series('t', &p.theory_gated)
                .series('g', &p.sim_gated)
                .series('u', &p.sim_ungated)
                .size(64, 14)
                .render(),
        );

        let artifacts = ["fig4a.csv", "fig4b.csv", "fig4c.csv"]
            .iter()
            .zip(&fig.panels)
            .map(|(name, p)| {
                let table = crate::report::Table::from_series(
                    "depth",
                    &p.depths,
                    &[
                        ("sim_gated", &p.sim_gated),
                        ("sim_ungated", &p.sim_ungated),
                        ("theory_gated", &p.theory_gated),
                        ("theory_ungated", &p.theory_ungated),
                    ],
                )
                .expect("panel series share the depth axis");
                crate::experiment::Artifact::new(*name, table.to_csv())
            })
            .collect();
        crate::experiment::ExperimentOutput { summary, artifacts }
    }
}

impl fmt::Display for Fig4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig. 4 — BIPS³/W vs depth, theory vs simulation")?;
        for (label, p) in ["4a", "4b", "4c"].iter().zip(&self.panels) {
            writeln!(
                f,
                "  {label} {:<12} gated peak @{:>2} (theory R²={:.3}); ungated peak @{:>2} (R²={:.3})",
                p.workload.name, p.sim_gated_peak, p.r2_gated, p.sim_ungated_peak, p.r2_ungated
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> RunConfig {
        RunConfig {
            warmup: 8_000,
            instructions: 16_000,
            depths: (2..=24).step_by(2).collect(),
            ..RunConfig::default()
        }
    }

    #[test]
    fn three_panels_in_paper_order() {
        let fig = run(&quick());
        assert_eq!(fig.panels.len(), 3);
        assert_eq!(fig.panels[0].workload.class, WorkloadClass::Modern);
        assert_eq!(fig.panels[1].workload.class, WorkloadClass::SpecInt);
        assert_eq!(fig.panels[2].workload.class, WorkloadClass::FloatingPoint);
    }

    #[test]
    fn gated_curve_sits_above_ungated() {
        // The paper: "The non-clock gated data fall below the clock gated
        // data because of the larger power usage in the latter case."
        let fig = run(&quick());
        for p in &fig.panels {
            for (g, u) in p.sim_gated.iter().zip(&p.sim_ungated) {
                assert!(g > u);
            }
        }
    }

    #[test]
    fn gating_pushes_peak_deeper_or_equal() {
        let fig = run(&quick());
        for p in &fig.panels {
            assert!(
                p.sim_gated_peak >= p.sim_ungated_peak,
                "{}: gated {} vs ungated {}",
                p.workload.name,
                p.sim_gated_peak,
                p.sim_ungated_peak
            );
        }
    }

    #[test]
    fn theory_tracks_simulation() {
        // "the theory gives a reasonable account of the simulations":
        // require a decent R² for the integer-class panels (FP is the
        // noisiest in the paper too).
        let fig = run(&quick());
        assert!(
            fig.panels[0].r2_gated > 0.6,
            "modern R² {}",
            fig.panels[0].r2_gated
        );
        assert!(
            fig.panels[1].r2_gated > 0.6,
            "specint R² {}",
            fig.panels[1].r2_gated
        );
    }
}
