//! Per-figure experiment drivers, one module per table/figure of the
//! paper's evaluation.

pub mod ext_gating;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod headline;
pub mod xval;
