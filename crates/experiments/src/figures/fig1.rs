//! Figure 1: the optimality quartic `d Metric/dp` as a function of `p`.
//!
//! The paper plots its Eq. 5 over roughly `p ∈ [−60, 20]` for typical
//! parameters and observes four real zero crossings — only one positive —
//! with the negative crossings pinned near `−t_p/t_o = −56` (Eq. 6a) and
//! `≈ −0.5` (Eq. 6b).

use pipedepth_core::{
    paper_quartic, spurious_root_6a, spurious_root_6b, MetricExponent, PipelineModel, PowerParams,
    TechParams, WorkloadParams,
};
use pipedepth_math::roots::real_roots;
use std::fmt;

/// Result of the Figure 1 experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig1 {
    /// Sample abscissae.
    pub ps: Vec<f64>,
    /// Quartic values (normalised to the maximum magnitude over the range).
    pub values: Vec<f64>,
    /// All real roots of the quartic, ascending.
    pub roots: Vec<f64>,
    /// The paper's Eq. 6a prediction.
    pub root_6a: f64,
    /// The paper's Eq. 6b prediction.
    pub root_6b: f64,
}

impl Fig1 {
    /// The single positive root (the physically meaningful optimum), if the
    /// parameters admit one.
    pub fn positive_root(&self) -> Option<f64> {
        self.roots.iter().copied().find(|&r| r > 0.0)
    }
}

/// Runs the Figure 1 experiment for the paper's typical parameters
/// (BIPS³/W, default technology/workload/power).
pub fn run() -> Fig1 {
    let model = PipelineModel::new(
        TechParams::paper(),
        WorkloadParams::typical(),
        PowerParams::paper(),
    );
    run_with_model(&model)
}

/// Runs Figure 1 for an arbitrary (non-gated) model.
///
/// # Panics
///
/// Panics if the model uses complete clock gating (no polynomial form).
pub fn run_with_model(model: &PipelineModel) -> Fig1 {
    let m = MetricExponent::BIPS3_PER_WATT;
    let quartic = paper_quartic(model, m)
        .expect("Figure 1 requires the polynomial (non-gated) optimality form");
    let ps: Vec<f64> = (0..=320).map(|i| -60.0 + i as f64 * 0.25).collect();
    let raw: Vec<f64> = ps.iter().map(|&p| quartic.eval(p)).collect();
    let scale = raw.iter().fold(0.0f64, |a, &v| a.max(v.abs())).max(1.0);
    Fig1 {
        values: raw.into_iter().map(|v| v / scale).collect(),
        ps,
        roots: real_roots(&quartic),
        root_6a: spurious_root_6a(model),
        root_6b: spurious_root_6b(model, m).expect("non-gated model"),
    }
}

/// Registry spec: regenerate Figure 1 and emit `fig1.csv`.
#[derive(Debug)]
pub struct Spec;

impl crate::experiment::Experiment for Spec {
    fn name(&self) -> &'static str {
        "fig1"
    }

    fn title(&self) -> &'static str {
        "optimality quartic and its zero crossings"
    }

    fn run(&self, ctx: &crate::experiment::Context) -> crate::experiment::ExperimentOutput {
        let fig = run();
        let table =
            crate::report::Table::from_series("p", &fig.ps, &[("d_metric_dp", &fig.values)])
                .expect("values sampled on the shared axis");
        let out = crate::experiment::ExperimentOutput {
            summary: fig.to_string(),
            artifacts: vec![crate::experiment::Artifact::new("fig1.csv", table.to_csv())],
        };
        let _ = ctx.outcomes.fig1.set(fig);
        out
    }
}

impl fmt::Display for Fig1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig. 1 — d(Metric)/dp quartic, zero crossings")?;
        writeln!(f, "  real roots: {:?}", self.roots)?;
        writeln!(
            f,
            "  Eq. 6a predicts {:.2}; Eq. 6b predicts {:.3}",
            self.root_6a, self.root_6b
        )?;
        match self.positive_root() {
            Some(r) => writeln!(f, "  positive (physical) root: {r:.2} stages"),
            None => writeln!(f, "  no positive root: unpipelined optimum"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_real_roots_one_positive() {
        let fig = run();
        assert_eq!(fig.roots.len(), 4, "roots: {:?}", fig.roots);
        assert_eq!(fig.roots.iter().filter(|&&r| r > 0.0).count(), 1);
    }

    #[test]
    fn eq_6a_matches_most_negative_root() {
        let fig = run();
        assert!((fig.roots[0] - fig.root_6a).abs() < 1e-3 * fig.root_6a.abs());
        assert!((fig.root_6a + 56.0).abs() < 1e-9, "paper technology: −56");
    }

    #[test]
    fn samples_cover_paper_range() {
        let fig = run();
        assert_eq!(fig.ps.first(), Some(&-60.0));
        assert_eq!(fig.ps.last(), Some(&20.0));
        // Normalised values stay within [−1, 1].
        assert!(fig.values.iter().all(|v| v.abs() <= 1.0));
    }

    #[test]
    fn sign_changes_match_roots_in_range() {
        let fig = run();
        let crossings = fig
            .values
            .windows(2)
            .filter(|w| w[0].signum() != w[1].signum())
            .count();
        let roots_in_range = fig
            .roots
            .iter()
            .filter(|&&r| (-60.0..=20.0).contains(&r))
            .count();
        assert_eq!(crossings, roots_in_range);
    }

    #[test]
    fn display_mentions_roots() {
        let s = run().to_string();
        assert!(s.contains("positive (physical) root"));
    }
}
