//! Figure 5: the four metrics — BIPS, BIPS³/W, BIPS²/W, BIPS/W — as a
//! function of pipeline depth for a clock-gated modern workload.
//!
//! The paper's observation: BIPS and BIPS³/W show interior optima (≈20 and
//! ≈7–9 stages respectively) while BIPS²/W and BIPS/W are maximised by a
//! single-stage design.

use crate::sweep::{sweep_workload, RunConfig, WorkloadCurve};
use pipedepth_workloads::{suite_class, WorkloadClass};
use std::fmt;

/// One metric's normalised curve and peak.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSeries {
    /// Label, e.g. `BIPS^3/W`.
    pub label: String,
    /// Values normalised to the series maximum.
    pub values: Vec<f64>,
    /// Depth of the maximum (grid argmax).
    pub peak_depth: u32,
    /// Whether the maximum is interior to the swept range.
    pub interior: bool,
}

/// Result of the Figure 5 experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5 {
    /// Workload displayed.
    pub workload_name: String,
    /// Depths simulated.
    pub depths: Vec<f64>,
    /// Series in the paper's order: BIPS, m=3, m=2, m=1 (all clock gated).
    pub series: Vec<MetricSeries>,
}

fn normalise(label: &str, depths: &[f64], ys: Vec<f64>) -> MetricSeries {
    let peak_depth =
        crate::series::peak_x(depths, &ys).expect("series has a finite metric value") as u32;
    let lo = depths[0] as u32;
    let hi = *depths.last().expect("non-empty") as u32;
    MetricSeries {
        label: label.to_string(),
        peak_depth,
        interior: peak_depth > lo && peak_depth < hi,
        values: crate::series::normalise_to_max(&ys).expect("series has a positive maximum"),
    }
}

/// Builds Figure 5 from a finished sweep.
pub fn from_curve(curve: &WorkloadCurve) -> Fig5 {
    let depths = curve.depths();
    let series = vec![
        normalise("BIPS", &depths, curve.throughput_series()),
        normalise("BIPS^3/W", &depths, curve.gated_series(3)),
        normalise("BIPS^2/W", &depths, curve.gated_series(2)),
        normalise("BIPS/W", &depths, curve.gated_series(1)),
    ];
    Fig5 {
        workload_name: curve.workload.name.clone(),
        depths,
        series,
    }
}

/// Runs Figure 5 on the first modern workload.
pub fn run(config: &RunConfig) -> Fig5 {
    let w = suite_class(WorkloadClass::Modern)
        .into_iter()
        .next()
        .expect("modern class populated");
    from_curve(&sweep_workload(&w, config))
}

impl Fig5 {
    /// Looks up a series by label.
    pub fn series_named(&self, label: &str) -> Option<&MetricSeries> {
        self.series.iter().find(|s| s.label == label)
    }
}

/// Registry spec: the four-metric comparison on the representative modern
/// workload, with `fig5.csv` and a terminal chart.
#[derive(Debug)]
pub struct Spec;

impl crate::experiment::Experiment for Spec {
    fn name(&self) -> &'static str {
        "fig5"
    }

    fn title(&self) -> &'static str {
        "BIPS, BIPS³/W, BIPS²/W, BIPS/W vs depth (modern workload)"
    }

    fn needs_curves(&self) -> bool {
        true
    }

    fn run(&self, ctx: &crate::experiment::Context) -> crate::experiment::ExperimentOutput {
        let fig = from_curve(ctx.curve_for(WorkloadClass::Modern));

        let mut summary = fig.to_string();
        summary.push_str("  B=BIPS  3=BIPS³/W  2=BIPS²/W  1=BIPS/W (normalised)\n");
        summary.push_str(
            &crate::plot::Chart::new(&fig.depths)
                .series('B', &fig.series[0].values)
                .series('3', &fig.series[1].values)
                .series('2', &fig.series[2].values)
                .series('1', &fig.series[3].values)
                .size(64, 14)
                .render(),
        );

        let columns: Vec<(&str, &[f64])> = fig
            .series
            .iter()
            .map(|s| (s.label.as_str(), s.values.as_slice()))
            .collect();
        let table = crate::report::Table::from_series("depth", &fig.depths, &columns)
            .expect("metric series share the depth axis");
        crate::experiment::ExperimentOutput {
            summary,
            artifacts: vec![crate::experiment::Artifact::new("fig5.csv", table.to_csv())],
        }
    }
}

impl fmt::Display for Fig5 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig. 5 — metrics vs depth for {} (clock gated)",
            self.workload_name
        )?;
        for s in &self.series {
            let kind = if s.interior {
                "interior peak"
            } else {
                "boundary"
            };
            writeln!(
                f,
                "  {:<9} optimum @{:>2} stages ({kind})",
                s.label, s.peak_depth
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig() -> Fig5 {
        run(&RunConfig {
            warmup: 10_000,
            instructions: 25_000,
            depths: (2..=25).collect(),
            ..RunConfig::default()
        })
    }

    #[test]
    fn bips_and_m3_have_interior_peaks() {
        let f = fig();
        assert!(f.series_named("BIPS").unwrap().interior);
        assert!(f.series_named("BIPS^3/W").unwrap().interior);
    }

    #[test]
    fn m1_peaks_at_shallowest_design() {
        let f = fig();
        let m1 = f.series_named("BIPS/W").unwrap();
        assert_eq!(m1.peak_depth, 2, "BIPS/W optimises unpipelined");
        assert!(!m1.interior);
    }

    #[test]
    fn metric_peaks_are_ordered_in_m() {
        // Deeper optima for more performance-weighted metrics.
        let f = fig();
        let p1 = f.series_named("BIPS/W").unwrap().peak_depth;
        let p2 = f.series_named("BIPS^2/W").unwrap().peak_depth;
        let p3 = f.series_named("BIPS^3/W").unwrap().peak_depth;
        let pb = f.series_named("BIPS").unwrap().peak_depth;
        assert!(p1 <= p2 && p2 <= p3 && p3 <= pb, "{p1} {p2} {p3} {pb}");
    }

    #[test]
    fn bips3_peak_well_below_bips_peak() {
        // Power pulls the optimum far shallower than performance alone.
        let f = fig();
        let p3 = f.series_named("BIPS^3/W").unwrap().peak_depth;
        let pb = f.series_named("BIPS").unwrap().peak_depth;
        assert!(pb >= p3 + 4, "BIPS @{pb}, BIPS³/W @{p3}");
    }

    #[test]
    fn series_normalised() {
        let f = fig();
        for s in &f.series {
            let max = s.values.iter().cloned().fold(f64::MIN, f64::max);
            assert!((max - 1.0).abs() < 1e-12);
        }
    }
}
